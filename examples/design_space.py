"""Design-space exploration with the trace-driven evaluator.

Sweeps array geometry and reconfiguration-cache size for two contrasting
workloads (AES: large dataflow blocks; quicksort: short control blocks)
and prints the speedup surface — the kind of study Section 6 lists as
future work ("finding the ideal shape for the reconfigurable array"),
made cheap by the trace evaluator.

Run:  python examples/design_space.py
"""

from repro.analysis import format_table
from repro.cgra.shape import ArrayShape
from repro.dim.params import DimParams
from repro.sim.stats import TimingModel
from repro.system import SystemConfig, baseline_metrics, evaluate_trace
from repro.workloads import run_workload

ROWS_SWEEP = (12, 24, 48, 96, 192)
SLOTS_SWEEP = (8, 32, 128)


def custom_system(rows: int, slots: int) -> SystemConfig:
    shape = ArrayShape(rows=rows, alus_per_row=8, mults_per_row=2,
                       ldsts_per_row=6, immediate_slots=2 * rows)
    return SystemConfig(shape, DimParams(cache_slots=slots,
                                         speculation=True),
                        TimingModel(), name=f"{rows}r/{slots}s")


def sweep(name: str) -> str:
    trace = run_workload(name).trace
    base = baseline_metrics(trace)
    rows = []
    for array_rows in ROWS_SWEEP:
        row = [f"{array_rows} lines"]
        for slots in SLOTS_SWEEP:
            metrics = evaluate_trace(trace, custom_system(array_rows,
                                                          slots))
            row.append(base.cycles / metrics.cycles)
        rows.append(row)
    return format_table(
        ["array size"] + [f"{s} slots" for s in SLOTS_SWEEP], rows,
        title=f"speedup surface — {name}")


def main() -> None:
    for name in ("rijndael_e", "quicksort"):
        print(sweep(name))
        print()
    print("reading the surface: AES keeps gaining from more lines (big "
          "unrolled blocks)\nand from more cache slots (many distinct "
          "blocks); quicksort saturates early\non both axes — its blocks "
          "are small and few, so a modest array suffices.")


if __name__ == "__main__":
    main()
