"""Quickstart: accelerate a hand-written MIPS program, transparently.

Assembles a small checksum kernel, runs it on the plain MIPS core and on
the coupled MIPS + DIM + reconfigurable array, and shows that the binary
is untouched while the cycle count drops.

Run:  python examples/quickstart.py
"""

from repro.asm import assemble
from repro.sim import run_program
from repro.system import paper_system
from repro.system.coupled import run_coupled

SOURCE = """
        .data
buffer: .space 256
        .text
__start:
        # fill the buffer with a simple pattern
        la   $t0, buffer
        li   $t1, 0
fill:
        sb   $t1, 0($t0)
        addiu $t0, $t0, 1
        addiu $t1, $t1, 1
        blt  $t1, 256, fill

        # rotating-xor checksum over the buffer, several passes
        li   $s0, 0            # pass counter
        li   $s2, 0            # checksum
passes:
        la   $t0, buffer
        li   $t1, 0
sum:
        lbu  $t2, 0($t0)
        sll  $t3, $s2, 5
        srl  $t4, $s2, 27
        or   $t3, $t3, $t4
        addu $s2, $t3, $t2
        addiu $t0, $t0, 1
        addiu $t1, $t1, 1
        blt  $t1, 256, sum
        addiu $s0, $s0, 1
        blt  $s0, 40, passes

        # print the checksum and exit
        move $a0, $s2
        li   $v0, 34           # print as hex
        syscall
        li   $v0, 10
        syscall
"""


def main() -> None:
    program = assemble(SOURCE)
    print(f"assembled {program.num_instructions()} instructions "
          f"at 0x{program.text_base:08x}\n")

    plain = run_program(program)
    print(f"plain MIPS   : output={plain.output}  "
          f"cycles={plain.stats.cycles:,}")

    config = paper_system("C3", slots=64, speculation=True)
    accelerated = run_coupled(program, config)
    print(f"MIPS + DIM   : output={accelerated.output}  "
          f"cycles={accelerated.stats.cycles:,}")

    assert accelerated.output == plain.output, "acceleration changed results!"
    speedup = plain.stats.cycles / accelerated.stats.cycles
    dim = accelerated.dim_stats
    print(f"\nspeedup      : {speedup:.2f}x  (same binary, same results)")
    print(f"DIM activity : {dim.translations} translations, "
          f"{dim.array_executions:,} array executions, "
          f"{dim.array_instructions:,} instructions executed on the array")
    print(f"cache        : {accelerated.cache_hits:,} hits / "
          f"{accelerated.cache_lookups:,} lookups")


if __name__ == "__main__":
    main()
