"""Look inside DIM: how a basic block becomes an array configuration.

Reproduces Figure 2's story on real code: translate a small kernel's hot
block and print the resulting line/column allocation, input/output
context and timing — first without, then with speculative merging.

Run:  python examples/inspect_configuration.py
"""

from repro.asm import assemble
from repro.cgra.render import render_configuration
from repro.dim import BimodalPredictor, DimParams, Translator
from repro.sim import Simulator
from repro.system import PAPER_SHAPES

SOURCE = """
    # a small fixed-point dot-product step with a biased loop
    .data
vec:  .word 3, 1, 4, 1, 5, 9, 2, 6
    .text
__start:
    la   $s0, vec
    li   $s1, 0          # index
    li   $s2, 0          # accumulator
loop:
    sll  $t0, $s1, 2
    addu $t1, $s0, $t0
    lw   $t2, 0($t1)
    lw   $t3, 4($t1)
    mult $t2, $t3
    mflo $t4
    addu $s2, $s2, $t4
    addiu $s1, $s1, 1
    slti $at, $s1, 7
    bne  $at, $zero, loop
    move $a0, $s2
    li   $v0, 1
    syscall
    li   $v0, 10
    syscall
"""


def main() -> None:
    program = assemble(SOURCE)
    sim = Simulator(program)
    loop_pc = program.symbols["loop"]
    block = sim.block_at(loop_pc)
    shape = PAPER_SHAPES["C1"]

    print("=" * 72)
    print("without speculation (the branch stays on the processor):")
    print("=" * 72)
    predictor = BimodalPredictor(64)
    translator = Translator(shape, DimParams(speculation=False),
                            predictor, sim.block_at)
    config = translator.translate(block)
    print(render_configuration(config))

    print()
    print("=" * 72)
    print("with speculation (counter saturated: the loop back-edge is "
          "merged):")
    print("=" * 72)
    for _ in range(3):
        predictor.update(block.branch_pc, True)
    translator = Translator(shape, DimParams(speculation=True),
                            predictor, sim.block_at)
    config = translator.translate(block)
    print(render_configuration(config))


if __name__ == "__main__":
    main()
