"""The paper's motivating scenario: one device, many behaviours.

Section 5.1 argues that a multi-functional embedded device running
RawAudio decoding, JPEG encoding/decoding and StringSearch would need
~45 distinct basic blocks mapped to reconfigurable logic to double its
performance — hopeless for kernel-centric approaches, and exactly where
DIM's any-block, run-time translation pays off.

This example reproduces that argument with measurements: first the
Figure 3a-style coverage analysis across the four applications, then the
transparent speedup DIM actually delivers on each.

Run:  python examples/heterogeneous_device.py
"""

from repro.analysis import block_profile, blocks_for_coverage
from repro.system import baseline_metrics, evaluate_trace, paper_system
from repro.workloads import run_workload

DEVICE_APPS = ("rawaudio_d", "jpeg_e", "jpeg_d", "stringsearch")


def main() -> None:
    print("== the kernel-mapping problem "
          "(how many blocks must a static approach implement?) ==\n")
    total_blocks_for_2x = 0
    for name in DEVICE_APPS:
        trace = run_workload(name).trace
        profile = block_profile(trace)
        coverage = blocks_for_coverage(profile, fractions=(0.5, 0.8, 1.0))
        # covering 50% of execution is what a 2x ideal speedup requires
        total_blocks_for_2x += coverage[0.5]
        print(f"{name:14s}: {coverage[0.5]:3d} blocks for 50% of "
              f"execution, {coverage[0.8]:3d} for 80%, "
              f"{coverage[1.0]:3d} total  "
              f"({profile.instructions_per_branch:.1f} instr/branch)")
    print(f"\n-> a static kernel-mapping design would have to implement "
          f"~{total_blocks_for_2x} distinct blocks\n   in hardware just "
          "to halve this device's execution time (the paper estimates "
          "~45).\n")

    print("== what DIM does instead (C#2, 64 slots, speculation) ==\n")
    config = paper_system("C2", slots=64, speculation=True)
    total_base = 0
    total_accel = 0
    for name in DEVICE_APPS:
        trace = run_workload(name).trace
        base = baseline_metrics(trace)
        metrics = evaluate_trace(trace, config)
        total_base += base.cycles
        total_accel += metrics.cycles
        print(f"{name:14s}: {base.cycles:>9,d} -> {metrics.cycles:>9,d} "
              f"cycles  ({base.cycles / metrics.cycles:.2f}x), "
              f"{metrics.dim.translations} translations at run time, "
              "zero toolchain changes")
    print(f"\nwhole device   : {total_base:,} -> {total_accel:,} cycles "
          f"({total_base / total_accel:.2f}x) — transparently.")


if __name__ == "__main__":
    main()
