"""Accelerating compiled code: a mini-C SHA-1 kernel under DIM.

Compiles a C-subset SHA-1 implementation with the bundled mini-C
compiler, then compares the standalone MIPS against three coupled
systems (the paper's C#1..C#3 arrays), reporting speedup, energy and
the DIM engine's own statistics — the paper's Table 2 workflow on a
single workload.

Run:  python examples/accelerated_crypto.py
"""

from repro.sim import run_program
from repro.system import baseline_metrics, evaluate_trace, paper_system
from repro.system.energy import energy_of, energy_ratio
from repro.workloads import load_workload, run_workload


def main() -> None:
    program = load_workload("sha")
    print(f"compiled mini-C SHA-1: {program.num_instructions()} static "
          "instructions")

    plain = run_workload("sha")
    base = baseline_metrics(plain.trace)
    print(f"plain MIPS: {plain.output.strip()!r}, "
          f"{base.cycles:,} cycles, CPI={base.cpi:.2f}\n")

    header = (f"{'system':24s} {'cycles':>10s} {'speedup':>8s} "
              f"{'energy x':>9s} {'hit rate':>9s} {'misspec':>8s}")
    print(header)
    print("-" * len(header))
    for array in ("C1", "C2", "C3"):
        for spec in (False, True):
            config = paper_system(array, slots=64, speculation=spec)
            metrics = evaluate_trace(plain.trace, config)
            hit_rate = metrics.cache_hits / max(1, metrics.cache_lookups)
            print(f"{config.name:24s} {metrics.cycles:>10,d} "
                  f"{base.cycles / metrics.cycles:>7.2f}x "
                  f"{energy_ratio(base, metrics):>8.2f}x "
                  f"{hit_rate:>8.1%} {metrics.dim.misspeculations:>8d}")

    config = paper_system("C3", slots=64, speculation=True)
    metrics = evaluate_trace(plain.trace, config)
    breakdown = energy_of(metrics)
    print("\nenergy breakdown at C3/spec (fraction of total):")
    for component, power in breakdown.component_power().items():
        share = power / breakdown.power_per_cycle
        print(f"  {component:6s} {share:6.1%}  {'#' * int(share * 40)}")


if __name__ == "__main__":
    main()
