"""Memory-hierarchy study (Section 4.3's miss-stall behaviour).

The paper schedules array memory operations assuming cache hits and
stalls the whole array on a miss.  This bench quantifies how real
instruction/data caches change the picture: the coupled system keeps its
advantage because (a) array-covered instructions are never fetched from
instruction memory, and (b) data misses cost both systems the same
penalty.

Cache timing depends on addresses, so this study runs the bit-exact
coupled simulator (the trace evaluator deliberately does not model
caches — see repro.sim.cache).
"""

import pytest

from repro.analysis import format_table
from repro.minic import compile_to_program
from repro.sim import CacheConfig, CacheHierarchy, run_program
from repro.system import paper_system
from repro.system.coupled import run_coupled

#: a streaming kernel whose working set (8 KiB) defeats small caches.
STREAM_SOURCE = """
unsigned data[2048];
int main() {
    int i; int p;
    unsigned acc = 0;
    for (p = 0; p < 3; p++) {
        for (i = 0; i < 2048; i++) {
            acc = acc + (data[i] ^ (acc << 3)) + (acc >> 7);
            data[i] = acc;
        }
    }
    print_int(acc & 0x7fffffff);
    return 0;
}
"""

#: a blocked kernel that reuses a 1 KiB tile heavily.
TILED_SOURCE = """
unsigned tile[256];
int main() {
    int i; int p;
    unsigned acc = 0;
    for (p = 0; p < 24; p++) {
        for (i = 0; i < 256; i++) {
            acc = acc + (tile[i] ^ (acc << 3)) + (acc >> 7);
            tile[i] = acc;
        }
    }
    print_int(acc & 0x7fffffff);
    return 0;
}
"""

DCACHE_SIZES = (512, 2048, 8192, None)  # None = ideal memory


def _hierarchy(size):
    if size is None:
        return None
    return CacheHierarchy.build(
        icache=CacheConfig(size_bytes=2048, line_bytes=16),
        dcache=CacheConfig(size_bytes=size, line_bytes=16))


def test_cache_study(benchmark, capsys):
    config = paper_system("C3", 64, True)
    rows = []
    for label, source in (("streaming", STREAM_SOURCE),
                          ("tiled", TILED_SOURCE)):
        program = compile_to_program(source)
        for size in DCACHE_SIZES:
            plain = run_program(program, caches=_hierarchy(size))
            accel = run_coupled(program, config, caches=_hierarchy(size))
            assert accel.output == plain.output
            name = "ideal" if size is None else f"{size} B"
            rows.append([
                f"{label} / {name}",
                plain.stats.cycles,
                accel.stats.cycles,
                plain.stats.cycles / accel.stats.cycles,
                accel.stats.dcache_misses,
            ])
    table = format_table(
        ["kernel / D-cache", "MIPS cycles", "DIM cycles", "speedup",
         "DIM D$ misses"],
        rows, title="Cache study — C#3 / 64 slots / speculation")
    with capsys.disabled():
        print("\n" + table + "\n")

    by_name = {row[0]: row for row in rows}
    # the tiled kernel fits in 2 KiB: speedup approaches the ideal
    assert abs(by_name["tiled / 2048 B"][3]
               - by_name["tiled / ideal"][3]) < 0.35
    # the streaming kernel misses everywhere: both systems pay, the
    # speedup compresses but survives
    assert by_name["streaming / 512 B"][3] > 1.2
    assert by_name["streaming / 512 B"][3] \
        < by_name["streaming / ideal"][3]

    program = compile_to_program(TILED_SOURCE)
    benchmark.pedantic(
        lambda: run_coupled(program, config, caches=_hierarchy(2048)),
        rounds=1, iterations=1)
