"""Figure 6 — total energy consumption.

Same setting as Figure 5, plus the paper's headline claim: with
configuration #2 and 64 cache slots the coupled system consumes 1.73x
less energy on average than the standalone MIPS.
"""

import pytest

from paper_data import PAPER_ENERGY_RATIO_C2_64
from repro.analysis import format_table
from repro.system import evaluate_trace, paper_system
from repro.system.energy import (
    EnergyParams,
    energy_of,
    energy_ratio,
    iso_performance_energy_ratio,
)
from repro.workloads import workload_names

WORKLOADS = ("rijndael_e", "rawaudio_d", "jpeg_e")


def test_fig6_energy_per_workload(benchmark, traces, baselines, capsys):
    rows = []
    for name in WORKLOADS:
        base_total = energy_of(baselines[name]).total
        row = [name, base_total / 1e6]
        for array in ("C1", "C3"):
            for spec in (False, True):
                config = paper_system(array, 64, spec)
                metrics = evaluate_trace(traces[name], config)
                row.append(energy_of(metrics).total / 1e6)
        rows.append(row)
    table = format_table(
        ["algorithm", "MIPS", "C1 no-spec", "C1 spec", "C3 no-spec",
         "C3 spec"],
        rows,
        title="Figure 6 — total energy (uJ-equivalent, calibrated units)")
    with capsys.disabled():
        print("\n" + table)
        print("(C#3 is 150 always-powered lines in this model: on "
              "control-heavy workloads its\nstatic energy can exceed the "
              "saving — the paper's future-work FU gating fixes\n"
              "exactly this; see bench_future_fu_gating.)\n")

    gated = EnergyParams(fu_gating=True)
    for row in rows:
        # C#1 (the small array) always saves energy outright
        assert row[2] < row[1] and row[3] < row[1]
    for name in WORKLOADS:
        # and with FU gating, even C#3 saves energy on every workload
        config = paper_system("C3", 64, True)
        metrics = evaluate_trace(traces[name], config)
        assert energy_of(metrics, gated).total \
            < energy_of(baselines[name], gated).total

    trace = traces["rijndael_e"]
    config = paper_system("C3", 64, True)
    benchmark.pedantic(
        lambda: energy_of(evaluate_trace(trace, config)).total,
        rounds=3, iterations=1)


def test_fig6_average_ratio_c2_64(benchmark, traces, baselines, capsys):
    """The paper's headline: 1.73x less energy at C#2 / 64 slots."""
    config = paper_system("C2", 64, True)
    benchmark.pedantic(
        lambda: energy_ratio(baselines["crc"],
                             evaluate_trace(traces["crc"], config)),
        rounds=1, iterations=1)
    product = 1.0
    iso_product = 1.0
    rows = []
    for name in workload_names():
        metrics = evaluate_trace(traces[name], config)
        ratio = energy_ratio(baselines[name], metrics)
        iso = iso_performance_energy_ratio(baselines[name], metrics)
        product *= ratio
        iso_product *= iso
        rows.append([name, ratio, iso])
    geomean = product ** (1.0 / len(rows))
    rows.append(["GEOMEAN (ours)", geomean,
                 iso_product ** (1.0 / len(rows))])
    rows.append(["paper", PAPER_ENERGY_RATIO_C2_64, "(not quantified)"])
    table = format_table(
        ["algorithm", "energy ratio", "iso-performance (f/V scaled)"],
        rows,
        title="Figure 6 — energy savings at C#2 / 64 slots, with "
              "speculation")
    with capsys.disabled():
        print("\n" + table + "\n")
    # calibrated to the paper's 1.73x; keep a generous band so the model
    # stays honest rather than curve-fit per workload
    assert 1.4 <= geomean <= 2.1
