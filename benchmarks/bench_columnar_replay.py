"""Columnar replay engine: the PR's headline acceptance bar.

Not a paper experiment — this bench guards the columnar replay engine
(:mod:`repro.system.colreplay`) on the 216-cell matrix (18 workloads x
12 configurations: C1/C2/C3 x {no-spec, spec} x {16, 64} slots):

- every cell must be *bit-identical* across all three replay paths —
  per-cell event-driven :func:`evaluate_trace`, the memoized event
  replay of :func:`replay_workload`, and the vectorised columnar
  engine;
- the columnar engine must be at least 10x faster than per-cell
  event-driven replay (it is also ~5x faster than the memoized event
  path; both comparisons are recorded).

All wall-clocks and speedups are written to ``BENCH_columnar.json``
next to this file, so the trajectory is tracked PR-over-PR in
machine-readable form.  Skipped cleanly when numpy is unavailable (the
columnar engine then never runs in production either).
"""

import dataclasses
import json
import time
from pathlib import Path

import pytest

from repro.system import paper_system
from repro.system.colreplay import (
    columnar_available,
    replay_trace_columnar,
)
from repro.system.sweep import replay_workload
from repro.system.traceeval import evaluate_trace

#: 3 arrays x {no-spec, spec} x {16, 64} slots = 12 configurations.
CONFIGS = [paper_system(array, slots, spec)
           for array in ("C1", "C2", "C3")
           for spec in (False, True)
           for slots in (16, 64)]

#: wall-clocks and speedups recorded below; dumped to BENCH_columnar.json.
RESULTS = {}

needs_numpy = pytest.mark.skipif(not columnar_available(),
                                 reason="columnar engine needs numpy")


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_columnar.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


@needs_numpy
def test_columnar_bit_identical_and_10x(traces, capsys):
    """216 bit-identical cells; columnar >=10x per-cell event replay."""
    # 1. per-cell event-driven replay: one evaluate_trace per cell,
    #    nothing shared between cells (the engine every cell ran on
    #    before the sweep layer existed).
    start = time.perf_counter()
    event_cells = {}
    for name, trace in traces.items():
        for index, config in enumerate(CONFIGS):
            event_cells[(name, index)] = evaluate_trace(trace, config,
                                                        name=name)
    event_seconds = time.perf_counter() - start

    # 2. memoized event replay: all configurations of a workload share
    #    one probe-validated TranslationMemo (the sweep engine's event
    #    path).
    start = time.perf_counter()
    memo_cells = {}
    for name, trace in traces.items():
        for index, metrics in enumerate(
                replay_workload(trace, CONFIGS, name=name,
                                engine="event")):
            memo_cells[(name, index)] = metrics
    event_memo_seconds = time.perf_counter() - start

    # 3. columnar replay: one lowering + one shared ColumnarContext per
    #    workload, vectorised accounting (fresh contexts, so the
    #    measured time includes the lowering passes).
    start = time.perf_counter()
    columnar_cells = {}
    for name, trace in traces.items():
        for index, metrics in enumerate(
                replay_trace_columnar(trace, CONFIGS, name=name)):
            columnar_cells[(name, index)] = metrics
    columnar_seconds = time.perf_counter() - start

    mismatches = []
    for key, event_metrics in event_cells.items():
        reference = dataclasses.asdict(event_metrics)
        if dataclasses.asdict(columnar_cells[key]) != reference:
            mismatches.append(("columnar",) + key)
        if dataclasses.asdict(memo_cells[key]) != reference:
            mismatches.append(("memo",) + key)

    speedup_vs_event = event_seconds / columnar_seconds
    speedup_vs_memo = event_memo_seconds / columnar_seconds
    RESULTS["cells"] = len(event_cells)
    RESULTS["workloads"] = len(traces)
    RESULTS["systems"] = len(CONFIGS)
    RESULTS["event_seconds"] = event_seconds
    RESULTS["event_memo_seconds"] = event_memo_seconds
    RESULTS["columnar_seconds"] = columnar_seconds
    RESULTS["speedup_vs_event"] = speedup_vs_event
    RESULTS["speedup_vs_event_memo"] = speedup_vs_memo
    RESULTS["mismatches"] = len(mismatches)
    with capsys.disabled():
        print(f"\n{len(event_cells)} cells: per-cell event "
              f"{event_seconds:.2f}s, memoized event "
              f"{event_memo_seconds:.2f}s, columnar "
              f"{columnar_seconds:.2f}s -> {speedup_vs_event:.1f}x vs "
              f"event, {speedup_vs_memo:.1f}x vs memoized "
              f"({len(mismatches)} mismatches)")

    assert not mismatches, mismatches[:10]
    assert len(event_cells) == 216
    assert speedup_vs_event >= 10.0
