"""Fleet throughput: a skewed 500-job burst, 1 vs 2 vs 4 worker shards.

Not a paper experiment — this bench guards the acceptance bar of the
distributed evaluation fleet (:mod:`repro.fleet`):

- a 500-job burst, Zipf-skewed over 12 workloads (heavy-hitter
  workloads dominate, as real campaign traffic does), is driven through
  the streaming client three ways: straight into one worker, and
  through a fingerprint-sharding coordinator over 2 and 4 worker
  processes sharing one scoped artifact store;
- every result must be byte-identical to its offline
  :func:`repro.api.evaluate` counterpart, every fingerprint must be
  served by exactly one shard (locality), and nothing may be lost or
  re-dispatched along the way.

The issue's throughput bar — >=2.5x over the single server at 4
workers — is a *parallelism* bar: worker shards are separate processes
whose replays overlap on separate cores.  It is therefore asserted
whenever the host offers >= 4 usable cores.  On smaller hosts the same
measurement runs, but physics caps the achievable ratio (four
CPU-bound processes on one core cannot beat one), so the assertion
degrades to a documented overhead bound: sharding must stay within
40% of single-server throughput even with zero parallelism to exploit.
``BENCH_fleet.json`` records the host parallelism alongside every
wall-clock so the trajectory is comparable across machines.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro import api
from repro.fleet import FleetClient, FleetCoordinator, spawn_fleet
from repro.fleet.coordinator import start_fleet_http
from repro.fleet.local import spawn_worker
from repro.serve import ServeClient

#: moderate-cost workloads (the susan/patricia/rawaudio traces are an
#: order of magnitude heavier and would drown the scheduling signal).
WORKLOADS = ["crc", "sha", "gsm_e", "jpeg_e", "jpeg_d", "rijndael_e",
             "gsm_d", "bitcount", "stringsearch", "dijkstra",
             "rijndael_d", "quicksort"]

JOBS = 500
WINDOW = 32

ARRAYS = ("C1", "C2", "C3")
SLOTS = (16, 32, 64, 128, 256, 512, 1024, 2048)

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_fleet.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


def make_burst(jobs=JOBS):
    """The skewed burst: workload rank r gets ~1/r of the traffic
    (Zipf), each job carrying one config from a rotating grid."""
    weights = [1.0 / rank for rank in range(1, len(WORKLOADS) + 1)]
    scale = jobs / sum(weights)
    counts = [max(1, round(weight * scale)) for weight in weights]
    while sum(counts) > jobs:
        counts[counts.index(max(counts))] -= 1
    while sum(counts) < jobs:
        counts[-1] += 1
    burst = []
    for name, count in zip(WORKLOADS, counts):
        for index in range(count):
            config = {"array": ARRAYS[index % len(ARRAYS)],
                      "slots": SLOTS[index % len(SLOTS)],
                      "speculation": bool(index % 2)}
            burst.append({"kind": "evaluate", "names": [name],
                          "fast": True, "configs": [config]})
    return burst


def _drive(client, burst):
    """Stream the burst; returns (wall_seconds, ordered result payloads)."""
    start = time.perf_counter()
    payloads = client.map(burst, timeout=1200)
    return time.perf_counter() - start, payloads


def _worker_metrics(url):
    client = ServeClient(url, timeout=60.0)
    counters = client.metrics()["counters"]
    return {key: counters.get(key, 0)
            for key in ("serve.batches", "serve.batched_jobs",
                        "serve.jobs_completed")}


def run_single(burst, cache_root):
    worker = spawn_worker("solo", cache_root=str(cache_root),
                          scoped_cache=True)
    try:
        wall, payloads = _drive(FleetClient(worker.url, window=WINDOW,
                                            timeout=1200.0), burst)
        metrics = _worker_metrics(worker.url)
        return wall, payloads, {"workers": 1, "per_worker": [metrics]}
    finally:
        worker.terminate()


def run_fleet(burst, cache_root, shards):
    fleet = FleetCoordinator(max_inflight=4 * WINDOW,
                             heartbeat_interval=0.25)
    workers = spawn_fleet(fleet, shards, cache_root=str(cache_root))
    fleet.start()
    server, thread = start_fleet_http(fleet)
    try:
        url = "http://%s:%s" % server.server_address[:2]
        wall, payloads = _drive(FleetClient(url, window=WINDOW,
                                            timeout=1200.0), burst)
        per_worker = [_worker_metrics(worker.url) for worker in workers]
        # locality: one owner shard per fingerprint, nothing lost
        owners = {}
        for job in fleet.job_listing():
            owners.setdefault(job["fingerprint"], set()).add(job["worker"])
        assert all(len(shard) == 1 for shard in owners.values()), owners
        assert fleet.stats.redispatches == 0
        assert fleet.stats.jobs_completed == len(burst)
        detail = {"workers": shards, "per_worker": per_worker,
                  "fingerprints": len(owners),
                  "jobs_per_shard": sorted(
                      sum(1 for job in fleet.job_listing()
                          if job["worker"] == worker.id)
                      for worker in workers),
                  "forwards": fleet.stats.forwards,
                  "sheds": fleet.stats.jobs_shed}
        return wall, payloads, detail
    finally:
        fleet.stop(drain=False)
        server.shutdown()
        thread.join(5.0)
        for worker in workers:
            worker.terminate()


def test_fleet_throughput_and_byte_identity(tmp_path, capsys):
    burst = make_burst()
    assert len(burst) == JOBS

    # offline ground truth, one evaluation per distinct cell
    offline = {}
    for spec in burst:
        name = spec["names"][0]
        cfg = spec["configs"][0]
        cell = (name, cfg["array"], cfg["slots"], cfg["speculation"])
        if cell not in offline:
            config = api.build_config(cfg["array"], cfg["slots"],
                                      cfg["speculation"])
            offline[cell] = api.evaluate(config, names=[name],
                                         fast=True).to_json()

    runs = {}
    wall, payloads, detail = run_single(burst, tmp_path / "solo")
    runs["single"] = (wall, payloads, detail)
    wall, payloads, detail = run_fleet(burst, tmp_path / "fleet2", 2)
    runs["fleet2"] = (wall, payloads, detail)
    wall, payloads, detail = run_fleet(burst, tmp_path / "fleet4", 4)
    runs["fleet4"] = (wall, payloads, detail)

    # transparency: every topology, every job, byte-identical
    for label, (_, payloads, _) in runs.items():
        assert len(payloads) == JOBS, label
        for spec, payload in zip(burst, payloads):
            cfg = spec["configs"][0]
            cell = (spec["names"][0], cfg["array"], cfg["slots"],
                    cfg["speculation"])
            assert payload["result"]["suite_json"] == offline[cell], \
                (label, cell)

    cores = len(os.sched_getaffinity(0))
    single_wall = runs["single"][0]
    speedup2 = single_wall / runs["fleet2"][0]
    speedup4 = single_wall / runs["fleet4"][0]
    # the issue's bar needs >= 4 cores; below that, assert the
    # overhead bound (see module docstring).
    bar4 = 2.5 if cores >= 4 else (1.3 if cores >= 2 else 0.6)

    RESULTS.update({
        "jobs": JOBS,
        "workloads": WORKLOADS,
        "window": WINDOW,
        "host_cores": cores,
        "issue_bar_applies": cores >= 4,
        "applied_bar_4_workers": bar4,
        "single_seconds": single_wall,
        "fleet2_seconds": runs["fleet2"][0],
        "fleet4_seconds": runs["fleet4"][0],
        "single_jobs_per_second": JOBS / single_wall,
        "fleet2_jobs_per_second": JOBS / runs["fleet2"][0],
        "fleet4_jobs_per_second": JOBS / runs["fleet4"][0],
        "speedup_2_workers": speedup2,
        "speedup_4_workers": speedup4,
        "detail": {label: detail
                   for label, (_, _, detail) in runs.items()},
    })
    with capsys.disabled():
        print(f"\n{JOBS}-job skewed burst on {cores} core(s): "
              f"single {single_wall:.1f}s, "
              f"2 workers {runs['fleet2'][0]:.1f}s ({speedup2:.2f}x), "
              f"4 workers {runs['fleet4'][0]:.1f}s ({speedup4:.2f}x) "
              f"[bar {bar4}x]")
    assert speedup4 >= bar4
