"""Infrastructure throughput: how fast the simulators themselves run.

Not a paper experiment — this is the bench that keeps the reproduction
usable.  It reports instructions/second for the functional core, the
coupled MIPS+DIM system, and events/second for the trace evaluator (the
ratio between the last two is why the Table 2 sweep is tractable).
"""

import pytest

from repro.minic import compile_to_program
from repro.sim import Simulator, run_program
from repro.system import evaluate_trace, paper_system
from repro.system.coupled import CoupledSimulator

KERNEL = """
unsigned a[64];
int main() {
    int i; int p;
    unsigned acc = 1;
    for (p = 0; p < 30; p++) {
        for (i = 0; i < 64; i++) {
            acc = acc * 31 + (a[i] ^ (acc >> 5));
            a[i] = acc;
        }
    }
    print_int(acc & 0xffff);
    return 0;
}
"""


@pytest.fixture(scope="module")
def kernel():
    program = compile_to_program(KERNEL)
    plain = run_program(program, collect_trace=True)
    return program, plain


def test_throughput_functional_core(benchmark, kernel, capsys):
    program, plain = kernel
    result = benchmark.pedantic(
        lambda: Simulator(program).run(), rounds=3, iterations=1)
    assert result.output == plain.output
    rate = plain.stats.instructions / benchmark.stats.stats.mean
    with capsys.disabled():
        print(f"\nfunctional core: {rate / 1e3:.0f}k instructions/s")
    assert rate > 30_000


def test_throughput_coupled_system(benchmark, kernel, capsys):
    program, plain = kernel
    config = paper_system("C3", 64, True)
    result = benchmark.pedantic(
        lambda: CoupledSimulator(program, config).run(),
        rounds=3, iterations=1)
    assert result.output == plain.output
    rate = plain.stats.instructions / benchmark.stats.stats.mean
    with capsys.disabled():
        print(f"\ncoupled MIPS+DIM: {rate / 1e3:.0f}k committed "
              "instructions/s")
    assert rate > 30_000


def test_throughput_trace_evaluator(benchmark, kernel, capsys):
    _, plain = kernel
    config = paper_system("C3", 64, True)
    benchmark.pedantic(lambda: evaluate_trace(plain.trace, config),
                       rounds=5, iterations=1)
    events = len(plain.trace.events)
    rate = events / benchmark.stats.stats.mean
    instr_rate = plain.stats.instructions / benchmark.stats.stats.mean
    with capsys.disabled():
        print(f"\ntrace evaluator: {rate / 1e3:.0f}k events/s "
              f"(~{instr_rate / 1e6:.1f}M instructions/s equivalent)")
    assert rate > 10_000
