"""Infrastructure throughput: how fast the simulators themselves run.

Not a paper experiment — this is the bench that keeps the reproduction
usable.  It reports instructions/second for the functional core (both
the per-instruction interpreter and the block-compiled fast path of
:mod:`repro.sim.fastpath`), the coupled MIPS+DIM system, and
events/second for the trace evaluator (the ratio between the last two is
why the Table 2 sweep is tractable).

Every measured rate is also written to ``BENCH_throughput.json`` next to
this file, so the performance trajectory is tracked PR-over-PR in
machine-readable form.
"""

import json
import time
from pathlib import Path

import pytest

from repro.minic import compile_to_program
from repro.sim import Simulator, run_program
from repro.system import evaluate_trace, paper_system
from repro.system.coupled import CoupledSimulator

KERNEL = """
unsigned a[64];
int main() {
    int i; int p;
    unsigned acc = 1;
    for (p = 0; p < 30; p++) {
        for (i = 0; i < 64; i++) {
            acc = acc * 31 + (a[i] ^ (acc >> 5));
            a[i] = acc;
        }
    }
    print_int(acc & 0xffff);
    return 0;
}
"""

#: rates recorded by the tests below; dumped to BENCH_throughput.json.
RATES = {}


@pytest.fixture(scope="module")
def kernel():
    program = compile_to_program(KERNEL)
    plain = run_program(program, collect_trace=True)
    return program, plain


@pytest.fixture(scope="module", autouse=True)
def _emit_rates_json():
    """Write the machine-readable throughput record after the module."""
    yield
    if RATES:
        path = Path(__file__).with_name("BENCH_throughput.json")
        path.write_text(json.dumps(RATES, indent=2, sort_keys=True) + "\n")


def test_throughput_functional_core(benchmark, kernel, capsys):
    program, plain = kernel
    result = benchmark.pedantic(
        lambda: Simulator(program).run(), rounds=3, iterations=1)
    assert result.output == plain.output
    rate = plain.stats.instructions / benchmark.stats.stats.mean
    RATES["functional_interpreter_instr_per_s"] = rate
    with capsys.disabled():
        print(f"\nfunctional core: {rate / 1e3:.0f}k instructions/s")
    assert rate > 30_000


def test_throughput_fast_functional_core(benchmark, kernel, capsys):
    program, plain = kernel
    # Warm the program-level factory cache so the measurement reflects
    # steady-state block-compiled execution, not first-visit codegen.
    warm = Simulator(program, fast=True).run()
    assert warm.output == plain.output
    assert warm.stats == plain.stats
    result = benchmark.pedantic(
        lambda: Simulator(program, fast=True).run(), rounds=3, iterations=1)
    assert result.output == plain.output
    assert result.stats.cycles == plain.stats.cycles
    rate = plain.stats.instructions / benchmark.stats.stats.mean
    RATES["functional_fastpath_instr_per_s"] = rate
    with capsys.disabled():
        print(f"\nfast path: {rate / 1e3:.0f}k instructions/s")
    # 5x the interpreter's floor: the fast path must clear it comfortably.
    assert rate > 150_000


def test_fastpath_speedup_over_interpreter(kernel, capsys):
    """The tentpole acceptance bar: >=5x functional throughput."""
    program, plain = kernel

    def best_of(factory, rounds=3):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            result = factory().run()
            best = min(best, time.perf_counter() - start)
            assert result.output == plain.output
        return best

    Simulator(program, fast=True).run()  # warm the factory cache
    slow = best_of(lambda: Simulator(program))
    fast = best_of(lambda: Simulator(program, fast=True))
    ratio = slow / fast
    RATES["fastpath_speedup_over_interpreter"] = ratio
    with capsys.disabled():
        print(f"\nfast path speedup: {ratio:.1f}x over the interpreter")
    assert ratio >= 5.0


def test_throughput_coupled_system(benchmark, kernel, capsys):
    program, plain = kernel
    config = paper_system("C3", 64, True)
    result = benchmark.pedantic(
        lambda: CoupledSimulator(program, config).run(),
        rounds=3, iterations=1)
    assert result.output == plain.output
    rate = plain.stats.instructions / benchmark.stats.stats.mean
    RATES["coupled_instr_per_s"] = rate
    with capsys.disabled():
        print(f"\ncoupled MIPS+DIM: {rate / 1e3:.0f}k committed "
              "instructions/s")
    assert rate > 30_000


def test_throughput_trace_evaluator(benchmark, kernel, capsys):
    _, plain = kernel
    config = paper_system("C3", 64, True)
    benchmark.pedantic(lambda: evaluate_trace(plain.trace, config),
                       rounds=5, iterations=1)
    events = len(plain.trace.events)
    rate = events / benchmark.stats.stats.mean
    instr_rate = plain.stats.instructions / benchmark.stats.stats.mean
    RATES["traceeval_events_per_s"] = rate
    RATES["traceeval_equivalent_instr_per_s"] = instr_rate
    with capsys.disabled():
        print(f"\ntrace evaluator: {rate / 1e3:.0f}k events/s "
              f"(~{instr_rate / 1e6:.1f}M instructions/s equivalent)")
    assert rate > 10_000
