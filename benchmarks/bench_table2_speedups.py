"""Table 2 — speedups of the coupled MIPS+array system.

Regenerates the paper's headline table: every workload through array
configurations C#1/C#2/C#3 with and without speculation at 16/64/256
reconfiguration-cache slots, plus the Ideal (infinite resources) pair,
with the paper's published numbers printed alongside.
"""

import pytest

from paper_data import PAPER_TABLE2, PAPER_TABLE2_AVERAGE
from repro.analysis import format_table
from repro.system import PAPER_CACHE_SLOTS, evaluate_trace, paper_system
from repro.workloads import workload_names

from conftest import ARRAYS, speedup_of


def _column_keys():
    for array in ARRAYS:
        for spec in (False, True):
            for slots in PAPER_CACHE_SLOTS:
                yield array, spec, slots


def test_table2_full_sweep(benchmark, traces, baselines, table2_sweep,
                           capsys):
    headers = ["algorithm"]
    for array, spec, slots in _column_keys():
        tag = "S" if spec else "N"
        headers.append(f"{array}/{tag}{slots}")
    headers += ["idl/N", "idl/S"]

    rows = []
    sums = [0.0] * (len(headers) - 1)
    for name in workload_names():
        row = [name]
        values = []
        for array, spec, slots in _column_keys():
            values.append(speedup_of(baselines, table2_sweep,
                                     (name, array, spec, slots)))
        values.append(speedup_of(baselines, table2_sweep,
                                 (name, "ideal", False, 0)))
        values.append(speedup_of(baselines, table2_sweep,
                                 (name, "ideal", True, 0)))
        for i, value in enumerate(values):
            sums[i] += value
        rows.append(row + values)
    count = len(workload_names())
    averages = ["AVERAGE (ours)"] + [s / count for s in sums]
    rows.append(averages)

    paper_row = ["AVERAGE (paper)"]
    for array, spec, slots in _column_keys():
        index = PAPER_CACHE_SLOTS.index(slots)
        paper_row.append(PAPER_TABLE2_AVERAGE[(array, spec)][index])
    paper_row += list(PAPER_TABLE2_AVERAGE["ideal"])
    rows.append(paper_row)

    table = format_table(headers, rows,
                         title="Table 2 — speedups vs standalone MIPS "
                               "(N = no speculation, S = speculation)")
    with capsys.disabled():
        print("\n" + table + "\n")

    # ---- shape assertions (who wins, where the sensitivities are) ----
    def avg(array, spec, slots):
        return sum(speedup_of(baselines, table2_sweep,
                              (n, array, spec, slots))
                   for n in workload_names()) / count

    assert avg("C3", False, 64) > avg("C1", False, 64)   # bigger array wins
    assert avg("C3", True, 64) > avg("C3", False, 64)    # speculation wins
    assert avg("C3", True, 256) >= avg("C3", True, 16)   # more slots help
    # every individual speedup is a real speedup
    for key, metrics in table2_sweep.items():
        assert baselines[key[0]].cycles >= metrics.cycles

    # rijndael is cache-slot sensitive on the big array, like the paper
    rij_16 = speedup_of(baselines, table2_sweep,
                        ("rijndael_e", "C3", False, 16))
    rij_256 = speedup_of(baselines, table2_sweep,
                         ("rijndael_e", "C3", False, 256))
    assert rij_256 > rij_16 * 1.3
    # CRC is completely insensitive to cache size, like the paper
    crc_16 = speedup_of(baselines, table2_sweep, ("crc", "C2", True, 16))
    crc_256 = speedup_of(baselines, table2_sweep, ("crc", "C2", True, 256))
    assert abs(crc_16 - crc_256) / crc_256 < 0.05

    # the timed kernel: one representative evaluation
    trace = traces["quicksort"]
    config = paper_system("C3", 64, True)
    benchmark.pedantic(lambda: evaluate_trace(trace, config),
                       rounds=3, iterations=1)


def test_table2_per_benchmark_vs_paper(benchmark, table2_sweep, baselines,
                                       capsys):
    """Side-by-side with the paper at the C#3 / 64-slot design point."""
    benchmark.pedantic(
        lambda: speedup_of(baselines, table2_sweep,
                           ("sha", "C3", True, 64)),
        rounds=3, iterations=1)
    rows = []
    for name in workload_names():
        ours_n = speedup_of(baselines, table2_sweep,
                            (name, "C3", False, 64))
        ours_s = speedup_of(baselines, table2_sweep,
                            (name, "C3", True, 64))
        paper_n = PAPER_TABLE2[name][("C3", False)][1]
        paper_s = PAPER_TABLE2[name][("C3", True)][1]
        rows.append([name, ours_n, paper_n, ours_s, paper_s])
    table = format_table(
        ["algorithm", "ours N", "paper N", "ours S", "paper S"], rows,
        title="Table 2 at C#3 / 64 slots — ours vs paper")
    with capsys.disabled():
        print("\n" + table + "\n")
