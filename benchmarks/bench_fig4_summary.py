"""Figure 4 — summary of Table 2: average speedup per configuration,
cache size and speculation setting (the paper's bar chart, as a table)."""

import pytest

from paper_data import PAPER_TABLE2_AVERAGE
from repro.analysis import format_table
from repro.system import PAPER_CACHE_SLOTS
from repro.workloads import workload_names

from conftest import ARRAYS, speedup_of


def test_fig4_average_speedups(benchmark, baselines, table2_sweep, capsys):
    names = workload_names()

    def average(array, spec, slots):
        return sum(speedup_of(baselines, table2_sweep,
                              (name, array, spec, slots))
                   for name in names) / len(names)

    rows = []
    for spec in (False, True):
        for slots in PAPER_CACHE_SLOTS:
            row = [f"{'spec' if spec else 'no-spec'} / {slots} slots"]
            for array in ARRAYS:
                row.append(average(array, spec, slots))
            index = PAPER_CACHE_SLOTS.index(slots)
            row.append("  paper: " + " / ".join(
                f"{PAPER_TABLE2_AVERAGE[(array, spec)][index]:.2f}"
                for array in ARRAYS))
            rows.append(row)
    table = format_table(["setting", "C1", "C2", "C3", "(paper C1/C2/C3)"],
                         rows,
                         title="Figure 4 — average speedup by "
                               "configuration")
    with capsys.disabled():
        print("\n" + table + "\n")

    # monotone in array size for every (spec, slots) point
    for spec in (False, True):
        for slots in PAPER_CACHE_SLOTS:
            series = [average(array, spec, slots) for array in ARRAYS]
            assert series == sorted(series)
    # monotone in cache size for every (array, spec) point
    for array in ARRAYS:
        for spec in (False, True):
            series = [average(array, spec, slots)
                      for slots in PAPER_CACHE_SLOTS]
            assert series == sorted(series)
    # the paper's headline: best configuration averages above 2.5x
    assert average("C3", True, 256) > 2.5

    benchmark.pedantic(lambda: average("C3", True, 64), rounds=3,
                       iterations=1)
