"""Dynamic control-flow translation: the PR's acceptance bench.

Not a paper experiment — the paper's translator stops at speculative
basic-block merging.  This bench guards the ``dynflow`` extensions
(:mod:`repro.dim` loop-aware configurations and predicated dual-path
merge, ``DimParams.dynflow_mode``) with three machine-checked claims:

- **Speedup gate** — on a loop-heavy synthetic corpus evaluated at a
  port-constrained embedded design point (single register-file
  read/write port, no reconfiguration overlap), loop-aware
  configurations improve the geomean speedup over plain three-block
  speculation by at least 1.3x at the same cache size.  The honest
  paper-configuration numbers (C1/C2/C3, where the wide-ported register
  file already hides most operand traffic) are recorded alongside, as
  is dual-path merge's actual trade on a divergent corpus: slightly
  more cycles, markedly fewer misspeculations.

- **Frontier dominance** — a DSE frontier explored with the
  ``dynflow_mode`` axis open weakly dominates the frontier of the same
  space without it, and strictly improves somewhere (the ``off`` plane
  *is* the mode-less space, so this is the "new axis only helps"
  guarantee).

- **Engine identity** — every (workload, mode) cell of the bench is
  bit-identical between the event-driven evaluator and the vectorised
  columnar engine.

All numbers are written to ``BENCH_dynflow.json`` next to this file so
the trajectory is tracked PR-over-PR in machine-readable form.
"""

import dataclasses
import json
import math
import time
from pathlib import Path

import pytest

from repro import api
from repro.cgra.shape import ArrayShape
from repro.corpus import CorpusKnobs, generate_corpus, register_corpus
from repro.dim import DimParams
from repro.dse import (
    dominates,
    explore,
    objective_vector,
    resolve_objectives,
)
from repro.dse.space import Axis, ParameterSpace
from repro.system import paper_system
from repro.system.colreplay import (
    ColumnarContext,
    columnar_available,
    evaluate_trace_columnar,
)
from repro.system.traceeval import baseline_metrics, evaluate_trace
from repro.workloads import run_workload

MODES = ("off", "loop", "dual", "both")

#: the port-constrained embedded design point: one register-file read
#: port and one write port make per-entry operand fetch and result
#: drain dominate every array execution, which is exactly the cost an
#: iterating configuration amortises across trips.  No reconfiguration
#: overlap for the same reason.  Cache stays at 16 slots on both arms.
EMBEDDED_SHAPE = ArrayShape(rows=32, alus_per_row=4, mults_per_row=1,
                            ldsts_per_row=2, rf_read_ports=1,
                            rf_write_ports=1)

#: corpus seeds; distinct from the test suite's (13, 14) so bench and
#: test registrations never collide on kernel names.
LOOPY_SEED, DIVERGENT_SEED = 41, 42
CORPUS_KERNELS = 8

#: everything measured below; dumped to BENCH_dynflow.json.
RESULTS = {}

needs_numpy = pytest.mark.skipif(not columnar_available(),
                                 reason="columnar engine needs numpy")


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_dynflow.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


@pytest.fixture(scope="module", autouse=True)
def _clean_registry_afterwards():
    from repro.workloads import unregister_generated

    yield
    unregister_generated()  # keep the registry clean for later modules


@pytest.fixture(scope="module")
def loopy_names():
    return register_corpus(generate_corpus(
        LOOPY_SEED, CORPUS_KERNELS, knobs=CorpusKnobs.loopy()))


@pytest.fixture(scope="module")
def divergent_names():
    return register_corpus(generate_corpus(
        DIVERGENT_SEED, CORPUS_KERNELS, knobs=CorpusKnobs.divergent()))


def _embedded_config(mode: str):
    return api.SystemSpec.of(
        EMBEDDED_SHAPE,
        DimParams(cache_slots=16, speculation=True, reconfig_overlap=0,
                  dynflow_mode=mode)).build()


def _paper_config(array: str, mode: str):
    base = paper_system(array, 64, True)
    return dataclasses.replace(
        base, dim=dataclasses.replace(base.dim, dynflow_mode=mode),
        name=f"{base.name}-{mode}")


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _mode_speedups(names, config_of_mode):
    """{mode: geomean speedup over the MIPS baseline} for ``names``."""
    speedups = {mode: [] for mode in MODES}
    for name in names:
        trace = run_workload(name, fast=True).trace
        base = baseline_metrics(trace).cycles
        for mode in MODES:
            metrics = evaluate_trace(trace, config_of_mode(mode),
                                     name=name)
            speedups[mode].append(base / metrics.cycles)
    return {mode: _geomean(values) for mode, values in speedups.items()}


def test_loop_mode_speedup_gate(loopy_names, divergent_names, capsys):
    """Loop mode >=1.3x over 3-block speculation on the loopy corpus at
    the embedded design point; honest numbers everywhere else."""
    start = time.perf_counter()
    embedded = _mode_speedups(loopy_names, _embedded_config)
    improvement = {mode: embedded[mode] / embedded["off"]
                   for mode in MODES}

    # The honest context: at the paper's wide-ported configurations the
    # register file hides most operand traffic, so loop amortisation
    # buys far less.  Recorded, not gated.
    paper = {}
    for array in ("C1", "C2", "C3"):
        geo = _mode_speedups(
            loopy_names, lambda mode, a=array: _paper_config(a, mode))
        paper[array] = {mode: round(geo[mode] / geo["off"], 4)
                        for mode in MODES}

    # Dual-path merge's actual trade on divergent control flow: fewer
    # misspeculations (the win), bought with predicated dual execution
    # (the cost).  Measured on the divergent corpus at C1/64.
    dual_trade = {"misspeculations": {}, "cycles": {}}
    for mode in ("off", "dual"):
        config = _paper_config("C1", mode)
        missp = cycles = 0
        for name in divergent_names:
            trace = run_workload(name, fast=True).trace
            metrics = evaluate_trace(trace, config, name=name)
            missp += metrics.dim.misspeculations
            cycles += metrics.cycles
        dual_trade["misspeculations"][mode] = missp
        dual_trade["cycles"][mode] = cycles

    RESULTS["speedup_gate"] = {
        "shape": dataclasses.asdict(EMBEDDED_SHAPE),
        "cache_slots": 16,
        "corpus": {"profile": "loopy", "seed": LOOPY_SEED,
                   "kernels": CORPUS_KERNELS},
        "geomean_speedup": {mode: round(value, 4)
                            for mode, value in embedded.items()},
        "improvement_over_off": {mode: round(value, 4)
                                 for mode, value in improvement.items()},
        "paper_config_improvement": paper,
        "dual_trade_divergent_C1": dual_trade,
        "wall_seconds": round(time.perf_counter() - start, 2),
    }
    with capsys.disabled():
        print(f"\n[dynflow] loop improvement over speculation: "
              f"{improvement['loop']:.3f}x (gate >= 1.3x); "
              f"dual misspeculations {dual_trade['misspeculations']}")

    best = max(improvement[mode] for mode in ("loop", "dual", "both"))
    assert best >= 1.3, improvement
    assert improvement["loop"] >= 1.3, improvement
    # dual's win is fewer misspeculations, not cycles — assert the
    # direction so the trade stays honest.
    assert (dual_trade["misspeculations"]["dual"]
            < dual_trade["misspeculations"]["off"]), dual_trade


def _bench_axes():
    """The frontier study's shared geometry axes (4 base points)."""
    return (
        Axis("rows", (16, 32)),
        Axis("alus_per_row", (4,)),
        Axis("mults_per_row", (1,)),
        Axis("ldsts_per_row", (2,)),
        Axis("rf_read_ports", (1,)),
        Axis("rf_write_ports", (1,)),
        Axis("cache_slots", (16, 64)),
        Axis("speculation", (True,)),
        Axis("reconfig_overlap", (0,)),
    )


def test_dynflow_frontier_dominates_modeless_frontier(loopy_names,
                                                      capsys):
    """Opening the dynflow_mode axis never loses frontier points and
    strictly gains somewhere."""
    start = time.perf_counter()
    modeless = ParameterSpace(axes=_bench_axes())
    with_modes = ParameterSpace(axes=_bench_axes()
                                + (Axis("dynflow_mode", MODES),))
    objectives = resolve_objectives(("speedup", "area"))
    off = explore(space=modeless, strategy="grid",
                  workloads=loopy_names, fast=True)
    dyn = explore(space=with_modes, strategy="grid",
                  workloads=loopy_names, fast=True)

    off_vectors = [objective_vector(p, objectives) for p in off.points]
    dyn_vectors = [objective_vector(p, objectives) for p in dyn.points]
    weakly_covered = all(
        any(dominates(q, p, objectives) or q == p for q in dyn_vectors)
        for p in off_vectors)
    strict = sum(
        any(dominates(q, p, objectives) for q in dyn_vectors)
        for p in off_vectors)

    RESULTS["frontier"] = {
        "workloads": list(loopy_names),
        "modeless": {
            "space_size": modeless.size,
            "frontier_points": len(off.points),
            "best_speedup": round(off.best("speedup").geomean_speedup, 4),
        },
        "with_modes": {
            "space_size": with_modes.size,
            "frontier_points": len(dyn.points),
            "best_speedup": round(dyn.best("speedup").geomean_speedup, 4),
            "best_candidate": dyn.best("speedup").candidate.as_dict(),
        },
        "weakly_covered": weakly_covered,
        "strictly_improved_points": strict,
        "wall_seconds": round(time.perf_counter() - start, 2),
    }
    with capsys.disabled():
        print(f"\n[dynflow] frontier best speedup "
              f"{RESULTS['frontier']['modeless']['best_speedup']} -> "
              f"{RESULTS['frontier']['with_modes']['best_speedup']}, "
              f"{strict}/{len(off_vectors)} points strictly improved")

    assert weakly_covered
    assert strict >= 1
    assert (dyn.best("speedup").geomean_speedup
            >= off.best("speedup").geomean_speedup)
    # the winning point actually uses a dynflow mode.
    assert dyn.best("speedup").candidate.get("dynflow_mode") != "off"


@needs_numpy
def test_bench_cells_bit_identical_event_vs_columnar(loopy_names,
                                                     divergent_names):
    """Every bench cell agrees field-for-field across both engines."""
    start = time.perf_counter()
    configs = ([_embedded_config(mode) for mode in MODES]
               + [_paper_config("C1", mode) for mode in MODES])
    mismatches = cells = 0
    for name in loopy_names + divergent_names:
        trace = run_workload(name, fast=True).trace
        context = ColumnarContext(trace, name=name)
        for config in configs:
            event = evaluate_trace(trace, config, name=name)
            columnar = evaluate_trace_columnar(trace, config, name=name,
                                               context=context)
            cells += 1
            if dataclasses.asdict(event) != dataclasses.asdict(columnar):
                mismatches += 1
    RESULTS["engine_identity"] = {
        "cells": cells,
        "mismatches": mismatches,
        "wall_seconds": round(time.perf_counter() - start, 2),
    }
    assert mismatches == 0 and cells == 2 * CORPUS_KERNELS * len(configs)
