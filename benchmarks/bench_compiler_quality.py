"""How compiler quality changes the DIM picture.

Recompiles workloads with the peephole optimiser (store-to-load
forwarding) and re-runs the Table 2 design point.  Measured outcome:
the pass removes a few percent of instructions, and DIM's *relative*
speedup is essentially unchanged — the mechanism is robust to
peephole-level code cleanup.  (The redundancy behind EXPERIMENTS.md's
`-O0` overshoot discussion lives *across* loop iterations — locals
reloaded every trip — and removing it needs real register allocation,
not a peephole; within-window forwarding barely touches it.)  The
combined system (optimised code + DIM) is always the fastest option.
"""

import pytest

from repro.analysis import format_table
from repro.minic import compile_to_program
from repro.sim import run_program
from repro.system import baseline_metrics, evaluate_trace, paper_system
from repro.workloads import get_workload

WORKLOADS = ("crc", "sha", "quicksort", "rawaudio_e", "dijkstra",
             "stringsearch")


def test_compiler_quality_vs_speedup(benchmark, capsys):
    config = paper_system("C3", 64, True)
    rows = []
    ratio_product = 1.0
    for name in WORKLOADS:
        source = get_workload(name).source
        results = {}
        for optimize in (False, True):
            program = compile_to_program(source, optimize=optimize)
            plain = run_program(program, collect_trace=True)
            base = baseline_metrics(plain.trace)
            metrics = evaluate_trace(plain.trace, config)
            results[optimize] = (plain, base, metrics)
        plain_o0, base_o0, accel_o0 = results[False]
        plain_o1, base_o1, accel_o1 = results[True]
        assert plain_o1.output == plain_o0.output
        speedup_o0 = base_o0.cycles / accel_o0.cycles
        speedup_o1 = base_o1.cycles / accel_o1.cycles
        ratio_product *= speedup_o1 / speedup_o0
        rows.append([
            name,
            plain_o0.stats.instructions,
            plain_o1.stats.instructions,
            speedup_o0,
            speedup_o1,
            base_o0.cycles / accel_o1.cycles,  # end-to-end vs -O0 MIPS
        ])
    table = format_table(
        ["workload", "instrs -O0", "instrs opt", "speedup -O0",
         "speedup opt", "combined vs -O0 MIPS"],
        rows,
        title="Compiler quality vs DIM speedup (C#3 / 64 / speculation)")
    with capsys.disabled():
        geo = ratio_product ** (1.0 / len(WORKLOADS))
        print("\n" + table)
        print(f"\nrelative DIM speedup is {geo:.2f}x of its -O0 value "
              "under the peephole pass:\nDIM's advantage is robust to "
              "window-local code cleanup, and optimised code\n+ DIM is "
              "always the fastest configuration (last column).\n")

    for row in rows:
        assert row[2] < row[1]        # optimiser removes instructions
        assert row[5] >= row[4] * 0.99  # combined system never loses
    # robustness: peephole-level cleanup barely moves DIM's relative gain
    geo = ratio_product ** (1.0 / len(WORKLOADS))
    assert 0.9 < geo < 1.1

    source = get_workload("crc").source
    benchmark.pedantic(
        lambda: compile_to_program(source, optimize=True),
        rounds=3, iterations=1)
