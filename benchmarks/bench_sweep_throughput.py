"""Sweep-engine throughput: the matrix path vs the per-config loop.

Not a paper experiment — this bench guards the PR's acceptance bars for
the trace-once / replay-many sweep engine (:mod:`repro.system.sweep`):

- the full 18-workload x 12-configuration matrix must evaluate at least
  3x faster through :func:`evaluate_matrix` than by looping
  :func:`evaluate_suite` over the configurations;
- a warm-disk-cache re-run of the matrix must be at least 10x faster
  than the cold run that populated the cache;
- both comparisons double as transparency checks: every path must
  produce byte-identical JSON.

All measured wall-clocks and cache rates are written to
``BENCH_sweep.json`` next to this file, so the before/after trajectory
is tracked PR-over-PR in machine-readable form.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.system import paper_system
from repro.system.artifacts import ArtifactCache
from repro.system.sweep import evaluate_matrix
from repro.workloads import collect_runs, workload_names
from repro.workloads.suite import evaluate_suite

#: 3 arrays x {no-spec, spec} x {16, 64} slots = 12 configurations.
CONFIGS = [paper_system(array, slots, spec)
           for array in ("C1", "C2", "C3")
           for spec in (False, True)
           for slots in (16, 64)]

#: wall-clocks and rates recorded below; dumped to BENCH_sweep.json.
RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_sweep.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


@pytest.fixture(scope="module")
def warm_runs():
    """Trace all 18 workloads up front so both timed paths replay
    in-memory traces — the comparison isolates the replay machinery."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    return collect_runs(workload_names(), jobs=jobs, fast=True)


def test_matrix_vs_looped_suite(warm_runs, capsys):
    """Acceptance bar #1: the matrix is >=3x the per-config loop.

    Both replay engines are timed: the memoized event path and (when
    numpy is present) the default columnar path; every path's JSON is
    byte-identical.
    """
    from repro.system.colreplay import columnar_available

    start = time.perf_counter()
    looped = [evaluate_suite(config, fast=True) for config in CONFIGS]
    looped_seconds = time.perf_counter() - start

    start = time.perf_counter()
    event_matrix = evaluate_matrix(CONFIGS, fast=True, engine="event")
    event_seconds = time.perf_counter() - start

    start = time.perf_counter()
    matrix = evaluate_matrix(CONFIGS, fast=True)
    matrix_seconds = time.perf_counter() - start

    for config, suite in zip(CONFIGS, looped):
        assert matrix.suite(config.name).to_json() == suite.to_json()
    assert event_matrix.results_json() == matrix.results_json()

    inst = matrix.instrumentation
    engine = "columnar" if columnar_available() else "event"
    speedup = looped_seconds / matrix_seconds
    RESULTS["matrix_workloads"] = inst.workloads
    RESULTS["matrix_systems"] = inst.systems
    RESULTS["matrix_cells"] = inst.cells
    RESULTS["matrix_engine"] = engine
    RESULTS["looped_suite_seconds"] = looped_seconds
    RESULTS["matrix_event_seconds"] = event_seconds
    RESULTS["matrix_seconds"] = matrix_seconds
    RESULTS["matrix_speedup_over_looped_suite"] = speedup
    RESULTS["matrix_event_speedup_over_looped_suite"] = \
        looped_seconds / event_seconds
    RESULTS["matrix_alloc_hit_rate"] = inst.alloc_hit_rate
    with capsys.disabled():
        print(f"\nlooped evaluate_suite: {looped_seconds:.2f}s, "
              f"evaluate_matrix[event]: {event_seconds:.2f}s, "
              f"evaluate_matrix[{engine}]: {matrix_seconds:.2f}s -> "
              f"{speedup:.2f}x (alloc memo {inst.alloc_hit_rate:.1%})")
    assert inst.workloads == 18 and inst.systems >= 12
    assert speedup >= 3.0


def test_warm_disk_cache_vs_cold(warm_runs, tmp_path_factory, capsys):
    """Acceptance bar #2: a warm artifact cache re-run is >=10x cold."""
    root = tmp_path_factory.mktemp("sweep-artifacts")

    start = time.perf_counter()
    cold = evaluate_matrix(CONFIGS, fast=True, cache=ArtifactCache(root))
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    warm = evaluate_matrix(CONFIGS, fast=True, cache=ArtifactCache(root))
    warm_seconds = time.perf_counter() - start

    assert warm.results_json() == cold.results_json()
    inst = warm.instrumentation
    assert inst.cells_replayed == 0 and inst.traces_simulated == 0
    assert inst.artifact_hits > 0

    speedup = cold_seconds / warm_seconds
    RESULTS["cold_cache_seconds"] = cold_seconds
    RESULTS["warm_cache_seconds"] = warm_seconds
    RESULTS["warm_cache_speedup"] = speedup
    RESULTS["warm_artifact_hit_rate"] = inst.artifact_hit_rate
    with capsys.disabled():
        print(f"\ncold matrix: {cold_seconds:.2f}s, warm re-run: "
              f"{warm_seconds:.2f}s -> {speedup:.1f}x "
              f"(artifact hit rate {inst.artifact_hit_rate:.1%})")
    assert speedup >= 10.0
