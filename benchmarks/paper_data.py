"""The paper's published results, transcribed for side-by-side reporting.

Table 2 ("Speedups using the reconfigurable array coupled to the MIPS
processor"): per benchmark, for each array configuration C#1..C#3, the
speedup without and with speculation at 16 / 64 / 256 reconfiguration-
cache slots, plus the "Ideal" (infinite resources) pair.

Note: the paper's own Ideal column for "JPEG E." (2.22 / 2.64) is *lower*
than its C#2/C#3 speculative results (4.37), an inconsistency present in
the original table; we transcribe it verbatim.
"""

#: row name -> {("C1"|"C2"|"C3", spec: bool): (s16, s64, s256),
#:              "ideal": (nospec, spec)}
PAPER_TABLE2 = {
    "rijndael_e": {
        ("C1", False): (1.05, 1.20, 1.21), ("C1", True): (1.05, 1.24, 1.24),
        ("C2", False): (1.05, 1.71, 1.73), ("C2", True): (1.06, 1.55, 1.55),
        ("C3", False): (1.05, 3.46, 3.60), ("C3", True): (1.06, 2.68, 2.68),
        "ideal": (5.10, 8.05),
    },
    "rijndael_d": {
        ("C1", False): (1.07, 1.21, 1.21), ("C1", True): (1.07, 1.25, 1.25),
        ("C2", False): (1.07, 1.63, 1.64), ("C2", True): (1.07, 1.55, 1.55),
        ("C3", False): (1.07, 3.32, 3.33), ("C3", True): (1.07, 2.32, 2.32),
        "ideal": (4.68, 7.42),
    },
    "gsm_e": {
        ("C1", False): (1.63, 1.65, 1.68), ("C1", True): (2.01, 2.05, 2.13),
        ("C2", False): (1.63, 1.65, 1.68), ("C2", True): (2.03, 2.07, 2.17),
        ("C3", False): (1.63, 1.65, 1.69), ("C3", True): (2.03, 2.07, 2.19),
        "ideal": (1.70, 2.19),
    },
    "jpeg_e": {
        ("C1", False): (1.95, 2.04, 2.07), ("C1", True): (1.79, 1.88, 1.89),
        ("C2", False): (2.50, 2.72, 2.77), ("C2", True): (3.55, 4.27, 4.37),
        ("C3", False): (2.50, 2.72, 2.77), ("C3", True): (3.55, 4.27, 4.37),
        "ideal": (2.22, 2.64),
    },
    "sha": {
        ("C1", False): (1.90, 1.90, 1.90), ("C1", True): (3.81, 3.84, 3.84),
        ("C2", False): (1.90, 1.91, 1.91), ("C2", True): (4.80, 4.84, 4.84),
        ("C3", False): (1.90, 1.91, 1.91), ("C3", True): (4.80, 4.84, 4.84),
        "ideal": (1.91, 4.87),
    },
    "susan_s": {
        ("C1", False): (1.49, 1.60, 1.65), ("C1", True): (2.70, 2.99, 3.31),
        ("C2", False): (1.49, 1.61, 1.65), ("C2", True): (2.83, 3.14, 3.52),
        ("C3", False): (1.49, 1.61, 1.65), ("C3", True): (2.83, 3.14, 3.52),
        "ideal": (1.65, 3.52),
    },
    "crc": {
        ("C1", False): (1.53, 1.53, 1.53), ("C1", True): (1.92, 1.92, 1.92),
        ("C2", False): (1.53, 1.53, 1.53), ("C2", True): (1.92, 1.92, 1.92),
        ("C3", False): (1.53, 1.53, 1.53), ("C3", True): (1.92, 1.92, 1.92),
        "ideal": (1.53, 1.92),
    },
    "jpeg_d": {
        ("C1", False): (1.92, 2.03, 2.04), ("C1", True): (1.64, 1.78, 1.78),
        ("C2", False): (2.05, 2.21, 2.22), ("C2", True): (2.02, 2.54, 2.55),
        ("C3", False): (2.05, 2.21, 2.22), ("C3", True): (2.03, 2.62, 2.63),
        "ideal": (2.77, 4.39),
    },
    "patricia": {
        ("C1", False): (1.49, 1.84, 1.93), ("C1", True): (1.58, 2.05, 2.23),
        ("C2", False): (1.49, 1.86, 1.95), ("C2", True): (1.64, 2.17, 2.37),
        ("C3", False): (1.49, 1.86, 1.95), ("C3", True): (1.64, 2.17, 2.37),
        "ideal": (2.19, 3.07),
    },
    "susan_c": {
        ("C1", False): (1.22, 1.49, 1.72), ("C1", True): (1.31, 1.47, 1.91),
        ("C2", False): (1.38, 1.79, 2.17), ("C2", True): (1.56, 1.79, 2.64),
        ("C3", False): (1.38, 1.79, 2.17), ("C3", True): (1.56, 1.79, 2.64),
        "ideal": (2.17, 2.66),
    },
    "susan_e": {
        ("C1", False): (1.23, 1.42, 1.64), ("C1", True): (1.29, 1.48, 1.83),
        ("C2", False): (1.43, 1.70, 2.20), ("C2", True): (1.47, 1.74, 2.43),
        ("C3", False): (1.43, 1.70, 2.20), ("C3", True): (1.53, 1.81, 2.58),
        "ideal": (2.21, 2.60),
    },
    "dijkstra": {
        ("C1", False): (1.59, 1.71, 1.71), ("C1", True): (2.03, 2.21, 2.22),
        ("C2", False): (1.59, 1.72, 1.72), ("C2", True): (2.04, 2.24, 2.24),
        ("C3", False): (1.59, 1.72, 1.72), ("C3", True): (2.04, 2.24, 2.24),
        "ideal": (1.72, 2.25),
    },
    "gsm_d": {
        ("C1", False): (1.28, 1.28, 1.29), ("C1", True): (1.27, 1.28, 1.29),
        ("C2", False): (1.62, 1.62, 1.65), ("C2", True): (1.48, 1.50, 1.52),
        ("C3", False): (2.79, 2.79, 2.93), ("C3", True): (2.37, 2.49, 2.58),
        "ideal": (3.31, 3.68),
    },
    "bitcount": {
        ("C1", False): (1.76, 1.76, 1.76), ("C1", True): (1.83, 1.83, 1.83),
        ("C2", False): (1.76, 1.76, 1.76), ("C2", True): (1.83, 1.83, 1.83),
        ("C3", False): (1.76, 1.76, 1.76), ("C3", True): (1.83, 1.83, 1.83),
        "ideal": (1.76, 1.83),
    },
    "stringsearch": {
        ("C1", False): (1.38, 1.61, 1.86), ("C1", True): (1.56, 2.22, 2.77),
        ("C2", False): (1.38, 1.62, 1.89), ("C2", True): (1.57, 2.30, 2.96),
        ("C3", False): (1.38, 1.62, 1.89), ("C3", True): (1.57, 2.30, 2.96),
        "ideal": (1.89, 2.97),
    },
    "quicksort": {
        ("C1", False): (1.37, 1.74, 1.74), ("C1", True): (1.69, 2.32, 2.33),
        ("C2", False): (1.37, 1.77, 1.77), ("C2", True): (1.80, 2.66, 2.67),
        ("C3", False): (1.37, 1.77, 1.77), ("C3", True): (1.80, 2.66, 2.67),
        "ideal": (1.77, 2.67),
    },
    "rawaudio_e": {
        ("C1", False): (1.60, 1.61, 1.61), ("C1", True): (1.98, 1.99, 2.00),
        ("C2", False): (1.60, 1.61, 1.61), ("C2", True): (1.98, 1.99, 2.00),
        ("C3", False): (1.60, 1.61, 1.61), ("C3", True): (1.98, 1.99, 2.00),
        "ideal": (1.61, 2.00),
    },
    "rawaudio_d": {
        ("C1", False): (1.64, 1.64, 1.64), ("C1", True): (1.79, 1.79, 1.79),
        ("C2", False): (1.64, 1.64, 1.64), ("C2", True): (1.79, 1.79, 1.79),
        ("C3", False): (1.64, 1.64, 1.64), ("C3", True): (1.79, 1.79, 1.79),
        "ideal": (1.64, 1.79),
    },
}

#: the paper's "Average" row of Table 2.
PAPER_TABLE2_AVERAGE = {
    ("C1", False): (1.51, 1.63, 1.68), ("C1", True): (1.80, 1.98, 2.09),
    ("C2", False): (1.58, 1.78, 1.86), ("C2", True): (2.03, 2.33, 2.49),
    ("C3", False): (1.65, 2.04, 2.13), ("C3", True): (2.08, 2.50, 2.67),
    "ideal": (2.32, 3.36),
}

#: Figure 3b prints these instructions-per-branch values; the figure's
#: per-benchmark ordering is not recoverable from the text, so we keep
#: them as the published multiset for distribution-level comparison.
PAPER_FIG3B_VALUES = [7.65, 4.89, 6.25, 16.09, 3.79, 4.04, 15.28, 22.27,
                      25.45, 4.67, 7.20, 6.51, 15.60, 7.63, 11.24, 6.52,
                      6.83, 4.81]

#: Figure 6 headline: C#2 with 64 slots uses 1.73x less energy on average.
PAPER_ENERGY_RATIO_C2_64 = 1.73

#: Table 3a: unit counts and gate totals for configuration #1 + DIM.
PAPER_TABLE3A = {
    "ALU": (192, 300288),
    "LD/ST": (36, 1968),
    "Multiplier": (6, 40134),
    "Input Mux": (408, 261936),
    "Output Mux": (216, 58752),
    "DIM Hardware": (1, 1024),
}
PAPER_TABLE3A_TOTAL = 664102

#: Table 3b: bits per stored configuration (write bitmap is temporary).
PAPER_TABLE3B = {
    "write_bitmap": 256,
    "resource_table": 786,
    "reads_table": 1632,
    "writes_table": 576,
    "context_start": 40,
    "context_current": 40,
    "immediate_table": 128,
}
PAPER_TABLE3B_TOTAL = 3202

#: Table 3c: reconfiguration-cache bytes per slot count.
PAPER_TABLE3C = {2: 833, 4: 1601, 8: 3300, 16: 6404, 32: 13012,
                 64: 25616, 128: 51304, 256: 102464}
