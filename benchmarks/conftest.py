"""Shared fixtures for the benchmark harnesses.

Tracing the 18 workloads is the expensive step (one functional simulation
each); it happens once per session here, through the block-compiled fast
path, and — when ``REPRO_JOBS`` is set above 1 — fanned across a process
pool (traces are deterministic, so the parallel result is identical).
The Table 2 sweep — every workload through every system configuration —
is also computed once and shared by the Table 2 and Figure 4 benches.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.sim.trace import Trace
from repro.system import (
    PAPER_CACHE_SLOTS,
    baseline_metrics,
    evaluate_trace,
    paper_system,
)
from repro.system.traceeval import SystemMetrics
from repro.workloads import collect_runs

ARRAYS = ("C1", "C2", "C3")


@pytest.fixture(scope="session")
def traces() -> Dict[str, Trace]:
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    runs = collect_runs(jobs=jobs, fast=True)
    return {name: run.trace for name, run in runs.items()}


@pytest.fixture(scope="session")
def baselines(traces) -> Dict[str, SystemMetrics]:
    return {name: baseline_metrics(trace)
            for name, trace in traces.items()}


#: (workload, array, spec, slots) -> SystemMetrics; slots=0 means ideal.
SweepKey = Tuple[str, str, bool, int]


@pytest.fixture(scope="session")
def table2_sweep(traces) -> Dict[SweepKey, SystemMetrics]:
    """The full Table 2 sweep: 18 workloads x (3 arrays x 2 x 3 + ideal x 2)."""
    results: Dict[SweepKey, SystemMetrics] = {}
    for name, trace in traces.items():
        for array in ARRAYS:
            for spec in (False, True):
                for slots in PAPER_CACHE_SLOTS:
                    config = paper_system(array, slots, spec)
                    results[(name, array, spec, slots)] = \
                        evaluate_trace(trace, config)
        for spec in (False, True):
            config = paper_system("ideal", speculation=spec)
            results[(name, "ideal", spec, 0)] = evaluate_trace(trace,
                                                               config)
    return results


def speedup_of(baselines, metrics_map, key) -> float:
    name = key[0]
    return baselines[name].cycles / metrics_map[key].cycles
