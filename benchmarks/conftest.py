"""Shared fixtures for the benchmark harnesses.

Tracing the 18 workloads is the expensive cold step (one functional
simulation each); it now happens at most once per machine: traces are
served from the persistent artifact cache of
:mod:`repro.system.artifacts` (location overridable with
``REPRO_CACHE_DIR``) and only simulated on a cold cache — through the
block-compiled fast path, fanned across a process pool when
``REPRO_JOBS`` is set above 1.  The Table 2 sweep — every workload
through every system configuration — runs through the matrix sweep
engine (:mod:`repro.system.sweep`): all configurations of a workload
share one translation memo and per-cell metrics persist as disk
artifacts, so a warm re-run of the bench suite skips both tracing and
replay.  Results are byte-identical to independent ``evaluate_trace``
calls (asserted by the test suite).
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.sim.trace import Trace
from repro.system import (
    PAPER_CACHE_SLOTS,
    baseline_metrics,
    paper_system,
    replay_matrix,
)
from repro.system.artifacts import ArtifactCache
from repro.system.sweep import paper_matrix, trace_artifact_key
from repro.system.traceeval import SystemMetrics
from repro.workloads import collect_runs, workload_names

ARRAYS = ("C1", "C2", "C3")


def artifact_cache() -> ArtifactCache:
    """The benches' shared persistent artifact cache."""
    return ArtifactCache()  # honours REPRO_CACHE_DIR


@pytest.fixture(scope="session")
def traces() -> Dict[str, Trace]:
    cache = artifact_cache()
    loaded: Dict[str, Trace] = {}
    missing = []
    for name in workload_names():
        trace = cache.load_trace(trace_artifact_key(cache, name))
        if trace is None:
            missing.append(name)
        else:
            loaded[name] = trace
    if missing:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
        runs = collect_runs(missing, jobs=jobs, fast=True)
        for name in missing:
            loaded[name] = runs[name].trace
            cache.store_trace(trace_artifact_key(cache, name),
                              runs[name].trace)
    return {name: loaded[name] for name in workload_names()}


@pytest.fixture(scope="session")
def baselines(traces) -> Dict[str, SystemMetrics]:
    return {name: baseline_metrics(trace)
            for name, trace in traces.items()}


#: (workload, array, spec, slots) -> SystemMetrics; slots=0 means ideal.
SweepKey = Tuple[str, str, bool, int]


@pytest.fixture(scope="session")
def table2_sweep(traces) -> Dict[SweepKey, SystemMetrics]:
    """The full Table 2 sweep: 18 workloads x (3 arrays x 2 x 3 + ideal x 2).

    Evaluated through the matrix sweep engine: one shared translation
    memo per workload, per-cell disk artifacts, byte-identical results.
    """
    configs = paper_matrix()
    cells = replay_matrix(traces, configs, cache=artifact_cache())
    results: Dict[SweepKey, SystemMetrics] = {}
    position = 0
    for array in ARRAYS:
        for spec in (False, True):
            for slots in PAPER_CACHE_SLOTS:
                assert configs[position].name == \
                    paper_system(array, slots, spec).name
                for name in traces:
                    results[(name, array, spec, slots)] = \
                        cells[(name, position)]
                position += 1
    for spec in (False, True):
        for name in traces:
            results[(name, "ideal", spec, 0)] = cells[(name, position)]
        position += 1
    return results


def speedup_of(baselines, metrics_map, key) -> float:
    name = key[0]
    return baselines[name].cycles / metrics_map[key].cycles
