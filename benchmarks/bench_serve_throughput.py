"""Evaluation-service throughput: a coalesced burst vs cold calls.

Not a paper experiment — this bench guards the PR's acceptance bar for
the persistent evaluation service (:mod:`repro.serve`):

- a 50-job mixed-configuration burst submitted through the service must
  finish at least 3x faster than 50 sequential *cold*
  :func:`repro.api.evaluate` calls — cold as in fifty separate CLI
  processes, each recompiling and retracing the workload it is about to
  throw away (the in-process caches are cleared between calls to
  emulate that).  The batch coalescer instead serves every
  configuration from one trace and one shared translation memo;
- the comparison doubles as a transparency check: every job's
  ``suite_json`` must be byte-identical to its offline counterpart.

All measured wall-clocks and batching stats are written to
``BENCH_serve.json`` next to this file, so the before/after trajectory
is tracked PR-over-PR in machine-readable form.
"""

import json
import time
from pathlib import Path

import pytest

import repro.workloads as workloads
from repro import api
from repro.serve import EvalService, ServeClient, start_http

#: 50 distinct systems: 3 arrays x {no-spec, spec} x 8 cache sizes,
#: plus the two ideal-array bounds — a deliberately mixed burst, since
#: coalescing must win on fingerprint (workloads), not on equal configs.
CONFIG_SPECS = [(array, slots, spec)
                for array in ("C1", "C2", "C3")
                for spec in (False, True)
                for slots in (16, 32, 64, 128, 256, 512, 1024, 2048)]
CONFIG_SPECS += [("ideal", 64, False), ("ideal", 64, True)]

NAMES = ["crc"]

#: wall-clocks and batching stats; dumped to BENCH_serve.json.
RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_serve.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


def _evict_workload_caches():
    """Emulate a cold process: drop the compiled programs and traces."""
    workloads._PROGRAMS.clear()
    workloads._RUNS.clear()


def test_service_burst_vs_cold_calls(capsys):
    """Acceptance bar: the coalesced 50-job burst is >=3x the loop."""
    assert len(CONFIG_SPECS) == 50

    # -- baseline: 50 sequential cold evaluate calls -------------------
    start = time.perf_counter()
    offline = []
    for array, slots, spec in CONFIG_SPECS:
        _evict_workload_caches()
        offline.append(api.evaluate(api.build_config(array, slots,
                                                     spec),
                                    names=NAMES, fast=True))
    sequential_seconds = time.perf_counter() - start

    # -- the service: one burst over HTTP ------------------------------
    # the service pays for its own single trace too (workers=0 shares
    # this process's caches, which the baseline loop just populated)
    _evict_workload_caches()
    service = EvalService(workers=0, cache_root=None).start()
    server, _thread = start_http(service)
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}", timeout=600.0)
    try:
        client.pause()  # hold the queue so the burst lands together
        start = time.perf_counter()
        jobs = [client.submit("evaluate",
                              configs=[{"array": array, "slots": slots,
                                        "speculation": spec}],
                              names=NAMES, fast=True)
                for array, slots, spec in CONFIG_SPECS]
        client.resume()
        payloads = [client.wait(job["job_id"], timeout=600)
                    for job in jobs]
        service_seconds = time.perf_counter() - start

        # transparency: byte-identical to the offline calls
        for payload, suite in zip(payloads, offline):
            assert payload["result"]["suite_json"] == suite.to_json()

        stats = service.stats
        assert stats.batches == 1  # the whole burst coalesced
        assert stats.max_batch_width == 50
    finally:
        service.stop(drain=False)
        server.shutdown()

    speedup = sequential_seconds / service_seconds
    RESULTS["jobs"] = len(jobs)
    RESULTS["workloads"] = list(NAMES)
    RESULTS["sequential_evaluate_seconds"] = sequential_seconds
    RESULTS["service_burst_seconds"] = service_seconds
    RESULTS["service_speedup_over_sequential"] = speedup
    RESULTS["batches"] = stats.batches
    RESULTS["mean_batch_width"] = stats.mean_batch_width
    RESULTS["queue_seconds"] = stats.queue_seconds
    RESULTS["exec_seconds"] = stats.exec_seconds
    with capsys.disabled():
        print(f"\n50 cold evaluate calls: {sequential_seconds:.2f}s, "
              f"service burst: {service_seconds:.2f}s -> "
              f"{speedup:.2f}x (batch width "
              f"{stats.mean_batch_width:.0f})")
    assert speedup >= 3.0


def test_keepalive_transport_delta(capsys):
    """Connection reuse: N small requests over one pooled keep-alive
    connection vs a fresh TCP connection per request.  Matters for the
    fleet, whose coordinator/client/worker hops are all small requests
    — the polling control plane must not pay a handshake per poll."""
    requests = 400

    def _stub_runner(spec):
        return {"results": {job["id"]: {"stub": True}
                            for job in spec["jobs"]},
                "counters": {}}

    service = EvalService(workers=0, batch_window=0.0,
                          runner=_stub_runner).start()
    server, _thread = start_http(service)
    base_url = "http://%s:%s" % server.server_address[:2]
    try:
        # -- pooled: one persistent connection for all requests --------
        pooled = ServeClient(base_url)
        pooled.healthz()  # open the connection outside the timed loop
        start = time.perf_counter()
        for _ in range(requests):
            pooled.healthz()
        pooled_seconds = time.perf_counter() - start
        assert pooled.transport_stats["connections_opened"] == 1

        # -- cold: a fresh connection per request ----------------------
        cold = ServeClient(base_url)
        start = time.perf_counter()
        for _ in range(requests):
            cold.healthz()
            cold.close()  # drop the pool: next call reconnects
        cold_seconds = time.perf_counter() - start
        assert cold.transport_stats["connections_opened"] == requests
    finally:
        service.stop(drain=False)
        server.shutdown()

    delta = cold_seconds / pooled_seconds
    RESULTS["transport"] = {
        "requests": requests,
        "pooled_seconds": pooled_seconds,
        "per_connection_seconds": cold_seconds,
        "keepalive_speedup": delta,
        "pooled_rps": requests / pooled_seconds,
        "per_connection_rps": requests / cold_seconds,
    }
    with capsys.disabled():
        print(f"\n{requests} requests: pooled {pooled_seconds:.3f}s "
              f"({requests / pooled_seconds:.0f}/s) vs per-connection "
              f"{cold_seconds:.3f}s -> {delta:.2f}x")
    assert delta >= 1.1  # reuse must never be slower
