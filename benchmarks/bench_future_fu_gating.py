"""Future work #2 of the paper: "techniques to switch off functional
units when they are being not used".

With line-level power gating, only the lines a configuration actually
occupies burn interconnect/static energy during execution.  This bench
quantifies the saving per array size: the bigger the array, the larger
the fraction of idle lines, so gating matters most exactly where the
speedup is best (C#3).
"""

import pytest

from repro.analysis import format_table
from repro.system import evaluate_trace, paper_system
from repro.system.energy import EnergyParams, energy_of

WORKLOADS = ("rijndael_e", "sha", "jpeg_e", "quicksort", "rawaudio_d",
             "stringsearch")


def test_fu_gating_saves_array_energy(benchmark, traces, baselines,
                                      capsys):
    plain_params = EnergyParams()
    gated_params = EnergyParams(fu_gating=True)
    rows = []
    savings = {}
    for array in ("C1", "C2", "C3"):
        config = paper_system(array, 64, True)
        total_plain = total_gated = total_base = 0.0
        occupancy_num = occupancy_den = 0
        for name in WORKLOADS:
            metrics = evaluate_trace(traces[name], config)
            total_plain += energy_of(metrics, plain_params).total
            total_gated += energy_of(metrics, gated_params).total
            total_base += energy_of(baselines[name], plain_params).total
            occupancy_num += metrics.dim.array_line_cycles
            occupancy_den += metrics.dim.array_potential_line_cycles
        saving = 1.0 - total_gated / total_plain
        savings[array] = saving
        rows.append([
            array,
            occupancy_num / occupancy_den,
            total_base / total_plain,
            total_base / total_gated,
            saving,
        ])
    table = format_table(
        ["array", "line occupancy", "energy ratio (no gating)",
         "energy ratio (gated)", "total energy saved"],
        rows, title="Future work — switching off unused lines "
                    "(64 slots, speculation)")
    with capsys.disabled():
        print("\n" + table + "\n")

    # gating always helps, and helps most on the biggest array
    assert all(s > 0 for s in savings.values())
    assert savings["C3"] > savings["C1"]
    # occupancy is far below 1 on C3 — the paper's motivation
    assert rows[2][1] < 0.6

    config = paper_system("C3", 64, True)
    trace = traces["quicksort"]
    benchmark.pedantic(
        lambda: energy_of(evaluate_trace(trace, config), gated_params),
        rounds=1, iterations=1)
