"""Ablation studies on DIM design choices the paper fixes implicitly.

- speculation depth (the paper picks "up to three basic blocks");
- ALU chaining per cycle (the paper says "more than one" simple op per
  processor cycle; we sweep 1..4 — 1 reproduces the paper's averages);
- reconfiguration-cache replacement (the paper uses FIFO; LRU is the
  obvious alternative);
- minimum cached block length (the paper caches only >3 instructions).
"""

from dataclasses import replace

import pytest

from repro.analysis import format_table
from repro.system import evaluate_trace, paper_system, replay_matrix

from conftest import artifact_cache

#: a balanced subset: 2 dataflow, 2 mid, 2 control, 2 cache-sensitive.
SUBSET = ("rijndael_e", "sha", "jpeg_e", "susan_c", "quicksort",
          "rawaudio_d", "patricia", "stringsearch")


def geomean_speedups(traces, baselines, configs, names=SUBSET):
    """Geomean speedup per configuration, via the matrix sweep engine.

    One call evaluates a whole ablation series: configurations share
    per-workload translation memos and per-cell disk artifacts, and the
    metrics are identical to independent ``evaluate_trace`` calls.
    """
    subset = {name: traces[name] for name in names}
    cells = replay_matrix(subset, configs, cache=artifact_cache())
    values = []
    for index in range(len(configs)):
        product = 1.0
        for name in names:
            product *= baselines[name].cycles / cells[(name, index)].cycles
        values.append(product ** (1.0 / len(names)))
    return values


def test_ablation_speculation_depth(benchmark, traces, baselines, capsys):
    depths = (0, 1, 2, 3, 4)
    configs = [paper_system("C3", 64, speculation=depth > 0)
               .with_dim(max_spec_depth=depth) for depth in depths]
    values = dict(zip(depths,
                      geomean_speedups(traces, baselines, configs)))
    rows = [[depth, values[depth]] for depth in depths]
    table = format_table(["spec depth (blocks)", "geomean speedup"], rows,
                         title="Ablation — speculation depth at C#3 / 64")
    with capsys.disabled():
        print("\n" + table + "\n")
    assert values[1] > values[0]          # first level pays the most
    assert values[3] >= values[1]         # deeper never hurts on average
    gain_1 = values[1] - values[0]
    gain_4 = values[4] - values[3]
    assert gain_1 > gain_4                # diminishing returns
    config = paper_system("C3", 64, True)
    benchmark.pedantic(
        lambda: evaluate_trace(traces["quicksort"], config),
        rounds=1, iterations=1)


def test_ablation_alu_chain(benchmark, traces, baselines, capsys):
    chains = (1, 2, 3, 4)
    base = paper_system("C3", 64, True)
    configs = [replace(base, shape=replace(base.shape, alu_chain=chain))
               for chain in chains]
    values = dict(zip(chains,
                      geomean_speedups(traces, baselines, configs)))
    rows = [[chain, values[chain]] for chain in chains]
    table = format_table(["ALU lines per cycle", "geomean speedup"], rows,
                         title="Ablation — ALU chaining (default: 2)")
    with capsys.disabled():
        print("\n" + table + "\n")
    assert values[1] < values[2] < values[3] <= values[4] * 1.001
    config = paper_system("C1", 64, True)
    benchmark.pedantic(
        lambda: evaluate_trace(traces["sha"], config),
        rounds=1, iterations=1)


def test_ablation_cache_policy(benchmark, traces, baselines, capsys):
    sensitive = ("rijndael_e", "patricia", "stringsearch", "jpeg_e")
    points = [(slots, policy) for slots in (8, 16, 32)
              for policy in ("fifo", "lru")]
    configs = [paper_system("C3", slots, True)
               .with_dim(cache_policy=policy) for slots, policy in points]
    values = dict(zip(points, geomean_speedups(traces, baselines, configs,
                                               names=sensitive)))
    rows = [[slots, values[(slots, "fifo")], values[(slots, "lru")]]
            for slots in (8, 16, 32)]
    table = format_table(["#slots", "FIFO (paper)", "LRU"], rows,
                         title="Ablation — reconfiguration-cache "
                               "replacement (cache-sensitive workloads)")
    with capsys.disabled():
        print("\n" + table + "\n")
    # both policies converge once the working set fits
    assert abs(values[(32, "fifo")] - values[(32, "lru")]) \
        / values[(32, "lru")] < 0.25
    config = paper_system("C3", 8, True).with_dim(cache_policy="lru")
    benchmark.pedantic(
        lambda: evaluate_trace(traces["patricia"], config),
        rounds=1, iterations=1)


def test_ablation_min_block_length(benchmark, traces, baselines, capsys):
    lengths = (2, 4, 6, 8, 12)
    configs = [paper_system("C3", 64, True)
               .with_dim(min_block_instructions=min_len)
               for min_len in lengths]
    values = dict(zip(lengths,
                      geomean_speedups(traces, baselines, configs)))
    rows = [[min_len, values[min_len]] for min_len in lengths]
    table = format_table(["min instructions", "geomean speedup"], rows,
                         title="Ablation — minimum cached block length "
                               "(paper: >3)")
    with capsys.disabled():
        print("\n" + table + "\n")
    # tiny blocks are still worth caching relative to not caching them:
    # raising the threshold should never help much
    assert values[2] >= values[12] * 0.98
    config = paper_system("C3", 64, True).with_dim(
        min_block_instructions=12)
    benchmark.pedantic(
        lambda: evaluate_trace(traces["rawaudio_d"], config),
        rounds=1, iterations=1)
