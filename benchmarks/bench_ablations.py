"""Ablation studies on DIM design choices the paper fixes implicitly.

- speculation depth (the paper picks "up to three basic blocks");
- ALU chaining per cycle (the paper says "more than one" simple op per
  processor cycle; we sweep 1..4 — 1 reproduces the paper's averages);
- reconfiguration-cache replacement (the paper uses FIFO; LRU is the
  obvious alternative);
- minimum cached block length (the paper caches only >3 instructions).
"""

from dataclasses import replace

import pytest

from repro.analysis import format_table
from repro.system import evaluate_trace, paper_system

#: a balanced subset: 2 dataflow, 2 mid, 2 control, 2 cache-sensitive.
SUBSET = ("rijndael_e", "sha", "jpeg_e", "susan_c", "quicksort",
          "rawaudio_d", "patricia", "stringsearch")


def geomean_speedup(traces, baselines, config, names=SUBSET):
    product = 1.0
    for name in names:
        metrics = evaluate_trace(traces[name], config)
        product *= baselines[name].cycles / metrics.cycles
    return product ** (1.0 / len(names))


def test_ablation_speculation_depth(benchmark, traces, baselines, capsys):
    rows = []
    values = {}
    for depth in (0, 1, 2, 3, 4):
        config = paper_system("C3", 64, speculation=depth > 0)
        config = config.with_dim(max_spec_depth=depth)
        value = geomean_speedup(traces, baselines, config)
        values[depth] = value
        rows.append([depth, value])
    table = format_table(["spec depth (blocks)", "geomean speedup"], rows,
                         title="Ablation — speculation depth at C#3 / 64")
    with capsys.disabled():
        print("\n" + table + "\n")
    assert values[1] > values[0]          # first level pays the most
    assert values[3] >= values[1]         # deeper never hurts on average
    gain_1 = values[1] - values[0]
    gain_4 = values[4] - values[3]
    assert gain_1 > gain_4                # diminishing returns
    config = paper_system("C3", 64, True)
    benchmark.pedantic(
        lambda: evaluate_trace(traces["quicksort"], config),
        rounds=1, iterations=1)


def test_ablation_alu_chain(benchmark, traces, baselines, capsys):
    rows = []
    values = {}
    for chain in (1, 2, 3, 4):
        config = paper_system("C3", 64, True)
        config = replace(config, shape=replace(config.shape,
                                               alu_chain=chain))
        value = geomean_speedup(traces, baselines, config)
        values[chain] = value
        rows.append([chain, value])
    table = format_table(["ALU lines per cycle", "geomean speedup"], rows,
                         title="Ablation — ALU chaining (default: 2)")
    with capsys.disabled():
        print("\n" + table + "\n")
    assert values[1] < values[2] < values[3] <= values[4] * 1.001
    config = paper_system("C1", 64, True)
    benchmark.pedantic(
        lambda: evaluate_trace(traces["sha"], config),
        rounds=1, iterations=1)


def test_ablation_cache_policy(benchmark, traces, baselines, capsys):
    sensitive = ("rijndael_e", "patricia", "stringsearch", "jpeg_e")
    rows = []
    values = {}
    for slots in (8, 16, 32):
        row = [slots]
        for policy in ("fifo", "lru"):
            config = paper_system("C3", slots, True)
            config = config.with_dim(cache_policy=policy)
            value = geomean_speedup(traces, baselines, config,
                                    names=sensitive)
            values[(slots, policy)] = value
            row.append(value)
        rows.append(row)
    table = format_table(["#slots", "FIFO (paper)", "LRU"], rows,
                         title="Ablation — reconfiguration-cache "
                               "replacement (cache-sensitive workloads)")
    with capsys.disabled():
        print("\n" + table + "\n")
    # both policies converge once the working set fits
    assert abs(values[(32, "fifo")] - values[(32, "lru")]) \
        / values[(32, "lru")] < 0.25
    config = paper_system("C3", 8, True).with_dim(cache_policy="lru")
    benchmark.pedantic(
        lambda: evaluate_trace(traces["patricia"], config),
        rounds=1, iterations=1)


def test_ablation_min_block_length(benchmark, traces, baselines, capsys):
    rows = []
    values = {}
    for min_len in (2, 4, 6, 8, 12):
        config = paper_system("C3", 64, True)
        config = config.with_dim(min_block_instructions=min_len)
        value = geomean_speedup(traces, baselines, config)
        values[min_len] = value
        rows.append([min_len, value])
    table = format_table(["min instructions", "geomean speedup"], rows,
                         title="Ablation — minimum cached block length "
                               "(paper: >3)")
    with capsys.disabled():
        print("\n" + table + "\n")
    # tiny blocks are still worth caching relative to not caching them:
    # raising the threshold should never help much
    assert values[2] >= values[12] * 0.98
    config = paper_system("C3", 64, True).with_dim(
        min_block_instructions=12)
    benchmark.pedantic(
        lambda: evaluate_trace(traces["rawaudio_d"], config),
        rounds=1, iterations=1)
