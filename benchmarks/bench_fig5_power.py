"""Figure 5 — average power per cycle, broken down by component.

The paper plots Rijndael E. (most dataflow), RawAudio D. (most control)
and JPEG E. (mid-range) on configurations C#1 and C#3 with 64 cache
slots, with and without speculation, against the standalone MIPS.
"""

import pytest

from repro.analysis import format_table
from repro.system import evaluate_trace, paper_system
from repro.system.energy import energy_of

WORKLOADS = ("rijndael_e", "rawaudio_d", "jpeg_e")
COMPONENTS = ("core", "imem", "dmem", "array", "bt")


def test_fig5_power_breakdown(benchmark, traces, baselines, capsys):
    rows = []
    for name in WORKLOADS:
        base_energy = energy_of(baselines[name])
        power = base_energy.component_power()
        rows.append([f"{name} / MIPS"]
                    + [power[c] for c in COMPONENTS]
                    + [base_energy.power_per_cycle])
        for array in ("C1", "C3"):
            for spec in (False, True):
                config = paper_system(array, 64, spec)
                metrics = evaluate_trace(traces[name], config)
                breakdown = energy_of(metrics)
                power = breakdown.component_power()
                tag = "spec" if spec else "no-spec"
                rows.append([f"{name} / {array} {tag}"]
                            + [power[c] for c in COMPONENTS]
                            + [breakdown.power_per_cycle])
    table = format_table(["system"] + list(COMPONENTS) + ["total"], rows,
                         title="Figure 5 — average power per cycle "
                               "(pJ/cycle, calibrated units)")
    with capsys.disabled():
        print("\n" + table + "\n")

    by_name = {row[0]: row[1:] for row in rows}
    for name in WORKLOADS:
        mips = by_name[f"{name} / MIPS"]
        accel = by_name[f"{name} / C3 spec"]
        imem_index = COMPONENTS.index("imem")
        array_index = COMPONENTS.index("array")
        # the paper's mechanism: I-memory power falls (no fetches for
        # translated code), array+cache power appears
        assert accel[imem_index] < mips[imem_index]
        assert accel[array_index] > 0
        assert mips[array_index] == 0

    config = paper_system("C3", 64, True)
    trace = traces["jpeg_e"]
    benchmark.pedantic(
        lambda: energy_of(evaluate_trace(trace, config)),
        rounds=3, iterations=1)
