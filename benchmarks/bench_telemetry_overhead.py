"""Telemetry overhead: the disabled path must cost (almost) nothing.

Not a paper experiment — this bench guards the ``repro.obs`` design
contract: components that were handed no telemetry run the *unchanged*
pre-instrumentation code on their hot paths.  The two hot sites
(reconfiguration-cache lookup, predictor update — one or more calls per
executed block, millions per workload) shadow an instrumented bound
method onto the instance *only* when a live sink is attached; cold
sites guard with one attribute check per translation-rate event.

Two enforcement layers:

- **Structural** — a component built without telemetry must dispatch
  the plain class methods (no per-instance wrappers in ``vars()``).
- **Measured** — an interleaved min-of-k A/B of full trace replays:
  the production disabled path versus a "bare" variant whose hot
  methods are verbatim pre-instrumentation copies kept in this file.
  The ratio must stay under 1.02 (the <2 % acceptance bar).  If
  someone later instruments the hot path unconditionally, the class
  body diverges from the bare copies here and the ratio blows the bar.

The enabled-path cost is also measured and recorded (events collected,
bounded log) but only loosely bounded — enabling telemetry is allowed
to cost real time; disabling it is not.

All numbers land in ``BENCH_telemetry.json`` next to this file.
"""

import json
import time
from pathlib import Path

import pytest

from repro.dim.predictor import BimodalPredictor
from repro.dim.rcache import ReconfigurationCache
from repro.obs import Telemetry
from repro.sim.cpu import run_program
from repro.system import paper_system
from repro.system.traceeval import evaluate_trace
from repro.workloads import load_workload

CONFIG = paper_system("C2", 64, True)
WORKLOAD = "crc"
ROUNDS = 5
OVERHEAD_BAR = 1.02

RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_telemetry.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


@pytest.fixture(scope="module")
def trace():
    return run_program(load_workload(WORKLOAD), collect_trace=True,
                       fast=True).trace


# ----------------------------------------------------------------------
# Verbatim pre-instrumentation hot-method bodies (the "bare" A side).
# ----------------------------------------------------------------------
def _bare_lookup(self, pc):
    self.lookups += 1
    config = self._entries.get(pc)
    if config is not None:
        self.hits += 1
        config.hits += 1
        if self.policy == "lru":
            self._entries.move_to_end(pc)
    return config


def _bare_update(self, pc, taken):
    index = self._index(pc)
    counter = self._counters.get(index, self._initial)
    self.updates += 1
    if (counter >= self.WEAK_TAKEN) == taken:
        self.hits += 1
    if taken:
        counter = min(self.STRONG_TAKEN, counter + 1)
    else:
        counter = max(self.STRONG_NOT_TAKEN, counter - 1)
    self._counters[index] = counter


def _replay_seconds(trace, telemetry=None):
    start = time.perf_counter()
    evaluate_trace(trace, CONFIG, telemetry=telemetry)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Structural: no wrappers unless a sink is attached.
# ----------------------------------------------------------------------
def test_disabled_components_dispatch_plain_class_methods():
    cache = ReconfigurationCache(64)
    predictor = BimodalPredictor(512)
    assert "lookup" not in vars(cache)
    assert "update" not in vars(predictor)
    assert type(cache).lookup is ReconfigurationCache.lookup
    assert cache.lookup.__func__ is ReconfigurationCache.lookup
    assert predictor.update.__func__ is BimodalPredictor.update
    # ... and wrappers appear exactly when a sink is attached
    live = ReconfigurationCache(64, telemetry=Telemetry())
    assert vars(live)["lookup"].__func__ \
        is ReconfigurationCache._traced_lookup


# ----------------------------------------------------------------------
# Measured: disabled replay vs bare replay, interleaved min-of-k.
# ----------------------------------------------------------------------
def test_null_telemetry_overhead_under_two_percent(trace, monkeypatch,
                                                   capsys):
    _replay_seconds(trace)  # warm allocators and code caches once
    null_seconds, bare_seconds = [], []
    for _ in range(ROUNDS):
        null_seconds.append(_replay_seconds(trace))
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(ReconfigurationCache, "lookup", _bare_lookup)
            patch.setattr(BimodalPredictor, "update", _bare_update)
            bare_seconds.append(_replay_seconds(trace))
    best_null, best_bare = min(null_seconds), min(bare_seconds)
    ratio = best_null / best_bare
    RESULTS["workload"] = WORKLOAD
    RESULTS["system"] = CONFIG.name
    RESULTS["rounds"] = ROUNDS
    RESULTS["bare_replay_seconds"] = best_bare
    RESULTS["null_replay_seconds"] = best_null
    RESULTS["null_overhead_ratio"] = ratio
    with capsys.disabled():
        print(f"\nbare replay: {best_bare * 1e3:.1f}ms, disabled "
              f"telemetry: {best_null * 1e3:.1f}ms -> {ratio:.4f}x "
              f"(bar {OVERHEAD_BAR}x)")
    assert ratio <= OVERHEAD_BAR


def test_enabled_telemetry_cost_recorded(trace, capsys):
    """The live-sink cost is reported (and loosely sanity-bounded)."""
    bare = min(_replay_seconds(trace) for _ in range(3))
    counting = min(_replay_seconds(trace, Telemetry(max_events=None))
                   for _ in range(3))
    streaming = min(_replay_seconds(trace, Telemetry())
                    for _ in range(3))
    RESULTS["enabled_counting_seconds"] = counting
    RESULTS["enabled_streaming_seconds"] = streaming
    RESULTS["enabled_counting_ratio"] = counting / bare
    RESULTS["enabled_streaming_ratio"] = streaming / bare
    with capsys.disabled():
        print(f"\nenabled sink: counting {counting / bare:.2f}x, "
              f"event stream {streaming / bare:.2f}x over disabled")
    # an attached sink may cost real time, but not pathological time
    assert streaming / bare < 25.0
