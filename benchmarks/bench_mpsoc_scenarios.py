"""MPSoC allocation search quality: shalving vs the exhaustive grid.

Guards this PR's acceptance bar for :mod:`repro.mpsoc`: on a Sys-L
scenario with six candidate core counts and two array slots over the
C1/C2/C3 catalog (54 feasible allocations), budget-bounded successive
halving must find a mix within 5% of the exhaustive grid's frontier
hypervolume while spending at most 30% of its allocation evaluations.

The objectives are the tentpole's mix-level pair — throughput speedup
(max) and energy ratio (min) — composed per allocation from the shared
catalog x workloads affinity matrix, so both searches score identical
dispatch arithmetic and the bench measures search quality, not
simulation noise.  Hypervolumes are compared under one shared
reference corner (the componentwise worst of both frontiers), the
comparable-figure convention of
:func:`repro.dse.frontier.hypervolume`.

Evaluation accounting, deterministic by construction: the exhaustive
grid scores all 54 feasible allocations; successive halving with
budget 15 (seed 1) screens a seeded 12-allocation rung on the cheap
workload subset and promotes the top 3 to the full mix — 15
allocation evaluations, 27.8% of exhaustive.  Everything is seeded
float arithmetic over deterministic traces, so the figures are exact
and reproducible; they are written to ``BENCH_mpsoc.json`` next to
this file so the trajectory is tracked PR-over-PR.
"""

import json
import time
from pathlib import Path

import pytest

from repro.dse import hypervolume, resolve_objectives
from repro.dse.frontier import objective_vector
from repro.mpsoc import allocation_space, explore_mix, mpsoc_spec

from conftest import artifact_cache

MIX = "crc:2,sha:1,dijkstra:1,quicksort:1"
CORE_COUNTS = (1, 2, 3, 4, 6, 8)
OBJECTIVES = ("speedup", "energy")
BUDGET = 15
SEED = 1

#: search outcomes recorded below; dumped to BENCH_mpsoc.json.
RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_mpsoc.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


def test_shalving_vs_exhaustive_allocation_search(capsys):
    spec = mpsoc_spec(preset="sys-l", mix=MIX,
                      core_counts=CORE_COUNTS, max_arrays=2)
    cache = artifact_cache()
    objectives = resolve_objectives(OBJECTIVES)

    def vectors(frontier):
        return [objective_vector(point, objectives)
                for point in frontier.points]

    start = time.perf_counter()
    exhaustive = explore_mix(spec, strategy="grid",
                             objectives=OBJECTIVES, fast=True,
                             cache=cache)
    grid_seconds = time.perf_counter() - start
    grid_evals = exhaustive.stats.evaluations
    feasible = len(allocation_space(spec).candidates())
    assert grid_evals == feasible

    start = time.perf_counter()
    halved = explore_mix(spec, strategy="shalving",
                         objectives=OBJECTIVES, budget=BUDGET,
                         seed=SEED, fast=True, cache=cache)
    sh_seconds = time.perf_counter() - start
    sh_evals = halved.stats.evaluations

    # one shared reference corner makes the two figures comparable
    grid_vecs = vectors(exhaustive.frontier)
    sh_vecs = vectors(halved.frontier)
    reference = [
        (max if obj.sense == "min" else min)(
            vec[d] for vec in grid_vecs + sh_vecs)
        for d, obj in enumerate(objectives)]
    grid_hv = hypervolume(grid_vecs, objectives, reference=reference)
    sh_hv = hypervolume(sh_vecs, objectives, reference=reference)

    grid_best = exhaustive.frontier.best("speedup").geomean_speedup
    sh_best = halved.frontier.best("speedup").geomean_speedup
    quality = sh_hv / grid_hv if grid_hv else 1.0
    eval_ratio = sh_evals / grid_evals
    RESULTS["feasible_allocations"] = feasible
    RESULTS["grid_evaluations"] = grid_evals
    RESULTS["grid_seconds"] = grid_seconds
    RESULTS["grid_hypervolume"] = grid_hv
    RESULTS["grid_frontier_points"] = len(grid_vecs)
    RESULTS["grid_best_speedup"] = grid_best
    RESULTS["shalving_budget"] = BUDGET
    RESULTS["shalving_seed"] = SEED
    RESULTS["shalving_evaluations"] = sh_evals
    RESULTS["shalving_seconds"] = sh_seconds
    RESULTS["shalving_hypervolume"] = sh_hv
    RESULTS["shalving_frontier_points"] = len(sh_vecs)
    RESULTS["shalving_best_speedup"] = sh_best
    RESULTS["shalving_quality"] = quality
    RESULTS["shalving_eval_ratio"] = eval_ratio
    with capsys.disabled():
        print(f"\nexhaustive grid: {len(grid_vecs)}-point frontier, "
              f"hypervolume {grid_hv:.4g}, best {grid_best:.2f}x over "
              f"{grid_evals} allocations ({grid_seconds:.2f}s); "
              f"shalving (budget {BUDGET}, seed {SEED}): hypervolume "
              f"{sh_hv:.4g}, best {sh_best:.2f}x over {sh_evals} "
              f"allocations ({sh_seconds:.2f}s) -> {quality:.1%} of "
              f"the hypervolume at {eval_ratio:.1%} of the "
              f"evaluations")

    # acceptance bar: within 5% of the exhaustive frontier's
    # hypervolume...
    assert quality >= 0.95
    # ...and of its best mix speedup...
    assert sh_best >= 0.95 * grid_best
    # ...using at most 30% of its allocation evaluations.
    assert eval_ratio <= 0.30
