"""Figure 3 — workload characterisation.

(a) how many basic blocks cover 20..100% of execution time;
(b) average instructions per branch (dynamic basic-block size).
"""

import statistics

import pytest

from paper_data import PAPER_FIG3B_VALUES
from repro.analysis import (
    block_profile,
    blocks_for_coverage,
    format_table,
    instructions_per_branch,
)
from repro.workloads import workload_names

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig3a_blocks_for_coverage(benchmark, traces, capsys):
    rows = []
    for name in workload_names():
        coverage = blocks_for_coverage(traces[name], FRACTIONS)
        rows.append([name] + [coverage[f] for f in FRACTIONS])
    table = format_table(
        ["algorithm"] + [f"{int(f * 100)}%" for f in FRACTIONS], rows,
        title="Figure 3a — #basic blocks needed to cover X% of execution")
    with capsys.disabled():
        print("\n" + table + "\n")

    coverage = {row[0]: row[1:] for row in rows}
    # CRC-style kernels need only a handful of blocks...
    assert coverage["crc"][3] <= 3          # 80% in <= 3 blocks
    # ...while JPEG spreads execution over many more (the paper's point)
    assert coverage["jpeg_d"][3] >= 3 * coverage["crc"][3]
    benchmark.pedantic(lambda: blocks_for_coverage(traces["jpeg_d"]),
                       rounds=3, iterations=1)


def test_fig3b_instructions_per_branch(benchmark, traces, capsys):
    rows = []
    values = {}
    for name in workload_names():
        value = instructions_per_branch(traces[name])
        values[name] = value
        rows.append([name, value])
    table = format_table(["algorithm", "instructions/branch"], rows,
                         title="Figure 3b — average basic-block size")
    with capsys.disabled():
        print("\n" + table + "\n")
        ours = sorted(values.values())
        paper = sorted(PAPER_FIG3B_VALUES)
        print(f"distribution: ours median={statistics.median(ours):.1f} "
              f"range=[{ours[0]:.1f}, {ours[-1]:.1f}]  |  paper "
              f"median={statistics.median(paper):.1f} "
              f"range=[{paper[0]:.1f}, {paper[-1]:.1f}]\n")

    # the paper's extremes: rijndael most dataflow, rawaudio most control
    assert values["rijndael_d"] == max(values.values())
    assert values["rawaudio_d"] <= sorted(values.values())[3]
    assert values["rijndael_e"] > 3 * values["rawaudio_d"]
    benchmark.pedantic(lambda: block_profile(traces["sha"]),
                       rounds=3, iterations=1)
