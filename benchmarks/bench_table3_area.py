"""Table 3 — area evaluation.

(a) functional-unit/mux counts and gate totals for configuration #1 plus
    the DIM hardware;
(b) bits to store one configuration;
(c) reconfiguration-cache size in bytes versus slot count.
"""

import pytest

from paper_data import (
    PAPER_TABLE3A,
    PAPER_TABLE3A_TOTAL,
    PAPER_TABLE3B,
    PAPER_TABLE3B_TOTAL,
    PAPER_TABLE3C,
)
from repro.analysis import format_table
from repro.cgra.shape import ArrayShape
from repro.system import PAPER_SHAPES, area_report, cache_bytes
from repro.system.area import config_bits_report

#: C#1 with the paper's own immediate-table sizing (4 x 32-bit slots) and
#: its 3-lines-per-level write bitmap, for apples-to-apples Table 3b.
C1_PAPER_BITS = ArrayShape(rows=24, alus_per_row=8, mults_per_row=1,
                           ldsts_per_row=2, alu_chain=3, immediate_slots=4)


def test_table3a_gate_counts(benchmark, capsys):
    report = area_report(PAPER_SHAPES["C1"])
    rows = []
    for row in report.rows:
        paper_count, paper_gates = PAPER_TABLE3A[row.unit]
        rows.append([row.unit, row.count, row.gates, paper_count,
                     paper_gates])
    rows.append(["TOTAL", "", report.total_gates, "",
                 PAPER_TABLE3A_TOTAL])
    rows.append(["transistors (gates x 4)", "", report.transistors(), "",
                 PAPER_TABLE3A_TOTAL * 4])
    table = format_table(
        ["unit", "count", "gates", "paper count", "paper gates"], rows,
        title="Table 3a — area of configuration #1 + DIM hardware")
    with capsys.disabled():
        print("\n" + table + "\n")

    assert abs(report.total_gates - PAPER_TABLE3A_TOTAL) \
        / PAPER_TABLE3A_TOTAL < 0.02
    # the paper's framing: the whole system is ~2.66M transistors,
    # comparable to a single R10000 core (2.4M)
    assert 2.4e6 < report.transistors() < 3.0e6
    benchmark.pedantic(lambda: area_report(PAPER_SHAPES["C3"]),
                       rounds=5, iterations=1)


def test_table3b_configuration_bits(benchmark, capsys):
    bits = config_bits_report(C1_PAPER_BITS)
    rows = [
        ["Write Bitmap Table*", bits.write_bitmap,
         PAPER_TABLE3B["write_bitmap"]],
        ["Resource Table", bits.resource_table,
         PAPER_TABLE3B["resource_table"]],
        ["Reads Table", bits.reads_table, PAPER_TABLE3B["reads_table"]],
        ["Writes Table", bits.writes_table, PAPER_TABLE3B["writes_table"]],
        ["Context Start", bits.context_start,
         PAPER_TABLE3B["context_start"]],
        ["Context Current", bits.context_current,
         PAPER_TABLE3B["context_current"]],
        ["Immediate Table", bits.immediate_table,
         PAPER_TABLE3B["immediate_table"]],
        ["TOTAL (stored)", bits.stored_bits, PAPER_TABLE3B_TOTAL],
    ]
    table = format_table(["table", "bits (ours)", "bits (paper)"], rows,
                         title="Table 3b — bits per stored configuration "
                               "(* detection-time only, not stored)")
    with capsys.disabled():
        print("\n" + table + "\n")
    assert bits.write_bitmap == PAPER_TABLE3B["write_bitmap"]
    assert bits.reads_table == PAPER_TABLE3B["reads_table"]
    assert abs(bits.stored_bits - PAPER_TABLE3B_TOTAL) \
        / PAPER_TABLE3B_TOTAL < 0.15
    benchmark.pedantic(lambda: config_bits_report(C1_PAPER_BITS),
                       rounds=5, iterations=1)


def test_table3c_cache_bytes(benchmark, capsys):
    rows = []
    for slots, paper_bytes in sorted(PAPER_TABLE3C.items()):
        ours = cache_bytes(C1_PAPER_BITS, slots)
        rows.append([slots, ours, paper_bytes])
    table = format_table(["#slots", "bytes (ours)", "bytes (paper)"], rows,
                         title="Table 3c — reconfiguration-cache size")
    with capsys.disabled():
        print("\n" + table + "\n")
    # linear scaling, within 15% of the paper at every size
    for slots, paper_bytes in PAPER_TABLE3C.items():
        ours = cache_bytes(C1_PAPER_BITS, slots)
        assert abs(ours - paper_bytes) / paper_bytes < 0.15
    benchmark.pedantic(lambda: cache_bytes(C1_PAPER_BITS, 256),
                       rounds=5, iterations=1)
