"""Corpus-scale throughput and traffic-replay latency.

Not a paper experiment — this bench guards the PR's acceptance bar for
the synthetic workload corpus (:mod:`repro.corpus`) and the traffic
replayer (:mod:`repro.traffic`):

- generating a 100-kernel corpus (every kernel self-checked through the
  interpreter at generation time) and sweeping it through the columnar
  replay engine must sustain a reported cells/second figure, tracked
  PR-over-PR;
- a seeded traffic replay against a live in-process service is run at
  three Zipf skews (uniform, classic 1.1, hot 1.5); for each skew the
  p50/p99 latency, the server-diffed batch-coalescing hit rate and the
  shed rate are recorded — skewed traffic should coalesce *better* than
  uniform traffic because the hot head keeps landing in shared batches.

All figures are written to ``BENCH_corpus.json`` next to this file in
machine-readable form.
"""

import json
import time
from pathlib import Path

import pytest

from repro import api
from repro.corpus import generate_corpus, register_corpus
from repro.serve import EvalService, ServeClient, start_http
from repro.traffic import TrafficSpec, replay_traffic
from repro.workloads import unregister_generated

CORPUS_SEED = 42
CORPUS_COUNT = 100
ZIPF_SKEWS = (0.0, 1.1, 1.5)

#: all measured figures; dumped to BENCH_corpus.json on teardown.
RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    unregister_generated()
    if RESULTS:
        path = Path(__file__).with_name("BENCH_corpus.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


@pytest.fixture(scope="module")
def corpus_names():
    start = time.perf_counter()
    corpus = generate_corpus(CORPUS_SEED, CORPUS_COUNT)
    generate_seconds = time.perf_counter() - start
    names = register_corpus(corpus)
    categories = {}
    for kernel in corpus.kernels:
        categories[kernel.category] = \
            categories.get(kernel.category, 0) + 1
    RESULTS["corpus"] = {
        "seed": CORPUS_SEED,
        "kernels": corpus.count,
        "generate_seconds": generate_seconds,
        "kernels_per_second": corpus.count / generate_seconds,
        "dynamic_instructions": sum(k.instructions
                                    for k in corpus.kernels),
        "categories": categories,
    }
    return names


def test_columnar_sweep_throughput_over_corpus(corpus_names, capsys):
    """100 kernels x 2 systems through the columnar replay engine."""
    configs = [api.SystemSpec(array="C2", slots=64,
                              speculation=True).build(),
               api.SystemSpec(array="C3", slots=128,
                              speculation=True).build()]
    start = time.perf_counter()
    matrix = api.sweep(configs, names=corpus_names, fast=True,
                       engine="columnar")
    sweep_seconds = time.perf_counter() - start
    cells = len(corpus_names) * len(configs)
    assert len(matrix.suites) == len(configs)
    assert all(len(suite.results) == len(corpus_names)
               for suite in matrix.suites)
    RESULTS["columnar_sweep"] = {
        "kernels": len(corpus_names),
        "systems": len(configs),
        "cells": cells,
        "seconds": sweep_seconds,
        "cells_per_second": cells / sweep_seconds,
    }
    with capsys.disabled():
        print(f"\ncolumnar sweep: {cells} cells in "
              f"{sweep_seconds:.2f}s "
              f"({cells / sweep_seconds:.1f} cells/s)")


def test_traffic_latency_across_zipf_skews(corpus_names, capsys):
    """One replay per skew against a live service; skewed mixes should
    coalesce at least as well as uniform ones."""
    svc = EvalService(workers=0, cache_root=None, batch_window=0.01)
    svc.start()
    server, _ = start_http(svc)
    client = ServeClient("http://%s:%s" % server.server_address[:2],
                         timeout=300.0)
    by_skew = {}
    try:
        for skew in ZIPF_SKEWS:
            spec = TrafficSpec(seed=9, requests=60, rate=150.0,
                               zipf_s=skew, hot_rotate=0.2)
            report = replay_traffic(client, spec, corpus_names,
                                    poll=0.02, drain_timeout=300.0)
            assert report.stats.requests_completed == spec.requests
            by_skew[f"zipf_{skew}"] = {
                "requests": spec.requests,
                "unique_workloads": report.stats.unique_workloads,
                "latency_p50_ms": report.summary()["latency_p50_ms"],
                "latency_p99_ms": report.summary()["latency_p99_ms"],
                "throughput_rps": report.summary()["throughput_rps"],
                "coalescing_rate": report.coalescing_rate,
                "shed_rate": report.shed_rate,
            }
    finally:
        svc.stop(drain=False)
        server.shutdown()
    # the hot head narrows the working set as skew rises
    uniques = [by_skew[f"zipf_{s}"]["unique_workloads"]
               for s in ZIPF_SKEWS]
    assert uniques[0] >= uniques[-1]
    RESULTS["traffic"] = by_skew
    with capsys.disabled():
        for skew in ZIPF_SKEWS:
            row = by_skew[f"zipf_{skew}"]
            print(f"zipf {skew}: p50 {row['latency_p50_ms']:.1f}ms "
                  f"p99 {row['latency_p99_ms']:.1f}ms "
                  f"coalescing {row['coalescing_rate']:.0%} "
                  f"shed {row['shed_rate']:.0%}")
