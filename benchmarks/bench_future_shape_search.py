"""Future work #1 of the paper: finding the ideal array shape.

Sweeps a grid of geometries around Table 1's designs, prices each with
the Table 3 area model, and reports the best shapes by raw speedup and
by speedup per million gates, plus the area/speedup Pareto front.
"""

import pytest

from repro.analysis import format_table, pareto_front, search_shapes
from repro.cgra.shape import ArrayShape

WORKLOADS = ("rijndael_e", "sha", "jpeg_e", "quicksort", "rawaudio_d",
             "stringsearch")

GRID = [
    ArrayShape(rows=rows, alus_per_row=alus, mults_per_row=2,
               ldsts_per_row=ldsts, immediate_slots=2 * rows)
    for rows in (16, 48, 150)
    for alus in (4, 8, 12)
    for ldsts in (2, 6)
]


def test_shape_search(benchmark, traces, capsys):
    subset = {name: traces[name] for name in WORKLOADS}
    by_speedup = search_shapes(subset, shapes=GRID, rank_by="speedup")
    by_efficiency = search_shapes(subset, shapes=GRID,
                                  rank_by="efficiency")

    rows = []
    for candidate in by_speedup[:6]:
        s = candidate.shape
        rows.append([f"{s.rows}x({s.alus_per_row}a+2m+{s.ldsts_per_row}l)",
                     candidate.geomean_speedup, candidate.gates,
                     candidate.efficiency])
    table = format_table(["shape", "speedup", "gates", "x/Mgate"], rows,
                         title="Shape search — top shapes by speedup")
    with capsys.disabled():
        print("\n" + table)
        front = pareto_front(by_speedup)
        print("\nArea/speedup Pareto front (cheapest first):")
        for candidate in front:
            print("  " + candidate.describe())
        best_eff = by_efficiency[0]
        print(f"\nmost area-efficient: {best_eff.describe()}\n")

    # sanity: the fastest shape is at least as fast as every other
    assert by_speedup[0].geomean_speedup >= \
        by_speedup[-1].geomean_speedup
    # efficiency ranking prefers (much) smaller arrays
    assert by_efficiency[0].gates < by_speedup[0].gates
    # the Pareto front is monotone in both axes
    front = pareto_front(by_speedup)
    for a, b in zip(front, front[1:]):
        assert a.gates <= b.gates
        assert a.geomean_speedup < b.geomean_speedup

    # budget pruning never simulates over-budget shapes
    budget = 1_000_000
    limited = search_shapes(subset, shapes=GRID,
                            area_budget_gates=budget)
    assert all(c.gates <= budget for c in limited)
    assert len(limited) < len(GRID)

    tiny = {"quicksort": traces["quicksort"]}
    benchmark.pedantic(
        lambda: search_shapes(tiny, shapes=GRID[:2]),
        rounds=1, iterations=1)
