"""Future work #1 of the paper: finding the ideal array shape.

Sweeps a grid of geometries around Table 1's designs through the
design-space exploration subsystem (:mod:`repro.dse`): an explicit
:class:`~repro.dse.space.ParameterSpace` over the grid, scored by a
:class:`~repro.dse.runner.TraceRunner` against pre-simulated traces,
reported as rankings by raw speedup and by speedup per million gates
plus the true area/speedup Pareto frontier.
"""

import pytest

from repro.analysis import format_table
from repro.cgra.shape import ArrayShape, default_immediate_slots
from repro.dse import ParameterSpace, TraceRunner, explore

WORKLOADS = ("rijndael_e", "sha", "jpeg_e", "quicksort", "rawaudio_d",
             "stringsearch")

GRID = [
    ArrayShape(rows=rows, alus_per_row=alus, mults_per_row=2,
               ldsts_per_row=ldsts,
               immediate_slots=default_immediate_slots(rows))
    for rows in (16, 48, 150)
    for alus in (4, 8, 12)
    for ldsts in (2, 6)
]


def _describe(evaluation) -> str:
    return (f"{evaluation.system}: "
            f"{evaluation.geomean_speedup:.2f}x, "
            f"{evaluation.gates:,} gates")


def _efficiency(evaluation) -> float:
    return evaluation.geomean_speedup / (evaluation.gates / 1e6)


def test_shape_search(benchmark, traces, capsys):
    subset = {name: traces[name] for name in WORKLOADS}
    space = ParameterSpace.for_shapes(GRID)
    runner = TraceRunner(space, subset)
    evaluations = runner.evaluate(space.candidates())
    by_speedup = sorted(evaluations,
                        key=lambda e: -e.geomean_speedup)
    by_efficiency = sorted(evaluations, key=lambda e: -_efficiency(e))
    # the frontier reuses the runner's memo: zero extra evaluation.
    result = explore(space=space, strategy="grid",
                     objectives=("speedup", "area"), runner=runner)

    rows = []
    for evaluation in by_speedup[:6]:
        shape = space.shape_of(evaluation.candidate)
        rows.append([f"{shape.rows}x({shape.alus_per_row}a+2m+"
                     f"{shape.ldsts_per_row}l)",
                     evaluation.geomean_speedup, evaluation.gates,
                     _efficiency(evaluation)])
    table = format_table(["shape", "speedup", "gates", "x/Mgate"], rows,
                         title="Shape search — top shapes by speedup")
    with capsys.disabled():
        print("\n" + table)
        print("\nArea/speedup Pareto frontier "
              f"(hypervolume {result.hypervolume:.4g}):")
        for point in sorted(result.points, key=lambda e: e.gates):
            print("  " + _describe(point))
        best_eff = by_efficiency[0]
        print(f"\nmost area-efficient: {_describe(best_eff)}\n")

    # sanity: the fastest shape is at least as fast as every other
    assert by_speedup[0].geomean_speedup >= \
        by_speedup[-1].geomean_speedup
    # efficiency ranking prefers (much) smaller arrays
    assert by_efficiency[0].gates < by_speedup[0].gates
    # the Pareto frontier is monotone in both axes, cheapest first
    front = sorted(result.points, key=lambda e: e.gates)
    assert front
    for a, b in zip(front, front[1:]):
        assert a.gates <= b.gates
        assert a.geomean_speedup < b.geomean_speedup
    # the fastest evaluated point is always on the frontier
    assert any(p.candidate == by_speedup[0].candidate
               for p in result.points)

    # budget pruning never simulates over-budget shapes
    budget = 1_000_000
    limited_space = ParameterSpace.for_shapes(GRID,
                                              area_budget_gates=budget)
    limited = limited_space.candidates()
    assert all(limited_space.gates_of(c) <= budget for c in limited)
    assert len(limited) < len(GRID)

    tiny_space = ParameterSpace.for_shapes(GRID[:2])
    benchmark.pedantic(
        lambda: TraceRunner(tiny_space,
                            {"quicksort": traces["quicksort"]})
        .evaluate(tiny_space.candidates()),
        rounds=1, iterations=1)
