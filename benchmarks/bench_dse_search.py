"""DSE strategy quality: successive halving vs the exhaustive grid.

Guards this PR's acceptance bar for :mod:`repro.dse`: on a 30-shape
space scored against six workload traces, the budget-bounded
successive-halving strategy must reach within 2% of the exhaustive
grid's best geomean speedup while spending at most 25% of its
(candidate x workload) evaluation cells.

Cell accounting, deterministic by construction: the exhaustive grid
runs 30 shapes x 6 workloads = 180 cells.  Successive halving with
budget 16 screens a seeded sample of 12 candidates on the 2-workload
cheap subset (24 cells), then promotes the top 3 to the full suite
(18 cells) — 42 cells, 23.3% of exhaustive.

Both searches and the quality ratio are written to ``BENCH_dse.json``
next to this file so the trajectory is tracked PR-over-PR.
"""

import json
import time
from pathlib import Path

import pytest

from repro.cgra.shape import ArrayShape, default_immediate_slots
from repro.dse import ParameterSpace, TraceRunner, explore

WORKLOADS = ("rijndael_e", "sha", "jpeg_e", "quicksort", "rawaudio_d",
             "stringsearch")

GRID = [
    ArrayShape(rows=rows, alus_per_row=alus, mults_per_row=2,
               ldsts_per_row=ldsts,
               immediate_slots=default_immediate_slots(rows))
    for rows in (16, 24, 48, 96, 150)
    for alus in (4, 8, 12)
    for ldsts in (2, 6)
]

BUDGET = 16
SEED = 7

#: search outcomes recorded below; dumped to BENCH_dse.json.
RESULTS = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results_json():
    yield
    if RESULTS:
        path = Path(__file__).with_name("BENCH_dse.json")
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True)
                        + "\n")


def test_shalving_vs_exhaustive(benchmark, traces, capsys):
    subset = {name: traces[name] for name in WORKLOADS}

    grid_runner = TraceRunner(ParameterSpace.for_shapes(GRID), subset)
    start = time.perf_counter()
    exhaustive = explore(space=grid_runner.space, strategy="grid",
                         objectives=("speedup", "area"),
                         runner=grid_runner)
    grid_seconds = time.perf_counter() - start
    grid_cells = grid_runner.stats.cells
    grid_best = exhaustive.best("speedup").geomean_speedup

    sh_runner = TraceRunner(ParameterSpace.for_shapes(GRID), subset)
    start = time.perf_counter()
    halved = explore(space=sh_runner.space, strategy="shalving",
                     objectives=("speedup", "area"), budget=BUDGET,
                     seed=SEED, runner=sh_runner)
    sh_seconds = time.perf_counter() - start
    sh_cells = sh_runner.stats.cells
    sh_best = halved.best("speedup").geomean_speedup

    quality = sh_best / grid_best
    cell_ratio = sh_cells / grid_cells
    RESULTS["grid_cells"] = grid_cells
    RESULTS["grid_seconds"] = grid_seconds
    RESULTS["grid_best_speedup"] = grid_best
    RESULTS["shalving_budget"] = BUDGET
    RESULTS["shalving_seed"] = SEED
    RESULTS["shalving_cells"] = sh_cells
    RESULTS["shalving_seconds"] = sh_seconds
    RESULTS["shalving_best_speedup"] = sh_best
    RESULTS["shalving_quality"] = quality
    RESULTS["shalving_cell_ratio"] = cell_ratio
    with capsys.disabled():
        print(f"\nexhaustive grid: best {grid_best:.2f}x in "
              f"{grid_cells} cells ({grid_seconds:.2f}s); shalving "
              f"(budget {BUDGET}, seed {SEED}): best {sh_best:.2f}x "
              f"in {sh_cells} cells ({sh_seconds:.2f}s) -> "
              f"{quality:.1%} of best at {cell_ratio:.1%} of the cost")

    # acceptance bar: within 2% of the exhaustive best...
    assert quality >= 0.98
    # ...using at most a quarter of its evaluation cells.
    assert cell_ratio <= 0.25
    # only full-suite evaluations may enter the frontier
    assert all(point.full for point in halved.points)
    assert sh_runner.stats.promotions == 3

    tiny = TraceRunner(ParameterSpace.for_shapes(GRID[:4]),
                       {"quicksort": traces["quicksort"]})
    benchmark.pedantic(
        lambda: explore(space=tiny.space, strategy="shalving",
                        budget=3, seed=SEED, runner=tiny),
        rounds=1, iterations=1)
