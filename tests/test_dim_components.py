"""DIM building blocks: predictor, reconfiguration cache."""

import pytest
from hypothesis import given, strategies as st

from repro.cgra.allocation import AllocationResult
from repro.cgra.configuration import Configuration
from repro.cgra.shape import ArrayShape
from repro.dim import BimodalPredictor, ReconfigurationCache

SHAPE = ArrayShape(rows=4, alus_per_row=2, mults_per_row=1, ldsts_per_row=1)


def make_config(pc):
    result = AllocationResult(
        num_instructions=4, lines_used=2, exec_cycles=1,
        inputs=frozenset({1}), outputs=frozenset({2}), immediates=0,
        alu_ops=4, mult_ops=0, mem_ops=0, loads=0, stores=0)
    return Configuration(start_pc=pc, blocks=[], result=result, shape=SHAPE)


# --- predictor -------------------------------------------------------------

def test_predictor_starts_weak():
    predictor = BimodalPredictor(16)
    assert predictor.saturated_direction(0x400000) is None
    assert not predictor.predict(0x400000)  # initial=1: weakly not-taken


def test_predictor_saturates_after_repeats():
    predictor = BimodalPredictor(16)
    pc = 0x400010
    predictor.update(pc, True)
    assert predictor.saturated_direction(pc) is None
    predictor.update(pc, True)
    assert predictor.saturated_direction(pc) is True
    predictor.update(pc, True)   # stays saturated
    assert predictor.counter(pc) == BimodalPredictor.STRONG_TAKEN


def test_predictor_hysteresis():
    predictor = BimodalPredictor(16)
    pc = 0x400020
    for _ in range(3):
        predictor.update(pc, True)
    predictor.update(pc, False)  # one wrong outcome
    assert predictor.predict(pc) is True      # still predicts taken
    assert predictor.saturated_direction(pc) is None


def test_predictor_opposite_saturation():
    predictor = BimodalPredictor(16)
    pc = 0x400030
    for _ in range(3):
        predictor.update(pc, True)
    for _ in range(4):
        predictor.update(pc, False)
    assert predictor.saturated_direction(pc) is False


def test_predictor_aliasing_by_table_size():
    predictor = BimodalPredictor(4)  # indexes on (pc>>2) & 3
    predictor.update(0x400000, True)
    predictor.update(0x400000, True)
    # 0x400010 aliases to the same entry (distance 4 words)
    assert predictor.saturated_direction(0x400010) is True


def test_predictor_requires_power_of_two():
    with pytest.raises(ValueError):
        BimodalPredictor(100)


@given(st.lists(st.booleans(), min_size=1, max_size=64))
def test_predictor_counter_stays_in_range(outcomes):
    predictor = BimodalPredictor(8)
    for taken in outcomes:
        predictor.update(0x400000, taken)
        assert 0 <= predictor.counter(0x400000) <= 3
    assert predictor.updates == len(outcomes)


# --- reconfiguration cache ---------------------------------------------------

def test_cache_fifo_eviction_order():
    cache = ReconfigurationCache(2, "fifo")
    a, b, c = make_config(0x100), make_config(0x200), make_config(0x300)
    cache.insert(a)
    cache.insert(b)
    cache.insert(c)            # evicts a (oldest)
    assert cache.lookup(0x100) is None
    assert cache.lookup(0x200) is b
    assert cache.lookup(0x300) is c
    assert cache.evictions == 1


def test_cache_fifo_ignores_hits_for_eviction():
    cache = ReconfigurationCache(2, "fifo")
    a, b, c = make_config(0x100), make_config(0x200), make_config(0x300)
    cache.insert(a)
    cache.insert(b)
    cache.lookup(0x100)        # FIFO: hit must NOT protect a
    cache.insert(c)
    assert cache.peek(0x100) is None


def test_cache_lru_protects_hits():
    cache = ReconfigurationCache(2, "lru")
    a, b, c = make_config(0x100), make_config(0x200), make_config(0x300)
    cache.insert(a)
    cache.insert(b)
    cache.lookup(0x100)        # LRU: a becomes most recent
    cache.insert(c)            # evicts b
    assert cache.peek(0x100) is a
    assert cache.peek(0x200) is None


def test_cache_replace_in_place_keeps_position():
    cache = ReconfigurationCache(2, "fifo")
    a, b = make_config(0x100), make_config(0x200)
    cache.insert(a)
    cache.insert(b)
    a2 = make_config(0x100)
    cache.insert(a2)           # replacement, not insertion
    assert len(cache) == 2
    assert cache.insertions == 2
    assert a2.builds == 2
    cache.insert(make_config(0x300))  # still evicts 0x100 first (FIFO)
    assert cache.peek(0x100) is None


def test_cache_invalidate():
    cache = ReconfigurationCache(4)
    cache.insert(make_config(0x100))
    cache.invalidate(0x100)
    assert 0x100 not in cache
    assert cache.invalidations == 1
    cache.invalidate(0x999)    # no-op
    assert cache.invalidations == 1


def test_cache_stats():
    cache = ReconfigurationCache(4)
    cache.insert(make_config(0x100))
    cache.lookup(0x100)
    cache.lookup(0x200)
    assert cache.hits == 1
    assert cache.lookups == 2
    assert cache.hit_rate == 0.5


def test_cache_validation():
    with pytest.raises(ValueError):
        ReconfigurationCache(0)
    with pytest.raises(ValueError):
        ReconfigurationCache(4, "random")


@given(st.lists(st.integers(0, 15), min_size=1, max_size=200),
       st.integers(1, 8))
def test_cache_never_exceeds_capacity(pcs, slots):
    cache = ReconfigurationCache(slots)
    for pc in pcs:
        cache.insert(make_config(pc * 4))
        assert len(cache) <= slots
