"""Encode/decode round trips for the MIPS I subset."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, OPCODES, decode, encode
from repro.isa.instruction import NOP, sign_extend16
from repro.isa.opcodes import Format, InstrClass


def test_nop_is_all_zero_word():
    assert encode(NOP) == 0
    assert decode(0).klass is InstrClass.NOP


def test_decode_unknown_opcode_returns_none():
    # opcode 0x3F is unused in MIPS I
    assert decode(0x3F << 26) is None


def test_decode_unknown_funct_returns_none():
    # SPECIAL with funct 0x3F is unused
    assert decode(0x3F) is None


def test_add_encoding_matches_reference():
    # add $t0, $t1, $t2 -> 0x012A4020
    instr = Instruction("add", rs=9, rt=10, rd=8)
    assert encode(instr) == 0x012A4020


def test_addiu_negative_immediate():
    instr = Instruction("addiu", rs=29, rt=29, imm=-32)
    word = encode(instr)
    back = decode(word)
    assert back.imm == -32
    assert back.mnemonic == "addiu"


def test_lui_is_zero_extended():
    instr = decode(encode(Instruction("lui", rt=5, imm=0x8000)))
    assert instr.imm == 0x8000


def test_jump_target_round_trip():
    instr = Instruction("j", target=0x00400ABC)
    back = decode(encode(instr))
    assert back.target == 0x00400ABC & 0x0FFFFFFC


def test_regimm_branches_round_trip():
    for mnemonic in ("bltz", "bgez"):
        instr = Instruction(mnemonic, rs=7, imm=-5)
        back = decode(encode(instr))
        assert back.mnemonic == mnemonic
        assert back.rs == 7
        assert back.imm == -5


def test_branch_target_computation():
    instr = Instruction("beq", rs=1, rt=2, imm=3)
    assert instr.branch_target(0x00400000) == 0x00400010
    instr = Instruction("beq", rs=1, rt=2, imm=-1)
    assert instr.branch_target(0x00400008) == 0x00400008


def test_destination_never_zero_register():
    instr = Instruction("addu", rs=1, rt=2, rd=0)
    assert instr.destination() is None


def test_jal_destination_is_ra():
    assert Instruction("jal", target=0x400000).destination() == 31


def test_sources_by_format():
    assert Instruction("addu", rs=3, rt=4, rd=5).sources() == (3, 4)
    assert Instruction("addiu", rs=3, rt=4, imm=1).sources() == (3,)
    assert Instruction("sll", rt=4, rd=5, shamt=2).sources() == (4,)
    assert Instruction("sw", rs=3, rt=4, imm=0).sources() == (3, 4)


def test_sign_extend16():
    assert sign_extend16(0x7FFF) == 32767
    assert sign_extend16(0x8000) == -32768
    assert sign_extend16(0xFFFF) == -1
    assert sign_extend16(0) == 0


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(sorted(OPCODES)))
    info = OPCODES[mnemonic]
    reg = st.integers(0, 31)
    if info.fmt is Format.J:
        return Instruction(mnemonic,
                           target=draw(st.integers(0, (1 << 26) - 1)) << 2)
    if info.fmt is Format.R:
        return Instruction(mnemonic, rs=draw(reg), rt=draw(reg),
                           rd=draw(reg), shamt=draw(st.integers(0, 31)))
    if info.regimm:
        return Instruction(mnemonic, rs=draw(reg),
                           imm=draw(st.integers(-32768, 32767)))
    if info.signed_imm:
        imm = draw(st.integers(-32768, 32767))
    else:
        imm = draw(st.integers(0, 0xFFFF))
    return Instruction(mnemonic, rs=draw(reg), rt=draw(reg), imm=imm)


@given(instructions())
def test_encode_decode_round_trip(instr):
    word = encode(instr)
    assert 0 <= word <= 0xFFFFFFFF
    back = decode(word)
    assert back is not None
    assert back.mnemonic == instr.mnemonic
    # R-format fields survive exactly; I/J keep the fields they encode.
    info = instr.info
    if info.fmt is Format.R:
        assert (back.rs, back.rt, back.rd, back.shamt) == \
            (instr.rs, instr.rt, instr.rd, instr.shamt)
    elif info.fmt is Format.J:
        assert back.target == instr.target & 0x0FFFFFFC
    else:
        assert back.rs == instr.rs
        assert back.imm == instr.imm
        if not info.regimm:
            assert back.rt == instr.rt


@given(st.integers(0, 0xFFFFFFFF))
def test_decode_encode_is_identity_when_decodable(word):
    instr = decode(word)
    if instr is None:
        return
    # Re-encoding must reproduce the canonical fields (unused fields of
    # the original word may be dropped, so compare via a second decode).
    again = decode(encode(instr))
    assert again == instr
