"""A corpus of hand-written assembly programs, run end-to-end.

Each program is checked against its expected output on the plain core
AND re-run through the coupled MIPS+DIM system (C#2/64/spec) asserting
bit-identical results — integration coverage for the assembler, the
simulator and the acceleration path together.
"""

import pytest

from repro.asm import assemble
from repro.sim import run_program
from repro.system import paper_system
from repro.system.coupled import run_coupled

EXIT = "li $v0, 10\nsyscall\n"

CORPUS = {
    "gcd_euclid": ("""
        li $a0, 1071
        li $a1, 462
    gcd:
        beqz $a1, done
        rem $t0, $a0, $a1
        move $a0, $a1
        move $a1, $t0
        b gcd
    done:
        li $v0, 1
        syscall
    """ + EXIT, "21"),

    "string_reverse": ("""
        .data
    src: .asciiz "dim-array"
    dst: .space 16
        .text
        la $t0, src
        li $t1, 0           # length
    len:
        lbu $t2, 0($t0)
        beqz $t2, copy
        addiu $t0, $t0, 1
        addiu $t1, $t1, 1
        b len
    copy:
        la $t3, dst
        addu $t4, $t3, $t1  # dst end
        sb $zero, 0($t4)
        la $t0, src
    rev:
        beqz $t1, show
        addiu $t1, $t1, -1
        lbu $t2, 0($t0)
        addu $t5, $t3, $t1
        sb $t2, 0($t5)
        addiu $t0, $t0, 1
        b rev
    show:
        la $a0, dst
        li $v0, 4
        syscall
    """ + EXIT, "yarra-mid"),

    "bubble_sort": ("""
        .data
    arr: .word 5, 2, 9, 1, 7, 3, 8, 4, 6, 0
        .text
        li $s0, 10          # n
        li $t0, 0           # i
    outer:
        addiu $t9, $s0, -1
        bge $t0, $t9, print
        li $t1, 0           # j
    inner:
        subu $t8, $s0, $t0
        addiu $t8, $t8, -1
        bge $t1, $t8, next_i
        la $t2, arr
        sll $t3, $t1, 2
        addu $t2, $t2, $t3
        lw $t4, 0($t2)
        lw $t5, 4($t2)
        ble $t4, $t5, no_swap
        sw $t5, 0($t2)
        sw $t4, 4($t2)
    no_swap:
        addiu $t1, $t1, 1
        b inner
    next_i:
        addiu $t0, $t0, 1
        b outer
    print:
        li $t0, 0
    ploop:
        bge $t0, $s0, fin
        la $t2, arr
        sll $t3, $t0, 2
        addu $t2, $t2, $t3
        lw $a0, 0($t2)
        li $v0, 1
        syscall
        addiu $t0, $t0, 1
        b ploop
    fin:
    """ + EXIT, "0123456789"),

    "binary_search": ("""
        .data
    sorted: .word 2, 5, 8, 12, 16, 23, 38, 56, 72, 91
        .text
        li $s0, 23          # needle
        li $t0, 0           # lo
        li $t1, 9           # hi
    search:
        bgt $t0, $t1, notfound
        addu $t2, $t0, $t1
        srl $t2, $t2, 1     # mid
        la $t3, sorted
        sll $t4, $t2, 2
        addu $t3, $t3, $t4
        lw $t5, 0($t3)
        beq $t5, $s0, found
        blt $t5, $s0, go_right
        addiu $t1, $t2, -1
        b search
    go_right:
        addiu $t0, $t2, 1
        b search
    found:
        move $a0, $t2
        li $v0, 1
        syscall
        b out
    notfound:
        li $a0, -1
        li $v0, 1
        syscall
    out:
    """ + EXIT, "5"),

    "fib_iterative_hilo": ("""
        # fibonacci via repeated multiply-accumulate on HI/LO paths
        li $t0, 0
        li $t1, 1
        li $t2, 0           # counter
    loop:
        bge $t2, 20, show
        addu $t3, $t0, $t1
        move $t0, $t1
        move $t1, $t3
        addiu $t2, $t2, 1
        b loop
    show:
        move $a0, $t0
        li $v0, 1
        syscall
        # checksum via mult
        mult $t0, $t2
        mflo $a0
        li $v0, 11
        li $a0, ' '
        syscall
        mflo $a0
        li $v0, 1
        syscall
    """ + EXIT, "6765 135300"),
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_program(name):
    source, expected = CORPUS[name]
    program = assemble(source)
    plain = run_program(program)
    assert plain.exit_code == 0
    assert plain.output == expected, f"{name}: {plain.output!r}"
    accel = run_coupled(program, paper_system("C2", 64, True))
    assert accel.output == expected
    assert accel.registers == plain.registers
    assert accel.stats.cycles <= plain.stats.cycles
