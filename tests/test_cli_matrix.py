"""The redesigned CLI option surface and the ``repro.api`` facade.

Every system-taking subcommand parses through one shared option parent
and builds configurations through the single
:func:`repro.api.build_config` path — this file sweeps the flag matrix
(subcommand x array x slots x spec) at the parser level, without
running any simulation.
"""

import pytest

import repro
import repro.api
from repro.cli import _build_configs, _single_config, build_parser
from repro.system.config import PAPER_SHAPES, paper_system
from repro.system.sweep import paper_matrix

PARSER = build_parser()

#: every subcommand that takes a system, with its (array, slots, spec)
#: defaults; sweep's ``None`` array means "the full paper matrix".
SYSTEM_COMMANDS = {
    "run": ("C3", 64, "off"),
    "inspect": ("C1", 64, "off"),
    "report": ("C2", 64, "off"),
    "suite": ("C2", 64, "off"),
    "sweep": (None, "16,64,256", "both"),
}

_TARGET = {"run": ["x"], "inspect": ["x"], "report": ["x"],
           "suite": [], "sweep": []}


def _parse(command, *flags):
    return PARSER.parse_args([command, *_TARGET[command], *flags])


# ----------------------------------------------------------------------
# Defaults and the shared flag matrix.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("command", sorted(SYSTEM_COMMANDS))
def test_defaults(command):
    array, slots, spec = SYSTEM_COMMANDS[command]
    args = _parse(command)
    assert args.array == array
    assert str(args.slots) == str(slots)
    assert args.spec == spec


@pytest.mark.parametrize("command",
                         ["run", "inspect", "report", "suite"])
@pytest.mark.parametrize("array", sorted(PAPER_SHAPES))
@pytest.mark.parametrize("slots", [16, 64, 256])
@pytest.mark.parametrize("spec", [False, True])
def test_single_config_commands_cover_the_matrix(command, array, slots,
                                                 spec):
    flags = ["--array", array, "--slots", str(slots)]
    if spec:
        flags.append("--spec")
    config = _single_config(_parse(command, *flags))
    assert config == paper_system(array, slots, spec)
    expected_slots = 1 << 20 if array == "ideal" else slots
    assert config.name == (f"{array}/{expected_slots}/"
                           f"{'spec' if spec else 'nospec'}")


@pytest.mark.parametrize("spec_flag,expected",
                         [("off", [False]), ("on", [True]),
                          ("both", [False, True])])
def test_spec_values_expand(spec_flag, expected):
    configs = _build_configs(_parse("sweep", "--arrays", "C1",
                                    "--slots", "16", "--spec",
                                    spec_flag))
    assert [c.dim.speculation for c in configs] == expected


def test_bare_spec_means_on():
    args = _parse("run", "--spec")
    assert args.spec == "on"
    assert _single_config(args).dim.speculation is True


def test_array_and_arrays_are_the_same_option():
    one = _parse("sweep", "--array", "C2,C3", "--slots", "16")
    two = _parse("sweep", "--arrays", "C2,C3", "--slots", "16")
    assert [c.name for c in _build_configs(one)] == \
        [c.name for c in _build_configs(two)]


def test_sweep_defaults_to_paper_matrix():
    configs = _build_configs(_parse("sweep"))
    assert [c.name for c in configs] == \
        [c.name for c in paper_matrix()]


def test_sweep_expansion_order_and_ideal():
    args = _parse("sweep", "--arrays", "C1,C2", "--slots", "16,64",
                  "--spec", "both", "--ideal")
    names = [c.name for c in _build_configs(args)]
    assert names == [
        "C1/16/nospec", "C1/64/nospec", "C1/16/spec", "C1/64/spec",
        "C2/16/nospec", "C2/64/nospec", "C2/16/spec", "C2/64/spec",
        "ideal/1048576/nospec", "ideal/1048576/spec",
    ]


def test_ideal_in_arrays_ignores_slots():
    configs = _build_configs(_parse("sweep", "--arrays", "ideal",
                                    "--slots", "16,64"))
    assert [c.name for c in configs] == \
        ["ideal/1048576/nospec", "ideal/1048576/spec"]


# ----------------------------------------------------------------------
# Errors: one helpful message, through one path.
# ----------------------------------------------------------------------
def test_unknown_array_lists_valid_names():
    with pytest.raises(SystemExit,
                       match="valid array names are C1, C2, C3, ideal"):
        _single_config(_parse("run", "--array", "C9"))


def test_paper_system_raises_value_error_with_names():
    with pytest.raises(ValueError,
                       match="valid array names are C1, C2, C3, ideal"):
        paper_system("Z1")
    with pytest.raises(ValueError):
        repro.build_config("Z1")


def test_multi_config_selection_rejected_by_single_commands():
    for flags in (["--array", "C1,C2"], ["--slots", "16,64"],
                  ["--spec", "both"]):
        with pytest.raises(SystemExit, match="exactly one system"):
            _single_config(_parse("run", *flags))


def test_bad_slots_rejected():
    with pytest.raises(SystemExit, match="comma-separated integers"):
        _build_configs(_parse("sweep", "--arrays", "C1",
                              "--slots", "lots"))


# ----------------------------------------------------------------------
# The repro.api facade.
# ----------------------------------------------------------------------
def test_facade_reexported_from_top_level():
    assert repro.build_config is repro.api.build_config
    assert repro.run is repro.api.run
    assert repro.evaluate is repro.api.evaluate
    assert repro.sweep is repro.api.sweep
    assert repro.load_target is repro.api.load_target
    assert repro.Telemetry is not None
    assert repro.NULL_TELEMETRY.enabled is False
    for name in ("build_config", "run", "evaluate", "sweep",
                 "Telemetry", "NullTelemetry"):
        assert name in repro.__all__


def test_build_config_matches_paper_system():
    assert repro.build_config("C2", 16, True) == \
        paper_system("C2", 16, True)
    assert repro.build_config() == paper_system()


def test_load_target_raises_value_error_not_exit():
    with pytest.raises(ValueError, match="unknown target"):
        repro.load_target("definitely_not_a_workload")


def test_load_target_passes_programs_through():
    program = repro.load_target("crc")
    assert repro.load_target(program) is program
