"""Differential tests for the block-compiled fast path.

The fast path (:mod:`repro.sim.fastpath`) must be *bit-identical* to the
per-instruction interpreter: same architectural state, same output, same
cycle counts and event statistics, same trace — for every workload in
the suite, for targeted corner-case kernels, and for the coupled
MIPS+DIM system including under forced mis-speculation.
"""

import pytest

from repro.asm import assemble
from repro.minic import compile_to_program
from repro.sim import CacheConfig, CacheHierarchy, Simulator, run_program
from repro.sim.cpu import SimulationError
from repro.system import paper_system
from repro.system.coupled import run_coupled
from repro.workloads import load_workload, run_workload, workload_names


def _assert_identical(program):
    """Run both engines over ``program`` and compare everything."""
    slow = run_program(program, collect_trace=True)
    fast = run_program(program, collect_trace=True, fast=True)
    assert fast.exit_code == slow.exit_code
    assert fast.output == slow.output
    assert fast.registers == slow.registers
    assert fast.stats == slow.stats  # cycles, stalls, every event counter
    assert fast.trace.events == slow.trace.events
    assert [(b.start_pc, b.instructions)
            for b in fast.trace.table.blocks] == \
           [(b.start_pc, b.instructions)
            for b in slow.trace.table.blocks]
    assert fast.memory.snapshot_pages() == slow.memory.snapshot_pages()
    return slow


@pytest.mark.parametrize("name", workload_names())
def test_fastpath_matches_interpreter_on_workload(name):
    slow = run_workload(name)  # cached interpreter run
    fast = run_program(load_workload(name), collect_trace=True, fast=True)
    assert fast.exit_code == slow.exit_code
    assert fast.output == slow.output
    assert fast.registers == slow.registers
    assert fast.stats == slow.stats
    assert fast.trace.events == slow.trace.events


# Ops the workloads exercise lightly: back-to-back mult/mfhi (HI/LO
# stall), div/mfhi, negative arithmetic shifts, variable shifts,
# sign-extending sub-word loads, sub-word stores, slt/sltiu corners,
# jal/jr/jalr call chains.
CORNER_KERNEL = """
        .data
buf:    .space 64
        .text
__start:
        li   $s0, -7
        li   $s1, 3
        mult $s0, $s1
        mfhi $t0                 # immediate HI read: stalls
        mflo $t1
        div  $s0, $s1
        mfhi $t2                 # remainder
        mflo $t3                 # quotient
        sra  $t4, $s0, 2
        srav $t5, $s0, $s1
        sllv $t6, $s1, $s0
        sltiu $t7, $s0, 5
        slti  $s2, $s0, 5
        la   $a0, buf
        sw   $s0, 0($a0)
        lb   $t8, 0($a0)         # sign-extended byte of -7
        lbu  $t9, 0($a0)
        sh   $s0, 4($a0)
        lh   $s3, 4($a0)
        lhu  $s4, 4($a0)
        jal  leaf
        move $a0, $v0
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
leaf:
        addu $v0, $t8, $t2
        addu $v0, $v0, $s3
        jalr $s5, $ra            # return via jalr to cover its encoding
"""


def test_fastpath_corner_operations():
    program = assemble(CORNER_KERNEL)
    result = _assert_identical(program)
    assert result.stats.hilo_stalls > 0


def test_fastpath_branch_variants():
    program = compile_to_program("""
    int main() {
        int i; int acc = 0;
        for (i = -20; i < 20; i++) {
            if (i > 0) { acc += i; }
            if (i <= 3) { acc ^= 5; }
            if (i >= -2) { acc <<= 1; }
            if (i < 7) { acc -= 2; }
            if (i == 11) { acc |= 256; }
            if (i != -11) { acc++; }
            acc &= 0xffffff;
        }
        print_int(acc);
        return 0;
    }
    """)
    _assert_identical(program)


def test_fastpath_recursion_and_calls():
    program = compile_to_program("""
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() {
        print_int(fib(14));
        return 0;
    }
    """)
    _assert_identical(program)


def test_fastpath_store_to_text_asserts():
    program = assemble("""
    __start:
        la   $t0, __start
        sw   $zero, 0($t0)
        li   $v0, 10
        syscall
    """)
    with pytest.raises(SimulationError, match="self-modifying"):
        run_program(program, fast=True)
    # the interpreter tolerates it (stale decode cache, out of scope)
    assert run_program(program).exit_code == 0


def test_fastpath_falls_back_when_caches_configured():
    program = compile_to_program("""
    int main() { print_int(42); return 0; }
    """)
    caches = CacheHierarchy.build(icache=CacheConfig(),
                                  dcache=CacheConfig())
    sim = Simulator(program, caches=caches, fast=True)
    assert sim._fast_engine is None  # cache timing needs the interpreter
    assert sim.run().output == "42"


def test_fastpath_shares_one_decode_cache():
    program = compile_to_program("""
    int main() { print_int(7); return 0; }
    """)
    a = Simulator(program)
    a.run()
    b = Simulator(program, fast=True)
    assert a._decoded is b._decoded  # hoisted onto the Program
    assert b._decoded is program.decode_cache
    assert len(program.decode_cache) > 0


BRANCHY = """
int main() {
    int i;
    int odd = 0;
    int even = 0;
    unsigned seed = 77;
    for (i = 0; i < 3000; i++) {
        seed = seed * 1103515245 + 12345;
        if ((seed >> 16) & 1) { odd++; }
        else {
            if ((seed >> 17) & 1) { even += 2; } else { even++; }
        }
    }
    print_int(odd);
    print_char(' ');
    print_int(even);
    return 0;
}
"""


@pytest.mark.parametrize("spec", [False, True])
def test_fast_coupled_matches_interpreter(spec):
    """Coupled system: fast vs slow, including forced mis-speculation."""
    program = compile_to_program(BRANCHY)
    config = paper_system("C3", 64, spec)
    slow = run_coupled(program, config)
    fast = run_coupled(program, config, fast=True)
    assert fast.exit_code == slow.exit_code
    assert fast.output == slow.output
    assert fast.registers == slow.registers
    assert fast.stats == slow.stats
    assert fast.dim_stats == slow.dim_stats
    assert fast.cache_lookups == slow.cache_lookups
    assert fast.cache_hits == slow.cache_hits
    assert fast.predictor_accuracy == slow.predictor_accuracy
    if spec:  # data-dependent branches force real mis-speculations
        assert slow.dim_stats.misspeculations > 0


@pytest.mark.parametrize("name", ["crc", "sha", "quicksort"])
def test_fast_coupled_matches_interpreter_on_workloads(name):
    config = paper_system("C2", 64, True)
    program = load_workload(name)
    slow = run_coupled(program, config)
    fast = run_coupled(program, config, fast=True)
    assert fast.output == slow.output
    assert fast.registers == slow.registers
    assert fast.stats == slow.stats
    assert fast.dim_stats == slow.dim_stats
