"""Workload characterisation (Figure 3) and report formatting."""

from hypothesis import given, strategies as st

from repro.analysis import (
    block_profile,
    blocks_for_coverage,
    coverage_curve,
    format_table,
    instructions_per_branch,
)
from repro.minic import compile_to_program
from repro.sim import run_program
from repro.workloads import run_workload


def traced(source):
    return run_program(compile_to_program(source), collect_trace=True).trace


def test_block_profile_counts():
    trace = traced("""
    int main() {
        int i;
        int n = 0;
        for (i = 0; i < 10; i++) { n += i; }
        print_int(n);
        return 0;
    }
    """)
    profile = block_profile(trace)
    assert profile.total_instructions == sum(profile.instructions.values())
    assert max(profile.counts.values()) >= 9   # the loop body block
    assert profile.instructions_per_branch > 1


def test_coverage_curve_properties():
    trace = run_workload("crc").trace
    profile = block_profile(trace)
    curve = coverage_curve(profile)
    assert all(b <= c + 1e-12 for b, c in zip(curve, curve[1:]))
    assert abs(curve[-1] - 1.0) < 1e-9
    # hottest-first: the first step is the largest
    assert curve[0] >= (curve[1] - curve[0]) - 1e-12


def test_crc_is_kernel_dominated():
    """Paper Fig. 3a: ~3 blocks cover nearly all of CRC's execution."""
    coverage = blocks_for_coverage(run_workload("crc").trace)
    assert coverage[0.8] <= 3
    assert coverage[1.0] <= 40


def test_jpeg_needs_many_blocks():
    """Paper Fig. 3a: JPEG has no distinct kernels."""
    jpeg = blocks_for_coverage(run_workload("jpeg_d").trace)
    crc = blocks_for_coverage(run_workload("crc").trace)
    assert jpeg[0.8] > crc[0.8]


def test_instructions_per_branch_wrapper():
    trace = run_workload("sha").trace
    value = instructions_per_branch(trace)
    assert value > 10


@given(st.lists(st.integers(1, 1000), min_size=1, max_size=30))
def test_blocks_for_coverage_monotone(weights):
    from repro.analysis.blocks import BlockProfile
    profile = BlockProfile(
        counts={i: 1 for i in range(len(weights))},
        instructions={i: w for i, w in enumerate(weights)},
        total_instructions=sum(weights),
        total_branches=len(weights),
    )
    result = blocks_for_coverage(profile, fractions=(0.2, 0.5, 0.9, 1.0))
    values = [result[f] for f in (0.2, 0.5, 0.9, 1.0)]
    assert values == sorted(values)
    assert values[-1] <= len(weights)


def test_format_table_alignment():
    text = format_table(["name", "value"],
                        [["a", 1.5], ["long-name", 22]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "-+-" in lines[2]
    assert len(lines) == 5
    # columns align
    assert lines[1].index("|") == lines[3].index("|")
