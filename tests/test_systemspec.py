"""The canonical :class:`repro.system.config.SystemSpec`.

The API-unification contract: one frozen, JSON-round-trippable value
describes any system, builds exactly the configuration the two
historical paths (``repro.api.build_config`` and the serve protocol's
``config_from_spec``) produced — same canonical name, same bits — and
every entry point routes through it.
"""

import json

import pytest

from repro.api import build_config
from repro.cgra.shape import ArrayShape, default_immediate_slots
from repro.dim.params import DimParams
from repro.serve.protocol import (
    _validate_config,
    config_from_spec,
    config_spec_dict,
    system_spec,
)
from repro.system.config import (
    PAPER_SHAPES,
    SystemSpec,
    custom_system,
    paper_system,
)

SHAPE = ArrayShape(rows=12, alus_per_row=6, mults_per_row=2,
                   ldsts_per_row=3,
                   immediate_slots=default_immediate_slots(12))


# ----------------------------------------------------------------------
# Construction and validation.
# ----------------------------------------------------------------------
def test_exactly_one_of_array_or_shape():
    with pytest.raises(ValueError):
        SystemSpec()
    with pytest.raises(ValueError):
        SystemSpec(array="C1", shape=SHAPE)


def test_unknown_array_rejected():
    with pytest.raises(ValueError):
        SystemSpec(array="C9")


def test_bad_slots_and_speculation_rejected():
    with pytest.raises(ValueError):
        SystemSpec(array="C1", slots=0)
    with pytest.raises(ValueError):
        SystemSpec(array="C1", slots=True)
    with pytest.raises(ValueError):
        SystemSpec(array="C1", speculation="yes")


def test_dim_extras_require_shape_form():
    with pytest.raises(ValueError):
        SystemSpec(array="C1", dim_extras=(("min_block_instructions", 6),))
    with pytest.raises(ValueError):
        SystemSpec(shape=SHAPE, dim_extras=(("bogus_knob", 1),))


def test_dim_extras_are_normalised_sorted():
    spec = SystemSpec(shape=SHAPE, dim_extras=(
        ("min_block_instructions", 6), ("max_blocks", 48)))
    assert spec.dim_extras == (("max_blocks", 48),
                               ("min_block_instructions", 6))


# ----------------------------------------------------------------------
# Building: SystemSpec reproduces both historical paths exactly.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("array", sorted(PAPER_SHAPES))
@pytest.mark.parametrize("speculation", (False, True))
def test_array_form_matches_paper_system(array, speculation):
    spec = SystemSpec(array=array, slots=16, speculation=speculation)
    assert spec.build() == paper_system(array, 16, speculation)
    assert spec.name == paper_system(array, 16, speculation).name


def test_shape_form_matches_custom_system():
    dim = DimParams(cache_slots=32, speculation=True, min_block_instructions=6)
    spec = SystemSpec.of(SHAPE, dim)
    assert spec.slots == 32 and spec.speculation is True
    assert spec.dim() == dim
    assert spec.build() == custom_system(SHAPE, dim)
    assert spec.name == custom_system(SHAPE, dim).name


def test_build_config_shim_routes_through_systemspec():
    assert build_config("C2", 64, True) == \
        SystemSpec(array="C2", slots=64, speculation=True).build()
    assert build_config("ideal") == SystemSpec(array="ideal").build()


# ----------------------------------------------------------------------
# JSON round-trips.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", [
    SystemSpec(array="C1"),
    SystemSpec(array="ideal", speculation=True),
    SystemSpec(shape=SHAPE, slots=128),
    SystemSpec(shape=SHAPE, speculation=True,
               dim_extras=(("min_block_instructions", 6),)),
])
def test_json_round_trip(spec):
    assert SystemSpec.from_dict(spec.to_dict()) == spec
    assert SystemSpec.from_json(spec.to_json()) == spec
    # the wire form is plain JSON all the way down
    json.dumps(spec.to_dict())


def test_from_dict_rejects_malformed_payloads():
    with pytest.raises(ValueError):
        SystemSpec.from_dict("C1")
    with pytest.raises(ValueError):
        SystemSpec.from_dict({"array": "C1", "bogus": 1})
    with pytest.raises(ValueError):
        SystemSpec.from_dict({"array": "C1",
                              "shape": {"rows": 4, "alus_per_row": 2,
                                        "mults_per_row": 1,
                                        "ldsts_per_row": 1}})
    with pytest.raises(ValueError):
        SystemSpec.from_dict({"shape": {"rows": 4}})
    with pytest.raises(ValueError):
        SystemSpec.from_dict({"array": "C1",
                              "dim": {"min_block_instructions": 6}})


def test_from_dict_defaults_immediate_slots():
    spec = SystemSpec.from_dict({"shape": {
        "rows": 12, "alus_per_row": 6, "mults_per_row": 2,
        "ldsts_per_row": 3}})
    assert spec.shape.immediate_slots == default_immediate_slots(12)


# ----------------------------------------------------------------------
# The serve protocol routes through the same value.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec", [
    SystemSpec(array="C1", slots=16, speculation=True),
    SystemSpec(shape=SHAPE, slots=32,
               dim_extras=(("min_block_instructions", 6),)),
])
def test_protocol_spec_round_trip_array_and_shape_forms(spec):
    cs = _validate_config(spec.to_dict(), 0)
    assert config_from_spec(cs) == system_spec(cs).build()
    assert system_spec(cs) == spec
    assert SystemSpec.from_dict(config_spec_dict(cs)) == spec
    assert config_from_spec(cs) == spec.build()
