"""The matrix sweep engine: transparency of all three sharing layers.

The contract under test is strong: :func:`evaluate_matrix` must produce
JSON *byte-identical* to looping :func:`evaluate_suite` over the same
configurations — serial or parallel, cold or warm artifact cache — and
the memoization layers must never change a single metric.
"""

import pickle
import typing

import pytest

from repro.cli import main
from repro.dim.memo import TranslationMemo, policy_key
from repro.system import paper_system
from repro.system.artifacts import ArtifactCache
from repro.system.sweep import (
    evaluate_matrix,
    paper_matrix,
    replay_matrix,
    trace_artifact_key,
)
from repro.system.traceeval import evaluate_trace
from repro.workloads import run_workload
from repro.workloads.suite import evaluate_suite

WORKLOADS = ("crc", "sha", "quicksort")


def small_configs():
    return [
        paper_system("C1", 16, False),
        paper_system("C2", 64, True),
        paper_system("C3", 256, True),
        paper_system("ideal", speculation=True),
    ]


# ----------------------------------------------------------------------
# Byte-identity with the per-config suite API.
# ----------------------------------------------------------------------
def test_matrix_matches_looped_suite():
    configs = small_configs()
    matrix = evaluate_matrix(configs, names=WORKLOADS, fast=True)
    for config in configs:
        suite = evaluate_suite(config, names=WORKLOADS, fast=True)
        assert matrix.suite(config.name).to_json() == suite.to_json()


def test_parallel_matches_serial():
    configs = small_configs()
    serial = evaluate_matrix(configs, names=WORKLOADS, fast=True)
    parallel = evaluate_matrix(configs, names=WORKLOADS, fast=True,
                               jobs=2)
    assert serial.results_json() == parallel.results_json()
    assert parallel.instrumentation.jobs == 2


def test_warm_disk_cache_identical_and_hits(tmp_path):
    configs = small_configs()
    cold = evaluate_matrix(configs, names=WORKLOADS, fast=True,
                           cache=ArtifactCache(tmp_path))
    assert cold.instrumentation.artifact_stores > 0
    warm = evaluate_matrix(configs, names=WORKLOADS, fast=True,
                           cache=ArtifactCache(tmp_path))
    assert warm.results_json() == cold.results_json()
    inst = warm.instrumentation
    assert inst.traces_simulated == 0
    assert inst.cells_replayed == 0
    assert inst.cells_from_disk == len(WORKLOADS) * len(configs)
    assert inst.artifact_hits > 0
    assert inst.artifact_hit_rate == 1.0


def test_warm_cache_parallel_identical(tmp_path):
    configs = small_configs()
    cold = evaluate_matrix(configs, names=WORKLOADS, fast=True,
                           cache=ArtifactCache(tmp_path), jobs=2)
    warm = evaluate_matrix(configs, names=WORKLOADS, fast=True,
                           cache=ArtifactCache(tmp_path))
    assert warm.results_json() == cold.results_json()


# ----------------------------------------------------------------------
# The metrics-level API and the translation memo.
# ----------------------------------------------------------------------
def test_replay_matrix_matches_fresh_evaluations():
    configs = small_configs()
    traces = {name: run_workload(name, fast=True).trace
              for name in WORKLOADS}
    cells = replay_matrix(traces, configs)
    for name, trace in traces.items():
        for index, config in enumerate(configs):
            fresh = evaluate_trace(trace, config, name=name)
            assert cells[(name, index)] == fresh


def test_memo_shares_translations_across_slot_variants():
    trace = run_workload("crc", fast=True).trace
    memo = TranslationMemo()
    first = evaluate_trace(trace, paper_system("C2", 16, True), memo=memo)
    misses_after_first = memo.misses
    second = evaluate_trace(trace, paper_system("C2", 256, True),
                            memo=memo)
    # the slot-count change shares the memo partition entirely
    assert memo.misses == misses_after_first
    assert memo.hits > 0
    assert first == evaluate_trace(trace, paper_system("C2", 16, True))
    assert second == evaluate_trace(trace, paper_system("C2", 256, True))


def test_policy_key_ignores_cache_geometry():
    a = paper_system("C2", 16, True).dim
    b = paper_system("C2", 256, True).dim
    assert policy_key(a) == policy_key(b)


def test_memo_bounds_variants_per_key():
    assert TranslationMemo.MAX_VARIANTS < 100


# ----------------------------------------------------------------------
# The artifact cache.
# ----------------------------------------------------------------------
def test_artifact_roundtrip_and_corruption(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit-test", 42)
    assert cache.load(key) is None          # cold miss
    cache.store(key, {"cycles": 123})
    assert cache.load(key) == {"cycles": 123}
    path = cache._path(key)
    path.write_bytes(b"not a pickle")
    assert cache.load(key) is None          # corruption -> miss
    assert not path.exists()                # ...and the entry is dropped


def test_artifact_key_rejects_wrong_record(tmp_path):
    cache = ArtifactCache(tmp_path)
    key_a = cache.key("metrics", "a")
    key_b = cache.key("metrics", "b")
    cache.store(key_a, 1)
    # simulate a hash collision / copied file: record key mismatch
    cache._path(key_b).parent.mkdir(parents=True, exist_ok=True)
    cache._path(key_b).write_bytes(
        pickle.dumps({"key": key_a, "payload": 1}))
    assert cache.load(key_b) is None


def test_trace_artifact_roundtrip(tmp_path):
    cache = ArtifactCache(tmp_path)
    trace = run_workload("crc", fast=True).trace
    key = trace_artifact_key(cache, "crc")
    cache.store_trace(key, trace)
    loaded = cache.load_trace(key)
    assert loaded is not None
    assert len(loaded.events) == len(trace.events)
    config = paper_system("C2", 64, True)
    assert evaluate_trace(loaded, config) == evaluate_trace(trace, config)


# ----------------------------------------------------------------------
# CLI and plumbing.
# ----------------------------------------------------------------------
def test_cli_sweep_writes_reports(tmp_path, capsys):
    report = tmp_path / "matrix.json"
    inst_path = tmp_path / "inst.json"
    assert main(["sweep", "--only", "crc", "--arrays", "C1",
                 "--slots", "16", "--spec", "on", "--fast",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--json", str(report),
                 "--instrumentation", str(inst_path)]) == 0
    out = capsys.readouterr().out
    assert "geomean speedup" in out
    assert "alloc memo" in out
    assert report.exists() and inst_path.exists()
    assert "\"workloads\"" in report.read_text()
    assert "\"artifact_hit_rate\"" in inst_path.read_text()


def test_paper_matrix_shape():
    configs = paper_matrix()
    assert len(configs) == 20
    assert len({config.name for config in configs}) == 20


def test_traceeval_annotations_resolve():
    # the BlockCostModel forward reference used to be undefined at
    # runtime; get_type_hints would raise NameError.
    import repro.system.traceeval as traceeval
    for name in dir(traceeval):
        obj = getattr(traceeval, name)
        if callable(obj) and getattr(obj, "__module__", "") == \
                "repro.system.traceeval":
            typing.get_type_hints(obj)


def test_prefix_mem_ops_is_bounded():
    from repro.system.traceeval import _prefix_mem_ops
    info = _prefix_mem_ops.cache_info()
    assert info.maxsize is not None and info.maxsize > 0
