"""The command-line interface."""

import pytest

from repro.cli import main


def test_workloads_listing(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "rijndael_e" in out
    assert "RawAudio D." in out
    assert out.count("\n") >= 19


def test_run_named_workload(capsys):
    assert main(["run", "crc", "--array", "C2", "--slots", "16",
                 "--spec"]) == 0
    out = capsys.readouterr().out
    assert "plain MIPS" in out
    assert "speedup" in out
    assert "C2/16/spec" in out
    assert "crc " in out


def test_run_assembly_file(tmp_path, capsys):
    source = tmp_path / "kernel.s"
    source.write_text("""
    __start:
        li $t0, 0
        li $t1, 0
    loop:
        addu $t1, $t1, $t0
        addiu $t0, $t0, 1
        blt $t0, 500, loop
        move $a0, $t1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
    """)
    assert main(["run", str(source)]) == 0
    out = capsys.readouterr().out
    assert "124750" in out   # sum 0..499


def test_run_minic_file(tmp_path, capsys):
    source = tmp_path / "kernel.c"
    source.write_text("""
    int main() {
        int i;
        int n = 0;
        for (i = 0; i < 100; i++) { n += i * i; }
        print_int(n);
        return 0;
    }
    """)
    assert main(["run", str(source)]) == 0
    out = capsys.readouterr().out
    assert "328350" in out


def test_inspect_workload(capsys):
    assert main(["inspect", "crc", "--array", "C1", "--spec"]) == 0
    out = capsys.readouterr().out
    assert "hottest block" in out
    assert "line " in out
    assert "input context" in out


def test_report_command(capsys):
    assert main(["report", "crc", "--array", "C1", "--spec"]) == 0
    out = capsys.readouterr().out
    assert "acceleration report @ C1/64/spec" in out
    assert "hottest cached configurations" in out
    assert "power shares" in out


def test_characterize(capsys):
    assert main(["characterize", "bitcount"]) == 0
    out = capsys.readouterr().out
    assert "instructions/branch" in out
    assert "blocks for" in out


def test_inspect_block_too_short(tmp_path, capsys):
    source = tmp_path / "tiny.s"
    source.write_text("""
    __start:
    loop:
        addiu $t0, $t0, 1
        blt $t0, 100, loop
        li $v0, 10
        syscall
    """)
    # hottest block is slt+branch+... the 3-instruction loop block is
    # below the 4-instruction threshold
    code = main(["inspect", str(source)])
    out = capsys.readouterr().out
    if code == 1:
        assert "too short" in out
    else:
        assert "line " in out


def test_unknown_target():
    with pytest.raises(SystemExit):
        main(["run", "no_such_thing"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
