"""Syscall handling."""

import pytest

from repro.sim.memory import Memory
from repro.sim.syscalls import SyscallError, handle_syscall


def call(code, a0=0, memory=None):
    regs = [0] * 32
    regs[2] = code
    regs[4] = a0
    output = []
    result = handle_syscall(regs, memory or Memory(), output)
    return result, "".join(output)


def test_print_int_signed():
    result, out = call(1, 0xFFFFFFFF)
    assert result is None
    assert out == "-1"


def test_print_string():
    memory = Memory()
    memory.write_block(0x10010000, b"hello\x00trailing")
    result, out = call(4, 0x10010000, memory)
    assert result is None
    assert out == "hello"


def test_print_char_masks_to_byte():
    _, out = call(11, 0x141)  # 0x41 = 'A'
    assert out == "A"


def test_print_hex():
    _, out = call(34, 0xDEADBEEF)
    assert out == "0xdeadbeef"


def test_exit_codes():
    assert call(10)[0] == 0
    assert call(17, 42)[0] == 42
    assert call(17, 0x1FF)[0] == 0xFF  # masked like a POSIX exit code


def test_unknown_syscall_raises():
    with pytest.raises(SyscallError):
        call(99)
