"""The design-space exploration subsystem (:mod:`repro.dse`).

Four families of guarantees:

1. Space algebra: enumeration/sampling/neighbourhood determinism, area
   budget feasibility, JSON round-trips, canonical candidate identity.
2. Frontier mathematics: dominance is irreflexive and transitive, the
   Pareto filter never drops a non-dominated point, hypervolume matches
   hand computation.
3. The transparency contract: the frontier JSON is byte-identical
   whether batches evaluate serially, with ``--jobs``, or dispatched to
   a running ``repro serve`` instance — and a seeded smoke exploration
   matches the committed golden frontier byte for byte.
4. Back-compat: :func:`repro.analysis.search_shapes` reproduces its
   historical (pre-``repro.dse``) float arithmetic bit for bit, and the
   ``dse.*`` telemetry namespace stays closed and collector-mapped.
"""

import itertools
import json
import random
from pathlib import Path

import pytest

from repro.analysis import search_shapes
from repro.analysis.shape_search import default_grid
from repro.cgra.shape import ArrayShape, default_immediate_slots
from repro.dim.memo import TranslationMemo
from repro.dim.params import DimParams
from repro.dse import (
    Axis,
    Candidate,
    Evaluation,
    GridSearch,
    ParameterSpace,
    TraceRunner,
    build_frontier,
    default_space,
    dominates,
    explore,
    hypervolume,
    load_space,
    objective_vector,
    pareto_indices,
    resolve_objectives,
    resolve_strategy,
)
from repro.dse.runner import DseStats
from repro.obs import EVENT_TYPES, Telemetry, validate_jsonl
from repro.obs.schema import dse_counters, dse_timers
from repro.serve import (
    EvalService,
    ServeClient,
    start_http,
    validate_submission,
)
from repro.serve.protocol import config_from_spec
from repro.sim.cpu import run_program
from repro.sim.stats import TimingModel
from repro.system.area import AreaParams, area_report
from repro.system.config import SystemConfig
from repro.system.traceeval import baseline_metrics, evaluate_trace
from repro.workloads import load_workload

SMOKE_SPACE = Path(__file__).parent.parent / "examples" \
    / "dse_smoke_space.json"
GOLDEN_FRONTIER = Path(__file__).parent / "data" \
    / "dse_smoke_frontier.json"
SMOKE_WORKLOADS = ("crc", "quicksort")

SPEEDUP_AREA = resolve_objectives(("speedup", "area"))


@pytest.fixture(scope="module")
def traces():
    return {name: run_program(load_workload(name), collect_trace=True,
                              fast=True).trace
            for name in ("crc", "quicksort", "sha")}


# ----------------------------------------------------------------------
# Space algebra.
# ----------------------------------------------------------------------
def test_candidate_identity_is_canonical():
    a = Candidate.of({"rows": 16, "alus_per_row": 4})
    b = Candidate.of({"alus_per_row": 4, "rows": 16})
    assert a == b and a.id == b.id == "alus_per_row=4,rows=16"
    assert a.mutated("rows", 24).get("rows") == 24
    assert a.get("rows") == 16  # mutation does not alias


def test_axis_rejects_unknown_and_empty():
    with pytest.raises(ValueError, match="unknown axis"):
        Axis("wings", (2,))
    with pytest.raises(ValueError, match="no values"):
        Axis("rows", ())


def test_space_enumeration_and_sampling_are_deterministic():
    space = default_space()
    assert space.size == 64
    pool = space.candidates()
    assert pool == space.candidates()
    assert len(set(c.id for c in pool)) == len(pool) == 64
    sample = space.sample(8, random.Random(7))
    assert sample == space.sample(8, random.Random(7))
    assert len(sample) == 8
    # oversampling caps at the feasible pool
    assert len(space.sample(1000, random.Random(7))) == 64


def test_space_neighbors_step_one_axis():
    space = default_space()
    corner = space.candidates()[0]
    for neighbor in space.neighbors(corner):
        diff = [k for k in neighbor.as_dict()
                if neighbor.get(k) != corner.get(k)]
        assert len(diff) == 1


def test_area_budget_prunes_before_evaluation():
    budget = 1_000_000
    space = ParameterSpace.for_shapes(default_grid(),
                                      area_budget_gates=budget)
    pool = space.candidates()
    assert 0 < len(pool) < len(default_grid())
    assert all(space.gates_of(c) <= budget for c in pool)


def test_space_requires_pinned_geometry():
    space = ParameterSpace(axes=(Axis("rows", (16,)),))
    with pytest.raises(ValueError, match="missing.*alus_per_row"):
        space.shape_of(space.candidates()[0])


def test_space_json_round_trip(tmp_path):
    space = default_space()
    path = tmp_path / "space.json"
    path.write_text(json.dumps(space.to_dict()))
    assert load_space(path).candidates() == space.candidates()
    assert load_space(SMOKE_SPACE).size == 8


def test_immediate_slots_default_is_shared():
    space = load_space(SMOKE_SPACE)
    for candidate in space.candidates():
        shape = space.shape_of(candidate)
        assert shape.immediate_slots == \
            default_immediate_slots(shape.rows)


def test_resolvers_name_the_valid_sets():
    with pytest.raises(ValueError, match="speedup"):
        resolve_objectives(("speedup", "latency"))
    with pytest.raises(ValueError, match="duplicate"):
        resolve_objectives(("area", "area"))
    with pytest.raises(ValueError, match="shalving"):
        resolve_strategy("annealing")


# ----------------------------------------------------------------------
# Frontier mathematics.
# ----------------------------------------------------------------------
def _evaluation(ident, speedup, gates, energy=1.0):
    return Evaluation(candidate=Candidate.of({"rows": ident}),
                      system=f"s{ident}", workloads=("crc",),
                      geomean_speedup=speedup,
                      geomean_energy_ratio=energy, gates=gates,
                      full=True)


def test_dominance_is_irreflexive_and_transitive():
    rng = random.Random(11)
    objectives = resolve_objectives(("speedup", "area", "energy"))
    points = [objective_vector(
        _evaluation(i, rng.uniform(1, 4),
                    rng.randrange(100, 5000) * 1000,
                    rng.uniform(0.5, 3)), objectives)
        for i in range(24)]
    for p in points:
        assert not dominates(p, p, objectives)
    for a, b, c in itertools.permutations(points, 3):
        if dominates(a, b, objectives) and dominates(b, c, objectives):
            assert dominates(a, c, objectives)
        if dominates(a, b, objectives):
            assert not dominates(b, a, objectives)


def test_frontier_never_drops_a_non_dominated_point():
    rng = random.Random(23)
    vectors = [objective_vector(
        _evaluation(i, rng.uniform(1, 4),
                    rng.randrange(100, 5000) * 1000), SPEEDUP_AREA)
        for i in range(40)]
    kept = set(pareto_indices(vectors, SPEEDUP_AREA))
    for i, p in enumerate(vectors):
        dominated = any(dominates(q, p, SPEEDUP_AREA)
                        for j, q in enumerate(vectors) if j != i)
        assert (i in kept) == (not dominated)


def test_frontier_keeps_duplicate_optima():
    twins = [(2.0, 1000.0), (2.0, 1000.0)]
    assert len(pareto_indices(twins, SPEEDUP_AREA)) == 2


def test_hypervolume_matches_hand_computation():
    # maximize speedup, minimize area; reference defaults to the worst
    # corner of the set (speedup 1, area 4000).  The lone non-trivial
    # box is (3-1) speedup x (4000-1000) gates = 6000.
    vectors = [(3.0, 1000.0), (1.0, 4000.0)]
    assert hypervolume(vectors, SPEEDUP_AREA) == pytest.approx(6000.0)
    # a dominated interior point adds only its own dominated slab:
    # (2-1) x (4000-2000) is already inside the first box.
    vectors.append((2.0, 2000.0))
    assert hypervolume(vectors, SPEEDUP_AREA) == pytest.approx(6000.0)


def test_build_frontier_counts_dominated():
    points = [_evaluation(0, 3.0, 1000), _evaluation(1, 2.0, 2000),
              _evaluation(2, 1.0, 4000)]
    front, dominated, volume = build_frontier(points, SPEEDUP_AREA)
    assert [e.system for e in front] == ["s0"]
    assert dominated == 2 and volume > 0


# ----------------------------------------------------------------------
# Strategies on a real (trace-scored) space.
# ----------------------------------------------------------------------
def _shape_space(count=8, budget=None):
    return ParameterSpace.for_shapes(default_grid()[:count],
                                     area_budget_gates=budget)


def test_strategies_respect_budget_and_determinism(traces):
    space = _shape_space()
    for name, budget in (("random", 5), ("shalving", 6),
                         ("hillclimb", 5), ("grid", 4)):
        first = explore(space=space, strategy=name, budget=budget,
                        seed=3, runner=TraceRunner(space, traces))
        again = explore(space=space, strategy=name, budget=budget,
                        seed=3, runner=TraceRunner(space, traces))
        assert first.to_json() == again.to_json()
        assert first.evaluations <= budget
        assert first.points, name


def test_shalving_promotes_only_full_evaluations(traces):
    space = _shape_space()
    runner = TraceRunner(space, traces)
    result = explore(space=space, strategy="shalving", budget=6,
                     seed=7, runner=runner)
    assert all(point.full for point in result.points)
    assert runner.stats.cheap_evaluations == 4
    assert runner.stats.full_evaluations == 1
    assert runner.stats.cells == 4 * 1 + 1 * len(traces)


def test_grid_exploration_matches_legacy_pareto(traces):
    space = _shape_space()
    result = explore(space=space, strategy="grid",
                     runner=TraceRunner(space, traces))
    ranked = search_shapes(traces, shapes=default_grid()[:8])
    best = result.best("speedup")
    assert best.geomean_speedup == ranked[0].geomean_speedup
    assert space.shape_of(best.candidate) == ranked[0].shape


# ----------------------------------------------------------------------
# search_shapes back-compat: bit-identical to the historical loop.
# ----------------------------------------------------------------------
def _legacy_search_shapes(traces, shapes, area_budget_gates=None,
                          rank_by="speedup"):
    """The pre-``repro.dse`` implementation, replicated verbatim."""
    dim = DimParams(cache_slots=64, speculation=True)
    timing = TimingModel()
    baselines = {name: baseline_metrics(trace, timing)
                 for name, trace in traces.items()}
    memos = {name: TranslationMemo() for name in traces}
    rows = []
    for shape in shapes:
        gates = area_report(shape, AreaParams()).total_gates
        if area_budget_gates is not None and gates > area_budget_gates:
            continue
        config = SystemConfig(shape, dim, timing,
                              name=f"{shape.rows}r{shape.alus_per_row}a")
        product = 1.0
        for name, trace in traces.items():
            metrics = evaluate_trace(trace, config, memo=memos[name])
            product *= baselines[name].cycles / metrics.cycles
        geomean = product ** (1.0 / len(traces))
        rows.append((shape, gates, geomean, geomean / (gates / 1e6)))
    key = (lambda r: r[2]) if rank_by == "speedup" else (lambda r: r[3])
    return sorted(rows, key=key, reverse=True)


@pytest.mark.parametrize("rank_by", ["speedup", "efficiency"])
@pytest.mark.parametrize("budget", [None, 1_000_000])
def test_search_shapes_is_bit_identical_to_legacy(traces, rank_by,
                                                  budget):
    shapes = default_grid()[:8]
    new = search_shapes(traces, shapes=shapes, rank_by=rank_by,
                        area_budget_gates=budget)
    old = _legacy_search_shapes(traces, shapes, rank_by=rank_by,
                                area_budget_gates=budget)
    assert len(new) == len(old)
    for candidate, (shape, gates, geomean, efficiency) in zip(new, old):
        assert candidate.shape == shape
        assert candidate.gates == gates
        assert candidate.geomean_speedup == geomean  # bit-exact
        assert candidate.efficiency == efficiency


# ----------------------------------------------------------------------
# Wire round-trip: client spec -> protocol validation -> same system.
# ----------------------------------------------------------------------
def test_wire_spec_round_trips_through_the_protocol():
    space = ParameterSpace(axes=(
        Axis("rows", (16, 24)), Axis("alus_per_row", (4,)),
        Axis("mults_per_row", (2,)), Axis("ldsts_per_row", (2,)),
        Axis("cache_slots", (16, 64)), Axis("speculation", (True,)),
        Axis("predictor_entries", (256, 1024)),
    ))
    base = DimParams(misspec_penalty=6)
    for candidate in space.candidates():
        spec = space.wire_spec(candidate, base_dim=base)
        request = validate_submission({"kind": "sweep",
                                       "names": ["crc"],
                                       "configs": [spec]})
        rebuilt = config_from_spec(request.configs[0])
        local = space.config_of(candidate, base_dim=base)
        assert rebuilt.name == local.name
        assert rebuilt.shape == local.shape
        assert rebuilt.dim == local.dim


# ----------------------------------------------------------------------
# The transparency contract.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service():
    svc = EvalService(workers=0, cache_root=None, batch_window=0.01)
    svc.start()
    server, thread = start_http(svc)
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}", timeout=120.0)
    yield svc, client
    if not svc._stopped:
        svc.stop(drain=False)
    server.shutdown()


def _smoke_explore(**kwargs):
    return explore(space=load_space(SMOKE_SPACE), strategy="shalving",
                   objectives=("speedup", "area"),
                   workloads=SMOKE_WORKLOADS, budget=6, seed=7,
                   fast=True, cache=None, **kwargs)


def test_frontier_is_byte_identical_serial_parallel_served(service):
    _, client = service
    serial = _smoke_explore().to_json()
    parallel = _smoke_explore(jobs=4).to_json()
    served = _smoke_explore(client=client).to_json()
    assert serial == parallel == served


def test_smoke_frontier_matches_committed_golden():
    golden = GOLDEN_FRONTIER.read_text()
    assert _smoke_explore().to_json() + "\n" == golden


# ----------------------------------------------------------------------
# Telemetry: the dse.* namespace stays closed and collector-mapped.
# ----------------------------------------------------------------------
def test_dse_event_namespace_is_closed():
    for event in ("dse.batch_evaluated", "dse.rung_promoted",
                  "dse.frontier_computed"):
        assert event in EVENT_TYPES
    tel = Telemetry()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        tel.emit("dse.rung_started")


def test_dse_collectors_map_every_stat():
    stats = DseStats(evaluations=9, cells=27, batches=2,
                     full_evaluations=3, cheap_evaluations=6,
                     promotions=3, dispatched_batches=1,
                     frontier_points=2, dominated=1,
                     total_seconds=1.5, evaluate_seconds=1.25)
    assert dse_counters(stats) == {
        "dse.evaluations": 9, "dse.cells": 27, "dse.batches": 2,
        "dse.full_evaluations": 3, "dse.cheap_evaluations": 6,
        "dse.promotions": 3, "dse.dispatched_batches": 1,
        "dse.frontier_points": 2, "dse.dominated": 1,
    }
    assert dse_timers(stats) == {"dse.total_seconds": 1.5,
                                 "dse.evaluate_seconds": 1.25}


def test_explore_telemetry_validates_and_never_perturbs(tmp_path):
    tel = Telemetry()
    with_tel = _smoke_explore(telemetry=tel).to_json()
    without = _smoke_explore().to_json()
    assert with_tel == without
    # shalving with budget 6: a 4-candidate rung plus 1 promotion
    assert tel.counters["dse.evaluations"] == 5
    assert tel.counters["dse.frontier_points"] >= 1
    assert tel.counters["dse.promotions"] == 1
    assert any(r["type"] == "dse.frontier_computed"
               for r in tel.events)
    path = tmp_path / "dse.jsonl"
    tel.write_jsonl(path)
    assert validate_jsonl(path.read_text().splitlines()) == []
