"""Assembler: directives, labels, pseudo-instructions, errors."""

import pytest

from repro.asm import AssemblerError, assemble
from repro.asm.disassembler import disassemble_program, disassemble_word
from repro.isa import decode


def words(program):
    return [program.word_at(program.text_base + 4 * i)
            for i in range(program.num_instructions())]


def mnemonics(program):
    return [decode(w).mnemonic for w in words(program)]


def test_empty_text_and_data():
    program = assemble(".text\n.data\n")
    assert program.text == b""
    assert program.data == b""


def test_simple_arithmetic():
    program = assemble("add $t0, $t1, $t2\n")
    assert mnemonics(program) == ["add"]


def test_label_and_branch_backwards():
    program = assemble("""
    top: addiu $t0, $t0, 1
         bne $t0, $t1, top
    """)
    branch = decode(words(program)[1])
    assert branch.mnemonic == "bne"
    assert branch.imm == -2


def test_branch_forward():
    program = assemble("""
        beq $zero, $zero, done
        nop
    done:
        nop
    """)
    branch = decode(words(program)[0])
    assert branch.branch_target(program.text_base) == program.text_base + 8


def test_li_expansion_sizes():
    small = assemble("li $t0, 100\n")
    assert mnemonics(small) == ["addiu"]
    medium = assemble("li $t0, 0xBEEF\n")
    assert mnemonics(medium) == ["ori"]
    large = assemble("li $t0, 0x12345678\n")
    assert mnemonics(large) == ["lui", "ori"]
    round_value = assemble("li $t0, 0x10000\n")
    assert mnemonics(round_value) == ["lui"]
    negative = assemble("li $t0, -5\n")
    assert mnemonics(negative) == ["addiu"]


def test_la_uses_symbol_address():
    program = assemble("""
        .data
    value: .word 42
        .text
        la $t0, value
        lw $t1, 0($t0)
    """)
    lui, ori = decode(words(program)[0]), decode(words(program)[1])
    address = (lui.imm << 16) | ori.imm
    assert address == program.symbols["value"]


def test_data_directives_layout():
    program = assemble("""
        .data
    a:  .byte 1, 2, 3
    b:  .half 0x1234
    c:  .word 0xDEADBEEF
    s:  .asciiz "hi"
    sp: .space 4
    """)
    symbols = program.symbols
    assert symbols["b"] % 2 == 0
    assert symbols["c"] % 4 == 0
    data = program.data
    offset = symbols["c"] - program.data_base
    assert data[offset:offset + 4] == bytes.fromhex("efbeadde")
    offset = symbols["s"] - program.data_base
    assert data[offset:offset + 3] == b"hi\x00"


def test_word_with_symbol_reference():
    program = assemble("""
        .data
    ptr: .word target
    target: .word 7
    """)
    offset = program.symbols["ptr"] - program.data_base
    stored = int.from_bytes(program.data[offset:offset + 4], "little")
    assert stored == program.symbols["target"]


def test_branch_pseudo_expansions():
    program = assemble("""
    top: blt $t0, $t1, top
         bge $t0, $t1, top
         bgt $t0, $t1, top
         ble $t0, $t1, top
         bltu $t0, $t1, top
    """)
    names = mnemonics(program)
    assert names == ["slt", "bne", "slt", "beq", "slt", "bne",
                     "slt", "beq", "sltu", "bne"]


def test_mul_div_rem_pseudos():
    program = assemble("""
        mul $t0, $t1, $t2
        div $t3, $t4, $t5
        rem $t6, $t7, $t8
        div $t1, $t2
    """)
    assert mnemonics(program) == ["mult", "mflo", "div", "mflo",
                                  "div", "mfhi", "div"]


def test_set_comparison_pseudos():
    program = assemble("""
        seq $t0, $t1, $t2
        sne $t0, $t1, $t2
        sgt $t0, $t1, $t2
        sge $t0, $t1, $t2
    """)
    assert mnemonics(program) == ["xor", "sltiu", "xor", "sltu",
                                  "slt", "slt", "xori"]


def test_memory_operand_forms():
    program = assemble("""
        lw $t0, 8($sp)
        lw $t1, ($sp)
        sw $t0, -4($fp)
    """)
    first, second, third = [decode(w) for w in words(program)]
    assert (first.imm, first.rs) == (8, 29)
    assert second.imm == 0
    assert (third.imm, third.rs) == (-4, 30)


def test_entry_symbol_priority():
    program = assemble("""
    main: nop
    __start: nop
    """)
    assert program.entry == program.symbols["__start"]
    program = assemble("main: nop\n")
    assert program.entry == program.symbols["main"]


def test_char_literals_and_comments():
    program = assemble("""
        li $t0, 'A'       # letter A
        li $t1, '\\n'     ; newline
    """)
    assert decode(words(program)[0]).imm == 65
    assert decode(words(program)[1]).imm == 10


def test_errors():
    with pytest.raises(AssemblerError):
        assemble("bogus $t0, $t1\n")
    with pytest.raises(AssemblerError):
        assemble("add $t0, $t1\n")  # wrong arity
    with pytest.raises(AssemblerError):
        assemble("lw $t0, nowhere($sp($t1))\n")
    with pytest.raises(AssemblerError):
        assemble("j missing_label\n")
    with pytest.raises(AssemblerError):
        assemble("dup: nop\ndup: nop\n")
    with pytest.raises(AssemblerError):
        assemble("add $t0, $t1, $bogusreg\n")
    with pytest.raises(AssemblerError):
        assemble(".data\n.word\n.text\n")  # empty .word is an arity error
    with pytest.raises(AssemblerError):
        assemble(".word 1\n")  # data directive in .text


def test_disassembler_round_trip():
    source = """
        addiu $t0, $zero, 5
        sll $t1, $t0, 2
        lw $t2, 4($sp)
        sw $t2, 8($sp)
        mult $t0, $t1
        mflo $t3
        jr $ra
    """
    program = assemble(source)
    lines = disassemble_program(program)
    assert len(lines) == 7
    # disassembled text re-assembles to identical words
    body = "\n".join(line.split(":", 1)[1] for line in lines)
    again = assemble(body)
    assert again.text == program.text


def test_disassemble_illegal_word():
    assert disassemble_word(0xFFFFFFFF).startswith(".word")
