"""The DIM engine's run-time policies in isolation."""

import pytest

from repro.asm import assemble
from repro.cgra.shape import ArrayShape
from repro.dim import DimEngine, DimParams
from repro.sim import Simulator

SHAPE = ArrayShape(rows=32, alus_per_row=4, mults_per_row=1,
                   ldsts_per_row=2, immediate_slots=64)

LOOP = """
top:
    addiu $t0, $t0, 1
    addiu $t1, $t1, 2
    addu $t2, $t0, $t1
    sll $t3, $t2, 2
    bne $t0, $t4, top
"""


def make_engine(source=LOOP, **params):
    sim = Simulator(assemble(source))
    engine = DimEngine(SHAPE, DimParams(**params), sim.block_at)
    return sim, engine


def test_translate_on_first_sight():
    sim, engine = make_engine(cache_slots=8)
    block = sim.block_at(sim.pc)
    assert engine.lookup(block.start_pc) is None
    engine.consider_translation(block)
    assert engine.lookup(block.start_pc) is not None
    assert engine.stats.translations == 1


def test_consider_translation_is_idempotent():
    sim, engine = make_engine(cache_slots=8)
    block = sim.block_at(sim.pc)
    engine.consider_translation(block)
    engine.consider_translation(block)
    assert engine.stats.translations == 1
    assert engine.cache.insertions == 1


def test_extension_on_hit_after_saturation():
    sim, engine = make_engine(cache_slots=8, speculation=True)
    block = sim.block_at(sim.pc)
    engine.consider_translation(block)
    config = engine.lookup(block.start_pc)
    assert len(config.blocks) == 1 and config.extendable
    config2 = engine.maybe_extend(config)
    assert config2 is config  # counter not saturated, nothing happens
    engine.observe_branch(block.branch_pc, True)
    engine.observe_branch(block.branch_pc, True)
    config3 = engine.maybe_extend(config)
    assert config3 is not config
    assert len(config3.blocks) > 1
    assert engine.stats.extensions == 1
    # the cache now serves the extended configuration
    assert engine.lookup(block.start_pc) is config3


def test_flush_on_consecutive_misspeculation():
    sim, engine = make_engine(cache_slots=8, speculation=True,
                              misspec_flush_threshold=2)
    block = sim.block_at(sim.pc)
    for _ in range(3):
        engine.observe_branch(block.branch_pc, True)
    engine.consider_translation(block)
    config = engine.lookup(block.start_pc)
    cfg_block = config.blocks[0]
    assert cfg_block.includes_terminator
    # one wrong direction: penalised but kept
    assert not engine.speculation_outcome(config, cfg_block, False)
    assert block.start_pc in engine.cache
    # a correct direction resets the streak
    assert engine.speculation_outcome(config, cfg_block, True)
    assert config.misspec_count == 0
    # two consecutive wrong directions: drives counter to opposite
    # saturation -> flush
    engine.speculation_outcome(config, cfg_block, False)
    engine.speculation_outcome(config, cfg_block, False)
    assert block.start_pc not in engine.cache
    assert engine.stats.flushes >= 1


def test_occasional_loop_exit_never_flushes():
    sim, engine = make_engine(cache_slots=8, speculation=True)
    block = sim.block_at(sim.pc)
    for _ in range(3):
        engine.observe_branch(block.branch_pc, True)
    engine.consider_translation(block)
    config = engine.lookup(block.start_pc)
    cfg_block = config.blocks[0]
    for _ in range(50):  # 9 taken, 1 not-taken, repeatedly
        for _ in range(9):
            engine.speculation_outcome(config, cfg_block, True)
        engine.speculation_outcome(config, cfg_block, False)
    assert engine.stats.flushes == 0
    assert block.start_pc in engine.cache


def test_begin_execution_accounts_stats_and_stall():
    sim, engine = make_engine(cache_slots=8)
    block = sim.block_at(sim.pc)
    engine.consider_translation(block)
    config = engine.lookup(block.start_pc)
    stall = engine.begin_execution(config)
    assert stall == max(0, config.reconfiguration_cycles - 3)
    stats = engine.stats
    assert stats.array_executions == 1
    assert stats.array_cycles == config.exec_cycles
    assert stats.array_alu_ops == config.result.alu_ops


def test_min_block_length_respected():
    sim, engine = make_engine("""
    top:
        addiu $t0, $t0, 1
        bne $t0, $t4, top
    """, cache_slots=8, min_block_instructions=4)
    block = sim.block_at(sim.pc)
    engine.consider_translation(block)
    assert engine.lookup(block.start_pc) is None
