"""The MIPS core: functional behaviour and cycle accounting."""

import pytest

from repro.asm import assemble
from repro.sim import Simulator, SimulationError, TimingModel, run_program
from repro.isa.registers import register_number


def run(source, **kwargs):
    return run_program(assemble(source), **kwargs)


EXIT = "li $v0, 10\nsyscall\n"


def test_arithmetic_and_exit_code():
    result = run("""
        li $t0, 40
        addiu $t0, $t0, 2
        move $a0, $t0
        li $v0, 17
        syscall
    """)
    assert result.exit_code == 42


def test_print_services():
    result = run("""
        .data
    msg: .asciiz "x="
        .text
        la $a0, msg
        li $v0, 4
        syscall
        li $a0, -7
        li $v0, 1
        syscall
        li $a0, '!'
        li $v0, 11
        syscall
    """ + EXIT)
    assert result.output == "x=-7!"


def test_memory_round_trip_all_widths():
    result = run("""
        .data
    buf: .space 16
        .text
        la $t0, buf
        li $t1, 0x81
        sb $t1, 0($t0)
        lb $t2, 0($t0)        # sign-extends
        lbu $t3, 0($t0)
        li $t4, 0x8001
        sh $t4, 4($t0)
        lh $t5, 4($t0)
        lhu $t6, 4($t0)
        move $a0, $t2
        li $v0, 1
        syscall
        li $a0, ' '
        li $v0, 11
        syscall
        move $a0, $t3
        li $v0, 1
        syscall
    """ + EXIT)
    assert result.output == "-127 129"
    regs = result.registers
    assert regs[register_number("t5")] == 0xFFFF8001
    assert regs[register_number("t6")] == 0x8001


def test_zero_register_is_immutable():
    result = run("""
        addiu $zero, $zero, 5
        move $a0, $zero
        li $v0, 17
        syscall
    """)
    assert result.exit_code == 0


def test_jal_jr_call_and_return():
    result = run("""
        jal func
        move $a0, $v0
        li $v0, 17
        syscall
    func:
        li $v0, 9
        jr $ra
    """)
    assert result.exit_code == 9


def test_hi_lo_mult_div():
    result = run("""
        li $t0, -6
        li $t1, 7
        mult $t0, $t1
        mflo $a0
        li $v0, 1
        syscall
        li $a0, ' '
        li $v0, 11
        syscall
        li $t0, 17
        li $t1, 5
        div $t0, $t1
        mflo $a0
        li $v0, 1
        syscall
        mfhi $a0
        li $v0, 1
        syscall
    """ + EXIT)
    assert result.output == "-42 32"


def test_cycle_accounting_straight_line():
    # 3 plain instructions + syscall: no stalls, no penalties
    result = run("li $t0, 1\nli $t1, 2\nadd $t2, $t0, $t1\n" + EXIT)
    assert result.stats.cycles == result.stats.instructions


def test_load_use_stall_charged():
    timing = TimingModel()
    base = run("""
        .data
    v:  .word 5
        .text
        la $t0, v
        lw $t1, 0($t0)
        nop
        add $t2, $t1, $t1
    """ + EXIT)
    stalled = run("""
        .data
    v:  .word 5
        .text
        la $t0, v
        lw $t1, 0($t0)
        add $t2, $t1, $t1
        nop
    """ + EXIT)
    assert stalled.stats.load_use_stalls == base.stats.load_use_stalls + 1
    assert stalled.stats.cycles == base.stats.cycles + timing.load_use_stall


def test_taken_branch_penalty():
    taken = run("""
        li $t0, 1
        beq $t0, $t0, target
        nop
    target:
    """ + EXIT)
    not_taken = run("""
        li $t0, 1
        beq $t0, $zero, target
        nop
    target:
    """ + EXIT)
    # same instruction count apart from the skipped nop
    assert taken.stats.taken_transfers == not_taken.stats.taken_transfers + 1


def test_hilo_stall_when_read_early():
    timing = TimingModel()
    early = run("li $t0, 3\nli $t1, 4\nmult $t0, $t1\nmflo $t2\n" + EXIT)
    late = run("li $t0, 3\nli $t1, 4\nmult $t0, $t1\n"
               + "nop\n" * timing.mult_latency + "mflo $t2\n" + EXIT)
    assert early.stats.hilo_stalls > 0
    assert late.stats.hilo_stalls == 0


def test_instruction_budget_guard():
    with pytest.raises(SimulationError):
        run("loop: j loop\n", max_instructions=1000)


def test_illegal_instruction_raises():
    program = assemble(".data\n.text\n")
    # point entry at unmapped memory: word 0 decodes as nop (sll), so
    # write a truly illegal word first.
    program = assemble("main: .text\nnop\n")
    sim = Simulator(program)
    sim.memory.write_word(program.text_base, 0xFC000000)
    with pytest.raises(SimulationError):
        sim.run()


def test_trace_block_formation():
    result = run("""
        li $t0, 3
    loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
    """ + EXIT, collect_trace=True)
    trace = result.trace
    # blocks: [li..bne], [addiu, bne] x2? first block includes loop body
    assert len(trace.events) >= 3
    # every event's block is registered and consistent
    for event in trace.events:
        block = trace.table.get(event.block_id)
        assert block.instructions
    # loop block executed with taken=True twice, False once
    loop_events = [e for e in trace.events
                   if trace.table.get(e.block_id).is_conditional]
    assert [e.taken for e in loop_events] == [True, True, False]


def test_step_outcome_fields():
    program = assemble("li $t0, 1\n" + EXIT)
    sim = Simulator(program)
    outcome = sim.step()
    assert not outcome.block_end
    assert outcome.pc == program.text_base
    assert outcome.next_pc == program.text_base + 4
