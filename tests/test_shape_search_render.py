"""Shape-space search and configuration rendering."""

import pytest

from repro.analysis import pareto_front, search_shapes
from repro.analysis.shape_search import ShapeCandidate, default_grid
from repro.asm import assemble
from repro.cgra.render import render_configuration
from repro.cgra.shape import ArrayShape
from repro.dim import BimodalPredictor, DimParams, Translator
from repro.minic import compile_to_program
from repro.sim import Simulator, run_program
from repro.system import PAPER_SHAPES

KERNEL = """
unsigned a[32];
int main() {
    int i; int p;
    unsigned acc = 1;
    for (p = 0; p < 10; p++) {
        for (i = 0; i < 32; i++) {
            acc = acc * 31 + a[i];
            a[i] = acc >> 3;
        }
    }
    print_int(acc & 0xffff);
    return 0;
}
"""

GRID = [
    ArrayShape(rows=8, alus_per_row=4, mults_per_row=1, ldsts_per_row=2,
               immediate_slots=16),
    ArrayShape(rows=24, alus_per_row=8, mults_per_row=1, ldsts_per_row=2,
               immediate_slots=48),
    ArrayShape(rows=48, alus_per_row=8, mults_per_row=2, ldsts_per_row=6,
               immediate_slots=96),
]


@pytest.fixture(scope="module")
def kernel_traces():
    result = run_program(compile_to_program(KERNEL), collect_trace=True)
    return {"kernel": result.trace}


def test_search_ranks_by_speedup(kernel_traces):
    ranked = search_shapes(kernel_traces, shapes=GRID)
    assert len(ranked) == 3
    speeds = [c.geomean_speedup for c in ranked]
    assert speeds == sorted(speeds, reverse=True)
    assert all(c.geomean_speedup >= 1.0 for c in ranked)
    assert all(c.gates > 0 for c in ranked)


def test_search_efficiency_ranking_differs(kernel_traces):
    by_eff = search_shapes(kernel_traces, shapes=GRID,
                           rank_by="efficiency")
    eff = [c.efficiency for c in by_eff]
    assert eff == sorted(eff, reverse=True)


def test_search_budget_prunes(kernel_traces):
    all_candidates = search_shapes(kernel_traces, shapes=GRID)
    cheapest = min(c.gates for c in all_candidates)
    limited = search_shapes(kernel_traces, shapes=GRID,
                            area_budget_gates=cheapest)
    assert len(limited) == 1
    assert limited[0].gates == cheapest


def test_search_rejects_bad_ranking(kernel_traces):
    with pytest.raises(ValueError):
        search_shapes(kernel_traces, shapes=GRID, rank_by="vibes")


def test_default_grid_is_varied():
    grid = default_grid()
    assert len(grid) > 10
    assert len({(s.rows, s.alus_per_row, s.ldsts_per_row)
                for s in grid}) == len(grid)


def test_pareto_front_properties(kernel_traces):
    ranked = search_shapes(kernel_traces, shapes=GRID)
    front = pareto_front(ranked)
    assert front
    gates = [c.gates for c in front]
    speeds = [c.geomean_speedup for c in front]
    assert gates == sorted(gates)
    assert speeds == sorted(speeds)
    # dominated points are excluded
    for candidate in ranked:
        if candidate not in front:
            assert any(o.gates <= candidate.gates
                       and o.geomean_speedup >= candidate.geomean_speedup
                       for o in front)


def test_candidate_describe():
    shape = GRID[0]
    candidate = ShapeCandidate(shape, 12345, 2.5, 2.5 / 0.012345)
    text = candidate.describe()
    assert "8x(4a+1m+2ls)" in text
    assert "2.50x" in text


# --- rendering ---------------------------------------------------------------

def test_render_configuration_contents():
    source = """
        addiu $t0, $t0, 1
        sll $t1, $t0, 2
        lw $t2, 0($t1)
        mult $t2, $t0
        mflo $t3
        jr $ra
    """
    sim = Simulator(assemble(source))
    translator = Translator(PAPER_SHAPES["C1"], DimParams(),
                            BimodalPredictor(64), sim.block_at)
    config = translator.translate(sim.block_at(sim.pc))
    text = render_configuration(config)
    assert "[A] addiu $t0, $t0, 1" in text
    assert "[L] lw $t2" in text
    assert "[M] mult" in text
    assert "input context" in text
    assert "$t0" in text
    assert "hi" in text and "lo" in text
    assert f"{config.exec_cycles} cycles" in text


def test_render_truncates_wide_lines():
    source = "\n".join(f"addiu $t{i % 8}, $zero, {i}" for i in range(12)) \
        + "\njr $ra\n"
    sim = Simulator(assemble(source))
    shape = ArrayShape(rows=4, alus_per_row=16, mults_per_row=1,
                       ldsts_per_row=2, immediate_slots=32)
    translator = Translator(shape, DimParams(), BimodalPredictor(64),
                            sim.block_at)
    config = translator.translate(sim.block_at(sim.pc))
    text = render_configuration(config, max_ops_per_line=4)
    assert "more)" in text
