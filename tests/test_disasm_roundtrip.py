"""Property: disassembled programs re-assemble to identical binaries."""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.asm.disassembler import disassemble_program
from repro.asm.program import Program
from repro.isa import OPCODES, Instruction, encode
from repro.isa.opcodes import Format, InstrClass

#: mnemonics whose textual form is position-independent (branch/jump
#: targets render as absolute addresses and need in-range values, so we
#: exercise them separately with controlled offsets).
_STRAIGHT = sorted(
    m for m, info in OPCODES.items()
    if not info.is_control and info.klass is not InstrClass.SYSCALL)


@st.composite
def straight_instructions(draw):
    """Canonically-encoded instructions: don't-care fields stay zero,
    since assembly text cannot carry them."""
    mnemonic = draw(st.sampled_from(_STRAIGHT))
    info = OPCODES[mnemonic]
    reg = st.integers(0, 31)
    if info.fmt is Format.R:
        fields = {"rs": 0, "rt": 0, "rd": 0, "shamt": 0}
        if mnemonic in ("sll", "srl", "sra"):
            fields.update(rt=draw(reg), rd=draw(reg),
                          shamt=draw(st.integers(0, 31)))
        elif mnemonic in ("mfhi", "mflo"):
            fields.update(rd=draw(reg))
        elif mnemonic in ("mthi", "mtlo"):
            fields.update(rs=draw(reg))
        elif mnemonic in ("mult", "multu", "div", "divu"):
            fields.update(rs=draw(reg), rt=draw(reg))
        else:
            fields.update(rs=draw(reg), rt=draw(reg), rd=draw(reg))
        return Instruction(mnemonic, **fields)
    imm = draw(st.integers(-32768, 32767)) if info.signed_imm \
        else draw(st.integers(0, 0xFFFF))
    rs = 0 if mnemonic == "lui" else draw(reg)
    return Instruction(mnemonic, rs=rs, rt=draw(reg), imm=imm)


@settings(max_examples=40, deadline=None)
@given(st.lists(straight_instructions(), min_size=1, max_size=30))
def test_disassemble_reassemble_identity(instrs):
    text = b"".join(encode(i).to_bytes(4, "little") for i in instrs)
    program = Program(text=text, data=b"", entry=0x00400000)
    lines = disassemble_program(program)
    body = "\n".join(line.split(":", 1)[1] for line in lines)
    again = assemble(body)
    assert again.text == program.text


@settings(max_examples=20, deadline=None)
@given(st.integers(-30, 30).filter(lambda d: d != 0),
       st.sampled_from(["beq", "bne", "blez", "bgtz", "bltz", "bgez"]))
def test_branch_disassembly_reassembles(delta, mnemonic):
    pad_before = [Instruction("sll")] * 32
    rt = 2 if mnemonic in ("beq", "bne") else 0
    branch = Instruction(mnemonic, rs=1, rt=rt, imm=delta)
    pad_after = [Instruction("sll")] * 32
    instrs = pad_before + [branch] + pad_after
    text = b"".join(encode(i).to_bytes(4, "little") for i in instrs)
    program = Program(text=text, data=b"", entry=0x00400000)
    lines = disassemble_program(program)
    body = "\n".join(line.split(":", 1)[1] for line in lines)
    again = assemble(body)
    assert again.text == program.text
