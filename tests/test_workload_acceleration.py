"""Every Table 2 workload accelerates sanely under the default system."""

import pytest

from repro.system import baseline_metrics, evaluate_trace, paper_system
from repro.workloads import run_workload, workload_names

CONFIG = paper_system("C2", 64, True)


@pytest.mark.parametrize("name", workload_names())
def test_workload_accelerates(name):
    plain = run_workload(name)
    base = baseline_metrics(plain.trace)
    metrics = evaluate_trace(plain.trace, CONFIG)
    speedup = base.cycles / metrics.cycles
    # every workload gains, none implausibly much
    assert 1.2 < speedup < 6.5, f"{name}: {speedup:.2f}"
    # committed work is conserved
    assert metrics.instructions == base.instructions
    # most of the program runs on the array
    coverage = metrics.dim.array_instructions / base.instructions
    assert coverage > 0.4, f"{name}: coverage {coverage:.0%}"
    # the cache serves the steady state
    assert metrics.cache_hits / metrics.cache_lookups > 0.3


def test_dataflow_beats_control_on_big_arrays():
    """Table 2's vertical story: dataflow rows gain more from C3."""
    def c3_gain(name):
        plain = run_workload(name)
        base = baseline_metrics(plain.trace)
        small = evaluate_trace(plain.trace, paper_system("C1", 64, False))
        big = evaluate_trace(plain.trace, paper_system("C3", 64, False))
        return (base.cycles / big.cycles) / (base.cycles / small.cycles)

    # array size matters for AES, not for ADPCM
    assert c3_gain("rijndael_e") > 1.5
    assert c3_gain("rawaudio_d") < 1.2


def test_ideal_bounds_every_real_configuration():
    for name in ("sha", "quicksort", "rijndael_e"):
        plain = run_workload(name)
        ideal = evaluate_trace(plain.trace,
                               paper_system("ideal", speculation=True))
        for array in ("C1", "C2", "C3"):
            real = evaluate_trace(plain.trace,
                                  paper_system(array, 256, True))
            assert ideal.cycles <= real.cycles
