"""The seeded traffic replayer (:mod:`repro.traffic`).

Four families of guarantees:

1. Schedules are pure functions of ``(spec, names)``: deterministic,
   Zipf-shaped, rotation-aware, with the three arrival processes
   behaving as advertised and bad specs rejected loudly.
2. Report arithmetic: percentiles, coalescing, shed rate and throughput
   compute exactly from the collected samples.
3. Live replay: against a real in-process serve endpoint the replayer
   completes every request, measures scheduled-arrival latency, and
   diffs the server's own ``serve.*`` counters for coalescing; a
   saturated service shows up as shed, not as silent failure.
4. Observability: the ``traffic.*`` counters/timers/events live in the
   closed :mod:`repro.obs` schema.
"""

import json

import pytest

from repro.corpus import generate_corpus, register_corpus
from repro.obs import EVENT_TYPES, Telemetry, validate_jsonl
from repro.serve import EvalService, ServeClient, start_http
from repro.traffic import (
    ARRIVALS,
    SHED_CODES,
    TrafficReport,
    TrafficSpec,
    TrafficStats,
    arrival_times,
    build_schedule,
    popularity,
    replay_traffic,
    zipf_weights,
)
from repro.workloads import unregister_generated

NAMES = tuple(f"wl{i:02d}" for i in range(12))


# ----------------------------------------------------------------------
# 1. Deterministic schedules.
# ----------------------------------------------------------------------
def test_schedule_is_a_pure_function_of_spec_and_names():
    spec = TrafficSpec(seed=4, requests=120, rate=100.0,
                       hot_rotate=0.25, priorities=(0, 5),
                       deadline_fraction=0.25)
    first = build_schedule(spec, NAMES)
    assert build_schedule(spec, NAMES) == first
    assert len(first) == 120
    assert [r.index for r in first] == list(range(120))
    assert all(first[i].at <= first[i + 1].at
               for i in range(len(first) - 1))
    assert build_schedule(TrafficSpec(seed=5, requests=120, rate=100.0),
                          NAMES) != first


def test_zipf_skew_concentrates_and_uniform_spreads():
    flat = popularity(build_schedule(
        TrafficSpec(seed=1, requests=600, zipf_s=0.0), NAMES))
    skewed = popularity(build_schedule(
        TrafficSpec(seed=1, requests=600, zipf_s=1.5), NAMES))
    assert max(skewed.values()) > max(flat.values())
    # the analytic head mass: rank 0 carries w0/sum(w) of the traffic
    weights = zipf_weights(len(NAMES), 1.5)
    head_share = weights[0] / sum(weights)
    assert max(skewed.values()) > 0.7 * head_share * 600
    # uniform traffic touches everything
    assert len(flat) == len(NAMES)


def test_hot_rotation_changes_the_head_but_not_the_shape():
    spec = TrafficSpec(seed=2, requests=400, rate=400.0, zipf_s=1.3,
                       hot_rotate=0.25)
    schedule = build_schedule(spec, NAMES)
    epochs = {r.epoch for r in schedule}
    assert len(epochs) > 1
    heads = {}
    for epoch in epochs:
        requests = [r for r in schedule if r.epoch == epoch]
        heads[epoch] = popularity(requests)
    # at least two epochs crown a different most-popular workload
    assert len({next(iter(counts)) for counts in heads.values()}) > 1
    # without rotation there is exactly one epoch
    still = build_schedule(TrafficSpec(seed=2, requests=50), NAMES)
    assert {r.epoch for r in still} == {0}


def test_arrival_processes_have_their_shapes():
    uniform = arrival_times(TrafficSpec(arrival="uniform", requests=10,
                                        rate=100.0))
    gaps = [round(b - a, 9) for a, b in zip(uniform, uniform[1:])]
    assert gaps == [round(1.0 / 100.0, 9)] * 9

    burst = arrival_times(TrafficSpec(arrival="burst", requests=32,
                                      burst=8, rate=100.0))
    assert len(burst) == 32
    assert len(set(burst)) == 4  # 4 bursts of 8 identical stamps

    poisson = arrival_times(TrafficSpec(arrival="poisson",
                                        requests=500, rate=100.0))
    assert len(poisson) == 500
    mean_gap = poisson[-1] / len(poisson)
    assert 0.005 < mean_gap < 0.02  # around 1/rate

    timed = arrival_times(TrafficSpec(arrival="uniform", duration=0.5,
                                      rate=100.0))
    assert 48 <= len(timed) <= 50 and timed[-1] <= 0.5


def test_bad_specs_are_rejected():
    assert ARRIVALS == ("poisson", "burst", "uniform")
    with pytest.raises(ValueError, match="unknown arrival"):
        arrival_times(TrafficSpec(arrival="fractal"))
    with pytest.raises(ValueError, match="rate"):
        arrival_times(TrafficSpec(rate=0.0))
    with pytest.raises(ValueError, match="at least one workload"):
        build_schedule(TrafficSpec(), [])


def test_spec_round_trips_through_dict():
    spec = TrafficSpec(seed=9, requests=10, priorities=(0, 3, 7),
                       deadline_fraction=0.5, arrival="burst")
    assert TrafficSpec.from_dict(spec.to_dict()) == spec


def test_priorities_and_deadlines_follow_the_mix():
    spec = TrafficSpec(seed=6, requests=400, priorities=(1, 9),
                       deadline_fraction=0.5, deadline=2.5)
    schedule = build_schedule(spec, NAMES)
    assert {r.priority for r in schedule} == {1, 9}
    with_deadline = [r for r in schedule if r.deadline is not None]
    assert all(r.deadline == 2.5 for r in with_deadline)
    assert 100 < len(with_deadline) < 300  # about half


# ----------------------------------------------------------------------
# 2. Report arithmetic.
# ----------------------------------------------------------------------
def test_report_percentiles_coalescing_and_rates():
    stats = TrafficStats(requests_planned=10, requests_completed=8,
                         requests_shed=2, run_seconds=4.0)
    report = TrafficReport(
        spec=TrafficSpec(), stats=stats,
        latencies=[0.001 * (i + 1) for i in range(8)],
        batches=3, batched_jobs=8)
    assert report.percentile(0.0) == 0.001
    assert report.percentile(1.0) == 0.008
    assert report.percentile(0.5) == pytest.approx(0.005, abs=0.001)
    assert report.coalescing_rate == pytest.approx(1 - 3 / 8)
    assert report.shed_rate == pytest.approx(0.2)
    assert report.throughput_rps == pytest.approx(2.0)
    summary = json.loads(report.to_json())
    assert summary["latency_p99_ms"] == 8.0
    assert summary["shed"] == 2
    # no samples, no batches: all rates collapse to zero
    empty = TrafficReport(spec=TrafficSpec(), stats=TrafficStats())
    assert empty.percentile(0.99) == 0.0
    assert empty.coalescing_rate == 0.0 and empty.shed_rate == 0.0
    assert empty.throughput_rps == 0.0


# ----------------------------------------------------------------------
# 3. Live replay against a real in-process service.
# ----------------------------------------------------------------------
@pytest.fixture()
def corpus_service():
    names = register_corpus(generate_corpus(31, 6))
    svc = EvalService(workers=0, cache_root=None, batch_window=0.01)
    svc.start()
    server, _ = start_http(svc)
    client = ServeClient("http://%s:%s" % server.server_address[:2],
                         timeout=120.0)
    yield client, names, svc
    if not svc._stopped:
        svc.stop(drain=False)
    server.shutdown()
    unregister_generated()


def test_replay_completes_and_measures(corpus_service):
    client, names, _ = corpus_service
    spec = TrafficSpec(seed=3, requests=30, rate=300.0, zipf_s=1.1,
                       hot_rotate=0.05, priorities=(0, 5))
    tel = Telemetry()
    report = replay_traffic(client, spec, names, telemetry=tel,
                            poll=0.02, drain_timeout=120.0)
    assert report.stats.requests_planned == 30
    assert report.stats.requests_submitted == 30
    assert report.stats.requests_completed == 30
    assert report.stats.requests_failed == 0
    assert report.stats.requests_shed == 0
    assert len(report.latencies) == 30
    assert all(latency > 0 for latency in report.latencies)
    assert report.percentile(0.99) >= report.percentile(0.5) > 0
    assert sum(report.popularity.values()) == 30
    assert report.stats.unique_workloads == len(report.popularity)
    # the server really coalesced some of the burst into shared batches
    assert report.batched_jobs >= report.batches > 0
    snapshot = tel.snapshot()
    assert snapshot.counters["traffic.requests_completed"] == 30
    assert snapshot.counters["traffic.hot_rotations"] \
        == report.stats.hot_rotations > 0
    assert snapshot.timers["traffic.run_seconds"] > 0


def test_replay_is_deterministic_in_plan_not_in_clock(corpus_service):
    """Two replays of one spec ask for the identical request sequence;
    only wall-clock latencies differ."""
    client, names, _ = corpus_service
    spec = TrafficSpec(seed=8, requests=12, rate=600.0)
    first = replay_traffic(client, spec, names, poll=0.02)
    second = replay_traffic(client, spec, names, poll=0.02)
    assert first.popularity == second.popularity
    assert first.stats.requests_completed \
        == second.stats.requests_completed == 12


def test_saturated_service_sheds_instead_of_failing():
    names = register_corpus(generate_corpus(37, 2))
    svc = EvalService(workers=0, cache_root=None, capacity=2,
                      batch_window=0.0)
    svc.start()
    server, _ = start_http(svc)
    client = ServeClient("http://%s:%s" % server.server_address[:2],
                         timeout=120.0)
    try:
        client.pause()  # nothing drains: the queue fills, then sheds
        spec = TrafficSpec(seed=1, requests=8, rate=2000.0)
        tel = Telemetry()
        # short drain: the paused queue never empties, so the two
        # accepted jobs are accounted as timed out when the window ends
        report = replay_traffic(client, spec, names, telemetry=tel,
                                poll=0.02, drain_timeout=2.0)
        assert report.stats.requests_shed > 0
        assert report.shed_rate == pytest.approx(
            report.stats.requests_shed / 8)
        accounted = (report.stats.requests_completed
                     + report.stats.requests_failed
                     + report.stats.requests_shed
                     + report.stats.requests_timed_out)
        assert accounted == report.stats.requests_planned == 8
        assert "queue_full" in SHED_CODES
        shed_events = [e for e in (tel.events or [])
                       if e["type"] == "traffic.request_shed"]
        assert shed_events and all(e["code"] in SHED_CODES
                                   for e in shed_events)
    finally:
        svc.stop(drain=False)
        server.shutdown()
        unregister_generated()


# ----------------------------------------------------------------------
# 4. Observability: the traffic.* namespace is closed and populated.
# ----------------------------------------------------------------------
def test_traffic_namespace_events_are_closed():
    traffic_types = {t for t in EVENT_TYPES if t.startswith("traffic.")}
    assert traffic_types == {"traffic.request_submitted",
                             "traffic.request_finished",
                             "traffic.request_shed",
                             "traffic.hot_rotated",
                             "traffic.replay_done"}
    tel = Telemetry()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        tel.emit("traffic.request_teleported", index=0)


def test_traffic_collectors_map_stats_onto_schema(tmp_path,
                                                  corpus_service):
    from repro.obs.schema import (
        TRAFFIC_COUNTERS,
        TRAFFIC_TIMERS,
        traffic_counters,
        traffic_timers,
    )

    stats = TrafficStats(requests_planned=5, requests_completed=4,
                         requests_shed=1, run_seconds=1.5,
                         submit_seconds=0.25)
    counters = traffic_counters(stats)
    assert counters["traffic.requests_planned"] == 5
    assert counters["traffic.requests_shed"] == 1
    assert traffic_timers(stats)["traffic.submit_seconds"] == 0.25
    for mapping in (TRAFFIC_COUNTERS, TRAFFIC_TIMERS):
        for name, attr in mapping.items():
            assert name.startswith("traffic.")
            assert hasattr(stats, attr)

    # a real replay's event stream validates against the closed schema
    client, names, _ = corpus_service
    tel = Telemetry()
    replay_traffic(client, TrafficSpec(seed=2, requests=8, rate=400.0),
                   names, telemetry=tel, poll=0.02)
    path = tmp_path / "traffic_events.jsonl"
    tel.write_jsonl(path)
    lines = path.read_text().splitlines()
    assert validate_jsonl(lines) == []
    types = {json.loads(line)["type"] for line in lines}
    assert {"traffic.request_submitted", "traffic.request_finished",
            "traffic.replay_done"} <= types
