"""Differential tests for the columnar replay engine.

The contract is the strongest one the sweep layer makes: for every
workload and every system configuration, :func:`evaluate_trace_columnar`
must return a :class:`SystemMetrics` *bit-identical* to the event-driven
:func:`evaluate_trace` — same cycle counts, same DIM statistics, same
energy inputs — and the engine-selection layer must fall back to the
event engine (with identical results) whenever numpy is unavailable.

The columnar tests skip cleanly on interpreters without numpy; the
fallback tests run everywhere (``REPRO_NO_NUMPY=1`` disables numpy even
when it is installed, so the pure-Python path is exercised either way).
"""

import dataclasses
import json
import pickle

import pytest

from repro.cli import main
from repro.dim.memo import TranslationMemo
from repro.dim.params import DimParams
from repro.obs.schema import SWEEP_COUNTERS
from repro.sim.coltrace import COLTRACE_FORMAT, ColumnarTrace
from repro.system.colreplay import (
    ColumnarContext,
    baseline_metrics_columnar,
    columnar_available,
    evaluate_trace_columnar,
    replay_trace_columnar,
)
from repro.system.config import PAPER_SHAPES, custom_system, paper_system
from repro.system.sweep import (
    ENGINES,
    _resolve_engine,
    evaluate_matrix,
    replay_workload,
)
from repro.system.traceeval import baseline_metrics, evaluate_trace
from repro.workloads import run_workload, workload_names

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:
    HAVE_HYPOTHESIS = False

HAVE_NUMPY = columnar_available()
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY,
                                 reason="columnar engine needs numpy")


def grid_configs():
    """A representative slice of the design space: every array class,
    speculation on/off, slot counts small enough to force evictions,
    both replacement policies, and the unbounded ideal cache."""
    lru = DimParams(cache_slots=8, cache_policy="lru", speculation=True)
    lru_nospec = dataclasses.replace(lru, speculation=False)
    return [
        paper_system("C1", 16, False),
        paper_system("C1", 4, True),
        paper_system("C3", 64, True),
        paper_system("ideal", speculation=True),
        custom_system(PAPER_SHAPES["C2"], lru),
        custom_system(PAPER_SHAPES["C2"], lru_nospec),
    ]


def assert_same_metrics(columnar, event):
    assert dataclasses.asdict(columnar) == dataclasses.asdict(event)


# ----------------------------------------------------------------------
# The core bit-identity bar: every workload x a representative grid.
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("name", workload_names())
def test_columnar_matches_event_engine(name):
    trace = run_workload(name, fast=True).trace
    context = ColumnarContext(trace, name=name)
    memo = TranslationMemo()
    seen_timings = set()
    for config in grid_configs():
        event = evaluate_trace(trace, config, name=name, memo=memo)
        columnar = evaluate_trace_columnar(trace, config, name=name,
                                           context=context)
        assert_same_metrics(columnar, event)
        if config.timing not in seen_timings:
            seen_timings.add(config.timing)
            assert_same_metrics(
                baseline_metrics_columnar(context, config.timing),
                baseline_metrics(trace, config.timing))


@needs_numpy
def test_replay_workload_engines_identical():
    trace = run_workload("crc", fast=True).trace
    configs = grid_configs()
    event = replay_workload(trace, configs, name="crc", engine="event")
    columnar = replay_workload(trace, configs, name="crc",
                               engine="columnar")
    assert len(event) == len(columnar) == len(configs)
    for col, ev in zip(columnar, event):
        assert_same_metrics(col, ev)


@needs_numpy
def test_replay_trace_columnar_shares_one_context():
    trace = run_workload("quicksort", fast=True).trace
    configs = grid_configs()
    batched = replay_trace_columnar(trace, configs, name="quicksort")
    context = ColumnarContext(trace, name="quicksort")
    for config, metrics in zip(configs, batched):
        assert_same_metrics(
            evaluate_trace_columnar(trace, config, name="quicksort",
                                    context=context),
            metrics)


@needs_numpy
def test_columnar_metrics_json_serialisable():
    """Every metric must be a plain int/float — numpy scalars would
    break the deterministic JSON reports."""
    trace = run_workload("crc", fast=True).trace
    metrics = evaluate_trace_columnar(trace, paper_system("C2", 64, True),
                                      name="crc")
    json.dumps(dataclasses.asdict(metrics))


# ----------------------------------------------------------------------
# The persisted columnar lowering.
# ----------------------------------------------------------------------
@needs_numpy
def test_coltrace_payload_roundtrip():
    trace = run_workload("crc", fast=True).trace
    lowered = ColumnarTrace(trace)
    lowered.timeline(512)
    assert lowered.timelines_built == 1

    payload = pickle.loads(pickle.dumps(lowered.to_payload()))
    restored = ColumnarTrace.from_payload(trace, payload)
    assert restored is not None
    assert restored.timelines_built == 1

    config = paper_system("C2", 16, True)
    context = ColumnarContext(trace, name="crc", coltrace=restored)
    assert_same_metrics(
        evaluate_trace_columnar(trace, config, name="crc",
                                context=context),
        evaluate_trace(trace, config, name="crc"))


@needs_numpy
def test_coltrace_payload_stale_detection():
    trace = run_workload("crc", fast=True).trace
    good = ColumnarTrace(trace).to_payload()
    assert ColumnarTrace.from_payload(trace, {"version": -1}) is None
    assert ColumnarTrace.from_payload(trace, "not a dict") is None
    truncated = dict(good)
    truncated["event_ids"] = good["event_ids"][:-1]
    assert ColumnarTrace.from_payload(trace, truncated) is None
    assert ColumnarTrace.from_payload(trace, good) is not None
    assert good["version"] == COLTRACE_FORMAT


# ----------------------------------------------------------------------
# Engine selection and the pure-Python fallback.
# ----------------------------------------------------------------------
def test_resolve_engine_rules():
    assert ENGINES == ("auto", "event", "columnar")
    with pytest.raises(ValueError):
        _resolve_engine("vector")
    assert _resolve_engine("event") == ("event", False)
    # an observing sweep needs the event-level telemetry stream
    assert _resolve_engine("auto", observing=True) == ("event", False)


def test_evaluate_matrix_rejects_unknown_engine():
    with pytest.raises(ValueError):
        evaluate_matrix([paper_system("C1", 16, False)], names=["crc"],
                        engine="vector")


def test_engine_fallback_without_numpy(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert not columnar_available()
    assert _resolve_engine("columnar") == ("event", True)
    configs = [paper_system("C1", 16, False)]
    auto = evaluate_matrix(configs, names=["crc"], fast=True)
    forced = evaluate_matrix(configs, names=["crc"], fast=True,
                             engine="columnar")
    assert forced.results_json() == auto.results_json()
    assert forced.instrumentation.columnar_fallback >= 1
    assert forced.instrumentation.cells_columnar == 0
    assert forced.instrumentation.counters()["sweep.columnar_fallback"] >= 1


@needs_numpy
def test_results_identical_with_and_without_numpy(monkeypatch):
    configs = [paper_system("C1", 16, False),
               paper_system("C3", 64, True)]
    with_numpy = evaluate_matrix(configs, names=["crc"], fast=True)
    assert with_numpy.instrumentation.cells_columnar == len(configs)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    without_numpy = evaluate_matrix(configs, names=["crc"], fast=True)
    assert without_numpy.instrumentation.cells_columnar == 0
    assert with_numpy.results_json() == without_numpy.results_json()


def test_columnar_counters_in_schema():
    assert SWEEP_COUNTERS["sweep.cells_columnar"] == "cells_columnar"
    assert SWEEP_COUNTERS["sweep.columnar_fallback"] == "columnar_fallback"


# ----------------------------------------------------------------------
# CLI engine flag.
# ----------------------------------------------------------------------
@needs_numpy
def test_cli_engine_flag_byte_identical(tmp_path):
    reports = {}
    for engine in ("event", "columnar"):
        out = tmp_path / f"{engine}.json"
        code = main(["sweep", "--only", "crc", "--arrays", "C1",
                     "--slots", "16", "--fast", "--no-cache",
                     "--engine", engine, "--json", str(out)])
        assert code == 0
        reports[engine] = out.read_bytes()
    assert reports["event"] == reports["columnar"]


# ----------------------------------------------------------------------
# Random-trace differential (hypothesis).
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:
    _MIX_OPS = ["+", "-", "^", "*", "&", "|"]

    @st.composite
    def _branchy_programs(draw):
        """Small always-terminating programs whose branch outcomes are
        data-dependent, so random traces exercise the predictor
        timelines, speculation exits and cache churn."""
        seed = draw(st.integers(1, 2**30))
        iters = draw(st.integers(8, 48))
        shift = draw(st.integers(1, 7))
        threshold = draw(st.integers(0, 255))
        op_a = draw(st.sampled_from(_MIX_OPS))
        op_b = draw(st.sampled_from(_MIX_OPS))
        mask = draw(st.sampled_from([63, 255, 1023]))
        return f"""
int main() {{
    unsigned x = {seed};
    unsigned acc = 0;
    int i;
    for (i = 0; i < {iters}; i++) {{
        x = x * 1664525 + 1013904223;
        if (((x >> {shift}) & 255) < {threshold}) {{
            acc = acc {op_a} (x & {mask});
        }} else {{
            acc = acc {op_b} 3;
        }}
        if ((x & 7) == 0) {{
            acc = acc + 1;
        }}
    }}
    print_int(acc & 0x7fffffff);
    return 0;
}}
"""

    @needs_numpy
    @settings(max_examples=10, deadline=None)
    @given(_branchy_programs(),
           st.sampled_from(["C1/4/spec", "C2/16/spec", "C3/64/nospec",
                            "lru"]))
    def test_random_trace_differential(source, which):
        from repro.minic import compile_to_program
        from repro.sim import run_program

        if which == "lru":
            config = custom_system(
                PAPER_SHAPES["C2"],
                DimParams(cache_slots=4, cache_policy="lru",
                          speculation=True))
        else:
            array, slots, spec = which.split("/")
            config = paper_system(array, int(slots), spec == "spec")
        program = compile_to_program(source)
        plain = run_program(program, collect_trace=True,
                            max_instructions=2_000_000)
        assert plain.exit_code == 0
        assert_same_metrics(
            evaluate_trace_columnar(plain.trace, config),
            evaluate_trace(plain.trace, config))
