"""The array allocator: dependence, resources, memory ordering, timing."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cgra import Allocator, ArrayShape, HI, LO
from repro.cgra.dataflow import (
    dim_destinations,
    dim_fu_class,
    dim_sources,
    dim_supported,
    has_immediate,
)
from repro.isa.instruction import Instruction

SHAPE = ArrayShape(rows=8, alus_per_row=2, mults_per_row=1, ldsts_per_row=2,
                   alu_chain=2, immediate_slots=16)


def alu(rd, rs, rt):
    return Instruction("addu", rs=rs, rt=rt, rd=rd)


def load(rt, rs, imm=0):
    return Instruction("lw", rs=rs, rt=rt, imm=imm)


def store(rt, rs, imm=0):
    return Instruction("sw", rs=rs, rt=rt, imm=imm)


# --- dataflow metadata ----------------------------------------------------

def test_dim_supported_classes():
    assert dim_supported(Instruction("addu", rd=1))
    assert dim_supported(Instruction("sll", rd=1, shamt=2))
    assert dim_supported(Instruction("mult"))
    assert dim_supported(Instruction("mflo", rd=1))
    assert dim_supported(Instruction("lw", rt=1))
    assert dim_supported(Instruction("sw", rt=1))
    assert not dim_supported(Instruction("div"))
    assert not dim_supported(Instruction("jal"))
    assert not dim_supported(Instruction("jr", rs=31))
    assert not dim_supported(Instruction("syscall"))
    assert not dim_supported(Instruction("beq"))


def test_hi_lo_tracked_as_context_slots():
    assert dim_destinations(Instruction("mult", rs=1, rt=2)) == (HI, LO)
    assert dim_sources(Instruction("mflo", rd=3)) == (LO,)
    assert dim_sources(Instruction("mfhi", rd=3)) == (HI,)
    assert dim_destinations(Instruction("mthi", rs=4)) == (HI,)


def test_zero_register_excluded_from_dataflow():
    instr = Instruction("addu", rs=0, rt=0, rd=0)
    assert dim_sources(instr) == ()
    assert dim_destinations(instr) == ()


def test_fu_classes():
    assert dim_fu_class(Instruction("addu", rd=1)) == "alu"
    assert dim_fu_class(Instruction("mult")) == "mult"
    assert dim_fu_class(Instruction("lw", rt=1)) == "mem"
    assert dim_fu_class(Instruction("mflo", rd=1)) == "alu"


def test_immediate_detection():
    assert has_immediate(Instruction("addiu", rs=1, rt=2, imm=4))
    assert not has_immediate(Instruction("addiu", rs=1, rt=2, imm=0))
    assert has_immediate(Instruction("sll", rt=1, rd=2, shamt=3))
    assert not has_immediate(Instruction("addu", rd=1))
    assert not has_immediate(Instruction("beq", rs=1, rt=2, imm=8))


# --- placement ------------------------------------------------------------

def test_independent_ops_share_a_line():
    alloc = Allocator(SHAPE)
    assert alloc.place(alu(1, 2, 3))
    assert alloc.place(alu(4, 5, 6))
    result = alloc.finish()
    assert result.lines_used == 1


def test_dependent_ops_stack_in_lines():
    alloc = Allocator(SHAPE)
    assert alloc.place(alu(1, 2, 3))
    assert alloc.place(alu(4, 1, 5))   # reads r1 -> next line
    assert alloc.place(alu(6, 4, 1))   # reads r4 -> third line
    assert alloc.finish().lines_used == 3


def test_line_capacity_forces_next_line():
    alloc = Allocator(SHAPE)  # 2 ALUs per line
    for i in range(3):
        assert alloc.place(alu(10 + i, 1, 2))
    assert alloc.finish().lines_used == 2


def test_resource_exhaustion_fails_placement():
    tiny = ArrayShape(rows=1, alus_per_row=1, mults_per_row=0,
                      ldsts_per_row=0)
    alloc = Allocator(tiny)
    assert alloc.place(alu(1, 2, 3))
    assert not alloc.place(alu(4, 5, 6))   # line full, no more rows
    assert not alloc.place(Instruction("mult", rs=1, rt=2))  # no mult FU
    assert alloc.count == 1


def test_immediate_slot_exhaustion():
    shape = ArrayShape(rows=8, alus_per_row=4, mults_per_row=1,
                       ldsts_per_row=2, immediate_slots=2)
    alloc = Allocator(shape)
    assert alloc.place(Instruction("addiu", rs=1, rt=2, imm=5))
    assert alloc.place(Instruction("addiu", rs=1, rt=3, imm=6))
    assert not alloc.place(Instruction("addiu", rs=1, rt=4, imm=7))
    # non-immediate ops still place
    assert alloc.place(alu(9, 1, 2))


def test_memory_program_order_is_monotonic():
    alloc = Allocator(SHAPE)
    assert alloc.place(store(1, 2, 0))
    assert alloc.place(load(3, 4, 8))      # may share the store's line
    assert alloc.place(store(5, 6, 16))    # never before the load's line
    lines = {}
    # reconstruct from result: we can only check aggregate invariants
    result = alloc.finish()
    assert result.mem_ops == 3
    assert result.stores == 2
    assert result.loads == 1


def test_load_feeding_alu_orders_lines():
    alloc = Allocator(SHAPE)
    assert alloc.place(load(1, 2, 0))
    assert alloc.place(alu(3, 1, 1))
    assert alloc.finish().lines_used == 2


def test_mult_consumer_through_lo():
    alloc = Allocator(SHAPE)
    assert alloc.place(Instruction("mult", rs=1, rt=2))
    assert alloc.place(Instruction("mflo", rd=3))
    assert alloc.place(alu(4, 3, 3))
    assert alloc.finish().lines_used == 3


def test_exec_cycles_alu_chain():
    alloc = Allocator(SHAPE)  # alu_chain=2
    alloc.place(alu(1, 2, 3))
    alloc.place(alu(4, 1, 1))
    assert alloc.exec_cycles() == 1   # two dependent ALU lines = 1 cycle
    alloc.place(alu(5, 4, 4))
    assert alloc.exec_cycles() == 2   # three lines -> ceil(1.5)


def test_exec_cycles_memory_lines_cost_full_cycle():
    alloc = Allocator(SHAPE)
    alloc.place(load(1, 2, 0))
    assert alloc.exec_cycles() == 1
    alloc.place(alu(3, 1, 1))
    assert alloc.exec_cycles() == 2   # 1 (mem line) + ceil(0.5)


def test_inputs_and_outputs_tracking():
    alloc = Allocator(SHAPE)
    alloc.place(alu(1, 2, 3))      # reads 2,3 (live-in), writes 1
    alloc.place(alu(4, 1, 5))      # reads 1 (internal), 5 (live-in)
    result = alloc.finish()
    assert result.inputs == frozenset({2, 3, 5})
    assert result.outputs == frozenset({1, 4})


def test_snapshot_restore_round_trip():
    alloc = Allocator(SHAPE)
    alloc.place(alu(1, 2, 3))
    snap = alloc.snapshot()
    alloc.place(alu(4, 1, 1))
    alloc.place(load(5, 1, 0))
    alloc.restore(snap)
    result = alloc.finish()
    assert result.num_instructions == 1
    assert result.outputs == frozenset({1})
    assert result.loads == 0


def test_nop_covered_but_free():
    alloc = Allocator(SHAPE)
    assert alloc.place(Instruction("sll", rd=0, rt=0, shamt=0))
    assert alloc.count == 1
    assert alloc.finish().lines_used == 0


def test_speculative_output_accounting():
    alloc = Allocator(SHAPE)
    alloc.place(alu(1, 2, 3))
    alloc.mark_nonspec_boundary()
    alloc.place(alu(4, 1, 1))
    alloc.place(alu(1, 4, 4))  # rewrites r1 speculatively
    result = alloc.finish()
    # last write wins: both r4 (new) and r1 (re-written after the
    # boundary) must be gated on branch resolution
    assert result.speculative_outputs == 2


def test_no_boundary_means_no_speculative_outputs():
    alloc = Allocator(SHAPE)
    alloc.place(alu(1, 2, 3))
    alloc.place(alu(4, 1, 1))
    assert alloc.finish().speculative_outputs == 0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 8), st.integers(0, 8),
                          st.integers(0, 8)), min_size=1, max_size=40))
def test_placement_invariants_random_alu_chains(specs):
    """Dependences always push consumers to strictly later lines."""
    alloc = Allocator(ArrayShape(rows=64, alus_per_row=2, mults_per_row=1,
                                 ldsts_per_row=2))
    writer_line = {}
    lines_used_before = 0
    for rd, rs, rt in specs:
        placed = alloc.place(alu(rd, rs, rt))
        assert placed  # 64 rows is plenty
    result = alloc.finish()
    assert result.num_instructions == len(
        [s for s in specs])
    assert result.lines_used <= 64
    # cycles are bounded below by lines/chain and above by count
    assert result.exec_cycles >= math.ceil(
        result.lines_used / alloc.shape.alu_chain)
    assert result.exec_cycles <= max(1, result.num_instructions)
