"""Energy and area models (Figures 5/6, Table 3)."""

import pytest

from repro.cgra.shape import ArrayShape
from repro.system import PAPER_SHAPES, paper_system
from repro.system.area import (
    AreaParams,
    area_report,
    cache_bytes,
    config_bits_report,
)
from repro.system.energy import (
    EnergyParams,
    energy_of,
    energy_ratio,
    iso_performance_energy_ratio,
)
from repro.system.traceeval import SystemMetrics
from repro.dim.engine import DimStats


def mips_metrics():
    return SystemMetrics(name="mips", cycles=1000, instructions=900,
                         fetches=900, loads=100, stores=50, branches=90)


def dim_metrics():
    dim = DimStats(array_executions=40, array_alu_ops=300,
                   array_mult_ops=20, array_mem_ops=80, array_cycles=120,
                   array_line_cycles=1200,
                   array_potential_line_cycles=5760,
                   translations=10, translated_instructions=200,
                   config_writes=8)
    return SystemMetrics(name="dim", cycles=500, instructions=900,
                         fetches=400, loads=100, stores=50, branches=90,
                         dim=dim)


def test_energy_breakdown_sums():
    breakdown = energy_of(mips_metrics())
    assert breakdown.total == pytest.approx(
        breakdown.core + breakdown.imem + breakdown.dmem
        + breakdown.array + breakdown.bt)
    assert breakdown.array == 0.0
    assert breakdown.bt == 0.0


def test_dim_energy_has_array_and_bt_components():
    breakdown = energy_of(dim_metrics())
    assert breakdown.array > 0
    assert breakdown.bt > 0
    power = breakdown.component_power()
    assert set(power) == {"core", "imem", "dmem", "array", "bt"}
    assert power["core"] == pytest.approx(EnergyParams().core_cycle)


def test_energy_ratio_favours_accelerated_run():
    ratio = energy_ratio(mips_metrics(), dim_metrics())
    # half the cycles and fetches should save energy even after paying
    # for the array
    assert ratio > 1.0


def test_fewer_fetches_save_imem_energy():
    base = energy_of(mips_metrics())
    accel = energy_of(dim_metrics())
    assert accel.imem < base.imem


def test_fu_gating_reduces_array_energy():
    plain = energy_of(dim_metrics())
    gated = energy_of(dim_metrics(), EnergyParams(fu_gating=True))
    assert gated.array < plain.array
    assert gated.core == plain.core


def test_iso_performance_scaling():
    """Section 5.3's closing claim: trading the 2x speedup for frequency
    (and voltage) multiplies the energy saving by ~speedup^2."""
    base, accel = mips_metrics(), dim_metrics()
    plain_ratio = energy_ratio(base, accel)
    iso = iso_performance_energy_ratio(base, accel)
    speedup = base.cycles / accel.cycles
    assert iso == pytest.approx(plain_ratio * speedup ** 2)
    linear = iso_performance_energy_ratio(base, accel,
                                          voltage_exponent=1.0)
    assert plain_ratio < linear < iso


# --- area -------------------------------------------------------------------

def test_area_c1_reproduces_paper_unit_counts():
    report = area_report(PAPER_SHAPES["C1"])
    by_unit = report.as_dict()
    assert by_unit["ALU"].count == 192
    assert by_unit["Multiplier"].count == 6
    assert by_unit["LD/ST"].count == 36
    assert by_unit["Input Mux"].count == 408
    assert by_unit["Output Mux"].count == 216


def test_area_c1_total_matches_paper_magnitude():
    report = area_report(PAPER_SHAPES["C1"])
    # paper: 664,102 gates, ~2.66M transistors
    assert report.total_gates == pytest.approx(664_102, rel=0.02)
    assert report.transistors() == pytest.approx(2_656_408, rel=0.02)


def test_area_scales_with_shape():
    small = area_report(PAPER_SHAPES["C1"]).total_gates
    large = area_report(PAPER_SHAPES["C2"]).total_gates
    assert large > small


def test_config_bits_c1_against_paper():
    bits = config_bits_report(ArrayShape(rows=24, alus_per_row=8,
                                         mults_per_row=1, ldsts_per_row=2,
                                         alu_chain=3, immediate_slots=4))
    assert bits.write_bitmap == 256        # paper: 256
    assert bits.reads_table == 1632        # paper: 1632
    assert bits.context_start == 40        # paper: 40
    assert bits.immediate_table == 128     # paper: 128 (4 immediates)
    # resource/writes tables are approximations; stay within 15%
    assert bits.resource_table == pytest.approx(786, rel=0.15)
    assert bits.writes_table == pytest.approx(576, rel=0.15)
    assert bits.stored_bits > 0
    assert bits.write_bitmap not in (None, 0)


def test_cache_bytes_linear_in_slots():
    shape = PAPER_SHAPES["C1"]
    sizes = [cache_bytes(shape, slots) for slots in (2, 4, 8, 16)]
    assert all(b < c for b, c in zip(sizes, sizes[1:]))
    assert sizes[1] == pytest.approx(2 * sizes[0], rel=0.01)
    assert sizes[3] == pytest.approx(8 * sizes[0], rel=0.01)


def test_paper_system_shapes():
    assert PAPER_SHAPES["C1"].columns == 11
    assert PAPER_SHAPES["C2"].columns == 16
    assert PAPER_SHAPES["C3"].columns == 20
    config = paper_system("C2", 64, True)
    assert config.dim.cache_slots == 64
    assert config.dim.speculation
    assert "C2" in config.name
    ideal = paper_system("ideal")
    assert ideal.dim.cache_slots >= 1 << 20


def test_paper_system_rejects_unknown_array():
    with pytest.raises(ValueError,
                       match="valid array names are C1, C2, C3, ideal"):
        paper_system("C9")
