"""The translation algorithm on hand-written basic blocks."""

import pytest

from repro.asm import assemble
from repro.cgra.shape import ArrayShape
from repro.dim import BimodalPredictor, DimParams, Translator
from repro.sim import Simulator

SHAPE = ArrayShape(rows=16, alus_per_row=4, mults_per_row=1,
                   ldsts_per_row=2, immediate_slots=32)


def blocks_of(source):
    """Assemble and return (simulator, block_at) with all blocks formed."""
    program = assemble(source)
    sim = Simulator(program)
    return sim


def make_translator(sim, speculation=False, predictor=None, **kwargs):
    params = DimParams(speculation=speculation, **kwargs)
    predictor = predictor or BimodalPredictor(64)

    def provider(pc):
        try:
            return sim.block_at(pc)
        except Exception:
            return None

    return Translator(SHAPE, params, predictor, provider), predictor


def test_short_block_not_cached():
    sim = blocks_of("""
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        jr $ra
    """)
    translator, _ = make_translator(sim)
    block = sim.block_at(sim.pc)
    assert translator.translate(block) is None  # 2 instructions < 4


def test_basic_block_translates_without_terminator():
    sim = blocks_of("""
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        sll $t3, $t2, 2
        beq $t0, $t1, 0x400000
    """)
    translator, _ = make_translator(sim)
    config = translator.translate(sim.block_at(sim.pc))
    assert config is not None
    assert len(config.blocks) == 1
    assert config.blocks[0].covered == 4
    assert not config.blocks[0].includes_terminator
    assert config.covered_instructions == 4


def test_translation_stops_at_unsupported():
    sim = blocks_of("""
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        addu $t3, $t0, $t1
        div $t0, $t1
        addu $t4, $t0, $t1
        jr $ra
    """)
    translator, _ = make_translator(sim)
    config = translator.translate(sim.block_at(sim.pc))
    assert config.blocks[0].covered == 4  # stops before div


def test_no_speculation_means_single_block():
    sim = blocks_of("""
    top:
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        sll $t3, $t2, 2
        bne $t0, $t1, top
    """)
    translator, predictor = make_translator(sim, speculation=False)
    for _ in range(4):
        predictor.update(sim.block_at(sim.pc).branch_pc, True)
    config = translator.translate(sim.block_at(sim.pc))
    assert len(config.blocks) == 1
    assert not config.extendable


def test_speculative_extension_requires_saturation():
    source = """
    top:
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        sll $t3, $t2, 2
        bne $t0, $t1, top
    """
    sim = blocks_of(source)
    block = sim.block_at(sim.pc)
    translator, predictor = make_translator(sim, speculation=True)
    config = translator.translate(block)
    assert len(config.blocks) == 1
    assert config.extendable      # counter not saturated yet
    predictor.update(block.branch_pc, True)
    predictor.update(block.branch_pc, True)
    config = translator.translate(block)
    assert len(config.blocks) > 1
    assert config.blocks[0].includes_terminator
    assert config.blocks[0].expected_taken is True
    assert config.speculative_depth >= 1


def test_speculation_depth_limit():
    source = """
    top:
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        sll $t3, $t2, 2
        bne $t0, $t1, top
    """
    sim = blocks_of(source)
    block = sim.block_at(sim.pc)
    translator, predictor = make_translator(sim, speculation=True,
                                            max_spec_depth=2)
    for _ in range(3):
        predictor.update(block.branch_pc, True)
    config = translator.translate(block)
    assert config.speculative_depth == 2
    assert len(config.blocks) == 3


def test_unconditional_jump_followed_for_free():
    sim = blocks_of("""
    entry:
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        sll $t3, $t2, 2
        j second
    second:
        addiu $t4, $t4, 3
        addu $t5, $t4, $t0
        addu $t6, $t5, $t1
        addu $t7, $t6, $t2
        jr $ra
    """)
    # make both blocks known
    first = sim.block_at(sim.pc)
    second = sim.block_at(sim.program.symbols["second"])
    translator, _ = make_translator(sim, speculation=True)
    config = translator.translate(first)
    assert len(config.blocks) == 2
    assert config.blocks[0].expected_taken is True
    assert config.speculative_depth == 0   # j never mis-speculates
    # and without speculation, j ends the configuration
    translator, _ = make_translator(sim, speculation=False)
    config = translator.translate(first)
    assert len(config.blocks) == 1


def test_all_or_nothing_extension_on_resources():
    # successor block too large for the leftover array: extension must
    # roll back entirely rather than cover a fragment
    big_body = "\n".join(f"addu $t{i % 8}, $t{(i+1) % 8}, $t{(i+2) % 8}"
                         for i in range(60))
    sim = blocks_of(f"""
    top:
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        sll $t3, $t2, 2
        bne $t0, $t1, second
    second:
        {big_body}
        jr $ra
    """)
    first = sim.block_at(sim.pc)
    sim.block_at(first.taken_target())
    translator, predictor = make_translator(sim, speculation=True)
    for _ in range(3):
        predictor.update(first.branch_pc, True)
    config = translator.translate(first)
    assert len(config.blocks) == 1
    assert not config.blocks[0].includes_terminator
    assert not config.extendable


def test_unknown_successor_defers_extension():
    sim = blocks_of("""
    top:
        addiu $t0, $t0, 1
        addiu $t1, $t1, 2
        addu $t2, $t0, $t1
        sll $t3, $t2, 2
        bne $t0, $t1, 0x400100
    """)
    block = sim.block_at(sim.pc)
    params = DimParams(speculation=True)
    predictor = BimodalPredictor(64)
    translator = Translator(SHAPE, params, predictor, lambda pc: None)
    for _ in range(3):
        predictor.update(block.branch_pc, True)
    config = translator.translate(block)
    assert len(config.blocks) == 1
    assert config.extendable   # retry once the successor is known


def test_reconfiguration_cycles_scale_with_inputs():
    sim = blocks_of("""
        addu $t0, $s0, $s1
        addu $t1, $s2, $s3
        addu $t2, $s4, $s5
        addu $t3, $s6, $s7
        addu $t4, $a0, $a1
        addu $t5, $a2, $a3
        addu $t6, $v0, $v1
        jr $ra
    """)
    translator, _ = make_translator(sim)
    config = translator.translate(sim.block_at(sim.pc))
    assert len(config.result.inputs) == 14
    # 1 cache-read cycle + ceil(14/6) operand-fetch cycles
    assert config.reconfiguration_cycles == 1 + 3
