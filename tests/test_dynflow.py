"""Dynamic control-flow translation (``DimParams.dynflow_mode``).

Five families of guarantees:

1. Params: the mode vocabulary is closed at construction time, with
   the valid values named in the error.
2. Translator: loop-aware closure builds iterating configurations
   (bounded by body size and rotating-register carry), predicated
   dual-path merge translates both directions of an unsaturated
   branch; both kinds are never extendable.
3. Transparency: every mode stays architecturally bit-identical to the
   plain core, and the trace evaluator stays cycle-identical to the
   coupled simulator — including the new ``dynflow.*`` accounting.
4. The columnar engine is byte-identical to the event engine for every
   mode x workload x configuration cell, including through an inline
   serve service and a real two-worker fleet on the dynflow stress
   corpus profiles (``loopy``/``divergent``).
5. Observability and search: the ``dynflow.*`` counters/events live in
   the closed :mod:`repro.obs` schema and ``dynflow_space()`` opens
   the mode axis over the default exploration grid.
"""

import dataclasses
import json

import pytest

from repro import api
from repro.asm import assemble
from repro.cgra.shape import ArrayShape
from repro.corpus import CorpusKnobs, generate_corpus, register_corpus
from repro.dim import BimodalPredictor, DimParams, Translator
from repro.dim.memo import TranslationMemo
from repro.dim.params import DYNFLOW_MODES
from repro.minic import compile_to_program
from repro.obs import EVENT_TYPES, Telemetry, engine_counters
from repro.obs.schema import DYNFLOW_COUNTERS
from repro.sim import Simulator, run_program
from repro.system import evaluate_trace, paper_system
from repro.system.colreplay import (
    ColumnarContext,
    columnar_available,
    evaluate_trace_columnar,
)
from repro.system.coupled import run_coupled

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:
    HAVE_HYPOTHESIS = False

needs_numpy = pytest.mark.skipif(not columnar_available(),
                                 reason="columnar engine needs numpy")

MODES = ("off", "loop", "dual", "both")

PROGRAMS = {
    "loops": """
    unsigned tab[64];
    int main() {
        int i; int j;
        unsigned acc = 1;
        for (i = 0; i < 64; i++) { tab[i] = i * 2654435761; }
        for (j = 0; j < 20; j++) {
            for (i = 0; i < 64; i++) {
                acc = acc ^ (tab[i] + (acc << 3)) + (acc >> 5);
                tab[i] = acc;
            }
        }
        print_int(acc & 0x7fffffff);
        return 0;
    }
    """,
    "branchy": """
    int main() {
        int i;
        int odd = 0;
        int even = 0;
        unsigned seed = 77;
        for (i = 0; i < 3000; i++) {
            seed = seed * 1103515245 + 12345;
            if ((seed >> 16) & 1) { odd++; }
            else {
                if ((seed >> 17) & 1) { even += 2; } else { even++; }
            }
        }
        print_int(odd);
        print_char(' ');
        print_int(even);
        return 0;
    }
    """,
    "recursion": """
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() { print_int(fib(15)); return 0; }
    """,
    "phase_change": """
    int main() {
        int i;
        int a = 0;
        for (i = 0; i < 2000; i++) {
            if (i < 1000) { a += 1; } else { a += 3; }
        }
        print_int(a);
        return 0;
    }
    """,
}

#: the DimStats fields both execution paths must agree on exactly.
_DIM_FIELDS = (
    "translations", "array_executions", "array_instructions",
    "misspeculations", "flushes", "config_writes", "array_cycles",
    "array_line_cycles", "loop_executions", "loop_trips",
    "loop_configs", "loop_retired", "dual_executions", "dual_configs",
    "dual_squashed_instructions", "dual_retired",
)


def with_mode(config, mode, **dim_overrides):
    return dataclasses.replace(
        config,
        dim=dataclasses.replace(config.dim, dynflow_mode=mode,
                                **dim_overrides),
        name=f"{config.name}+{mode}")


@pytest.fixture(scope="module")
def plain_runs():
    runs = {}
    for name, source in PROGRAMS.items():
        program = compile_to_program(source)
        runs[name] = (program, run_program(program, collect_trace=True))
    return runs


# ----------------------------------------------------------------------
# 1. Params validation.
# ----------------------------------------------------------------------
def test_dynflow_mode_vocabulary_is_closed():
    assert set(DYNFLOW_MODES) == set(MODES)
    with pytest.raises(ValueError) as excinfo:
        DimParams(dynflow_mode="looop")
    for mode in DYNFLOW_MODES:
        assert mode in str(excinfo.value)


def test_mode_switches():
    assert not DimParams().loop_enabled
    assert not DimParams().dual_enabled
    assert DimParams(speculation=True, dynflow_mode="loop").loop_enabled
    assert DimParams(speculation=True, dynflow_mode="dual").dual_enabled
    both = DimParams(speculation=True, dynflow_mode="both")
    assert both.loop_enabled and both.dual_enabled
    # both modes ride on the speculative translation walk
    assert not DimParams(dynflow_mode="loop").loop_enabled
    assert not DimParams(dynflow_mode="dual").dual_enabled


def test_loop_knobs_validated():
    with pytest.raises(ValueError):
        DimParams(loop_max_body_blocks=0)
    with pytest.raises(ValueError):
        DimParams(loop_carry_regs=-1)
    with pytest.raises(ValueError):
        DimParams(loop_exit_check_cycles=-1)
    with pytest.raises(ValueError):
        DimParams(dual_gate_cycles=-1)


# ----------------------------------------------------------------------
# 2. Translator units.
# ----------------------------------------------------------------------
SHAPE = ArrayShape(rows=16, alus_per_row=4, mults_per_row=1,
                   ldsts_per_row=2, immediate_slots=32)

SELF_LOOP = """
top:
    addiu $t0, $t0, 1
    addiu $t1, $t1, 2
    addu $t2, $t0, $t1
    sll $t3, $t2, 2
    bne $t0, $t1, top
"""

DIAMOND = """
    addiu $t0, $t0, 1
    addiu $t1, $t1, 2
    addu $t2, $t0, $t1
    sll $t3, $t2, 2
    beq $t0, $t1, then
    addiu $t4, $t4, 1
    addiu $t5, $t5, 2
    addu $t6, $t4, $t5
    addu $t7, $t6, $t4
    jr $ra
then:
    addiu $s0, $s0, 3
    addiu $s1, $s1, 4
    addu $s2, $s0, $s1
    addu $s3, $s2, $s0
    jr $ra
"""


def make_translator(sim, **kwargs):
    params = DimParams(**kwargs)
    predictor = BimodalPredictor(64)

    def provider(pc):
        try:
            return sim.block_at(pc)
        except Exception:
            return None

    return Translator(SHAPE, params, predictor, provider), predictor


def test_loop_closure_builds_iterating_configuration():
    sim = Simulator(assemble(SELF_LOOP))
    translator, predictor = make_translator(sim, speculation=True,
                                            dynflow_mode="loop")
    block = sim.block_at(sim.pc)
    for _ in range(2):
        predictor.update(block.branch_pc, True)
    config = translator.translate(block)
    assert config.kind == "loop"
    assert not config.extendable
    assert config.blocks[-1].includes_terminator
    assert config.blocks[-1].expected_taken is True
    assert config.trip_cycles > 0
    # a continuation trip never costs more than a fresh entry
    assert config.trip_cycles <= config.exec_cycles


def test_loop_closure_requires_saturation_and_mode():
    sim = Simulator(assemble(SELF_LOOP))
    # saturated but mode off -> ordinary speculative merge, not a loop
    translator, predictor = make_translator(sim, speculation=True)
    block = sim.block_at(sim.pc)
    for _ in range(2):
        predictor.update(block.branch_pc, True)
    assert translator.translate(block).kind == "linear"
    # mode on but unsaturated -> no loop either
    translator, predictor = make_translator(sim, speculation=True,
                                            dynflow_mode="loop")
    assert translator.translate(sim.block_at(sim.pc)).kind == "linear"


def test_loop_carry_register_bound_gates_closure():
    sim = Simulator(assemble(SELF_LOOP))
    translator, predictor = make_translator(sim, speculation=True,
                                            dynflow_mode="loop",
                                            loop_carry_regs=1)
    block = sim.block_at(sim.pc)
    for _ in range(2):
        predictor.update(block.branch_pc, True)
    # the body carries several registers across the back edge; a
    # 1-register rotating file cannot hold them, so no loop closes
    assert translator.translate(block).kind == "linear"


def test_dual_merge_translates_both_directions():
    sim = Simulator(assemble(DIAMOND))
    translator, predictor = make_translator(sim, speculation=True,
                                            dynflow_mode="dual")
    config = translator.translate(sim.block_at(sim.pc))
    assert config.kind == "dual"
    assert not config.extendable
    assert config.dual_taken is not None
    assert config.dual_fallthrough is not None
    assert config.dual_taken.block.start_pc \
        != config.dual_fallthrough.block.start_pc
    # predication covers the shorter side unconditionally
    assert config.covered_instructions >= config.blocks[0].covered + min(
        config.dual_taken.covered, config.dual_fallthrough.covered)


def test_dual_merge_defers_to_saturated_speculation():
    sim = Simulator(assemble(DIAMOND))
    translator, predictor = make_translator(sim, speculation=True,
                                            dynflow_mode="dual")
    block = sim.block_at(sim.pc)
    for _ in range(2):
        predictor.update(block.branch_pc, True)
    # a saturated branch speculates as before; dual is for the
    # unsaturated ones speculation cannot touch
    assert translator.translate(block).kind == "linear"


# ----------------------------------------------------------------------
# 3. Transparency: plain core == coupled; coupled == trace evaluator.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES[1:])
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_modes_are_transparent_and_cycle_exact(plain_runs, name, mode):
    program, plain = plain_runs[name]
    for base in (paper_system("C1", 16, True),
                 paper_system("C3", 64, True)):
        config = with_mode(base, mode)
        coupled = run_coupled(program, config)
        assert coupled.output == plain.output
        assert coupled.exit_code == plain.exit_code
        assert coupled.registers == plain.registers
        assert coupled.memory.snapshot_pages() \
            == plain.memory.snapshot_pages()
        metrics = evaluate_trace(plain.trace, config)
        assert metrics.cycles == coupled.stats.cycles
        assert metrics.instructions == coupled.stats.instructions
        assert metrics.loads == coupled.stats.loads
        assert metrics.stores == coupled.stats.stores
        for field_name in _DIM_FIELDS:
            assert getattr(metrics.dim, field_name) \
                == getattr(coupled.dim_stats, field_name), field_name
        assert metrics.cache_hits == coupled.cache_hits
        assert metrics.cache_lookups == coupled.cache_lookups


def test_loop_mode_amortises_reconfiguration(plain_runs):
    _, plain = plain_runs["loops"]
    base = paper_system("C1", 64, True)
    off = evaluate_trace(plain.trace, with_mode(base, "off"))
    loop = evaluate_trace(plain.trace, with_mode(base, "loop"))
    assert loop.dim.loop_executions > 0
    # many trips per entry: that is the amortisation
    assert loop.dim.loop_trips > 4 * loop.dim.loop_executions
    assert loop.cycles < off.cycles


def test_dual_mode_trades_squash_for_misspeculation(plain_runs):
    _, plain = plain_runs["branchy"]
    base = paper_system("C1", 64, True)
    off = evaluate_trace(plain.trace, with_mode(base, "off"))
    dual = evaluate_trace(plain.trace, with_mode(base, "dual"))
    assert dual.dim.dual_executions > 0
    assert dual.dim.dual_squashed_instructions > 0
    # both paths ride along, so mispredicted merges disappear
    assert dual.dim.misspeculations < off.dim.misspeculations


def test_loop_retires_when_backedge_saturates_toward_exit():
    """Once the back-edge counter saturates in the exit direction the
    loop phase is over: the configuration is invalidated and counted
    as retired, not flushed."""
    from repro.dim import DimEngine

    sim = Simulator(assemble(SELF_LOOP))
    engine = DimEngine(SHAPE, DimParams(cache_slots=8, speculation=True,
                                        dynflow_mode="loop"),
                       sim.block_at)
    block = sim.block_at(sim.pc)
    engine.observe_branch(block.branch_pc, True)
    engine.observe_branch(block.branch_pc, True)
    engine.consider_translation(block)
    config = engine.lookup(block.start_pc)
    assert config.kind == "loop"
    back = config.blocks[-1]
    flushes_before = engine.stats.flushes
    # drive the back-edge toward exit until the counter saturates
    while engine.stats.loop_retired == 0:
        assert engine.lookup(block.start_pc) is not None
        assert engine.loop_backedge(config, back, False) is False
    assert engine.lookup(block.start_pc) is None
    assert engine.cache.invalidations == 1
    assert engine.stats.flushes == flushes_before  # retire, not flush


def test_dual_retires_once_the_branch_saturates():
    from repro.dim import DimEngine

    sim = Simulator(assemble(DIAMOND))
    engine = DimEngine(SHAPE, DimParams(cache_slots=8, speculation=True,
                                        dynflow_mode="dual"),
                       sim.block_at)
    block = sim.block_at(sim.pc)
    engine.consider_translation(block)
    config = engine.lookup(block.start_pc)
    assert config.kind == "dual"
    while engine.stats.dual_retired == 0:
        winner = engine.dual_resolution(config, config.blocks[-1], True)
        assert winner is config.dual_taken
    assert engine.lookup(block.start_pc) is None
    assert engine.stats.dual_squashed_instructions \
        >= config.dual_fallthrough.covered


# ----------------------------------------------------------------------
# 4. Columnar byte-identity.
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_columnar_matches_event_engine_per_mode(plain_runs, name):
    _, plain = plain_runs[name]
    context = ColumnarContext(plain.trace, name=name)
    memo = TranslationMemo()
    for base in (paper_system("C1", 4, True),
                 paper_system("C2", 16, True),
                 paper_system("C3", 64, True)):
        for mode in MODES:
            config = with_mode(base, mode)
            event = evaluate_trace(plain.trace, config, name=name,
                                   memo=memo)
            columnar = evaluate_trace_columnar(plain.trace, config,
                                               name=name,
                                               context=context)
            assert dataclasses.asdict(columnar) \
                == dataclasses.asdict(event), (base.name, mode)


@needs_numpy
def test_columnar_matches_event_engine_nondefault_knobs(plain_runs):
    _, plain = plain_runs["loops"]
    context = ColumnarContext(plain.trace, name="loops")
    base = paper_system("C1", 16, True)
    for overrides in ({"loop_max_body_blocks": 1},
                      {"loop_exit_check_cycles": 3},
                      {"loop_carry_regs": 2},
                      {"dual_gate_cycles": 2}):
        for mode in ("loop", "dual", "both"):
            config = with_mode(base, mode, **overrides)
            event = evaluate_trace(plain.trace, config)
            columnar = evaluate_trace_columnar(plain.trace, config,
                                               context=context)
            assert dataclasses.asdict(columnar) \
                == dataclasses.asdict(event), (overrides, mode)


# ----------------------------------------------------------------------
# 4b. The dynflow corpus profiles, across all four execution paths.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dynflow_corpus_names():
    from repro.workloads import unregister_generated

    names = []
    for seed, knobs in ((13, CorpusKnobs.loopy()),
                        (14, CorpusKnobs.divergent())):
        names.extend(register_corpus(
            generate_corpus(seed, 4, knobs=knobs)))
    yield names
    unregister_generated()  # keep the registry clean for later modules


@needs_numpy
def test_dynflow_profiles_byte_identical_across_engines(
        dynflow_corpus_names):
    shape = ArrayShape(rows=16, alus_per_row=4, mults_per_row=2,
                       ldsts_per_row=2)
    configs = [
        api.SystemSpec.of(shape, DimParams(
            cache_slots=16, speculation=True,
            dynflow_mode=mode)).build()
        for mode in MODES]
    event = api.sweep(configs, names=dynflow_corpus_names, fast=True,
                      engine="event")
    columnar = api.sweep(configs, names=dynflow_corpus_names, fast=True,
                         engine="columnar")
    assert event.results_json() == columnar.results_json()


def test_dynflow_profiles_byte_identical_through_serve_and_fleet(
        dynflow_corpus_names):
    """An inline serve service and a real two-worker fleet agree
    byte-for-byte with offline evaluation under every dynflow mode."""
    from repro.fleet import FleetCoordinator
    from repro.fleet.coordinator import start_fleet_http
    from repro.serve import EvalService, ServeClient, start_http

    names = dynflow_corpus_names[:3] + dynflow_corpus_names[4:7]
    shape = ArrayShape(rows=16, alus_per_row=4, mults_per_row=2,
                       ldsts_per_row=2)
    spec = api.SystemSpec.of(shape, DimParams(
        cache_slots=16, speculation=True, dynflow_mode="both"))
    config = spec.build()
    wire = spec.to_dict()
    offline = api.sweep([config], names=names, fast=True)

    svc = EvalService(workers=0, cache_root=None, batch_window=0.0)
    svc.start()
    server, _ = start_http(svc)
    try:
        client = ServeClient("http://%s:%s" % server.server_address[:2],
                             timeout=300.0)
        job = client.submit("sweep", configs=[wire], names=names,
                            fast=True)
        payload = client.wait(job["job_id"], timeout=300)
        assert payload["state"] == "done"
        assert payload["result"]["matrix_json"] == offline.results_json()
    finally:
        svc.stop(drain=False)
        server.shutdown()

    workers = []
    for _ in range(2):
        wsvc = EvalService(workers=0, cache_root=None, batch_window=0.0)
        wsvc.start()
        wserver, _ = start_http(wsvc)
        workers.append((wsvc, wserver,
                        "http://%s:%s" % wserver.server_address[:2]))
    fleet = FleetCoordinator(heartbeat_interval=0.05).start()
    fserver, _ = start_fleet_http(fleet)
    try:
        for index, (_, _, url) in enumerate(workers):
            fleet.register_worker(f"w{index}", url)
        fclient = ServeClient(
            "http://%s:%s" % fserver.server_address[:2], timeout=300.0)
        jobs = {name: fclient.submit("evaluate", configs=[wire],
                                     names=[name], fast=True)["job_id"]
                for name in names}
        expected = {name: api.evaluate(config, names=[name],
                                       fast=True).to_json()
                    for name in names}
        for name, job_id in jobs.items():
            payload = fclient.wait(job_id, timeout=300)
            assert payload["state"] == "done", name
            assert payload["result"]["suite_json"] == expected[name], name
        assert all(wsvc.stats.batches > 0 for wsvc, _, _ in workers)
    finally:
        fleet.stop(drain=False)
        fserver.shutdown()
        for wsvc, wserver, _ in workers:
            wsvc.stop(drain=False)
            wserver.shutdown()


# ----------------------------------------------------------------------
# 4c. Random-trace differential (hypothesis).
# ----------------------------------------------------------------------
if HAVE_HYPOTHESIS:

    @st.composite
    def _looping_programs(draw):
        """Programs mixing a hot counted loop (loop-mode fodder) with
        data-dependent diamonds (dual-mode fodder), always
        terminating."""
        seed = draw(st.integers(1, 2**30))
        outer = draw(st.integers(2, 6))
        inner = draw(st.integers(4, 24))
        shift = draw(st.integers(1, 7))
        threshold = draw(st.integers(0, 255))
        mask = draw(st.sampled_from([63, 255, 1023]))
        return f"""
int main() {{
    unsigned x = {seed};
    unsigned acc = 0;
    int i; int j;
    for (j = 0; j < {outer}; j++) {{
        for (i = 0; i < {inner}; i++) {{
            x = x * 1664525 + 1013904223;
            acc = acc ^ (x & {mask}) + (acc << 1);
        }}
        if (((x >> {shift}) & 255) < {threshold}) {{
            acc = acc + 7;
        }} else {{
            acc = acc * 3;
        }}
    }}
    print_int(acc & 0x7fffffff);
    return 0;
}}
"""

    @settings(max_examples=8, deadline=None)
    @given(_looping_programs(), st.sampled_from(MODES[1:]),
           st.sampled_from(["C1/8", "C3/64"]))
    def test_random_trace_loop_and_dual_accounting(source, mode, which):
        """Coupled and trace-replay agree on every dynflow counter for
        random loop/diamond mixes, and loop-trip accounting is
        conservative: trips never undercount entries."""
        array, slots = which.split("/")
        config = with_mode(paper_system(array, int(slots), True), mode)
        program = compile_to_program(source)
        plain = run_program(program, collect_trace=True,
                            max_instructions=2_000_000)
        assert plain.exit_code == 0
        coupled = run_coupled(program, config)
        assert coupled.output == plain.output
        metrics = evaluate_trace(plain.trace, config)
        assert metrics.cycles == coupled.stats.cycles
        for field_name in _DIM_FIELDS:
            assert getattr(metrics.dim, field_name) \
                == getattr(coupled.dim_stats, field_name), field_name
        assert metrics.dim.loop_trips >= metrics.dim.loop_executions
        assert metrics.dim.loop_configs >= metrics.dim.loop_retired
        assert metrics.dim.dual_configs >= metrics.dim.dual_retired

    @needs_numpy
    @settings(max_examples=8, deadline=None)
    @given(_looping_programs(), st.sampled_from(MODES[1:]))
    def test_random_trace_columnar_differential(source, mode):
        config = with_mode(paper_system("C1", 8, True), mode)
        program = compile_to_program(source)
        plain = run_program(program, collect_trace=True,
                            max_instructions=2_000_000)
        assert plain.exit_code == 0
        assert dataclasses.asdict(
            evaluate_trace_columnar(plain.trace, config)) \
            == dataclasses.asdict(evaluate_trace(plain.trace, config))


# ----------------------------------------------------------------------
# 5. Observability and search integration.
# ----------------------------------------------------------------------
def test_dynflow_events_live_in_the_closed_schema():
    assert {"dynflow.loop_committed",
            "dynflow.dual_committed"} <= EVENT_TYPES
    tel = Telemetry()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        tel.emit("dynflow.loop_exploded", pc=0)


def test_dynflow_counters_export_through_engine_counters(plain_runs):
    program, _ = plain_runs["loops"]
    from repro.system.coupled import CoupledSimulator
    config = with_mode(paper_system("C1", 16, True), "both")
    tel = Telemetry()
    sim = CoupledSimulator(program, config, telemetry=tel)
    sim.run()
    counters = engine_counters(sim.engine)
    assert set(DYNFLOW_COUNTERS) <= set(counters)
    assert counters["dynflow.loop_executions"] > 0
    assert counters["dynflow.loop_trips"] \
        >= counters["dynflow.loop_executions"]
    types = {record.get("type") for record in tel.events}
    assert "dynflow.loop_committed" in types
    from repro.obs import validate_jsonl
    assert validate_jsonl(tel.events.to_jsonl().splitlines()) == []


def test_dynflow_space_opens_the_mode_axis():
    from repro.dse.space import default_space, dynflow_space
    space = dynflow_space()
    base = default_space()
    assert space.size == base.size * len(MODES)
    off_plane = {
        tuple(sorted((k, v) for k, v in c.as_dict().items()
                     if k != "dynflow_mode"))
        for c in space.candidates() if c.get("dynflow_mode") == "off"}
    assert off_plane == {tuple(sorted(c.as_dict().items()))
                         for c in base.candidates()}
    sample = space.candidates()[7]
    config = space.config_of(sample)
    assert config.dim.dynflow_mode == sample.get("dynflow_mode")


# ----------------------------------------------------------------------
# CLI reach and the committed smoke golden.
# ----------------------------------------------------------------------
def test_cli_dynflow_lowers_paper_arrays_to_shape_specs(tmp_path,
                                                        capsys):
    from repro.cli import main

    out = tmp_path / "sweep.json"
    assert main(["sweep", "--only", "crc", "--arrays", "C1",
                 "--slots", "16", "--spec", "on", "--fast",
                 "--no-cache", "--dynflow", "loop",
                 "--json", str(out)]) == 0
    capsys.readouterr()
    report = json.loads(out.read_text())
    (system,) = {entry["system"] for entry in report["systems"]}
    assert "dynflow_mode=loop" in system and system.startswith("r24x8a")


def test_cli_dynflow_rejects_ideal_and_default_matrix():
    from repro.cli import main

    with pytest.raises(SystemExit, match="ideal"):
        main(["sweep", "--only", "crc", "--arrays", "ideal",
              "--dynflow", "loop", "--no-cache"])
    with pytest.raises(SystemExit, match="explicit --arrays"):
        main(["sweep", "--only", "crc", "--dynflow", "loop",
              "--no-cache"])


def test_dynflow_smoke_frontier_matches_committed_golden():
    """The CI golden stays regenerable from the committed space."""
    from pathlib import Path

    from repro.dse import explore
    from repro.dse.space import load_space

    root = Path(__file__).parent.parent
    space = load_space(root / "examples" / "dynflow_smoke_space.json")
    result = explore(space=space, strategy="grid", seed=7,
                     objectives=("speedup", "area"),
                     workloads=("crc", "quicksort"), fast=True)
    golden = (root / "tests" / "data"
              / "dynflow_smoke_frontier.json").read_text()
    assert result.to_json() + "\n" == golden
    # the frontier is won by a dynflow mode, not the off plane.
    assert all(point.candidate.get("dynflow_mode") != "off"
               for point in result.points)
