"""mini-C lexer, parser and semantic analysis."""

import pytest

from repro.minic import LexerError, ParseError, SemaError, analyze, parse
from repro.minic.astnodes import (
    AssignStmt,
    BinaryExpr,
    ForStmt,
    IfStmt,
    NumExpr,
    ReturnStmt,
    WhileStmt,
)
from repro.minic.lexer import tokenize


# --- lexer ---------------------------------------------------------------

def test_tokens_basic():
    tokens = tokenize("int x = 0x1F + 'a'; // comment")
    kinds = [(t.kind, t.text) for t in tokens[:-1]]
    assert kinds == [("kw", "int"), ("ident", "x"), ("op", "="),
                     ("num", "0x1F"), ("op", "+"), ("num", "'a'"),
                     ("op", ";")]
    assert tokens[3].value == 31
    assert tokens[5].value == 97


def test_maximal_munch_operators():
    tokens = tokenize("a <<= b >> c >= d == e ++f")
    texts = [t.text for t in tokens if t.kind == "op"]
    assert texts == ["<<=", ">>", ">=", "==", "++"]


def test_block_comments_track_lines():
    tokens = tokenize("/* line1\nline2 */ int x;")
    assert tokens[0].line == 2


def test_string_escapes():
    tokens = tokenize(r'"a\n\t\\"')
    assert tokens[0].text == "a\n\t\\"


def test_lexer_errors():
    with pytest.raises(LexerError):
        tokenize("int x = @;")
    with pytest.raises(LexerError):
        tokenize('"unterminated')
    with pytest.raises(LexerError):
        tokenize("/* forever")
    with pytest.raises(LexerError):
        tokenize("'ab'")


# --- parser --------------------------------------------------------------

def test_precedence_shapes_tree():
    unit = parse("int main() { return 1 + 2 * 3; }")
    ret = unit.functions[0].body[0]
    assert isinstance(ret, ReturnStmt)
    expr = ret.value
    assert isinstance(expr, BinaryExpr) and expr.op == "+"
    assert isinstance(expr.right, BinaryExpr) and expr.right.op == "*"


def test_comparison_binds_tighter_than_logical():
    unit = parse("int main() { return 1 < 2 && 3 == 3; }")
    expr = unit.functions[0].body[0].value
    assert expr.op == "&&"
    assert expr.left.op == "<"
    assert expr.right.op == "=="


def test_control_flow_statements():
    unit = parse("""
    int main() {
        int i;
        for (i = 0; i < 4; i++) {
            if (i == 2) { continue; } else { i += 1; }
        }
        while (i > 0) { i--; }
        do { i = i + 1; } while (i < 3);
        return i;
    }
    """)
    body = unit.functions[0].body
    assert isinstance(body[1], ForStmt)
    assert isinstance(body[1].body[0], IfStmt)
    assert isinstance(body[2], WhileStmt) and not body[2].is_do
    assert isinstance(body[3], WhileStmt) and body[3].is_do


def test_global_initializers():
    unit = parse("""
    int scalar = 5;
    int folded = 3 * 4 + (1 << 2);
    int arr[4] = {1, 2, 3, 4};
    int sized[] = {9, 9};
    char text[] = "hi";
    unsigned big[8];
    """)
    byname = {g.name: g for g in unit.globals}
    assert byname["scalar"].init == 5
    assert byname["folded"].init == 16
    assert byname["sized"].type.array == 2
    assert byname["text"].type.array == 3  # includes the NUL
    assert byname["big"].init is None


def test_assignment_forms():
    unit = parse("int g; int a[3]; int main() { g = 1; a[0] += 2; g++; return 0; }")
    body = unit.functions[0].body
    assert isinstance(body[0], AssignStmt) and body[0].op == ""
    assert isinstance(body[1], AssignStmt) and body[1].op == "+"
    assert isinstance(body[2], AssignStmt) and body[2].op == "+"
    assert isinstance(body[2].value, NumExpr)


def test_parse_errors():
    with pytest.raises(ParseError):
        parse("int main() { return 1 + ; }")
    with pytest.raises(ParseError):
        parse("int main() { 3 = x; }")
    with pytest.raises(ParseError):
        parse("int main() { if (1) return 0 }")
    with pytest.raises(ParseError):
        parse("int a[2] = {1, 2, 3, \"x\"};")
    with pytest.raises(ParseError):
        parse("int g = f();")  # calls are not constant expressions


# --- sema ----------------------------------------------------------------

def analyze_src(src):
    return analyze(parse(src))


def test_sema_requires_main():
    with pytest.raises(SemaError):
        analyze_src("int f() { return 0; }")


def test_sema_rejects_undeclared():
    with pytest.raises(SemaError):
        analyze_src("int main() { return x; }")


def test_sema_rejects_duplicate_local():
    with pytest.raises(SemaError):
        analyze_src("int main() { int x; int x; return 0; }")


def test_sema_rejects_bad_call_arity():
    with pytest.raises(SemaError):
        analyze_src("""
        int f(int a, int b) { return a + b; }
        int main() { return f(1); }
        """)


def test_sema_rejects_too_many_params():
    with pytest.raises(SemaError):
        analyze_src("int f(int a, int b, int c, int d, int e) { return 0; }"
                    "int main() { return 0; }")


def test_sema_rejects_array_assignment():
    with pytest.raises(SemaError):
        analyze_src("int a[4]; int main() { a = 1; return 0; }")


def test_sema_rejects_indexing_scalar():
    with pytest.raises(SemaError):
        analyze_src("int x; int main() { return x[0]; }")


def test_sema_rejects_break_outside_loop():
    with pytest.raises(SemaError):
        analyze_src("int main() { break; return 0; }")


def test_sema_rejects_array_arg_for_scalar_value():
    with pytest.raises(SemaError):
        analyze_src("""
        int f(int a[]) { return a[0]; }
        int x;
        int main() { return f(x); }
        """)


def test_sema_rejects_void_returning_value():
    with pytest.raises(SemaError):
        analyze_src("void f() { return 1; } int main() { return 0; }")


def test_sema_unsigned_propagation():
    info = analyze_src("""
    unsigned u;
    int s;
    int main() { return u + s < 3; }
    """)
    expr = info.unit.functions[0].body[0].value
    assert expr.op == "<"
    assert expr.unsigned          # comparison inherits unsignedness
    assert expr.left.unsigned     # u + s is unsigned


def test_sema_frame_layout_distinct_offsets():
    info = analyze_src("""
    int f(int a, int b) {
        int x;
        int buf[4];
        int y;
        return a + b + x + y;
    }
    int main() { return f(1, 2); }
    """)
    func = info.functions["f"]
    offsets = [func.symbols[n].offset for n in ("a", "b", "x", "buf", "y")]
    assert len(set(offsets)) == 5
    assert func.symbols["y"].offset >= func.symbols["buf"].offset + 16
    assert func.frame_size % 8 == 0


def test_sema_string_only_in_print_str():
    with pytest.raises(SemaError):
        analyze_src('int main() { return "nope" + 1; }')
    with pytest.raises(SemaError):
        analyze_src('int main() { print_int("nope"); return 0; }')
