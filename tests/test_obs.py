"""The unified telemetry subsystem (:mod:`repro.obs`).

Two families of guarantees:

1. The telemetry objects themselves — counters, timers, the bounded
   event stream, snapshot/diff, JSONL round-trips.
2. The non-interference contract — every instrumented number (cycle
   counts, suite/sweep JSON) is byte-identical with telemetry enabled
   or disabled, serial or parallel.
"""

import json

import pytest

from repro.dim.predictor import BimodalPredictor
from repro.dim.rcache import ReconfigurationCache
from repro.obs import (
    DEFAULT_MAX_EVENTS,
    EVENT_TYPES,
    NULL_TELEMETRY,
    EventLog,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    validate_event,
    validate_jsonl,
)
from repro.system import paper_system
from repro.system.sweep import SweepInstrumentation, evaluate_matrix
from repro.system.traceeval import evaluate_trace
from repro.workloads import load_workload
from repro.sim.cpu import run_program

CONFIG = paper_system("C2", 16, True)


def _trace(name="crc"):
    return run_program(load_workload(name), collect_trace=True,
                       fast=True).trace


# ----------------------------------------------------------------------
# Counters, timers, events.
# ----------------------------------------------------------------------
def test_counters_and_timers():
    tel = Telemetry()
    tel.count("rcache.hits")
    tel.count("rcache.hits", 4)
    tel.count_many({"rcache.hits": 5, "rcache.misses": 2})
    tel.add_time("sweep.total_seconds", 0.25)
    tel.add_time("sweep.total_seconds", 0.75)
    assert tel.counters == {"rcache.hits": 10, "rcache.misses": 2}
    assert tel.timers == {"sweep.total_seconds": 1.0}
    with tel.timer("sweep.trace_seconds"):
        pass
    assert tel.timers["sweep.trace_seconds"] >= 0.0


def test_emit_rejects_unknown_type():
    tel = Telemetry()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        tel.emit("rcache.explode", pc=4)
    tel.emit("rcache.hit", pc=4)  # known types are fine
    assert tel.events_emitted == 1


def test_event_stream_is_bounded_drop_oldest():
    tel = Telemetry(max_events=4)
    for pc in range(10):
        tel.emit("rcache.miss", pc=pc)
    assert tel.events_emitted == 10
    assert len(tel.events) == 4
    assert tel.events.dropped == 6
    # oldest dropped: the four survivors are the last four emissions
    assert [r["pc"] for r in tel.events] == [6, 7, 8, 9]
    assert [r["seq"] for r in tel.events] == [6, 7, 8, 9]


def test_events_disabled_still_counts_emissions():
    tel = Telemetry(max_events=None)
    tel.emit("predictor.update", pc=8, taken=True)
    assert tel.events is None
    assert tel.events_emitted == 1


def test_event_log_rejects_nonpositive_bound():
    with pytest.raises(ValueError):
        EventLog(0)


def test_validate_event_polices_shape():
    assert validate_event({"seq": 0, "type": "rcache.hit", "pc": 4}) == []
    assert validate_event({"type": "meta", "schema_version": 1}) == []
    assert validate_event({"seq": -1, "type": "rcache.hit"})
    assert validate_event({"seq": 0, "type": "nope"})
    assert validate_event({"seq": 0, "type": "rcache.hit",
                           "bad": [1, 2]})
    assert validate_event("not a dict")


# ----------------------------------------------------------------------
# Snapshots and diffs.
# ----------------------------------------------------------------------
def test_snapshot_diff_reports_exact_deltas():
    tel = Telemetry()
    tel.count("rcache.hits", 3)
    tel.count("rcache.misses", 1)
    before = tel.snapshot()
    tel.count("rcache.hits", 2)
    tel.emit("rcache.hit", pc=0)
    delta = tel.diff(before)
    # zero-delta counters are omitted entirely
    assert delta.counters == {"rcache.hits": 2}
    assert delta.events_emitted == 1
    # the snapshot itself is unaffected by later instrumentation
    assert before.counters == {"rcache.hits": 3, "rcache.misses": 1}


def test_snapshot_round_trips_through_dict():
    snap = TelemetrySnapshot(counters={"a": 1, "b": 2},
                             timers={"t": 0.5}, events_emitted=7)
    clone = TelemetrySnapshot.from_dict(
        json.loads(json.dumps(snap.as_dict())))
    assert clone == snap
    assert hash(clone) == hash(snap)
    assert clone.get("a") == 1 and clone.get("zzz") == 0


def test_null_telemetry_is_inert():
    assert NULL_TELEMETRY.enabled is False
    assert isinstance(NULL_TELEMETRY, NullTelemetry)
    NULL_TELEMETRY.count("anything")
    NULL_TELEMETRY.count_many({"x": 3})
    NULL_TELEMETRY.add_time("t", 1.0)
    NULL_TELEMETRY.emit("not even validated")
    with NULL_TELEMETRY.timer("t"):
        pass
    assert NULL_TELEMETRY.snapshot() == TelemetrySnapshot()


# ----------------------------------------------------------------------
# JSONL export.
# ----------------------------------------------------------------------
def test_write_jsonl_is_schema_valid(tmp_path):
    tel = Telemetry(max_events=8)
    for pc in range(12):
        tel.emit("rcache.miss", pc=pc)
    tel.emit("translation.committed", pc=64, instructions=5)
    path = tmp_path / "events.jsonl"
    lines_written = tel.write_jsonl(path)
    lines = path.read_text().splitlines()
    assert len(lines) == lines_written == 1 + 8
    assert validate_jsonl(lines) == []
    meta = json.loads(lines[0])
    assert meta["type"] == "meta"
    assert meta["events_emitted"] == 13
    assert meta["events_dropped"] == 5


def test_sweep_cli_emits_schema_valid_stream(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.jsonl"
    assert main(["sweep", "--arrays", "C1", "--slots", "16",
                 "--only", "crc", "--fast", "--no-cache",
                 "--telemetry", str(out)]) == 0
    lines = out.read_text().splitlines()
    assert validate_jsonl(lines) == []
    types = {json.loads(line)["type"] for line in lines}
    assert "meta" in types and "sweep.cell_replayed" in types
    assert types <= EVENT_TYPES


# ----------------------------------------------------------------------
# Instrumented components emit the documented events.
# ----------------------------------------------------------------------
class _FakeConfig:
    """Just enough of a Configuration for the cache's bookkeeping."""

    def __init__(self, start_pc):
        self.start_pc = start_pc
        self.hits = 0
        self.builds = 1


def test_rcache_emits_hit_miss_evict():
    tel = Telemetry()
    cache = ReconfigurationCache(2, telemetry=tel)
    cache.lookup(0)                      # miss
    cache.insert(_FakeConfig(0))
    cache.insert(_FakeConfig(4))
    cache.lookup(0)                      # hit
    cache.insert(_FakeConfig(8))         # evicts pc=0 (FIFO)
    kinds = [(r["type"], r.get("pc")) for r in tel.events]
    assert ("rcache.miss", 0) in kinds
    assert ("rcache.hit", 0) in kinds
    assert ("rcache.evict", 0) in kinds


def test_predictor_emits_updates():
    tel = Telemetry()
    predictor = BimodalPredictor(64, telemetry=tel)
    predictor.update(32, True)
    predictor.update(32, False)
    records = [r for r in tel.events if r["type"] == "predictor.update"]
    assert [(r["pc"], r["taken"]) for r in records] == [(32, True),
                                                        (32, False)]


def test_disabled_components_have_no_swapped_methods():
    """The zero-overhead contract: without telemetry the hot methods
    are the plain class attributes, not per-instance wrappers."""
    cache = ReconfigurationCache(16)
    predictor = BimodalPredictor(64)
    assert "lookup" not in vars(cache)
    assert "update" not in vars(predictor)
    traced_cache = ReconfigurationCache(16, telemetry=Telemetry())
    traced_predictor = BimodalPredictor(64, telemetry=Telemetry())
    assert "lookup" in vars(traced_cache)
    assert "update" in vars(traced_predictor)


def test_evaluate_trace_folds_engine_counters():
    trace = _trace()
    tel = Telemetry(max_events=None)
    metrics = evaluate_trace(trace, CONFIG, telemetry=tel)
    counters = tel.counters
    assert counters["dim.translations"] == metrics.dim.translations
    assert counters["rcache.hits"] == metrics.cache_hits
    assert counters["rcache.lookups"] == metrics.cache_lookups
    assert counters["predictor.updates"] > 0
    # the per-event stream agrees with the folded counters
    streamed = Telemetry(max_events=1 << 20)
    evaluate_trace(trace, CONFIG, telemetry=streamed)
    hits = sum(1 for r in streamed.events if r["type"] == "rcache.hit")
    assert hits == metrics.cache_hits


# ----------------------------------------------------------------------
# Non-interference: observed numbers never change.
# ----------------------------------------------------------------------
def test_metrics_identical_with_and_without_telemetry():
    trace = _trace()
    bare = evaluate_trace(trace, CONFIG)
    observed = evaluate_trace(trace, CONFIG, telemetry=Telemetry())
    assert bare == observed


def test_sweep_json_identical_with_and_without_telemetry():
    configs = [paper_system("C1", 16, False), CONFIG]
    names = ("crc", "quicksort")
    bare = evaluate_matrix(configs, names=names, fast=True)
    observed = evaluate_matrix(configs, names=names, fast=True,
                               telemetry=Telemetry())
    assert bare.results_json() == observed.results_json()


def test_parallel_telemetry_matches_serial():
    configs = [paper_system("C1", 16, False), CONFIG]
    names = ("crc", "quicksort")
    serial_tel = Telemetry()
    serial = evaluate_matrix(configs, names=names, fast=True,
                             telemetry=serial_tel)
    parallel_tel = Telemetry()
    parallel = evaluate_matrix(configs, names=names, fast=True, jobs=2,
                               telemetry=parallel_tel)
    assert serial.results_json() == parallel.results_json()
    # counters merge deterministically across the process pool
    assert serial_tel.counters == parallel_tel.counters
    assert serial_tel.events_emitted == parallel_tel.events_emitted
    # and the matrix-level JSON export agrees too
    assert serial.telemetry_json() is not None
    strip = lambda payload: {k: v for k, v in payload.items()
                             if k != "timers"}
    assert strip(json.loads(serial.telemetry_json())) == \
        strip(json.loads(parallel.telemetry_json()))


def test_matrix_telemetry_json_without_sink_projects_instrumentation():
    matrix = evaluate_matrix([CONFIG], names=("crc",), fast=True)
    payload = json.loads(matrix.telemetry_json())
    assert payload["counters"]["sweep.cells"] == 1
    assert payload["counters"]["sweep.workloads"] == 1
    assert "sweep.total_seconds" in payload["timers"]


# ----------------------------------------------------------------------
# The serve.* namespace of the closed schema (:mod:`repro.serve`).
# ----------------------------------------------------------------------
def test_serve_namespace_events_are_closed():
    """serve.* event types are schema members; inventing a new one in
    the serve code without registering it here must fail loudly."""
    serve_types = {t for t in EVENT_TYPES if t.startswith("serve.")}
    assert serve_types == {"serve.job_submitted",
                           "serve.batch_dispatched",
                           "serve.job_retried",
                           "serve.job_finished"}
    tel = Telemetry()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        tel.emit("serve.job_exploded", job_id="j000001")
    # unknown-namespace records also fail stream validation
    assert validate_event({"seq": 0, "type": "serve.job_exploded"})
    assert validate_event({"seq": 0, "type": "mystery.counted"})
    bad = json.dumps({"seq": 0, "type": "mystery.counted"})
    good = json.dumps({"seq": 1, "type": "serve.job_finished",
                       "job_id": "j000001", "state": "done"})
    problems = validate_jsonl([bad, good])
    assert len(problems) == 1 and "mystery.counted" in problems[0]


def test_serve_collectors_map_stats_onto_schema():
    from repro.obs import serve_counters, serve_timers
    from repro.obs.schema import SERVE_COUNTERS, SERVE_TIMERS
    from repro.serve import ServeStats

    stats = ServeStats(jobs_submitted=7, jobs_completed=5, batches=2,
                       batched_jobs=5, max_batch_width=3, retries=1,
                       queue_seconds=0.5, exec_seconds=1.5)
    stats.observe_latency(0.004)
    stats.observe_latency(3.0)
    counters = serve_counters(stats)
    assert counters["serve.jobs_submitted"] == 7
    assert counters["serve.batches"] == 2
    assert counters["serve.latency_le_10ms"] == 1
    assert counters["serve.latency_le_10s"] == 1
    assert serve_timers(stats) == {"serve.queue_seconds": 0.5,
                                   "serve.exec_seconds": 1.5}
    # every schema entry maps onto a real ServeStats attribute
    for mapping in (SERVE_COUNTERS, SERVE_TIMERS):
        for name, attr in mapping.items():
            assert name.startswith("serve.")
            assert hasattr(stats, attr)
    assert stats.mean_batch_width == 2.5


# ----------------------------------------------------------------------
# Back-compat: the legacy stats carriers still exist and agree.
# ----------------------------------------------------------------------
def test_sweep_instrumentation_aliases_unified_schema():
    inst = SweepInstrumentation(cells=3, workloads=2, systems=4,
                                traces_simulated=2, alloc_hits=10,
                                total_seconds=1.5)
    counters = inst.counters()
    assert counters["sweep.cells"] == 3
    assert counters["sweep.traces_simulated"] == 2
    assert counters["sweep.alloc_hits"] == 10
    assert inst.timer_values()["sweep.total_seconds"] == 1.5
    # the old as_dict surface is still intact
    assert inst.as_dict()["cells"] == 3
