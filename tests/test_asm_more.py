"""Additional assembler coverage: relocations, layout, immediates."""

import pytest

from repro.asm import AssemblerError, assemble
from repro.isa import decode
from repro.sim import run_program

EXIT = "li $v0, 10\nsyscall\n"


def words(program):
    return [program.word_at(program.text_base + 4 * i)
            for i in range(program.num_instructions())]


def test_la_with_symbol_offset():
    program = assemble("""
        .data
    tab: .word 1, 2, 3, 4
        .text
        la $t0, tab+8
        lw $a0, 0($t0)
        li $v0, 1
        syscall
    """ + EXIT)
    result = run_program(program)
    assert result.output == "3"


def test_hi_lo_relocation_with_large_addresses():
    # data base 0x10010000 has a nonzero high half: la must split it
    program = assemble("""
        .data
    v:  .word 0x12345678
        .text
        la $t0, v
        lw $a0, 0($t0)
        li $v0, 34
        syscall
    """ + EXIT)
    result = run_program(program)
    assert result.output == "0x12345678"


def test_text_align_pads_with_gap():
    program = assemble("""
        nop
        .align 3
    target:
        nop
    """)
    assert program.symbols["target"] % 8 == 0


def test_branch_pseudo_with_immediate_operand():
    program = assemble("""
        li $t0, 0
    loop:
        addiu $t0, $t0, 1
        blt $t0, 10, loop
        bge $t0, 10, done
        nop
    done:
        move $a0, $t0
        li $v0, 1
        syscall
    """ + EXIT)
    result = run_program(program)
    assert result.output == "10"


def test_branch_pseudo_with_zero_immediate_uses_zero_register():
    program = assemble("blt $t0, 0, somewhere\nsomewhere: nop\n")
    first = decode(words(program)[0])
    assert first.mnemonic == "slt"
    assert first.rt == 0   # compares against $zero directly, no li


def test_label_on_own_line_binds_to_next_instruction():
    program = assemble("""
    alone:
        nop
        nop
    """)
    assert program.symbols["alone"] == program.text_base


def test_trailing_label_binds_to_end():
    program = assemble("nop\nend:\n")
    assert program.symbols["end"] == program.text_base + 4


def test_multiple_labels_one_location():
    program = assemble("a: b: c: nop\n")
    assert program.symbols["a"] == program.symbols["b"] \
        == program.symbols["c"]


def test_numeric_register_names():
    program = assemble("add $8, $9, $10\n")
    instr = decode(words(program)[0])
    assert (instr.rd, instr.rs, instr.rt) == (8, 9, 10)


def test_semicolon_comments_and_blank_lines():
    program = assemble("""

    ; full-line comment
    nop  ; trailing comment

    """)
    assert program.num_instructions() == 1


def test_negative_and_hex_data_values():
    program = assemble("""
        .data
    a:  .word -1, 0xFFFFFFFF
    b:  .byte -2
    """)
    offset = program.symbols["a"] - program.data_base
    assert program.data[offset:offset + 8] == b"\xff" * 8
    offset = program.symbols["b"] - program.data_base
    assert program.data[offset] == 0xFE


def test_ascii_vs_asciiz():
    program = assemble("""
        .data
    a:  .ascii "ab"
    b:  .asciiz "cd"
    """)
    assert program.symbols["b"] == program.symbols["a"] + 2
    data_end = program.symbols["b"] - program.data_base + 3
    assert program.data[:data_end] == b"abcd\x00"


def test_jump_to_label_encodes_absolute_target():
    program = assemble("""
        j end
        nop
    end:
        nop
    """)
    instr = decode(words(program)[0])
    assert instr.branch_target(program.text_base) == \
        program.symbols["end"]


def test_branch_out_of_range_rejected():
    body = "nop\n" * 40000
    with pytest.raises(AssemblerError):
        assemble("top:\n" + body + "beq $t0, $t1, top\n")
