"""The example scripts must run end to end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "speedup" in out
    assert "same binary, same results" in out
    assert "0xc6318b18" in out


def test_inspect_configuration(capsys):
    out = run_example("inspect_configuration.py", capsys)
    assert "without speculation" in out
    assert "with speculation" in out
    assert "[M] mult" in out
    assert out.count("config@") == 2


def test_accelerated_crypto(capsys):
    out = run_example("accelerated_crypto.py", capsys)
    assert "sha 1497999546" in out
    assert "C3/64/spec" in out
    assert "energy breakdown" in out


@pytest.mark.slow
def test_heterogeneous_device(capsys):
    out = run_example("heterogeneous_device.py", capsys)
    assert "whole device" in out
    assert "transparently" in out


@pytest.mark.slow
def test_design_space(capsys):
    out = run_example("design_space.py", capsys)
    assert "speedup surface" in out
    assert "192 lines" in out
