"""Program container and mini-C runtime-semantics edge cases."""

import pytest

from repro.asm import assemble
from repro.asm.program import Program
from repro.minic import compile_to_program
from repro.sim import run_program


def test_program_word_access_and_bounds():
    program = assemble("nop\nnop\n")
    assert program.num_instructions() == 2
    assert program.word_at(program.text_base) == 0
    with pytest.raises(IndexError):
        program.word_at(program.text_base + 8)
    with pytest.raises(IndexError):
        program.word_at(program.text_base - 4)
    assert program.text_end == program.text_base + 8


def test_program_defaults():
    program = Program(text=b"\x00" * 4, data=b"", entry=0x00400000)
    assert program.source_name == "<asm>"
    assert program.symbols == {}


def run_expr(expr, prelude=""):
    source = prelude + ("int main() { print_int(%s); return 0; }" % expr)
    return run_program(compile_to_program(source)).output


def test_division_by_zero_is_deterministic():
    # architecturally undefined on MIPS; we define quotient 0 (see
    # repro.isa.semantics.div_result) so simulation is reproducible
    assert run_expr("x / y", "int x = 7;\nint y = 0;\n") == "0"
    assert run_expr("x % y", "int x = 7;\nint y = 0;\n") == "7"


def test_negative_modulo_matches_c():
    assert run_expr("-7 % 3") == "-1"
    assert run_expr("7 % -3") == "1"


def test_int_min_edge_cases():
    assert run_expr("x / y", "int x = -2147483647 - 1;\nint y = -1;\n") \
        == str(-(2**31))  # wraps like hardware, no trap
    assert run_expr("-x", "int x = -2147483647 - 1;\n") == str(-(2**31))


def test_shift_by_large_amounts_masks_to_five_bits():
    assert run_expr("x << y", "int x = 1;\nint y = 33;\n") == "2"
    assert run_expr("x >> y", "unsigned x = 16;\nint y = 36;\n") == "1"


def test_char_comparisons_are_unsigned():
    prelude = 'char b[2];\n'
    source = prelude + """
    int main() {
        b[0] = 200;           // stays 200, not -56
        if (b[0] > 100) { print_int(1); } else { print_int(0); }
        return 0;
    }
    """
    assert run_program(compile_to_program(source)).output == "1"


def test_unsigned_wraparound_loop_terminates():
    source = """
    int main() {
        unsigned u = 0xfffffffd;
        int n = 0;
        while (u != 2) { u = u + 1; n++; }
        print_int(n);
        return 0;
    }
    """
    assert run_program(compile_to_program(source)).output == "5"
