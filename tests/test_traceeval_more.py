"""Trace evaluator details and stress cases."""

import pytest

from repro.minic import compile_to_program
from repro.sim import run_program
from repro.system import (
    baseline_metrics,
    evaluate_trace,
    paper_system,
    speedup,
)
from repro.system.coupled import run_coupled
from repro.workloads import load_workload, run_workload

SMALL = """
int main() {
    int i;
    int n = 0;
    for (i = 0; i < 200; i++) {
        if (i & 1) { n += i; } else { n -= 1; }
    }
    print_int(n);
    return 0;
}
"""


@pytest.fixture(scope="module")
def small_run():
    program = compile_to_program(SMALL)
    return program, run_program(program, collect_trace=True)


def test_speedup_helper(small_run):
    _, plain = small_run
    value = speedup(plain.trace, paper_system("C3", 64, True))
    assert value > 1.0


def test_single_slot_cache_thrashes_but_stays_correct(small_run):
    program, plain = small_run
    config = paper_system("C2", 64, True).with_dim(cache_slots=1)
    metrics = evaluate_trace(plain.trace, config)
    coupled = run_coupled(program, config)
    assert metrics.cycles == coupled.stats.cycles
    assert coupled.output == plain.output
    # the if/else loop alternates blocks, so one slot mostly thrashes
    assert metrics.cache_evictions > 0
    big = evaluate_trace(plain.trace, paper_system("C2", 64, True))
    assert big.cycles <= metrics.cycles


def test_zero_speculation_depth_equals_nospec(small_run):
    _, plain = small_run
    spec0 = paper_system("C3", 64, True).with_dim(max_spec_depth=0,
                                                  max_blocks=2)
    nospec = paper_system("C3", 64, False)
    m_spec0 = evaluate_trace(plain.trace, spec0)
    m_nospec = evaluate_trace(plain.trace, nospec)
    # depth 0 still follows unconditional j for free; with max_blocks=2
    # differences are limited to j-merging, so cycles can only be lower
    assert m_spec0.cycles <= m_nospec.cycles


def test_metrics_conservation_invariants(small_run):
    _, plain = small_run
    base = baseline_metrics(plain.trace)
    for config in (paper_system("C1", 16, False),
                   paper_system("C3", 64, True)):
        metrics = evaluate_trace(plain.trace, config)
        # committed work is conserved exactly
        assert metrics.instructions == base.instructions
        assert metrics.loads == base.loads
        assert metrics.stores == base.stores
        # fetches only ever shrink (array code comes from the RC cache)
        assert metrics.fetches <= base.fetches
        assert metrics.fetches == base.fetches \
            - metrics.dim.array_instructions
        # cycles shrink, but never below the array-bound lower limit
        assert metrics.cycles <= base.cycles
        assert metrics.cycles > 0


def test_real_workload_coupled_equality():
    """One full MiBench-analog through both paths (slow test)."""
    program = load_workload("rijndael_e")
    plain = run_workload("rijndael_e")
    config = paper_system("C2", 16, True)   # small cache: thrash + spec
    coupled = run_coupled(program, config)
    metrics = evaluate_trace(plain.trace, config)
    assert coupled.output == plain.output
    assert coupled.registers == plain.registers
    assert metrics.cycles == coupled.stats.cycles
    assert metrics.dim.flushes == coupled.dim_stats.flushes
    assert metrics.cache_evictions == coupled.cache_lookups \
        - coupled.cache_lookups + metrics.cache_evictions  # tautology guard
    assert metrics.cache_evictions > 0   # 16 slots must thrash on AES
