"""The MPSoC scenario layer (:mod:`repro.mpsoc`).

Five families of guarantees:

1. Scenario algebra: spec validation and JSON round-trips, live-derived
   budget presets, mix parsing, canonical allocation dedup.
2. Budget edge cases: a budget below the cheapest allocation raises the
   structured :class:`InfeasibleBudgetError` (machine-readable, never a
   crash); a budget that only affords the small array prunes the big
   ones out of every allocation.
3. The degenerate contract: a one-core/one-array allocation reproduces
   the single-system ``repro.api.evaluate`` numbers bit for bit, and a
   singleton mix collapses to the raw speedup exactly.
4. The transparency contract: the frontier JSON is byte-identical
   inline, with ``--jobs`` and dispatched to a running ``repro serve``
   — and a seeded smoke exploration matches the committed golden.
5. Telemetry: the ``mpsoc.*`` namespace stays closed and
   collector-mapped, and the CLI surfaces the whole scenario.
"""

import itertools
import json
from pathlib import Path

import pytest

import repro
from repro.cli import build_parser, main as cli_main
from repro.dse.space import Candidate, known_axes
from repro.mpsoc import (
    NO_ARRAY,
    InfeasibleBudgetError,
    MpsocSpec,
    MpsocStats,
    allocation_space,
    budget_presets,
    default_catalog,
    explore_mix,
    mpsoc_spec,
    parse_mix,
    score_allocation,
)
from repro.obs import EVENT_TYPES, Telemetry, validate_jsonl
from repro.obs.schema import (
    MPSOC_COUNTERS,
    MPSOC_TIMERS,
    mpsoc_counters,
    mpsoc_timers,
)
from repro.serve import EvalService, ServeClient, start_http
from repro.system.area import AreaParams, area_report, mips_core_gates
from repro.system.config import PAPER_SHAPES, SystemSpec

GOLDEN_FRONTIER = Path(__file__).parent / "data" \
    / "mpsoc_smoke_frontier.json"

#: the CI smoke scenario — keep in sync with the mpsoc-smoke job.
SMOKE_KWARGS = dict(preset="sys-s", mix="crc:2,sha:1",
                    strategy="shalving", budget=6, seed=7, fast=True)

_smoke_cache = {}


def _smoke_explore(**overrides):
    key = tuple(sorted(overrides.items()))
    if key not in _smoke_cache:
        kwargs = dict(SMOKE_KWARGS)
        kwargs.update(overrides)
        _smoke_cache[key] = explore_mix(cache=None, **kwargs)
    return _smoke_cache[key]


# ----------------------------------------------------------------------
# Scenario algebra.
# ----------------------------------------------------------------------
def test_budget_presets_derive_from_the_area_model():
    params = AreaParams()
    presets = budget_presets(params)
    core = mips_core_gates(params)
    gates = {name: area_report(PAPER_SHAPES[name], params).total_gates
             for name in ("C1", "C2", "C3")}
    assert presets["sys-s"] == 2 * core + gates["C1"]
    assert presets["sys-m"] == 4 * core + gates["C1"] + gates["C2"]
    assert presets["sys-l"] == 8 * core + 2 * gates["C3"]
    assert presets["sys-s"] < presets["sys-m"] < presets["sys-l"]


def test_parse_mix_forms():
    assert parse_mix("crc:2,sha:1") == (("crc", 2.0), ("sha", 1.0))
    assert parse_mix("crc, sha:0.5") == (("crc", 1.0), ("sha", 0.5))
    with pytest.raises(ValueError, match="bad mix weight"):
        parse_mix("crc:lots")


def test_spec_validation_edge_cases():
    with pytest.raises(ValueError, match="must not be empty"):
        MpsocSpec(area_budget_gates=10**6, mix=())
    with pytest.raises(ValueError, match="unknown workload"):
        mpsoc_spec(preset="sys-s", mix="nonesuch:1")
    with pytest.raises(ValueError, match="duplicate workload"):
        mpsoc_spec(preset="sys-s", mix="crc:1,crc:2")
    with pytest.raises(ValueError, match="must be positive"):
        mpsoc_spec(preset="sys-s", mix=(("crc", 0.0),))
    with pytest.raises(ValueError, match="strictly increasing"):
        mpsoc_spec(preset="sys-s", mix="crc:1", core_counts=(2, 1))
    with pytest.raises(ValueError, match="unknown budget preset"):
        mpsoc_spec(preset="sys-xl", mix="crc:1")
    with pytest.raises(ValueError, match="exactly one"):
        mpsoc_spec(mix="crc:1")
    with pytest.raises(ValueError, match="exactly one"):
        mpsoc_spec(preset="sys-s", area_budget_gates=10**6, mix="crc:1")


def test_spec_defaults_whole_suite_at_equal_weights():
    from repro.workloads import workload_names

    spec = mpsoc_spec(preset="sys-m")
    assert spec.workloads == tuple(workload_names())
    assert len(set(w for _, w in spec.mix)) == 1
    assert spec.name == "sys-m"


def test_spec_json_round_trip():
    spec = mpsoc_spec(
        area_budget_gates=2_000_000, mix="crc:2,sha:1",
        catalog=default_catalog(slots=16, speculation=False),
        core_counts=(1, 2), max_arrays=1, serial_fraction=0.25,
        name="custom")
    payload = json.loads(json.dumps(spec.to_dict()))
    assert MpsocSpec.from_dict(payload) == spec
    with pytest.raises(ValueError, match="unknown spec fields"):
        MpsocSpec.from_dict({**spec.to_dict(), "bogus": 1})


def test_weights_normalise_per_subset_in_mix_order():
    spec = mpsoc_spec(preset="sys-s", mix="crc:2,sha:1,dijkstra:1")
    assert spec.weights() == (("crc", 0.5), ("sha", 0.25),
                              ("dijkstra", 0.25))
    assert spec.weights(("sha", "crc")) == \
        (("crc", 2.0 / 3.0), ("sha", 1.0 / 3.0))
    with pytest.raises(ValueError, match="no mix workloads"):
        spec.weights(("quicksort",))


# ----------------------------------------------------------------------
# The allocation space.
# ----------------------------------------------------------------------
def test_allocation_axes_join_the_dse_vocabulary():
    assert {"cores", "array0", "array7"} <= set(known_axes())


def test_canonical_ordering_dedupes_slot_permutations():
    spec = mpsoc_spec(preset="sys-l", mix="crc:1")
    space = allocation_space(spec)
    names = [space.allocation_name(c) for c in space.candidates()]
    assert len(names) == len(set(names))
    # C1 in slot 1 with slot 0 empty is the same multiset as C1 in
    # slot 0; only the canonical form survives.
    swapped = Candidate.of({"cores": 2, "array0": NO_ARRAY,
                            "array1": "C1"})
    assert not space.satisfies(swapped)
    canonical = Candidate.of({"cores": 2, "array0": "C1",
                              "array1": NO_ARRAY})
    assert space.satisfies(canonical)
    # ... and catalog order within the slots is canonical too.
    assert not space.satisfies(Candidate.of(
        {"cores": 2, "array0": "C2", "array1": "C1"}))
    assert space.satisfies(Candidate.of(
        {"cores": 2, "array0": "C1", "array1": "C2"}))


def test_arrays_must_pair_with_cores():
    spec = mpsoc_spec(preset="sys-l", mix="crc:1")
    space = allocation_space(spec)
    assert not space.satisfies(Candidate.of(
        {"cores": 1, "array0": "C1", "array1": "C1"}))


def test_gates_account_cores_plus_table3a_arrays():
    spec = mpsoc_spec(preset="sys-l", mix="crc:1")
    space = allocation_space(spec)
    candidate = Candidate.of({"cores": 2, "array0": "C1",
                              "array1": NO_ARRAY})
    c1 = area_report(PAPER_SHAPES["C1"], AreaParams()).total_gates
    assert space.gates_of(candidate) == \
        2 * spec.core_gates + c1


# ----------------------------------------------------------------------
# Budget edge cases.
# ----------------------------------------------------------------------
def test_zero_budget_is_a_structured_error():
    with pytest.raises(InfeasibleBudgetError) as excinfo:
        explore_mix(area_budget_gates=0, mix="crc:1")
    error = excinfo.value.as_dict()["error"]
    assert error["code"] == "infeasible_budget"
    assert error["budget_gates"] == 0
    assert error["cheapest_allocation_gates"] == mips_core_gates()
    json.dumps(error)  # machine readable all the way down


def test_budget_below_one_core_is_infeasible():
    with pytest.raises(InfeasibleBudgetError):
        allocation_space(mpsoc_spec(
            area_budget_gates=mips_core_gates() - 1, mix="crc:1"))


def test_tight_budget_prunes_expensive_arrays():
    # Enough for a core + C1, nowhere near C2/C3: every feasible
    # allocation uses at most the small array.
    budget = mips_core_gates() + \
        area_report(PAPER_SHAPES["C1"], AreaParams()).total_gates
    spec = mpsoc_spec(area_budget_gates=budget, mix="crc:1")
    space = allocation_space(spec)
    candidates = space.candidates()
    assert candidates
    arrays = set(itertools.chain.from_iterable(
        space.arrays_of(c) for c in candidates))
    assert arrays <= {"C1"}
    assert space.size > len(candidates)  # pruning really happened


def test_explicit_over_budget_allocation_names_itself():
    spec = mpsoc_spec(area_budget_gates=mips_core_gates() * 2,
                      mix="crc:1")
    with pytest.raises(InfeasibleBudgetError, match="allocation 1c"):
        score_allocation(spec, 1, ("C3",), fast=True)


# ----------------------------------------------------------------------
# The degenerate contract: 1 core + 1 array == repro.api.evaluate.
# ----------------------------------------------------------------------
def test_degenerate_allocation_reproduces_evaluate_bit_for_bit():
    spec = mpsoc_spec(area_budget_gates=10_000_000, mix=["crc", "sha"],
                      core_counts=(1,), max_arrays=1)
    evaluation, rows = score_allocation(spec, 1, ("C2",), fast=True)
    suite = repro.evaluate(
        SystemSpec(array="C2", slots=64, speculation=True).build(),
        names=["crc", "sha"], fast=True)
    by_name = {r.workload: r for r in suite.results}
    for row in rows:
        assert row.tile == "C2"
        assert row.speedup == by_name[row.workload].speedup
        assert row.energy_ratio == by_name[row.workload].energy_ratio


def test_singleton_mix_collapses_to_the_raw_speedup():
    spec = mpsoc_spec(area_budget_gates=10_000_000, mix=["crc"],
                      core_counts=(1,), max_arrays=1)
    evaluation, rows = score_allocation(spec, 1, ("C2",), fast=True)
    suite = repro.evaluate(
        SystemSpec(array="C2", slots=64, speculation=True).build(),
        names=["crc"], fast=True)
    assert evaluation.geomean_speedup == suite.results[0].speedup
    assert evaluation.geomean_energy_ratio == \
        suite.results[0].energy_ratio


# ----------------------------------------------------------------------
# The transparency contract.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service():
    svc = EvalService(workers=0, cache_root=None, batch_window=0.01)
    svc.start()
    server, thread = start_http(svc)
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}", timeout=120.0)
    yield svc, client
    if not svc._stopped:
        svc.stop(drain=False)
    server.shutdown()


def test_smoke_frontier_matches_committed_golden():
    golden = GOLDEN_FRONTIER.read_text()
    assert _smoke_explore().to_json() + "\n" == golden


def test_frontier_identical_inline_parallel_and_served(service):
    _, client = service
    inline = _smoke_explore().to_json()
    assert _smoke_explore(jobs=2).to_json() == inline
    served = explore_mix(cache=None, client=client, **SMOKE_KWARGS)
    assert served.to_json() == inline
    assert served.stats.dispatched_batches >= 1


@pytest.mark.parametrize("strategy", ("grid", "random", "shalving",
                                      "hillclimb"))
def test_every_strategy_is_deterministic(strategy):
    first = _smoke_explore(strategy=strategy)
    again = explore_mix(cache=None,
                        **{**SMOKE_KWARGS, "strategy": strategy})
    assert again.to_json() == first.to_json()


def test_dispatch_tables_cover_the_frontier():
    result = _smoke_explore()
    tables = result.dispatch_tables()
    assert set(tables) == {p.system for p in result.frontier.points}
    for rows in tables.values():
        assert [r.workload for r in rows] == ["crc", "sha"]
        assert abs(sum(r.weight for r in rows) - 1.0) < 1e-12
        json.dumps([r.as_dict() for r in rows])


# ----------------------------------------------------------------------
# Telemetry: the mpsoc.* namespace stays closed and collector-mapped.
# ----------------------------------------------------------------------
def test_mpsoc_event_namespace_is_closed():
    for event in ("mpsoc.space_pruned", "mpsoc.allocation_scored"):
        assert event in EVENT_TYPES
    tel = Telemetry()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        tel.emit("mpsoc.allocation_skipped")


def test_mpsoc_collectors_map_every_stat():
    stats = MpsocStats(allocations_scored=5, feasible_allocations=5,
                       pruned_allocations=43, dispatch_accelerated=4,
                       dispatch_plain=6, matrix_cells=6,
                       compose_seconds=0.25)
    counters = mpsoc_counters(stats)
    assert set(counters) == set(MPSOC_COUNTERS)
    assert counters["mpsoc.pruned_allocations"] == 43
    timers = mpsoc_timers(stats)
    assert set(timers) == set(MPSOC_TIMERS)
    # the merged view exports both namespaces
    merged = stats.counters()
    assert "dse.evaluations" in merged
    assert "mpsoc.matrix_cells" in merged
    assert stats.timer_values()["mpsoc.compose_seconds"] == 0.25


def test_exploration_emits_valid_mpsoc_events():
    # an unbounded-enough log: the replay's rcache/predictor flood must
    # not drop-oldest the early mpsoc.space_pruned record
    telemetry = Telemetry(max_events=4_000_000)
    explore_mix(cache=None, telemetry=telemetry, **SMOKE_KWARGS)
    types = {r["type"] for r in telemetry.events}
    assert "mpsoc.space_pruned" in types
    assert "mpsoc.allocation_scored" in types
    assert not validate_jsonl(telemetry.events.to_jsonl().splitlines())
    counters = telemetry.counters
    assert counters.get("mpsoc.allocations_scored", 0) > 0


# ----------------------------------------------------------------------
# The CLI surfaces the whole scenario.
# ----------------------------------------------------------------------
def test_cli_mpsoc_writes_the_golden_frontier(tmp_path, capsys):
    out = tmp_path / "frontier.json"
    rc = cli_main(["mpsoc", "--preset", "sys-s",
                   "--mix", "crc:2,sha:1", "--strategy", "shalving",
                   "--budget", "6", "--seed", "7", "--fast",
                   "--no-cache", "--frontier", str(out)])
    assert rc == 0
    assert out.read_text() == GOLDEN_FRONTIER.read_text()
    stdout = capsys.readouterr().out
    assert "frontier" in stdout and "dispatch for" in stdout


def test_cli_mpsoc_structured_infeasible_error():
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["mpsoc", "--area-budget", "10", "--mix", "crc:1",
                  "--fast", "--no-cache"])
    payload = json.loads(str(excinfo.value))
    assert payload["error"]["code"] == "infeasible_budget"


def test_cli_mpsoc_rejects_preset_plus_budget():
    with pytest.raises(SystemExit, match="exactly one"):
        cli_main(["mpsoc", "--preset", "sys-s", "--area-budget",
                  "99999", "--mix", "crc:1", "--no-cache"])


def test_cli_parser_knows_the_subcommand():
    args = build_parser().parse_args(
        ["mpsoc", "--preset", "sys-m", "--mix", "crc:1"])
    assert args.preset == "sys-m" and args.array == "C1,C2,C3"


def test_facade_verb_survives_submodule_import():
    # importing repro.mpsoc rebinds the package attribute from the
    # repro.api.mpsoc function to the module; the module is callable
    # so the facade spelling keeps working either way
    import repro
    import repro.mpsoc

    assert callable(repro.mpsoc)
    result = repro.mpsoc(preset="sys-s", mix="crc", strategy="grid",
                         fast=True, cache=None)
    assert len(result.frontier.points) >= 1
    assert repro.mpsoc.explore_mix is explore_mix
