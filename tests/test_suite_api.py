"""The suite-level evaluation API and its CLI command."""

import json

import pytest

from repro.cli import main
from repro.system import paper_system
from repro.workloads.suite import evaluate_suite, format_suite

SUBSET = ("crc", "quicksort", "sha")


def test_evaluate_suite_subset():
    result = evaluate_suite(paper_system("C2", 64, True), names=SUBSET)
    assert [r.workload for r in result.results] == list(SUBSET)
    for r in result.results:
        assert r.speedup > 1.0
        assert 0 < r.array_coverage <= 1.0
        assert 0 <= r.cache_hit_rate <= 1.0
        assert r.cycles < r.baseline_cycles
    assert 1.0 < result.geomean_speedup < 6.0
    assert result.geomean_energy_ratio > 1.0


def test_suite_json_round_trip():
    result = evaluate_suite(paper_system("C1", 16, False), names=SUBSET)
    payload = json.loads(result.to_json())
    assert payload["system"] == "C1/16/nospec"
    assert len(payload["results"]) == 3
    assert payload["results"][0]["workload"] == "crc"
    assert payload["geomean_speedup"] == pytest.approx(
        result.geomean_speedup)


def test_format_suite_text():
    result = evaluate_suite(paper_system("C2", 64, True), names=SUBSET)
    text = format_suite(result)
    assert "GEOMEAN" in text
    assert "crc" in text
    assert text.count("\n") == len(SUBSET) + 2


def test_cli_suite_with_json(tmp_path, capsys, monkeypatch):
    # restrict to the subset via monkeypatching to keep the test fast
    import repro.workloads.suite as suite_mod
    monkeypatch.setattr(suite_mod, "workload_names", lambda: list(SUBSET))
    out_file = tmp_path / "results.json"
    assert main(["suite", "--array", "C2", "--spec",
                 "--json", str(out_file)]) == 0
    out = capsys.readouterr().out
    assert "GEOMEAN" in out
    assert out_file.exists()
    payload = json.loads(out_file.read_text())
    assert payload["system"] == "C2/64/spec"


def test_parallel_suite_is_byte_identical():
    """--jobs N must not change a single byte of the JSON output."""
    config = paper_system("C2", 64, True)
    serial = evaluate_suite(config, names=SUBSET, jobs=1)
    parallel = evaluate_suite(config, names=SUBSET, jobs=2)
    assert parallel.to_json() == serial.to_json()


def test_fast_suite_is_byte_identical():
    config = paper_system("C1", 16, False)
    serial = evaluate_suite(config, names=SUBSET)
    fast = evaluate_suite(config, names=SUBSET, fast=True, jobs=2)
    assert fast.to_json() == serial.to_json()


def test_cli_suite_only_jobs_fast(tmp_path, capsys):
    serial_file = tmp_path / "serial.json"
    parallel_file = tmp_path / "parallel.json"
    assert main(["suite", "--only", "crc,sha",
                 "--json", str(serial_file)]) == 0
    assert main(["suite", "--only", "crc,sha", "--jobs", "2", "--fast",
                 "--json", str(parallel_file)]) == 0
    capsys.readouterr()
    assert parallel_file.read_bytes() == serial_file.read_bytes()


def test_cli_suite_rejects_unknown_workload(capsys):
    with pytest.raises(SystemExit, match="unknown workloads: nope"):
        main(["suite", "--only", "crc,nope"])


def test_cli_disasm(capsys):
    assert main(["disasm", "crc"]) == 0
    out = capsys.readouterr().out
    assert "jal" in out
    assert "syscall" in out
    assert out.count("\n") > 100
