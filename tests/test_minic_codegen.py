"""Code-generation quality: the mini-C compiler must emit the idioms the
DIM evaluation depends on (immediate forms, direct branches, rotated
loops), and fail loudly where its simple model runs out."""

import pytest

from repro.minic import CompileError, compile_source, compile_to_program
from repro.sim import run_program


def asm_of(source: str) -> str:
    return compile_source(source)


def test_constant_operands_use_immediate_forms():
    asm = asm_of("int main() { int x = 5; x = x + 7; x = x & 15;"
                 " x = x << 3; return x; }")
    assert "addiu" in asm
    assert "andi" in asm
    assert "sll" in asm
    # no register-register add for the +7
    assert asm.count("addu $t0, $t0, $t1") == 0


def test_conditions_compile_to_direct_branches():
    asm = asm_of("""
    int main() {
        int a = 1; int b = 2;
        if (a == b) { return 1; }
        if (a < b) { return 2; }
        return 0;
    }
    """)
    # equality inverts into bne-to-else; relational uses slt + branch
    assert "bne $t0, $t1" in asm
    assert "slt $t8" in asm
    assert "beq $t8, $zero" in asm
    # no materialised booleans (seq/sltiu) for plain conditions
    assert "sltiu" not in asm


def test_loops_are_rotated():
    asm = asm_of("""
    int main() {
        int i;
        int n = 0;
        for (i = 0; i < 10; i++) { n += i; }
        return n;
    }
    """)
    # rotated form: conditional back-edge at the bottom, no
    # unconditional jump in the steady-state loop
    body = asm.split("Lfor_")[1]
    assert "bne $t8, $zero, Lfor" in asm or "bne" in body
    # the loop body contains no `j` back to the top
    steady = asm[asm.index("Lfor_"):asm.index("Lendfor")]
    assert "\n        j L" not in steady


def test_signedness_selects_instructions():
    signed = asm_of("int main() { int a = -4; return a >> 1; }")
    assert "sra" in signed
    unsigned = asm_of("unsigned u = 8;\nint main() { return u >> 1; }")
    assert "srl" in unsigned
    signed_div = asm_of("int main() { int a = 9; return a / 2; }")
    assert "div" in signed_div and "divu" not in signed_div
    unsigned_div = asm_of("unsigned u = 9;\nint main() { return u / 2; }")
    assert "divu" in unsigned_div


def test_char_arrays_use_byte_accesses():
    asm = asm_of('char buf[8];\nint main() { buf[1] = 65;'
                 ' return buf[1]; }')
    assert "sb" in asm
    assert "lbu" in asm


def test_expression_too_deep_raises():
    # force more than 8 live temporaries with a deep right-leaning tree
    expr = "1"
    for i in range(2, 14):
        expr = f"{i} + ({expr} * 2)"
    with pytest.raises(CompileError):
        compile_source(f"int main() {{ return {expr}; }}")


def test_left_leaning_expressions_stay_shallow():
    # left-associative chains reuse one temp and must compile fine
    expr = " + ".join(str(i) for i in range(1, 64))
    program = compile_to_program(f"int main() {{ print_int({expr});"
                                 " return 0; }")
    result = run_program(program)
    assert result.output == str(sum(range(1, 64)))


def test_frame_allocates_param_homes_and_saves_ra():
    asm = asm_of("""
    int f(int a, int b) { return a + b; }
    int main() { return f(1, 2); }
    """)
    f_body = asm[asm.index("f_f:"):asm.index("Lret_f")]
    assert "sw $ra, 0($sp)" in f_body
    assert "sw $a0," in f_body
    assert "sw $a1," in f_body


def test_globals_emit_data_section():
    asm = asm_of("int g = 7;\nint arr[3] = {1, 2, 3};\n"
                 'char msg[] = "hi";\nint main() { return g; }')
    assert ".data" in asm
    assert "g_g:" in asm
    assert ".word 7" in asm
    assert ".word 1, 2, 3" in asm
    # char array payload as bytes (with NUL)
    assert ".byte 104, 105, 0" in asm


def test_string_pool_deduplicates():
    asm = asm_of('int main() { print_str("x"); print_str("x");'
                 ' print_str("y"); return 0; }')
    assert asm.count('.asciiz "x"') == 1
    assert asm.count('.asciiz "y"') == 1
