"""Smaller units: shapes, trace views, instruction rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.cgra.shape import ArrayShape, INFINITE_SHAPE
from repro.isa import OPCODES, Instruction, decode, encode
from repro.isa.opcodes import Format
from repro.sim import Simulator, run_program
from repro.sim.trace import BlockTable


def test_shape_columns_and_delays():
    shape = ArrayShape(rows=10, alus_per_row=4, mults_per_row=2,
                       ldsts_per_row=3, alu_chain=2)
    assert shape.columns == 9
    assert shape.line_delay(False, False) == 0.5
    assert shape.line_delay(True, False) == 1.0
    assert shape.line_delay(False, True) == 1.0


def test_shape_reconfiguration_cycles():
    shape = ArrayShape(rows=4, alus_per_row=2, mults_per_row=1,
                       ldsts_per_row=1, rf_read_ports=4)
    assert shape.reconfiguration_cycles(0) == 1       # cache read only
    assert shape.reconfiguration_cycles(4) == 2
    assert shape.reconfiguration_cycles(5) == 3


def test_infinite_shape_is_effectively_unbounded():
    assert INFINITE_SHAPE.rows >= 1_000_000
    assert INFINITE_SHAPE.immediate_slots >= 1_000_000


def test_block_table_registration():
    table = BlockTable()
    instr = Instruction("jr", rs=31)
    block = table.add(0x400000, (instr,))
    assert table.get_by_pc(0x400000) is block
    assert table.get(block.block_id) is block
    assert len(table) == 1
    assert table.get_by_pc(0x400004) is None


def test_block_views():
    source = """
        addiu $t0, $t0, 1
        beq $t0, $t1, 0x400000
    """
    sim = Simulator(assemble(source))
    block = sim.block_at(sim.pc)
    assert len(block) == 2
    assert block.is_conditional
    assert block.branch_pc == sim.pc + 4
    assert block.fallthrough_pc == sim.pc + 8
    assert block.taken_target() == 0x400000


def test_indirect_jump_has_no_static_target():
    sim = Simulator(assemble("jr $ra\n"))
    block = sim.block_at(sim.pc)
    assert block.taken_target() is None
    assert not block.is_conditional


def test_syscall_block_has_no_terminator():
    sim = Simulator(assemble("li $v0, 10\nsyscall\n"))
    block = sim.block_at(sim.pc)
    assert block.terminator is None
    assert block.taken_target() is None


def test_trace_execution_counts():
    source = """
        li $t0, 3
    loop:
        addiu $t0, $t0, -1
        bnez $t0, loop
        li $v0, 10
        syscall
    """
    result = run_program(assemble(source), collect_trace=True)
    counts = result.trace.block_execution_counts()
    assert sum(counts.values()) == len(result.trace.events)
    # first trip through the loop body belongs to the entry block
    # ([li, addiu, bnez]); the loop-target block runs the other 2 times
    assert max(counts.values()) == 2


def _sample_instruction(mnemonic):
    info = OPCODES[mnemonic]
    if info.fmt is Format.J:
        return Instruction(mnemonic, target=0x400000)
    if info.fmt is Format.R:
        return Instruction(mnemonic, rs=1, rt=2, rd=3, shamt=4)
    return Instruction(mnemonic, rs=1, rt=2, imm=-4 if info.signed_imm
                       else 4)


@pytest.mark.parametrize("mnemonic", sorted(OPCODES))
def test_every_mnemonic_renders_and_round_trips(mnemonic):
    instr = _sample_instruction(mnemonic)
    text = str(instr)
    assert mnemonic in text or text == "nop"
    assert decode(encode(instr)) is not None


@given(st.integers(0, 0xFFFFFFFF))
def test_str_never_crashes_on_decodable_words(word):
    instr = decode(word)
    if instr is not None:
        assert isinstance(str(instr), str)
