"""The repository's central invariants:

1. The coupled MIPS+DIM+array simulator produces *bit-identical*
   architectural state and program output to the plain MIPS core.
2. The trace-driven evaluator produces *cycle-identical* results to the
   coupled simulator, for every array shape and DIM policy.
"""

import pytest

from repro.minic import compile_to_program
from repro.sim import run_program
from repro.system import (
    CoupledSimulator,
    baseline_metrics,
    evaluate_trace,
    paper_system,
)
from repro.system.coupled import run_coupled

# A program mix designed to stress every DIM mechanism: biased loops
# (speculation), data-dependent branches (mis-speculation), multiplies
# (HI/LO context), divides (unsupported mid-block), memory traffic,
# calls and recursion (jal/jr boundaries).
PROGRAMS = {
    "loops_and_tables": """
    unsigned tab[64];
    int main() {
        int i; int j;
        unsigned acc = 1;
        for (i = 0; i < 64; i++) { tab[i] = i * 2654435761; }
        for (j = 0; j < 20; j++) {
            for (i = 0; i < 64; i++) {
                acc = acc ^ (tab[i] + (acc << 3)) + (acc >> 5);
                tab[i] = acc;
            }
        }
        print_int(acc & 0x7fffffff);
        return 0;
    }
    """,
    "branchy": """
    int main() {
        int i;
        int odd = 0;
        int even = 0;
        unsigned seed = 77;
        for (i = 0; i < 3000; i++) {
            seed = seed * 1103515245 + 12345;
            if ((seed >> 16) & 1) { odd++; }
            else {
                if ((seed >> 17) & 1) { even += 2; } else { even++; }
            }
        }
        print_int(odd);
        print_char(' ');
        print_int(even);
        return 0;
    }
    """,
    "mult_div_mix": """
    int main() {
        int i;
        int acc = 1;
        for (i = 1; i < 500; i++) {
            acc = acc + i * i - (acc / i) + (acc % 7);
        }
        print_int(acc);
        return 0;
    }
    """,
    "recursion": """
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() {
        print_int(fib(15));
        return 0;
    }
    """,
    "phase_change": """
    // branch direction flips halfway: exercises flush-and-rebuild
    int main() {
        int i;
        int a = 0;
        for (i = 0; i < 2000; i++) {
            if (i < 1000) { a += 1; } else { a += 3; }
        }
        print_int(a);
        return 0;
    }
    """,
}

CONFIGS = [
    paper_system("C1", 16, False),
    paper_system("C1", 16, True),
    paper_system("C2", 64, True),
    paper_system("C3", 64, False),
    paper_system("C3", 256, True),
    paper_system("ideal", speculation=True),
]


@pytest.fixture(scope="module")
def plain_runs():
    runs = {}
    for name, source in PROGRAMS.items():
        program = compile_to_program(source)
        runs[name] = (program, run_program(program, collect_trace=True))
    return runs


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("config_idx", range(len(CONFIGS)))
def test_coupled_is_bit_exact_and_trace_is_cycle_exact(plain_runs, name,
                                                       config_idx):
    config = CONFIGS[config_idx]
    program, plain = plain_runs[name]
    coupled = run_coupled(program, config)
    # --- architectural equivalence -----------------------------------
    assert coupled.output == plain.output
    assert coupled.exit_code == plain.exit_code
    assert coupled.registers == plain.registers
    assert coupled.memory.snapshot_pages() == plain.memory.snapshot_pages()
    assert coupled.stats.instructions == plain.stats.instructions
    assert coupled.stats.loads == plain.stats.loads
    assert coupled.stats.stores == plain.stats.stores
    # the array must actually have been used (not a vacuous pass)
    assert coupled.dim_stats.array_executions > 0
    # accelerated execution is never slower than 1.05x the plain core
    assert coupled.stats.cycles <= plain.stats.cycles * 1.05
    # --- trace-eval equivalence ---------------------------------------
    metrics = evaluate_trace(plain.trace, config)
    assert metrics.cycles == coupled.stats.cycles
    assert metrics.instructions == coupled.stats.instructions
    assert metrics.fetches == coupled.stats.fetches
    assert metrics.loads == coupled.stats.loads
    assert metrics.stores == coupled.stats.stores
    dim_t, dim_c = metrics.dim, coupled.dim_stats
    assert dim_t.array_executions == dim_c.array_executions
    assert dim_t.array_instructions == dim_c.array_instructions
    assert dim_t.misspeculations == dim_c.misspeculations
    assert dim_t.flushes == dim_c.flushes
    assert dim_t.translations == dim_c.translations
    assert metrics.cache_hits == coupled.cache_hits
    assert metrics.cache_lookups == coupled.cache_lookups


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_baseline_metrics_match_simulator(plain_runs, name):
    _, plain = plain_runs[name]
    metrics = baseline_metrics(plain.trace)
    assert metrics.cycles == plain.stats.cycles
    assert metrics.instructions == plain.stats.instructions
    assert metrics.fetches == plain.stats.fetches
    assert metrics.loads == plain.stats.loads
    assert metrics.stores == plain.stats.stores
    assert metrics.taken_transfers == plain.stats.taken_transfers
    assert metrics.load_use_stalls == plain.stats.load_use_stalls
    assert metrics.hilo_stalls == plain.stats.hilo_stalls


def test_phase_change_causes_flush_and_recovers(plain_runs):
    program, plain = plain_runs["phase_change"]
    config = paper_system("C3", 64, True)
    coupled = run_coupled(program, config)
    assert coupled.dim_stats.misspeculations > 0
    assert coupled.dim_stats.flushes > 0
    assert coupled.output == plain.output
    assert coupled.stats.cycles < plain.stats.cycles


def test_speculation_beats_no_speculation_on_biased_loops(plain_runs):
    _, plain = plain_runs["loops_and_tables"]
    nospec = evaluate_trace(plain.trace, paper_system("C3", 64, False))
    spec = evaluate_trace(plain.trace, paper_system("C3", 64, True))
    assert spec.cycles < nospec.cycles


def test_coupled_simulator_object_api():
    program = compile_to_program(PROGRAMS["recursion"])
    sim = CoupledSimulator(program, paper_system("C2", 64, True))
    result = sim.run()
    assert result.exit_code == 0
    assert result.predictor_accuracy > 0.5
    assert result.cache_hits <= result.cache_lookups
