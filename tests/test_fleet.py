"""The distributed evaluation fleet (:mod:`repro.fleet`).

Five families of guarantees:

1. The hash ring: deterministic fingerprint->shard assignment, spread,
   and minimal movement under membership change.
2. Coordinator routing: jobs shard by fingerprint, the wire protocol
   stays a superset of a single server's, load beyond ``max_inflight``
   is shed with the structured ``fleet_saturated`` error.
3. Failover: a worker killed mid-batch loses nothing — its jobs are
   re-dispatched to surviving shards, results stay byte-identical to
   the offline :mod:`repro.api`, and ``fleet.redispatch`` counts it.
4. The streaming client: the in-flight window bounds fleet load, shed
   responses throttle instead of failing, delivery is ordered.
5. Observability: ``fleet.*`` counters/timers/events live in the
   closed :mod:`repro.obs` schema.
"""

import json
import time

import pytest

from repro import api
from repro.fleet import FleetClient, FleetCoordinator, HashRing
from repro.fleet.coordinator import start_fleet_http
from repro.obs import EVENT_TYPES, validate_jsonl
from repro.obs.schema import FLEET_COUNTERS, FLEET_TIMERS
from repro.serve import (
    EvalService,
    JobState,
    ProtocolError,
    ServeClient,
    ServeError,
    start_http,
)

CRC_C1 = {"array": "C1", "slots": 16, "speculation": False}


# ----------------------------------------------------------------------
# 1. The consistent-hash ring.
# ----------------------------------------------------------------------
def test_ring_is_deterministic_and_total():
    ring = HashRing()
    for node in ("w0", "w1", "w2"):
        ring.add(node)
    keys = [f"fp{i:04d}" for i in range(500)]
    first = [ring.node_for(key) for key in keys]
    again = [ring.node_for(key) for key in keys]
    assert first == again
    assert set(first) == {"w0", "w1", "w2"}  # every shard gets keys

    fresh = HashRing()
    for node in ("w2", "w0", "w1"):  # insertion order is irrelevant
        fresh.add(node)
    assert [fresh.node_for(key) for key in keys] == first


def test_ring_membership_change_moves_only_the_lost_arc():
    ring = HashRing()
    for node in ("w0", "w1", "w2", "w3"):
        ring.add(node)
    keys = [f"fp{i:04d}" for i in range(1000)]
    before = {key: ring.node_for(key) for key in keys}
    ring.remove("w2")
    after = {key: ring.node_for(key) for key in keys}
    # keys not owned by the removed node must not move at all
    for key in keys:
        if before[key] != "w2":
            assert after[key] == before[key]
        else:
            assert after[key] != "w2"
    # and adding it back restores the original assignment exactly
    ring.add("w2")
    assert {key: ring.node_for(key) for key in keys} == before


def test_ring_preference_walks_distinct_nodes():
    ring = HashRing()
    for node in ("w0", "w1", "w2"):
        ring.add(node)
    order = ring.preference("some-fingerprint")
    assert sorted(order) == ["w0", "w1", "w2"]
    assert order[0] == ring.node_for("some-fingerprint")
    assert HashRing().preference("x") == []
    assert HashRing().node_for("x") is None


def test_ring_spread_is_reasonable():
    ring = HashRing()
    for index in range(4):
        ring.add(f"w{index}")
    keys = [f"fp{i:05d}" for i in range(4000)]
    shards = ring.assignment(keys)
    loads = sorted(len(owned) for owned in shards.values())
    assert loads[0] > 0
    assert loads[-1] / (len(keys) / 4) < 1.6  # max/mean bounded


# ----------------------------------------------------------------------
# Stub-worker scaffolding: real HTTP servers, no real evaluation cost.
# ----------------------------------------------------------------------
def _stub_runner(spec):
    return {"results": {job["id"]: {"kind": job["kind"], "stub": True,
                                    "mode": spec["mode"]}
                        for job in spec["jobs"]},
            "counters": {}}


def _stub_worker(runner=_stub_runner, **kwargs):
    svc = EvalService(workers=0, batch_window=0.0, runner=runner,
                      **kwargs).start()
    server, _ = start_http(svc)
    url = "http://%s:%s" % server.server_address[:2]
    return svc, server, url


def _spec(slots=16, names=("crc",)):
    return {"kind": "evaluate", "names": list(names), "fast": True,
            "configs": [{"array": "C1", "slots": slots,
                         "speculation": False}]}


def _drain(coordinator, timeout=30.0):
    deadline = time.monotonic() + timeout
    while coordinator.inflight and time.monotonic() < deadline:
        time.sleep(0.01)
    assert coordinator.inflight == 0, "fleet failed to drain"


# ----------------------------------------------------------------------
# 2. Coordinator routing and protocol compatibility.
# ----------------------------------------------------------------------
def test_fingerprint_sharding_keeps_locality():
    """Same-fingerprint jobs land on one shard; distinct fingerprints
    spread across the fleet per the ring."""
    workers = [_stub_worker() for _ in range(3)]
    fleet = FleetCoordinator(heartbeat_interval=0.02).start()
    try:
        for index, (_, _, url) in enumerate(workers):
            fleet.register_worker(f"w{index}", url)
        names = ("crc", "sha", "bitcount", "dijkstra")
        jobs = {}
        for name in names:
            for slots in (16, 64):
                job = fleet.submit(_spec(slots=slots, names=(name,)))
                jobs.setdefault(name, []).append(job["job_id"])
        _drain(fleet)
        for name, ids in jobs.items():
            owners = {fleet.status(job_id)["worker"] for job_id in ids}
            assert len(owners) == 1, f"{name} split across {owners}"
        expected = {name: fleet.ring.node_for(
            api and __import__("repro.serve.protocol",
                               fromlist=["validate_submission"])
            .validate_submission(_spec(names=(name,))).fingerprint)
            for name in names}
        for name, ids in jobs.items():
            assert fleet.status(ids[0])["worker"] == expected[name]
    finally:
        fleet.stop(drain=False)
        for svc, server, _ in workers:
            svc.stop(drain=False)
            server.shutdown()


def test_coordinator_speaks_the_server_protocol():
    """A plain ServeClient works against the coordinator unchanged."""
    svc, server, url = _stub_worker()
    fleet = FleetCoordinator(heartbeat_interval=0.02).start()
    fserver, _ = start_fleet_http(fleet)
    try:
        fleet.register_worker("w0", url)
        client = ServeClient("http://%s:%s" % fserver.server_address[:2])
        health = client.healthz()
        assert health["protocol"] == 1 and health["role"] == "coordinator"
        assert health["workers"] == 1
        job = client.submit("evaluate", configs=[CRC_C1], names=["crc"],
                            fast=True)
        assert job["job_id"].startswith("f")
        payload = client.wait(job["job_id"], timeout=30)
        assert payload["result"]["stub"] is True
        status = client.status(job["job_id"])
        assert status["state"] == JobState.DONE
        assert status["worker"] == "w0"
        listing = client.jobs()
        assert [j["job_id"] for j in listing] == [job["job_id"]]
        assert client.jobs(active=True) == []
        with pytest.raises(ServeError) as excinfo:
            client.status("f999999")
        assert excinfo.value.code == "unknown_job"
        metrics = client.metrics()
        assert metrics["counters"]["fleet.jobs_completed"] == 1
    finally:
        fleet.stop(drain=False)
        fserver.shutdown()
        svc.stop(drain=False)
        server.shutdown()


def test_submission_errors_are_structured():
    fleet = FleetCoordinator(heartbeat_interval=0.02)
    with pytest.raises(ProtocolError) as excinfo:
        fleet.submit({"kind": "explode"})
    assert excinfo.value.code == "unknown_kind"
    with pytest.raises(ProtocolError) as excinfo:
        fleet.submit(_spec())  # no workers registered
    assert excinfo.value.code == "no_workers"
    assert excinfo.value.http_status == 503
    assert fleet.jobs == {}  # nothing lingers after a failed submit
    with pytest.raises(ProtocolError) as excinfo:
        fleet.heartbeat("ghost")
    assert excinfo.value.code == "unknown_worker"
    with pytest.raises(ProtocolError) as excinfo:
        fleet.register_worker("w0", "http://127.0.0.1:1")  # unreachable
    assert excinfo.value.code == "bad_param"


def test_load_shedding_beyond_max_inflight():
    svc, server, url = _stub_worker()
    svc.pause()  # jobs stay pending -> inflight never drops
    fleet = FleetCoordinator(max_inflight=2,
                             heartbeat_interval=0.02).start()
    try:
        fleet.register_worker("w0", url)
        fleet.submit(_spec(slots=16))
        fleet.submit(_spec(slots=32))
        with pytest.raises(ProtocolError) as excinfo:
            fleet.submit(_spec(slots=64))
        assert excinfo.value.code == "fleet_saturated"
        assert excinfo.value.http_status == 429
        assert fleet.stats.jobs_shed == 1
        assert fleet.stats.jobs_submitted == 2
        svc.resume()
        _drain(fleet)
        assert fleet.submit(_spec(slots=64))["job_id"]  # room again
        _drain(fleet)
    finally:
        fleet.stop(drain=False)
        svc.stop(drain=False)
        server.shutdown()


def test_worker_queue_full_propagates_as_shed():
    svc, server, url = _stub_worker(capacity=1)
    svc.pause()
    fleet = FleetCoordinator(heartbeat_interval=0.02).start()
    try:
        fleet.register_worker("w0", url)
        fleet.submit(_spec(slots=16))
        with pytest.raises(ProtocolError) as excinfo:
            fleet.submit(_spec(slots=32))
        assert excinfo.value.code == "fleet_saturated"
        assert fleet.stats.jobs_shed == 1
        svc.resume()
        _drain(fleet)
    finally:
        fleet.stop(drain=False)
        svc.stop(drain=False)
        server.shutdown()


def test_draining_shutdown_completes_accepted_work():
    svc, server, url = _stub_worker()
    fleet = FleetCoordinator(heartbeat_interval=0.02).start()
    fleet.register_worker("w0", url)
    try:
        ids = [fleet.submit(_spec(slots=s))["job_id"]
               for s in (16, 32, 64, 128, 256)]
        summary = fleet.stop(drain=True)
        assert summary["drained"] and summary["active"] == 0
        for job_id in ids:
            assert fleet.result(job_id)["state"] == JobState.DONE
        with pytest.raises(ProtocolError) as excinfo:
            fleet.submit(_spec())
        assert excinfo.value.code == "shutting_down"
    finally:
        svc.stop(drain=False)
        server.shutdown()


def test_cancel_through_the_coordinator():
    svc, server, url = _stub_worker()
    svc.pause()
    fleet = FleetCoordinator(heartbeat_interval=0.02).start()
    try:
        fleet.register_worker("w0", url)
        job = fleet.submit(_spec())
        status = fleet.cancel(job["job_id"])
        assert status["state"] == JobState.CANCELLED
        with pytest.raises(ProtocolError) as excinfo:
            fleet.result(job["job_id"])
        assert excinfo.value.code == "job_cancelled"
        svc.resume()
    finally:
        fleet.stop(drain=False)
        svc.stop(drain=False)
        server.shutdown()


# ----------------------------------------------------------------------
# 3. Failover: kill a worker mid-batch.
# ----------------------------------------------------------------------
def test_worker_killed_mid_batch_redispatches_byte_identically():
    """The satellite guarantee: kill the owning worker while its jobs
    are in flight; the coordinator re-dispatches them to the surviving
    shard, the results match offline evaluation byte-for-byte, and
    ``fleet.redispatch`` counts the rescue."""
    import threading

    release = threading.Event()
    started = threading.Event()

    def gated(spec):  # the victim runs nothing until released
        started.set()
        release.wait(30)
        return _stub_runner(spec)

    # two *real-evaluation* workers would make this test heavy; instead
    # the victim runs a gated stub and the survivor runs the real
    # batch executor, so the rescued results are genuinely evaluated.
    from repro.serve.scheduler import run_batch

    victim_svc, victim_server, victim_url = _stub_worker(runner=gated)
    surv_svc = EvalService(workers=0, batch_window=0.0,
                           runner=run_batch).start()
    surv_server, _ = start_http(surv_svc)
    surv_url = "http://%s:%s" % surv_server.server_address[:2]

    fleet = FleetCoordinator(heartbeat_interval=0.02,
                             heartbeat_failures=2).start()
    try:
        # rig the ring so the victim owns the crc fingerprint
        fingerprint = __import__(
            "repro.serve.protocol",
            fromlist=["validate_submission"]).validate_submission(
            _spec()).fingerprint
        fleet.register_worker("wa", victim_url)
        fleet.register_worker("wb", surv_url)
        owner = fleet.ring.node_for(fingerprint)
        victim_id = owner
        if owner != "wa":  # swap roles: the stub must own the jobs
            victim_svc, surv_svc = surv_svc, victim_svc
            victim_server, surv_server = surv_server, victim_server
        before = fleet.telemetry.events_emitted

        ids = [fleet.submit(_spec(slots=s))["job_id"]
               for s in (16, 64)]
        assert started.wait(10) or True
        for job_id in ids:
            assert fleet.status(job_id)["worker"] == victim_id

        # hard-kill the victim: sockets die, no drain, no goodbye.
        # stop(drain=False) would be too polite — it waits for the
        # in-flight (gated) batch, and for that whole window the
        # victim keeps answering the coordinator's polls over the
        # pooled keep-alive connection, so it never looks dead.
        # kill() is the SIGKILL analogue: the bridge drops instantly
        # and the gated batch is orphaned, never to deliver a result.
        victim_server.shutdown()
        victim_server.server_close()
        victim_svc.kill()

        deadline = time.monotonic() + 30
        while (victim_id in fleet.live_workers()
               and time.monotonic() < deadline):
            time.sleep(0.02)
        assert victim_id not in fleet.live_workers()
        release.set()
        _drain(fleet)

        survivor = ({"wa", "wb"} - {victim_id}).pop()
        for job_id, slots in zip(ids, (16, 64)):
            status = fleet.status(job_id)
            assert status["state"] == JobState.DONE
            assert status["worker"] == survivor
            assert status["attempts"] >= 2
            payload = fleet.result(job_id)["result"]
            offline = api.evaluate(api.build_config("C1", slots, False),
                                   names=["crc"], fast=True)
            assert payload["suite_json"] == offline.to_json()

        assert fleet.stats.workers_lost == 1
        assert fleet.stats.redispatches >= len(ids)
        counters = fleet.metrics()["counters"]
        assert counters["fleet.redispatch"] == fleet.stats.redispatches
        types = [json.loads(line)["type"] for line in
                 fleet.events_jsonl().splitlines()[1:]]
        assert "fleet.worker_lost" in types
        assert "fleet.job_redispatched" in types
        assert fleet.telemetry.events_emitted > before
    finally:
        release.set()
        fleet.stop(drain=False)
        surv_svc.stop(drain=False)
        surv_server.shutdown()


def test_redispatch_cap_fails_jobs_instead_of_looping():
    fleet = FleetCoordinator(heartbeat_interval=0.02, max_redispatch=1)
    svc, server, url = _stub_worker()
    svc.pause()
    try:
        fleet.register_worker("w0", url)
        job_id = fleet.submit(_spec())["job_id"]
        job = fleet.jobs[job_id]
        fleet._redispatch(job)  # rescue 1: allowed (back onto w0)
        fleet._redispatch(job)  # rescue 2: over the cap
        assert job.state == JobState.FAILED
        assert job.error["code"] == "worker_failure"
        assert fleet.stats.redispatches == 1
        svc.resume()
    finally:
        fleet.stop(drain=False)
        svc.stop(drain=False)
        server.shutdown()


# ----------------------------------------------------------------------
# 4. The streaming client.
# ----------------------------------------------------------------------
def test_streaming_window_bounds_inflight_and_orders_results():
    svc, server, url = _stub_worker()
    fleet = FleetCoordinator(heartbeat_interval=0.01).start()
    fserver, _ = start_fleet_http(fleet)
    try:
        fleet.register_worker("w0", url)
        client = FleetClient("http://%s:%s" % fserver.server_address[:2],
                             window=3, poll=0.005)
        specs = [_spec(slots=2 ** (4 + (i % 5))) for i in range(12)]
        seen = [index for index, _ in client.stream(specs)]
        assert seen == list(range(12))  # submission order
        assert fleet.stats.max_inflight_seen <= 3
        assert fleet.stats.jobs_completed == 12
        assert client.stream_stats["submitted"] == 12
        assert client.stream_stats["completed"] == 12
    finally:
        fleet.stop(drain=False)
        fserver.shutdown()
        svc.stop(drain=False)
        server.shutdown()


def test_streaming_client_backs_off_on_shed_and_finishes():
    svc, server, url = _stub_worker()
    fleet = FleetCoordinator(max_inflight=2,
                             heartbeat_interval=0.01).start()
    fserver, _ = start_fleet_http(fleet)
    try:
        fleet.register_worker("w0", url)
        client = FleetClient("http://%s:%s" % fserver.server_address[:2],
                             window=8, poll=0.005, shed_backoff=0.01)
        results = client.map([_spec(slots=2 ** (4 + (i % 5)))
                              for i in range(10)])
        assert len(results) == 10
        assert all(r["result"]["stub"] for r in results)
        # the window (8) exceeded the fleet cap (2), so sheds MUST have
        # throttled the stream rather than failing it.
        assert client.stream_stats["shed_waits"] > 0
        assert fleet.stats.jobs_shed > 0
        assert fleet.stats.max_inflight_seen <= 2
    finally:
        fleet.stop(drain=False)
        fserver.shutdown()
        svc.stop(drain=False)
        server.shutdown()


def test_streaming_on_error_yield_captures_failures():
    def broken(spec):
        raise RuntimeError("shard on fire")

    svc, server, url = _stub_worker(runner=broken, max_retries=0)
    fleet = FleetCoordinator(heartbeat_interval=0.01).start()
    fserver, _ = start_fleet_http(fleet)
    try:
        fleet.register_worker("w0", url)
        client = FleetClient("http://%s:%s" % fserver.server_address[:2],
                             window=2, poll=0.005)
        results = client.map([_spec(slots=16), _spec(slots=32)],
                             on_error="yield")
        assert all(r["error"]["code"] == "job_failed" for r in results)
        with pytest.raises(ValueError):
            next(client.stream([], on_error="explode"))
    finally:
        fleet.stop(drain=False)
        fserver.shutdown()
        svc.stop(drain=False)
        server.shutdown()


# ----------------------------------------------------------------------
# 5. Observability: the closed fleet schema.
# ----------------------------------------------------------------------
def test_fleet_counters_cover_fleetstats_exactly():
    from repro.fleet.coordinator import FleetStats
    from repro.obs.schema import fleet_counters, fleet_timers

    stats = FleetStats()
    counters = fleet_counters(stats)
    timers = fleet_timers(stats)
    assert set(counters) == set(FLEET_COUNTERS)
    assert set(timers) == set(FLEET_TIMERS)
    import dataclasses
    fields = {f.name for f in dataclasses.fields(FleetStats)}
    mapped = set(FLEET_COUNTERS.values()) | set(FLEET_TIMERS.values())
    assert mapped == fields  # every stat is exported, none invented
    assert all(name.startswith("fleet.") for name in counters)
    assert all(name.startswith("fleet.") for name in timers)


def test_fleet_events_are_schema_valid():
    svc, server, url = _stub_worker()
    fleet = FleetCoordinator(heartbeat_interval=0.02).start()
    try:
        fleet.register_worker("w0", url)
        fleet.submit(_spec())
        _drain(fleet)
        lines = fleet.events_jsonl().splitlines()
        assert validate_jsonl(lines) == []
        types = {json.loads(line)["type"] for line in lines}
        assert "fleet.worker_registered" in types
        assert "fleet.job_dispatched" in types
        assert "fleet.job_finished" in types
        assert types <= EVENT_TYPES
    finally:
        fleet.stop(drain=False)
        svc.stop(drain=False)
        server.shutdown()
