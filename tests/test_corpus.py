"""The synthetic workload corpus (:mod:`repro.corpus`).

Five families of guarantees:

1. Determinism: the same ``(seed, knobs)`` yields byte-identical
   sources, manifests and assembled-image fingerprints — in-process and
   across independent interpreter processes with different hash seeds.
2. Self-checking: every generated kernel verifies its own checksum at
   generation time, a corrupted expectation makes the kernel exit 1,
   and a drifted generator refuses a stale manifest.
3. Registry integration: corpus kernels register as ordinary workloads
   (suite/sweep/serve consume them unchanged), registration is
   idempotent, collisions raise, and the ``REPRO_CORPUS`` environment
   variable propagates corpora into fresh registry views.
4. The differential guarantee: a generated corpus evaluates
   byte-identically through the event replay engine, the columnar
   replay engine, an inline serve service and a real two-worker fleet.
5. Observability: the ``corpus.*`` counters/timers/events live in the
   closed :mod:`repro.obs` schema.
"""

import hashlib
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.corpus import (
    Corpus,
    CorpusKnobs,
    GenerationError,
    ManifestError,
    PROFILES,
    draw_kernel_knobs,
    draw_manifest_knobs,
    encoding_fingerprint,
    generate_corpus,
    generate_kernel,
    generate_source,
    kernel_name,
    kernel_seed,
    load_manifest,
    rebuild_kernel_source,
    register_corpus,
)
from repro.corpus.manifest import CorpusStats
from repro.obs import EVENT_TYPES, Telemetry, validate_jsonl
from repro.workloads import (
    CORPUS_ENV,
    get_workload,
    unregister_generated,
    workload_names,
)

SEED = 7
GOLDEN = Path(__file__).parent / "data" / "corpus_smoke_manifest.json"

C2_64 = {"array": "C2", "slots": 64, "speculation": True}


@pytest.fixture(autouse=True)
def _clean_registry():
    """Every test starts and ends with only the 18 built-ins."""
    unregister_generated()
    yield
    unregister_generated()


@pytest.fixture(scope="module")
def corpus24():
    """One 24-kernel corpus shared by the expensive integration tests."""
    return generate_corpus(SEED, 24)


# ----------------------------------------------------------------------
# 1. Determinism.
# ----------------------------------------------------------------------
def test_generation_is_deterministic_in_process(corpus24):
    again = generate_corpus(SEED, 24)
    assert again.manifest_json() == corpus24.manifest_json()
    for a, b in zip(again.kernels, corpus24.kernels):
        assert a.source == b.source
        assert a.encoding_sha256 == b.encoding_sha256 \
            == encoding_fingerprint(a.source)


def test_source_regenerable_from_seed_index_knobs_checksum(corpus24):
    """Manifests store no sources; (seed, index, knobs, checksum)
    rebuilds each kernel byte-identically."""
    for kernel in corpus24.kernels[:6]:
        rebuilt = generate_source(SEED, kernel.index, kernel.knobs,
                                  expected=kernel.checksum)
        assert rebuilt == kernel.source


def test_corpus_determinism_across_processes():
    """The satellite property: two independent interpreter processes
    with different PYTHONHASHSEED values emit byte-identical manifests
    — no draw anywhere depends on hash iteration order."""
    script = ("import sys; from repro.corpus import generate_corpus; "
              "sys.stdout.write(generate_corpus(5, 6).manifest_json())")
    outputs = []
    for hash_seed in ("1", "99"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH=str(Path(__file__).parent.parent / "src"))
        env.pop(CORPUS_ENV, None)
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, env=env,
                              timeout=300, check=True)
        outputs.append(proc.stdout)
    assert outputs[0] == outputs[1]
    payload = json.loads(outputs[0])
    assert payload["version"] == 1 and payload["count"] == 6
    # and the in-process generator agrees with both subprocesses
    assert generate_corpus(5, 6).manifest_json() == outputs[0]


def test_knob_draws_respect_ranges_and_quantisation():
    knobs = CorpusKnobs.mixed()
    for index in range(64):
        draw = draw_kernel_knobs(SEED, index, knobs)
        assert knobs.block_size[0] <= draw.block_size <= knobs.block_size[1]
        assert knobs.ilp[0] <= draw.ilp <= knobs.ilp[1]
        assert draw.mem_stride in knobs.strides
        assert draw.pool_words in knobs.pool_words
        # fractions are sixteenth-quantised so floats stay exact
        for fraction in (draw.branch_bias, draw.predictability,
                         draw.mem_intensity, draw.mult_weight):
            assert (fraction * 16) == int(fraction * 16)
        assert len(draw.trips) == draw.loop_depth
    assert draw_manifest_knobs(SEED, 8) \
        == [draw_kernel_knobs(SEED, i, knobs) for i in range(8)]


def test_kernel_seeds_are_distinct_and_stable():
    seeds = [kernel_seed(SEED, index) for index in range(256)]
    assert len(set(seeds)) == 256
    assert kernel_seed(3, 1) != kernel_seed(1, 3)


def test_profiles_shift_the_category_mix():
    assert PROFILES == sorted(["mixed", "dataflow", "control", "memory",
                               "loopy", "divergent"])
    dataflow = generate_corpus(11, 8, knobs=CorpusKnobs.dataflow())
    control = generate_corpus(11, 8, knobs=CorpusKnobs.control())
    assert sum(k.category == "dataflow" for k in dataflow.kernels) \
        > sum(k.category == "dataflow" for k in control.kernels)
    assert sum(k.category == "control" for k in control.kernels) \
        > sum(k.category == "control" for k in dataflow.kernels)


def test_dynflow_profiles_stress_their_modes():
    """``loopy`` kernels loop hard with predictable control; ``divergent``
    kernels branch hard with unpredictable control."""
    loopy = generate_corpus(11, 8, knobs=CorpusKnobs.loopy())
    divergent = generate_corpus(11, 8, knobs=CorpusKnobs.divergent())
    for kernel in loopy.kernels:
        assert min(kernel.knobs.trips) >= 2
        assert kernel.knobs.diamonds <= 1
        assert kernel.knobs.predictability >= 0.75
    for kernel in divergent.kernels:
        assert kernel.knobs.diamonds >= 3
        assert kernel.knobs.predictability <= 0.25
        assert 6 / 16 <= kernel.knobs.branch_bias <= 10 / 16
    assert sum(k.category == "control" for k in divergent.kernels) \
        > sum(k.category == "control" for k in loopy.kernels)


# ----------------------------------------------------------------------
# 2. Self-checking kernels and manifest integrity.
# ----------------------------------------------------------------------
def test_kernels_are_self_checking(corpus24):
    """The embedded check really fails on a wrong expectation."""
    from repro.asm import assemble
    from repro.sim import run_program

    kernel = corpus24.kernels[0]
    good = run_program(assemble(kernel.source), collect_trace=False)
    assert good.exit_code == 0
    assert good.output.strip() == f"0x{kernel.checksum:08x}"

    wrong = generate_source(SEED, kernel.index, kernel.knobs,
                            expected=(kernel.checksum ^ 1))
    bad = run_program(assemble(wrong), collect_trace=False)
    assert bad.exit_code == 1
    # the printed checksum is computed before the comparison, so it is
    # still the true one — that is what the learn pass relies on
    assert bad.output.strip() == f"0x{kernel.checksum:08x}"


def test_generation_failure_raises_with_kernel_name(monkeypatch):
    """A learn pass that prints anything but one checksum aborts."""
    class _Bogus:
        output = "not a checksum"
        exit_code = 0

    monkeypatch.setattr("repro.sim.run_program",
                        lambda *args, **kwargs: _Bogus)
    with pytest.raises(GenerationError, match="learn pass"):
        generate_kernel(SEED, 0)


def test_manifest_roundtrip_and_validation(tmp_path, corpus24):
    path = tmp_path / "corpus.json"
    corpus24.write(str(path))
    payload = load_manifest(str(path))
    assert payload == corpus24.manifest()

    for breakage in (
            {"version": 99},
            {"count": 3},  # kernel list no longer matches
    ):
        broken = dict(payload, **breakage)
        bad = tmp_path / "broken.json"
        bad.write_text(json.dumps(broken))
        with pytest.raises(ManifestError):
            load_manifest(str(bad))
    scalar = tmp_path / "scalar.json"
    scalar.write_text("42")
    with pytest.raises(ManifestError):
        load_manifest(str(scalar))


def test_stale_manifest_refuses_to_register(tmp_path, corpus24):
    """A manifest whose source hash no longer matches the generator is
    rejected instead of silently renaming a different program."""
    payload = corpus24.manifest()
    entry = dict(payload["kernels"][0])
    entry["source_sha256"] = hashlib.sha256(b"drifted").hexdigest()
    payload["kernels"] = [entry] + payload["kernels"][1:]
    with pytest.raises(ManifestError, match="drifted"):
        register_corpus(payload)
    with pytest.raises(ManifestError):
        rebuild_kernel_source(SEED, entry)


def test_golden_smoke_manifest_matches_generator():
    """The committed CI golden: 20 kernels, seed 20.  If the generator
    changes behaviour this fails — regenerate the golden deliberately
    with ``repro corpus generate --seed 20 --count 20 --out
    tests/data/corpus_smoke_manifest.json``."""
    golden = GOLDEN.read_text(encoding="utf-8")
    assert generate_corpus(20, 20).manifest_json() == golden


# ----------------------------------------------------------------------
# 3. Registry integration.
# ----------------------------------------------------------------------
def test_register_corpus_makes_ordinary_workloads(corpus24):
    names = register_corpus(corpus24)
    assert names == [kernel_name(SEED, i) for i in range(24)]
    assert set(names) <= set(workload_names())
    workload = get_workload(names[0])
    assert workload.kind == "asm"
    assert workload.category == corpus24.kernels[0].category
    # registration is idempotent; a different corpus colliding on a
    # name raises instead of silently replacing the program
    register_corpus(corpus24)
    from repro.workloads import Workload, register_workload
    with pytest.raises(ValueError, match="different content"):
        register_workload(Workload(
            name=names[0], paper_name=names[0], category="mid",
            source="__start:\n    li $v0, 10\n    syscall\n",
            kind="asm"))


def test_registered_kernels_run_and_accelerate(corpus24):
    names = register_corpus(corpus24)
    result = api.run(names[0], config=api.SystemSpec(array="C2").build(),
                     fast=True)
    assert result.plain.exit_code == 0
    assert result.speedup > 1.0
    expected = f"0x{corpus24.kernels[0].checksum:08x}"
    assert result.plain.output.strip() == expected


def test_env_corpus_loads_into_fresh_registry_views(tmp_path, monkeypatch):
    corpus = generate_corpus(13, 3)
    path = tmp_path / "c13.json"
    corpus.write(str(path))
    monkeypatch.setenv(CORPUS_ENV, str(path))
    unregister_generated()  # forces the env value to be re-examined
    names = workload_names()
    assert [kernel_name(13, i) for i in range(3)] \
        == [n for n in names if n.startswith("c13k")]
    monkeypatch.delenv(CORPUS_ENV)
    unregister_generated()
    assert all(not n.startswith("c13k") for n in workload_names())


def test_register_from_manifest_equals_register_from_corpus(
        tmp_path, corpus24):
    path = tmp_path / "corpus.json"
    corpus24.write(str(path))
    from_manifest = register_corpus(load_manifest(str(path)))
    name = from_manifest[0]
    source_via_manifest = get_workload(name).source
    unregister_generated()
    register_corpus(corpus24)
    assert get_workload(name).source == source_via_manifest


# ----------------------------------------------------------------------
# 4. The differential guarantee: four execution paths, one answer.
# ----------------------------------------------------------------------
def test_corpus_byte_identical_across_engines_serve_and_fleet(corpus24):
    """Event replay, columnar replay, an inline serve service and a
    real two-worker fleet must all agree byte-for-byte on a generated
    corpus — the transparency bar the built-in workloads already meet,
    extended to synthetic ones."""
    from repro.fleet import FleetCoordinator
    from repro.fleet.coordinator import start_fleet_http
    from repro.serve import EvalService, ServeClient, start_http

    names = register_corpus(corpus24)
    config = api.SystemSpec(array="C2", slots=64,
                            speculation=True).build()

    event = api.sweep([config], names=names, fast=True, engine="event")
    columnar = api.sweep([config], names=names, fast=True,
                         engine="columnar")
    assert event.results_json() == columnar.results_json()

    # Inline serve: one sweep job over the whole corpus.
    svc = EvalService(workers=0, cache_root=None, batch_window=0.0)
    svc.start()
    server, _ = start_http(svc)
    try:
        client = ServeClient("http://%s:%s" % server.server_address[:2],
                             timeout=300.0)
        job = client.submit("sweep", configs=[C2_64], names=names,
                            fast=True)
        payload = client.wait(job["job_id"], timeout=300)
        assert payload["state"] == "done"
        assert payload["result"]["matrix_json"] == event.results_json()
    finally:
        svc.stop(drain=False)
        server.shutdown()

    # A real two-worker fleet: per-kernel evaluate jobs shard across
    # both workers by fingerprint and still match offline evaluation.
    workers = []
    for _ in range(2):
        wsvc = EvalService(workers=0, cache_root=None, batch_window=0.0)
        wsvc.start()
        wserver, _ = start_http(wsvc)
        workers.append((wsvc, wserver,
                        "http://%s:%s" % wserver.server_address[:2]))
    fleet = FleetCoordinator(heartbeat_interval=0.05).start()
    fserver, _ = start_fleet_http(fleet)
    try:
        for index, (_, _, url) in enumerate(workers):
            fleet.register_worker(f"w{index}", url)
        fclient = ServeClient(
            "http://%s:%s" % fserver.server_address[:2], timeout=300.0)
        jobs = {name: fclient.submit("evaluate", configs=[C2_64],
                                     names=[name], fast=True)["job_id"]
                for name in names}
        offline = {name: api.evaluate(config, names=[name],
                                      fast=True).to_json()
                   for name in names}
        for name, job_id in jobs.items():
            payload = fclient.wait(job_id, timeout=300)
            assert payload["state"] == "done", name
            assert payload["result"]["suite_json"] == offline[name], name
        # the corpus really sharded: both workers executed batches
        assert all(wsvc.stats.batches > 0 for wsvc, _, _ in workers)
    finally:
        fleet.stop(drain=False)
        fserver.shutdown()
        for wsvc, wserver, _ in workers:
            wsvc.stop(drain=False)
            wserver.shutdown()


# ----------------------------------------------------------------------
# 5. Observability: the corpus.* namespace is closed and populated.
# ----------------------------------------------------------------------
def test_corpus_namespace_events_are_closed():
    corpus_types = {t for t in EVENT_TYPES if t.startswith("corpus.")}
    assert corpus_types == {"corpus.kernel_generated",
                            "corpus.manifest_written",
                            "corpus.registered"}
    tel = Telemetry()
    with pytest.raises(ValueError, match="unknown telemetry event"):
        tel.emit("corpus.kernel_exploded", name="c0k000")


def test_corpus_collectors_map_stats_onto_schema(tmp_path):
    from repro.obs.schema import (
        CORPUS_COUNTERS,
        CORPUS_TIMERS,
        corpus_counters,
        corpus_timers,
    )

    stats = CorpusStats()
    tel = Telemetry()
    corpus = generate_corpus(3, 2, telemetry=tel, stats=stats)
    corpus.write(str(tmp_path / "c3.json"), telemetry=tel)
    register_corpus(corpus, telemetry=tel, stats=stats)
    assert stats.kernels_generated == 2
    assert stats.kernels_verified == 2
    assert stats.kernels_registered == 2
    assert stats.verify_failures == 0
    assert stats.dynamic_instructions \
        == sum(k.instructions for k in corpus.kernels)
    counters = corpus_counters(stats)
    assert counters["corpus.kernels_generated"] == 2
    assert corpus_timers(stats)["corpus.generate_seconds"] \
        == stats.generate_seconds
    for mapping in (CORPUS_COUNTERS, CORPUS_TIMERS):
        for name, attr in mapping.items():
            assert name.startswith("corpus.")
            assert hasattr(stats, attr)
    # the emitted stream is schema-valid end to end
    path = tmp_path / "corpus_events.jsonl"
    tel.write_jsonl(path)
    lines = path.read_text().splitlines()
    assert validate_jsonl(lines) == []
    types = {json.loads(line)["type"] for line in lines}
    assert {"corpus.kernel_generated", "corpus.manifest_written",
            "corpus.registered"} <= types
