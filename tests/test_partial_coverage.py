"""Mid-block behaviours: prefix coverage, unsupported instructions,
and resume semantics in the coupled simulator."""

import pytest

from repro.asm import assemble
from repro.sim import run_program
from repro.system import evaluate_trace, paper_system
from repro.system.coupled import CoupledSimulator

# The loop body contains a div: DIM can only translate the prefix; the
# divide and everything after it run on the processor each iteration.
DIV_LOOP = """
    li $s0, 0          # i
    li $s1, 0          # acc
loop:
    addiu $s0, $s0, 1
    sll $t0, $s0, 3
    addu $t1, $t0, $s0
    xor $t2, $t1, $s0
    div $t3, $t2, 3    # pseudo: div + mflo -> unsupported boundary
    addu $s1, $s1, $t3
    blt $s0, 300, loop
    move $a0, $s1
    li $v0, 1
    syscall
    li $v0, 10
    syscall
"""


def test_prefix_coverage_with_unsupported_instruction():
    program = assemble(DIV_LOOP)
    plain = run_program(program, collect_trace=True)
    config = paper_system("C3", 64, True)
    sim = CoupledSimulator(program, config)
    result = sim.run()
    assert result.output == plain.output
    assert result.registers == plain.registers
    dim = result.dim_stats
    # the array executes the prefix every iteration...
    assert dim.array_executions > 250
    # ...but cannot cover the div/mflo tail: fetches remain substantial
    assert result.stats.fetches > 300 * 3
    # and it still wins
    assert result.stats.cycles < plain.stats.cycles
    # trace evaluation agrees exactly
    metrics = evaluate_trace(plain.trace, config)
    assert metrics.cycles == result.stats.cycles


def test_configuration_covers_prefix_only():
    program = assemble(DIV_LOOP)
    config = paper_system("C3", 64, False)
    sim = CoupledSimulator(program, config)
    sim.run()
    loop_pc = program.symbols["loop"]
    cached = sim.engine.cache.peek(loop_pc)
    assert cached is not None
    cfg_block = cached.blocks[0]
    assert cfg_block.covered < cfg_block.body_len
    # covered exactly up to the div (4 instructions)
    covered_names = [i.mnemonic for i in
                     cfg_block.block.instructions[:cfg_block.covered]]
    assert "div" not in covered_names
    assert cfg_block.block.instructions[cfg_block.covered].mnemonic \
        == "div"


def test_jr_terminated_blocks_never_speculate():
    source = """
        jal work
        move $a0, $v0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
    work:
        addiu $t0, $t0, 1
        addu $t1, $t0, $t0
        xor $t2, $t1, $t0
        sll $v0, $t2, 1
        jr $ra
    """
    program = assemble(source)
    config = paper_system("C3", 64, True)
    sim = CoupledSimulator(program, config)
    result = sim.run()
    for pc in list(sim.engine.cache._entries):
        cached = sim.engine.cache.peek(pc)
        assert len(cached.blocks) == 1
        assert not cached.blocks[0].includes_terminator
    assert result.exit_code == 0
