"""Static block costs must agree with the simulator on any single block."""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.sim import Simulator, TimingModel, run_program
from repro.system.costmodel import BlockCostModel

EXIT = "li $v0, 10\nsyscall\n"

_SAFE_OPS = [
    "addu $t{d}, $t{a}, $t{b}",
    "subu $t{d}, $t{a}, $t{b}",
    "xor $t{d}, $t{a}, $t{b}",
    "sll $t{d}, $t{a}, {sh}",
    "slt $t{d}, $t{a}, $t{b}",
    "lw $t{d}, {off}($gp)",
    "sw $t{a}, {off}($gp)",
    "mult $t{a}, $t{b}",
    "mflo $t{d}",
    "mfhi $t{d}",
    "div $t{a}, $t{b}",
]


@st.composite
def straight_line_programs(draw):
    n = draw(st.integers(1, 25))
    lines = ["li $gp, 0x10010000"]
    for _ in range(n):
        template = draw(st.sampled_from(_SAFE_OPS))
        lines.append(template.format(
            d=draw(st.integers(0, 7)), a=draw(st.integers(0, 7)),
            b=draw(st.integers(0, 7)), sh=draw(st.integers(0, 31)),
            off=draw(st.integers(0, 15)) * 4))
    return "\n".join(lines) + "\n" + EXIT


@settings(max_examples=40, deadline=None)
@given(straight_line_programs())
def test_block_cost_matches_simulator(source):
    program = assemble(source)
    result = run_program(program, collect_trace=True)
    model = BlockCostModel(TimingModel())
    total = 0
    for event in result.trace.events:
        block = result.trace.table.get(event.block_id)
        total += model.cost(block).cycles(event.taken)
    assert total == result.stats.cycles


def test_cost_of_block_suffix():
    source = """
        li $gp, 0x10010000
        lw $t0, 0($gp)
        add $t1, $t0, $t0
        mult $t0, $t1
        mflo $t2
    """ + EXIT
    program = assemble(source)
    sim = Simulator(program)
    block = sim.block_at(program.text_base)
    model = BlockCostModel(TimingModel())
    full = model.cost(block, 0)
    suffix = model.cost(block, 3)
    assert suffix.instructions == full.instructions - 3
    assert suffix.cycles_not_taken < full.cycles_not_taken
    # skipping the mult means mflo sees HI/LO ready: no stall in suffix
    # starting at the mflo itself
    tail = model.cost(block, 4)
    assert tail.hilo_stalls == 0


def test_cost_caches_by_block_and_start():
    source = "addu $t0, $t1, $t2\n" + EXIT
    program = assemble(source)
    sim = Simulator(program)
    block = sim.block_at(program.text_base)
    model = BlockCostModel(TimingModel())
    first = model.cost(block)
    assert model.cost(block) is first


def test_taken_cost_adds_branch_penalty_only_for_conditionals():
    source = """
        addu $t0, $t1, $t2
        beq $t0, $t0, 0x400000
    """ + EXIT
    program = assemble(source)
    sim = Simulator(program)
    block = sim.block_at(program.text_base)
    model = BlockCostModel(TimingModel())
    cost = model.cost(block)
    assert cost.cycles_taken == cost.cycles_not_taken + 1

    jump = assemble("addu $t0, $t1, $t2\nj 0x400000\n" + EXIT)
    sim = Simulator(jump)
    block = sim.block_at(jump.text_base)
    cost = model.cost(block)
    # jumps are always taken: the penalty is inside both outcomes
    assert cost.cycles_taken == cost.cycles_not_taken
