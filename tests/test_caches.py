"""Cache models and their integration with both simulators."""

import pytest
from hypothesis import given, strategies as st

from repro.minic import compile_to_program
from repro.sim import (
    CacheConfig,
    CacheHierarchy,
    CacheModel,
    run_program,
)
from repro.system import paper_system
from repro.system.coupled import run_coupled


# --- the model --------------------------------------------------------------

def test_direct_mapped_conflicts():
    cache = CacheModel(CacheConfig(size_bytes=256, line_bytes=16,
                                   associativity=1))
    assert not cache.access(0x000)   # cold miss
    assert cache.access(0x004)       # same line
    assert not cache.access(0x100)   # conflicts with 0x000 (16 sets)
    assert not cache.access(0x000)   # evicted
    assert cache.misses == 3
    assert cache.accesses == 4


def test_two_way_associativity_resolves_conflict():
    cache = CacheModel(CacheConfig(size_bytes=256, line_bytes=16,
                                   associativity=2))
    assert not cache.access(0x000)
    assert not cache.access(0x100)   # same set, second way
    assert cache.access(0x000)
    assert cache.access(0x100)
    assert cache.misses == 2


def test_lru_replacement_order():
    cache = CacheModel(CacheConfig(size_bytes=64, line_bytes=16,
                                   associativity=2))  # 2 sets, 2 ways
    cache.access(0x00)     # set 0
    cache.access(0x40)     # set 0
    cache.access(0x00)     # refresh 0x00
    cache.access(0x80)     # set 0: evicts 0x40 (LRU)
    assert cache.access(0x00)
    assert not cache.access(0x40)


def test_spatial_locality_within_line():
    cache = CacheModel(CacheConfig(size_bytes=1024, line_bytes=32))
    assert not cache.access(0x200)
    for offset in range(1, 32):
        assert cache.access(0x200 + offset)
    assert cache.misses == 1


def test_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=100, line_bytes=16)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=4096, line_bytes=24)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=48 * 16, line_bytes=16)  # 48 sets


def test_miss_rate_and_reset():
    cache = CacheModel(CacheConfig())
    cache.access(0)
    cache.access(0)
    assert cache.miss_rate == 0.5
    cache.reset_stats()
    assert cache.accesses == 0


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=300))
def test_cache_capacity_invariant(addresses):
    config = CacheConfig(size_bytes=512, line_bytes=16, associativity=2)
    cache = CacheModel(config)
    for address in addresses:
        cache.access(address)
    for ways in cache._sets:
        assert len(ways) <= config.associativity
    # a re-walk of the most recent distinct lines must hit
    assert cache.misses <= cache.accesses


# --- integration ------------------------------------------------------------

STREAM = """
unsigned data[2048];
int main() {
    int i; int p;
    unsigned acc = 0;
    for (p = 0; p < 4; p++) {
        for (i = 0; i < 2048; i++) {
            acc = acc + data[i];
            data[i] = acc;
        }
    }
    print_int(acc & 0x7fffffff);
    return 0;
}
"""


def test_caches_change_timing_not_results():
    program = compile_to_program(STREAM)
    ideal = run_program(program)
    small = CacheHierarchy.build(
        dcache=CacheConfig(size_bytes=1024, line_bytes=16))
    cached = run_program(program, caches=small)
    assert cached.output == ideal.output
    assert cached.registers == ideal.registers
    assert cached.stats.instructions == ideal.stats.instructions
    assert cached.stats.dcache_misses > 0
    penalty = CacheConfig(size_bytes=1024, line_bytes=16).miss_penalty
    assert cached.stats.cycles == ideal.stats.cycles \
        + cached.stats.dcache_misses * penalty


def test_bigger_dcache_misses_less():
    program = compile_to_program(STREAM)
    small = run_program(program, caches=CacheHierarchy.build(
        dcache=CacheConfig(size_bytes=512)))
    large = run_program(program, caches=CacheHierarchy.build(
        dcache=CacheConfig(size_bytes=16384)))
    assert large.stats.dcache_misses < small.stats.dcache_misses


def test_icache_counts_fetches_only():
    program = compile_to_program(STREAM)
    result = run_program(program, caches=CacheHierarchy.build(
        icache=CacheConfig(size_bytes=4096)))
    assert result.stats.icache_misses > 0
    # code is tiny: after warm-up everything hits
    assert result.stats.icache_misses < 100


def test_coupled_array_stalls_on_misses():
    """Section 4.3: the array stops on a data-cache miss; results stay
    bit-exact and the array-side misses are charged."""
    program = compile_to_program(STREAM)
    ideal = run_program(program)
    config = paper_system("C3", 64, True)
    hierarchy = CacheHierarchy.build(
        dcache=CacheConfig(size_bytes=1024, line_bytes=16))
    coupled = run_coupled(program, config, caches=hierarchy)
    assert coupled.output == ideal.output
    assert coupled.stats.dcache_misses > 0
    # still faster than the plain core with the same cache
    plain_cached = run_program(program, caches=CacheHierarchy.build(
        dcache=CacheConfig(size_bytes=1024, line_bytes=16)))
    assert coupled.stats.cycles < plain_cached.stats.cycles


def test_coupled_icache_sees_fewer_fetches():
    """Array-covered instructions are not fetched from instruction
    memory — the coupled system touches the I-cache far less."""
    from repro.system import CoupledSimulator

    program = compile_to_program(STREAM)
    plain = run_program(program, caches=CacheHierarchy.build(
        icache=CacheConfig(size_bytes=4096)))
    coupled_sim = CoupledSimulator(
        program, paper_system("C3", 64, True),
        caches=CacheHierarchy.build(icache=CacheConfig(size_bytes=4096)))
    coupled_sim.run()
    assert coupled_sim.sim.caches.icache.accesses < plain.stats.fetches
