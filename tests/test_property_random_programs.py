"""Property test: random generated programs run bit-identically on the
plain core and on the coupled MIPS+DIM+array system.

The generator builds random (but always-terminating) mini-C programs:
global arrays, loop nests, data-dependent branches, mixed arithmetic —
then asserts output and architectural state equality plus trace-eval
cycle agreement under a randomly chosen system configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.minic import compile_to_program
from repro.sim import run_program
from repro.system import evaluate_trace, paper_system
from repro.system.coupled import run_coupled

_OPS = ["+", "-", "*", "&", "|", "^"]
_CMPS = ["<", ">", "==", "!=", "<=", ">="]


@st.composite
def programs(draw):
    n_stmts = draw(st.integers(2, 6))
    seed = draw(st.integers(1, 2**31 - 1))
    outer = draw(st.integers(2, 6))
    inner = draw(st.integers(4, 16))
    lines = []
    n_vars = draw(st.integers(2, 5))
    for v in range(n_vars):
        lines.append(f"        v{v} = v{v} {draw(st.sampled_from(_OPS))} "
                     f"(a[(i + {draw(st.integers(0, 15))}) & 15] "
                     f"{draw(st.sampled_from(_OPS))} {draw(st.integers(1, 99))});")
    for _ in range(n_stmts):
        v = draw(st.integers(0, n_vars - 1))
        w = draw(st.integers(0, n_vars - 1))
        cmp_op = draw(st.sampled_from(_CMPS))
        op1 = draw(st.sampled_from(_OPS))
        op2 = draw(st.sampled_from(_OPS))
        const = draw(st.integers(1, 1000))
        lines.append(f"""        if (v{v} {cmp_op} v{w}) {{
            v{v} = v{v} {op1} {const};
        }} else {{
            a[i & 15] = a[i & 15] {op2} v{w};
        }}""")
    body = "\n".join(lines)
    decls = "\n".join(f"    int v{v} = {draw(st.integers(0, 50))};"
                      for v in range(n_vars))
    checksum = " ^ ".join(f"v{v}" for v in range(n_vars))
    return f"""
unsigned a[16];
int main() {{
    int i; int j;
{decls}
    unsigned seed = {seed};
    for (i = 0; i < 16; i++) {{
        seed = seed * 1103515245 + 12345;
        a[i] = seed >> 8;
    }}
    for (j = 0; j < {outer}; j++) {{
        for (i = 0; i < {inner}; i++) {{
{body}
        }}
    }}
    print_int(({checksum}) & 0x7fffffff);
    for (i = 0; i < 16; i++) {{ print_char(' '); print_int(a[i] & 0xffff); }}
    return 0;
}}
"""


@st.composite
def system_configs(draw):
    array = draw(st.sampled_from(["C1", "C2", "C3"]))
    slots = draw(st.sampled_from([4, 16, 64]))
    spec = draw(st.booleans())
    return paper_system(array, slots, spec)


@settings(max_examples=15, deadline=None)
@given(programs(), system_configs())
def test_random_program_equivalence(source, config):
    program = compile_to_program(source)
    plain = run_program(program, collect_trace=True,
                        max_instructions=2_000_000)
    assert plain.exit_code == 0
    coupled = run_coupled(program, config, max_instructions=2_000_000)
    assert coupled.output == plain.output
    assert coupled.registers == plain.registers
    assert coupled.memory.snapshot_pages() == plain.memory.snapshot_pages()
    metrics = evaluate_trace(plain.trace, config)
    assert metrics.cycles == coupled.stats.cycles
    assert metrics.dim.misspeculations == coupled.dim_stats.misspeculations


@settings(max_examples=8, deadline=None)
@given(programs(), st.sampled_from([256, 1024, 4096]))
def test_random_program_equivalence_with_caches(source, dcache_bytes):
    """Cache timing changes cycles, never results: the coupled system
    with real I/D caches still matches the plain core bit for bit."""
    from repro.sim import CacheConfig, CacheHierarchy

    def hierarchy():
        return CacheHierarchy.build(
            icache=CacheConfig(size_bytes=1024, line_bytes=16),
            dcache=CacheConfig(size_bytes=dcache_bytes, line_bytes=16))

    program = compile_to_program(source)
    plain = run_program(program, max_instructions=2_000_000,
                        caches=hierarchy())
    config = paper_system("C2", 32, True)
    coupled = run_coupled(program, config, max_instructions=2_000_000,
                          caches=hierarchy())
    assert coupled.output == plain.output
    assert coupled.registers == plain.registers
    assert coupled.memory.snapshot_pages() == plain.memory.snapshot_pages()
