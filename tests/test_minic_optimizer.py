"""The peephole optimiser: semantics preserved, redundancy removed."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minic import compile_to_program
from repro.minic.driver import compile_source
from repro.minic.optimizer import optimize_assembly
from repro.sim import run_program
from repro.workloads import all_workloads, get_workload


def run_both(source):
    plain = run_program(compile_to_program(source))
    optimized = run_program(compile_to_program(source, optimize=True))
    return plain, optimized


def test_store_to_load_forwarding_fires():
    source = """
    int main() {
        int a = 5;
        int b = a + 1;     // reload of a forwards from the store
        print_int(a + b);
        return 0;
    }
    """
    plain_asm = compile_source(source)
    opt_asm = compile_source(source, optimize=True)
    assert opt_asm.count("lw") < plain_asm.count("lw")
    plain, optimized = run_both(source)
    assert optimized.output == plain.output == "11"
    assert optimized.stats.instructions < plain.stats.instructions


def test_forwarding_respects_aliasing_stores():
    # a store through a computed pointer may alias any stack slot: the
    # optimiser must not forward across it
    source = """
    int scratch[4];
    int main() {
        int a = 5;
        scratch[0] = 9;
        print_int(a);
        return 0;
    }
    """
    plain, optimized = run_both(source)
    assert optimized.output == plain.output


def test_forwarding_stops_at_branches():
    source = """
    int main() {
        int a = 1;
        int b = 0;
        if (a) { b = a + 1; } else { b = a - 1; }
        print_int(b);
        return 0;
    }
    """
    plain, optimized = run_both(source)
    assert optimized.output == plain.output == "2"


def test_calls_are_barriers():
    source = """
    int id(int x) { return x; }
    int main() {
        int a = 7;
        int b = id(3);
        print_int(a + b);   // a must be reloaded after the call
        return 0;
    }
    """
    plain, optimized = run_both(source)
    assert optimized.output == plain.output == "10"


def test_optimizer_pure_text_properties():
    # labels, directives and comments pass through untouched
    text = ".data\nlab:\n        .word 5\n# comment\n"
    assert optimize_assembly(text) == text


@pytest.mark.parametrize("name", ["crc", "quicksort", "rawaudio_e",
                                  "sha"])
def test_workloads_unchanged_under_optimization(name):
    """The optimised binary must print exactly the same results."""
    workload = get_workload(name)
    plain = run_program(compile_to_program(workload.source))
    optimized = run_program(compile_to_program(workload.source,
                                               optimize=True))
    assert optimized.output == plain.output
    assert optimized.exit_code == plain.exit_code
    # and actually remove work
    assert optimized.stats.instructions < plain.stats.instructions
    assert optimized.stats.loads < plain.stats.loads


_OPS = ["+", "-", "*", "&", "|", "^", "<<", ">>"]


@settings(max_examples=10, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.sampled_from(_OPS),
                          st.integers(1, 9)),
                min_size=3, max_size=12),
       st.integers(1, 2**31 - 1))
def test_random_straightline_equivalence(steps, seed):
    lines = [f"    int v{i} = {seed % (1000 + i)};" for i in range(4)]
    for target, op, value in steps:
        lines.append(f"    v{target} = v{target} {op} {value};")
        lines.append(f"    v{(target + 1) & 3} = v{target} + "
                     f"v{(target + 2) & 3};")
    body = "\n".join(lines)
    source = (f"int main() {{\n{body}\n    "
              "print_int((v0 ^ v1 ^ v2 ^ v3) & 0x7fffffff);\n"
              "    return 0;\n}\n")
    plain, optimized = run_both(source)
    assert optimized.output == plain.output
    assert optimized.registers == plain.registers
