"""mini-C end-to-end: compile, run, compare with Python-evaluated results."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minic import compile_to_program
from repro.sim import run_program


def run_main(body: str, prelude: str = ""):
    source = prelude + "\nint main() {\n" + body + "\n}\n"
    return run_program(compile_to_program(source))


def returns(body: str, prelude: str = "") -> int:
    return run_main("return ({});".format(body) if False else body,
                    prelude).exit_code


def eval_expr(expr: str, prelude: str = "") -> str:
    result = run_main(f"print_int({expr}); return 0;", prelude)
    assert result.exit_code == 0
    return result.output


def test_constants_and_arithmetic():
    assert eval_expr("(2 + 3) * 4 - 6 / 2") == "17"
    assert eval_expr("17 % 5") == "2"
    assert eval_expr("-7 / 2") == "-3"   # C truncation toward zero
    assert eval_expr("-7 % 2") == "-1"


def test_bitwise_and_shifts():
    assert eval_expr("(0xF0 | 0x0F) & 0x3C") == "60"
    assert eval_expr("1 << 10") == "1024"
    assert eval_expr("-16 >> 2") == "-4"          # arithmetic shift
    assert eval_expr("~0") == "-1"
    assert eval_expr("5 ^ 3") == "6"


def test_unsigned_semantics():
    prelude = "unsigned u = 0xFFFFFFFF;\nunsigned v = 2;\n"
    assert eval_expr("u / v", prelude) == str(0xFFFFFFFF // 2)
    assert eval_expr("u >> 4", prelude) == str(0xFFFFFFFF >> 4)
    assert eval_expr("u > v", prelude) == "1"     # unsigned compare
    prelude_signed = "int s = -1;\nint t = 2;\n"
    assert eval_expr("s > t", prelude_signed) == "0"


def test_comparisons_and_logic():
    assert eval_expr("1 < 2") == "1"
    assert eval_expr("2 <= 1") == "0"
    assert eval_expr("3 == 3 && 4 != 5") == "1"
    assert eval_expr("0 || 2") == "1"
    assert eval_expr("!5") == "0"
    assert eval_expr("!0") == "1"


def test_short_circuit_effects():
    # the second operand must not run when the first decides
    result = run_main("""
        int hits = 0;
        if (0 && side(1)) { hits = 99; }
        if (1 || side(2)) { hits = hits + 1; }
        print_int(hits + counter);
        return 0;
    """, prelude="""
    int counter = 0;
    int side(int v) { counter = counter + 100; return v; }
    """)
    assert result.output == "1"


def test_if_else_chains():
    result = run_main("""
        int x = 7;
        if (x < 5) { print_int(1); }
        else if (x < 10) { print_int(2); }
        else { print_int(3); }
        return 0;
    """)
    assert result.output == "2"


def test_loops_break_continue():
    result = run_main("""
        int i;
        int total = 0;
        for (i = 0; i < 10; i++) {
            if (i == 3) { continue; }
            if (i == 7) { break; }
            total += i;
        }
        print_int(total);  // 0+1+2+4+5+6 = 18
        return 0;
    """)
    assert result.output == "18"


def test_do_while_runs_once():
    result = run_main("""
        int n = 0;
        do { n++; } while (n < 0);
        print_int(n);
        return 0;
    """)
    assert result.output == "1"


def test_while_loop_zero_iterations():
    result = run_main("""
        int n = 5;
        while (n < 0) { n++; }
        print_int(n);
        return 0;
    """)
    assert result.output == "5"


def test_nested_loops():
    result = run_main("""
        int i; int j; int total = 0;
        for (i = 0; i < 4; i++) {
            for (j = 0; j <= i; j++) {
                total += j;
            }
        }
        print_int(total);  // 0 + 1 + 3 + 6 = 10
        return 0;
    """)
    assert result.output == "10"


def test_global_and_local_arrays():
    result = run_main("""
        int i;
        int local[5];
        for (i = 0; i < 5; i++) { local[i] = i * i; }
        for (i = 0; i < 5; i++) { g[i] = local[4 - i]; }
        print_int(g[0] + g[4] * 10);
        return 0;
    """, prelude="int g[5];")
    assert result.output == "16"


def test_char_arrays_are_bytes():
    result = run_main("""
        buf[0] = 300;        // truncates to 44
        print_int(buf[0]);
        print_char(',');
        print_int(msg[1]);
        return 0;
    """, prelude='char buf[4];\nchar msg[4] = "AB";')
    assert result.output == "44,66"


def test_recursion_ackermann_style():
    result = run_main("print_int(ack(2, 3)); return 0;", prelude="""
    int ack(int m, int n) {
        if (m == 0) { return n + 1; }
        if (n == 0) { return ack(m - 1, 1); }
        return ack(m - 1, ack(m, n - 1));
    }
    """)
    assert result.output == "9"


def test_array_parameters_alias():
    result = run_main("""
        data[0] = 1;
        bump(data, 3);
        print_int(data[0]);
        return 0;
    """, prelude="""
    int data[4];
    void bump(int a[], int by) { a[0] = a[0] + by; }
    """)
    assert result.output == "4"


def test_compound_assignment_all_ops():
    result = run_main("""
        int x = 100;
        x += 5; x -= 1; x *= 2; x /= 4; x %= 13;
        x <<= 3; x >>= 1; x |= 0x10; x &= 0x1F; x ^= 3;
        print_int(x);
        return 0;
    """)
    x = 100
    x += 5; x -= 1; x *= 2; x //= 4; x %= 13
    x <<= 3; x >>= 1; x |= 0x10; x &= 0x1F; x ^= 3
    assert result.output == str(x)


def test_call_preserves_live_temporaries():
    # f() is called while a temporary holds 10; the temp must survive
    result = run_main("print_int(10 + f(1) + f(2)); return 0;", prelude="""
    int f(int x) { return x * x; }
    """)
    assert result.output == "15"


def test_exit_builtin():
    result = run_main("exit(7); return 0;")
    assert result.exit_code == 7


def test_print_str_builtin():
    result = run_main('print_str("ab\\n"); return 0;')
    assert result.output == "ab\n"


_INT = st.integers(-(2**31), 2**31 - 1)


@settings(max_examples=12, deadline=None)
@given(_INT, _INT, st.sampled_from(["+", "-", "*", "&", "|", "^"]))
def test_random_binary_ops_match_python(a, b, op):
    expected = {"+": a + b, "-": a - b, "*": a * b,
                "&": a & b, "|": a | b, "^": a ^ b}[op] & 0xFFFFFFFF
    if expected >= 2**31:
        expected -= 2**32
    out = eval_expr(f"x {op} y", prelude=f"int x = {a};\nint y = {b};\n")
    assert out == str(expected)


@settings(max_examples=8, deadline=None)
@given(_INT, st.integers(0, 31))
def test_random_shifts_match_python(a, shift):
    left = (a << shift) & 0xFFFFFFFF
    if left >= 2**31:
        left -= 2**32
    out = eval_expr(f"x << {shift}", prelude=f"int x = {a};\n")
    assert out == str(left)
    right = a >> shift  # python's >> on signed ints is arithmetic
    out = eval_expr(f"x >> {shift}", prelude=f"int x = {a};\n")
    assert out == str(right)
