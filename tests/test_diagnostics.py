"""Error quality: diagnostics carry the right location and stage."""

import pytest

from repro.asm import AssemblerError, assemble
from repro.minic import CompileError, compile_to_program
from repro.minic.lexer import LexerError, tokenize
from repro.minic.parser import ParseError, parse
from repro.minic.sema import SemaError, analyze


def test_assembler_error_reports_line():
    source = "nop\nnop\nbogus $t0\n"
    with pytest.raises(AssemblerError) as excinfo:
        assemble(source)
    assert "line 3" in str(excinfo.value)
    assert "bogus" in str(excinfo.value)


def test_assembler_undefined_symbol_names_it():
    with pytest.raises(AssemblerError) as excinfo:
        assemble("j nowhere\n")
    assert "nowhere" in str(excinfo.value)


def test_lexer_error_line():
    with pytest.raises(LexerError) as excinfo:
        tokenize("int x;\nint y = @;")
    assert "line 2" in str(excinfo.value)


def test_parser_error_line_and_token():
    with pytest.raises(ParseError) as excinfo:
        parse("int main() {\n    return 1 +;\n}")
    assert "line 2" in str(excinfo.value)


def test_sema_error_names_identifier():
    with pytest.raises(SemaError) as excinfo:
        analyze(parse("int main() {\n\n    return missing;\n}"))
    message = str(excinfo.value)
    assert "missing" in message
    assert "line 3" in message


def test_compile_error_carries_stage():
    with pytest.raises(CompileError) as excinfo:
        compile_to_program("int main() { return x; }")
    assert excinfo.value.stage == "sema"
    with pytest.raises(CompileError) as excinfo:
        compile_to_program("int main() { return 1 +; }")
    assert excinfo.value.stage == "parse"


def test_codegen_error_stage_for_deep_expression():
    expr = "1"
    for i in range(2, 14):
        expr = f"{i} + ({expr} * 2)"
    with pytest.raises(CompileError) as excinfo:
        compile_to_program(f"int main() {{ return {expr}; }}")
    assert excinfo.value.stage == "codegen"
    assert "temporaries" in str(excinfo.value)
