"""Configuration objects: coverage accounting, timing, description."""

import pytest

from repro.asm import assemble
from repro.cgra.configuration import ConfigBlock, Configuration
from repro.cgra.shape import ArrayShape
from repro.dim import BimodalPredictor, DimParams, Translator
from repro.sim import Simulator

SHAPE = ArrayShape(rows=32, alus_per_row=4, mults_per_row=1,
                   ldsts_per_row=2, rf_write_ports=2, immediate_slots=64)

LOOP = """
top:
    addiu $t0, $t0, 1
    addu $t1, $t1, $t0
    xor $t2, $t1, $t0
    sll $t3, $t2, 1
    bne $t0, $t4, top
"""


def translated(source=LOOP, speculation=False, train=0):
    sim = Simulator(assemble(source))
    block = sim.block_at(sim.pc)
    predictor = BimodalPredictor(64)
    for _ in range(train):
        predictor.update(block.branch_pc, True)
    translator = Translator(SHAPE, DimParams(speculation=speculation),
                            predictor, sim.block_at)
    return translator.translate(block)


def test_covered_instructions_counts_terminators():
    nospec = translated()
    assert nospec.covered_instructions == 4
    spec = translated(speculation=True, train=3)
    blocks = len(spec.blocks)
    # each merged level adds 4 body instructions + 1 branch
    assert spec.covered_instructions == 4 * blocks + (blocks - 1)


def test_speculative_depth_and_flags():
    nospec = translated()
    assert nospec.speculative_depth == 0
    assert not nospec.is_speculative
    spec = translated(speculation=True, train=3)
    assert spec.is_speculative
    assert spec.speculative_depth == len(spec.blocks) - 1


def test_exec_cycles_includes_speculative_writeback_drain():
    nospec = translated()
    spec = translated(speculation=True, train=3)
    assert spec.result.speculative_outputs > 0
    drain = -(-spec.result.speculative_outputs // SHAPE.rf_write_ports)
    assert spec.exec_cycles == spec.result.exec_cycles + drain
    assert nospec.exec_cycles == nospec.result.exec_cycles


def test_reconfiguration_cycles_property():
    config = translated()
    expected = SHAPE.reconfiguration_cycles(len(config.result.inputs))
    assert config.reconfiguration_cycles == expected


def test_describe_mentions_blocks_and_timing():
    spec = translated(speculation=True, train=3)
    text = spec.describe()
    assert f"config@0x{spec.start_pc:08x}" in text
    assert "+T" in text
    assert f"{spec.result.exec_cycles} cycles" in text
    assert text.count("block 0x") == len(spec.blocks)


def test_config_block_body_len():
    sim = Simulator(assemble(LOOP))
    block = sim.block_at(sim.pc)
    cfg_block = ConfigBlock(block, covered=4, includes_terminator=False)
    assert cfg_block.body_len == 4  # 5 instructions minus the branch


def test_runtime_fields_start_clean():
    config = translated()
    assert config.misspec_count == 0
    assert config.hits == 0
    assert config.builds == 1
