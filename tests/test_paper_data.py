"""Internal consistency of the transcribed paper data.

The benchmark harnesses compare against numbers transcribed from the
paper; these tests validate the transcription itself — most importantly
that the per-benchmark Table 2 rows reproduce the paper's own printed
"Average" row to rounding precision in all 20 columns.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                       / "benchmarks"))

from paper_data import (  # noqa: E402
    PAPER_FIG3B_VALUES,
    PAPER_TABLE2,
    PAPER_TABLE2_AVERAGE,
    PAPER_TABLE3A,
    PAPER_TABLE3A_TOTAL,
    PAPER_TABLE3B,
    PAPER_TABLE3B_TOTAL,
    PAPER_TABLE3C,
)
from repro.workloads import workload_names  # noqa: E402


def test_table2_covers_all_workloads():
    assert set(PAPER_TABLE2) == set(workload_names())
    for row in PAPER_TABLE2.values():
        for array in ("C1", "C2", "C3"):
            for spec in (False, True):
                assert len(row[(array, spec)]) == 3
        assert len(row["ideal"]) == 2


def test_table2_rows_reproduce_papers_average_row():
    """All 20 columns of the paper's Average row match the mean of the
    transcribed per-benchmark values within rounding (±0.01)."""
    names = list(PAPER_TABLE2)
    for key, expected in PAPER_TABLE2_AVERAGE.items():
        width = 2 if key == "ideal" else 3
        for i in range(width):
            values = [PAPER_TABLE2[name][key][i] for name in names]
            mean = sum(values) / len(values)
            assert mean == pytest.approx(expected[i], abs=0.011), \
                f"column {key}[{i}]"


def test_table2_speedups_are_plausible():
    for name, row in PAPER_TABLE2.items():
        for key, values in row.items():
            for value in (values if key != "ideal" else values):
                assert 1.0 <= value <= 9.0, (name, key)


def test_fig3b_has_18_values():
    assert len(PAPER_FIG3B_VALUES) == 18
    assert max(PAPER_FIG3B_VALUES) == pytest.approx(25.45)
    assert min(PAPER_FIG3B_VALUES) == pytest.approx(3.79)


def test_table3a_total_matches_components():
    total = sum(gates for _, gates in PAPER_TABLE3A.values())
    assert total == PAPER_TABLE3A_TOTAL


def test_table3b_total_excludes_write_bitmap():
    stored = sum(bits for name, bits in PAPER_TABLE3B.items()
                 if name != "write_bitmap")
    assert stored == PAPER_TABLE3B_TOTAL


def test_table3c_is_close_to_linear():
    per_slot = {slots: bytes_ / slots
                for slots, bytes_ in PAPER_TABLE3C.items()}
    values = sorted(per_slot.values())
    assert values[-1] / values[0] < 1.05  # ~linear in slot count
