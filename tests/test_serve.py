"""The persistent evaluation service (:mod:`repro.serve`).

Four families of guarantees:

1. Protocol: submissions are validated with structured, machine-
   dispatchable errors; malformed requests never reach the queue.
2. Lifecycle: submit -> poll -> result over real HTTP, plus the
   timeout / cancel / retry-with-backoff paths and the bounded queue.
3. Coalescing: jobs sharing a workload fingerprint are served by one
   batch (one trace + one memo), observable through ``serve.*`` stats.
4. The differential contract: service results are byte-identical to
   the offline :mod:`repro.api` calls for the same inputs.
"""

import json
import time

import pytest

from repro import api
from repro.obs import EVENT_TYPES, validate_jsonl
from repro.serve import (
    EvalService,
    JobState,
    ProtocolError,
    ServeClient,
    ServeError,
    start_http,
    validate_submission,
)

CRC_C1 = {"array": "C1", "slots": 16, "speculation": False}
CRC_C2 = {"array": "C2", "slots": 64, "speculation": True}


# ----------------------------------------------------------------------
# Protocol validation (no service needed).
# ----------------------------------------------------------------------
def _error_code(payload):
    with pytest.raises(ProtocolError) as excinfo:
        validate_submission(payload)
    return excinfo.value.code


def test_validation_rejects_malformed_submissions():
    assert _error_code("not an object") == "bad_json"
    assert _error_code({"kind": "explode"}) == "unknown_kind"
    assert _error_code({}) == "unknown_kind"
    assert _error_code({"kind": "evaluate",
                        "names": ["nope"]}) == "unknown_workload"
    assert _error_code({"kind": "evaluate",
                        "configs": [{"array": "C9"}]}) == "unknown_array"
    assert _error_code({"kind": "evaluate",
                        "configs": [{"array": "C1",
                                     "slots": "many"}]}) == "bad_param"
    assert _error_code({"kind": "evaluate", "configs": []}) == "bad_param"
    assert _error_code({"kind": "evaluate",
                        "configs": [CRC_C1, CRC_C2]}) == "bad_param"
    assert _error_code({"kind": "run"}) == "bad_param"  # no target
    assert _error_code({"kind": "evaluate",
                        "target": "crc"}) == "bad_param"
    assert _error_code({"kind": "evaluate",
                        "timeout": -1}) == "bad_param"
    assert _error_code({"kind": "evaluate",
                        "priority": True}) == "bad_param"
    assert _error_code({"kind": "evaluate",
                        "surprise": 1}) == "bad_param"


def test_validation_normalises_defaults():
    request = validate_submission({"kind": "evaluate",
                                   "names": ["crc"]})
    assert request.configs == (("C2", 64, True),)
    assert request.names == ("crc",)
    request = validate_submission({"kind": "sweep"})
    assert len(request.configs) == 20  # the paper's Table 2 matrix
    assert request.names is None


def test_fingerprint_groups_by_workloads_not_configs():
    a = validate_submission({"kind": "evaluate", "names": ["crc"],
                             "configs": [CRC_C1], "fast": True})
    b = validate_submission({"kind": "sweep", "names": ["crc"],
                             "configs": [CRC_C2, CRC_C1],
                             "fast": True})
    c = validate_submission({"kind": "evaluate", "names": ["sha"],
                             "configs": [CRC_C1], "fast": True})
    d = validate_submission({"kind": "run", "target": "crc",
                             "fast": True})
    assert a.fingerprint == b.fingerprint  # same trace, any configs
    assert a.fingerprint != c.fingerprint  # different workloads
    assert a.fingerprint != d.fingerprint  # run jobs re-execute


# ----------------------------------------------------------------------
# A real service over real HTTP, shared by the lifecycle tests.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def service():
    svc = EvalService(workers=0, cache_root=None, batch_window=0.01)
    svc.start()
    server, thread = start_http(svc)
    host, port = server.server_address[:2]
    client = ServeClient(f"http://{host}:{port}", timeout=120.0)
    yield svc, client
    if not svc._stopped:
        svc.stop(drain=False)
    server.shutdown()


def test_lifecycle_submit_poll_result(service):
    svc, client = service
    health = client.healthz()
    assert health["ok"] and health["protocol"] == 1
    job = client.submit("evaluate", configs=[CRC_C1], names=["crc"],
                        fast=True)
    assert job["state"] == JobState.PENDING
    assert job["job_id"]
    payload = client.wait(job["job_id"], timeout=120)
    assert payload["state"] == JobState.DONE
    result = payload["result"]
    assert result["kind"] == "evaluate"
    assert result["system"] == "C1/16/nospec"
    status = client.status(job["job_id"])
    assert status["state"] == JobState.DONE
    assert any(j["job_id"] == job["job_id"] for j in client.jobs())


def test_differential_evaluate_byte_identical(service):
    svc, client = service
    job = client.submit("evaluate", configs=[CRC_C2], names=["crc"],
                        fast=True)
    payload = client.wait(job["job_id"], timeout=120)
    offline = api.evaluate(api.build_config("C2", 64, True),
                           names=["crc"], fast=True)
    assert payload["result"]["suite_json"] == offline.to_json()


def test_differential_sweep_byte_identical(service):
    svc, client = service
    job = client.submit("sweep", configs=[CRC_C1, CRC_C2],
                        names=["crc"], fast=True)
    payload = client.wait(job["job_id"], timeout=120)
    offline = api.sweep([api.build_config("C1", 16, False),
                         api.build_config("C2", 64, True)],
                        names=["crc"], fast=True)
    assert payload["result"]["matrix_json"] == offline.results_json()


def test_batch_coalescing_shares_one_replay(service):
    svc, client = service
    before = svc.stats.batches
    client.pause()
    jobs = [client.submit("evaluate",
                          configs=[{"array": "C1", "slots": slots,
                                    "speculation": False}],
                          names=["crc"], fast=True)
            for slots in (8, 24, 48)]
    client.resume()
    payloads = [client.wait(job["job_id"], timeout=120)
                for job in jobs]
    # all three ran in ONE batch: one trace, one translation memo
    assert svc.stats.batches == before + 1
    for job in jobs:
        assert client.status(job["job_id"])["batch_width"] == 3
    systems = [p["result"]["system"] for p in payloads]
    assert systems == ["C1/8/nospec", "C1/24/nospec", "C1/48/nospec"]


def test_priority_orders_claims(service):
    svc, client = service
    client.pause()
    low = client.submit("evaluate", configs=[CRC_C1], names=["crc"],
                        fast=True, priority=0)
    high = client.submit("evaluate", configs=[CRC_C1], names=["sha"],
                         fast=True, priority=10)
    client.resume()
    client.wait(low["job_id"], timeout=120)
    client.wait(high["job_id"], timeout=120)
    low_job = svc.manager.jobs[low["job_id"]]
    high_job = svc.manager.jobs[high["job_id"]]
    assert high_job.started_at <= low_job.started_at


def test_cancel_pending_job(service):
    svc, client = service
    client.pause()
    job = client.submit("evaluate", configs=[CRC_C1], names=["crc"],
                        fast=True)
    cancelled = client.cancel(job["job_id"])
    client.resume()
    assert cancelled["state"] == JobState.CANCELLED
    with pytest.raises(ServeError) as excinfo:
        client.result(job["job_id"])
    assert excinfo.value.code == "job_cancelled"


def test_timeout_while_queued(service):
    svc, client = service
    client.pause()
    job = client.submit("evaluate", configs=[CRC_C1], names=["crc"],
                        fast=True, timeout=0.01)
    time.sleep(0.05)
    client.resume()
    payload = client.status(job["job_id"])
    deadline = time.monotonic() + 10
    while (payload["state"] not in JobState.TERMINAL
           and time.monotonic() < deadline):
        time.sleep(0.01)
        payload = client.status(job["job_id"])
    assert payload["state"] == JobState.TIMEOUT
    with pytest.raises(ServeError) as excinfo:
        client.result(job["job_id"])
    assert excinfo.value.code == "job_timeout"


def test_unknown_job_and_not_finished_errors(service):
    svc, client = service
    with pytest.raises(ServeError) as excinfo:
        client.status("j999999")
    assert excinfo.value.code == "unknown_job"
    assert excinfo.value.http_status == 404
    client.pause()
    job = client.submit("evaluate", configs=[CRC_C1], names=["crc"],
                        fast=True)
    with pytest.raises(ServeError) as excinfo:
        client.result(job["job_id"])
    assert excinfo.value.code == "not_finished"
    client.cancel(job["job_id"])
    client.resume()


def test_malformed_http_submission_is_structured(service):
    svc, client = service
    with pytest.raises(ServeError) as excinfo:
        client.submit("explode")
    assert excinfo.value.code == "unknown_kind"
    assert excinfo.value.http_status == 400
    with pytest.raises(ServeError) as excinfo:
        client.submit("evaluate", names=["nope"])
    assert excinfo.value.code == "unknown_workload"
    assert excinfo.value.field == "names"


def test_metrics_and_events_schema(service):
    svc, client = service
    metrics = client.metrics()
    counters = metrics["counters"]
    assert counters["serve.jobs_submitted"] >= 1
    assert counters["serve.batches"] >= 1
    assert "serve.queue_seconds" in metrics["timers"]
    assert "serve.exec_seconds" in metrics["timers"]
    # latency histogram buckets sum to the number of terminal jobs
    buckets = sum(v for k, v in counters.items()
                  if k.startswith("serve.latency_"))
    terminal = (counters["serve.jobs_completed"]
                + counters["serve.jobs_failed"]
                + counters["serve.jobs_cancelled"]
                + counters["serve.jobs_timed_out"])
    assert buckets == terminal
    lines = client.events_jsonl().splitlines()
    assert validate_jsonl(lines) == []
    types = {json.loads(line)["type"] for line in lines}
    assert "serve.job_submitted" in types
    assert "serve.batch_dispatched" in types
    assert "serve.job_finished" in types
    assert types <= EVENT_TYPES


# ----------------------------------------------------------------------
# Retry, queue bounds and drain: small dedicated services with a stub
# runner, so no real evaluation cost.
# ----------------------------------------------------------------------
def _stub_runner(spec):
    return {"results": {job["id"]: {"kind": job["kind"], "stub": True}
                        for job in spec["jobs"]},
            "counters": {}}


def test_retry_with_backoff_recovers_from_worker_failure():
    calls = []

    def flaky(spec):
        calls.append(time.monotonic())
        if len(calls) <= 2:
            raise RuntimeError("worker exploded")
        return _stub_runner(spec)

    svc = EvalService(workers=0, batch_window=0.0, max_retries=2,
                      backoff_base=0.02, runner=flaky).start()
    try:
        job = svc.submit({"kind": "evaluate", "names": ["crc"],
                          "configs": [CRC_C1], "fast": True})
        result = svc.result(job["job_id"], wait=True, timeout=30)
        assert result["result"]["stub"] is True
        assert svc.stats.retries == 2
        assert svc.status(job["job_id"])["attempts"] == 3
        assert len(calls) == 3
        # exponential backoff: second gap at least ~2x the base
        assert calls[2] - calls[1] >= 0.03
    finally:
        svc.stop(drain=False)


def test_retries_exhausted_fails_with_structured_error():
    def always_broken(spec):
        raise RuntimeError("permanently broken")

    svc = EvalService(workers=0, batch_window=0.0, max_retries=1,
                      backoff_base=0.01, runner=always_broken).start()
    try:
        job = svc.submit({"kind": "evaluate", "names": ["crc"],
                          "configs": [CRC_C1], "fast": True})
        with pytest.raises(ProtocolError) as excinfo:
            svc.result(job["job_id"], wait=True, timeout=30)
        assert excinfo.value.code == "job_failed"
        status = svc.status(job["job_id"])
        assert status["state"] == JobState.FAILED
        assert status["error"]["code"] == "worker_failure"
        assert "permanently broken" in status["error"]["message"]
        assert status["attempts"] == 2  # first try + one retry
    finally:
        svc.stop(drain=False)


def test_bounded_queue_rejects_beyond_capacity():
    svc = EvalService(workers=0, capacity=2,
                      runner=_stub_runner).start()
    try:
        svc.pause()
        for _ in range(2):
            svc.submit({"kind": "evaluate", "names": ["crc"],
                        "configs": [CRC_C1]})
        with pytest.raises(ProtocolError) as excinfo:
            svc.submit({"kind": "evaluate", "names": ["crc"],
                        "configs": [CRC_C1]})
        assert excinfo.value.code == "queue_full"
        assert excinfo.value.http_status == 429
        assert svc.stats.jobs_rejected == 1
    finally:
        svc.stop(drain=False)


def test_clean_shutdown_drains_queue():
    svc = EvalService(workers=0, batch_window=0.0,
                      runner=_stub_runner).start()
    svc.pause()
    jobs = [svc.submit({"kind": "evaluate", "names": ["crc"],
                        "configs": [CRC_C1]}) for _ in range(5)]
    summary = svc.stop(drain=True)  # resumes, drains, then stops
    assert summary["drained"] and summary["active"] == 0
    assert svc.stats.jobs_completed == 5
    for job in jobs:
        tracked = svc.manager.jobs[job["job_id"]]
        assert tracked.state == JobState.DONE


def test_submissions_rejected_while_draining():
    svc = EvalService(workers=0, runner=_stub_runner).start()
    try:
        svc.manager.stop_accepting()
        with pytest.raises(ProtocolError) as excinfo:
            svc.submit({"kind": "evaluate", "names": ["crc"],
                        "configs": [CRC_C1]})
        assert excinfo.value.code == "shutting_down"
    finally:
        svc.stop(drain=False)


def test_inprocess_batches_never_run_concurrently():
    """workers=0 must execute batches strictly serially: the replay
    engine's shared per-workload caches are not thread-safe, and two
    overlapping batches of one workload corrupt each other's
    translation state (byte-identity violation)."""
    import threading

    lock = threading.Lock()
    running = 0
    max_running = 0

    def tracking(spec):
        nonlocal running, max_running
        with lock:
            running += 1
            max_running = max(max_running, running)
        time.sleep(0.02)  # hold the slot so overlap would be visible
        with lock:
            running -= 1
        return _stub_runner(spec)

    svc = EvalService(workers=0, batch_window=0.0,
                      runner=tracking).start()
    try:
        svc.pause()
        # distinct fingerprints -> distinct batches, claimed back to
        # back; a multi-thread executor would overlap their runners.
        jobs = [svc.submit({"kind": "evaluate", "names": [name],
                            "configs": [CRC_C1]})
                for name in ("crc", "sha", "bitcount", "quicksort")]
        svc.resume()
        for job in jobs:
            svc.result(job["job_id"], wait=True, timeout=30)
    finally:
        svc.stop(drain=False)
    assert svc.stats.batches == 4
    assert max_running == 1


def test_cancel_running_job_discards_result():
    import threading

    release = threading.Event()

    def slow(spec):
        release.wait(10)
        return _stub_runner(spec)

    svc = EvalService(workers=0, batch_window=0.0,
                      runner=slow).start()
    try:
        job = svc.submit({"kind": "evaluate", "names": ["crc"],
                          "configs": [CRC_C1]})
        deadline = time.monotonic() + 5
        while (svc.status(job["job_id"])["state"] != JobState.RUNNING
               and time.monotonic() < deadline):
            time.sleep(0.005)
        svc.cancel(job["job_id"])
        release.set()
        with pytest.raises(ProtocolError) as excinfo:
            svc.result(job["job_id"], wait=True, timeout=30)
        assert excinfo.value.code == "job_cancelled"
        assert svc.stats.jobs_cancelled == 1
    finally:
        svc.stop(drain=False)


# ----------------------------------------------------------------------
# Transport: the client keeps its HTTP connection alive across calls.
# ----------------------------------------------------------------------
def test_client_reuses_one_connection_across_requests():
    svc = EvalService(workers=0, batch_window=0.0,
                      runner=_stub_runner).start()
    server, _ = start_http(svc)
    try:
        client = ServeClient("http://%s:%s" % server.server_address[:2])
        job_ids = []
        for _ in range(5):
            job = client.submit("evaluate", configs=[CRC_C1],
                                names=["crc"], fast=True)
            job_ids.append(job["job_id"])
        for job_id in job_ids:
            client.wait(job_id, timeout=30)
        stats = client.transport_stats
        # submit + at least one poll + result per job: many requests...
        assert stats["requests"] >= 15
        # ...over a single persistent connection.
        assert stats["connections_opened"] == 1
        assert stats["stale_retries"] == 0
    finally:
        svc.stop(drain=False)
        server.shutdown()


def test_client_survives_a_stale_pooled_connection():
    """A pooled socket that dies while idle (server timed it out or
    restarted between calls) is retried transparently once, on a fresh
    connection — the caller never sees the drop."""
    svc = EvalService(workers=0, batch_window=0.0,
                      runner=_stub_runner).start()
    server, _ = start_http(svc)
    try:
        client = ServeClient("http://%s:%s" % server.server_address[:2])
        assert client.healthz()["ok"]  # connection now idles in pool
        conn = client._pool.acquire()
        assert conn.sock is not None  # the same live connection
        conn.sock.close()  # ...which the server side just dropped
        client._pool.release(conn)
        assert client.healthz()["ok"]  # transparent retry
        assert client.transport_stats["stale_retries"] == 1
        assert client.transport_stats["connections_opened"] == 2
    finally:
        svc.stop(drain=False)
        server.shutdown()
