"""The 18 MiBench-analog workloads: correctness regressions and
characterisation sanity (the suite is what every benchmark harness runs).
"""

import pytest

from repro.workloads import (
    all_workloads,
    get_workload,
    load_workload,
    run_workload,
    workload_names,
)

#: expected first line of each workload's output — golden regression
#: values pinned from the verified implementations (AES validated against
#: FIPS-197, quicksort/bitcount self-check, rijndael_d round-trips).
EXPECTED_OUTPUT = {
    "rijndael_e": "rijndael_e 110120403",
    "rijndael_d": "rijndael_d 1291621621 roundtrip_ok",
    "gsm_e": "gsm_e 1882952105",
    "jpeg_e": "jpeg_e 772352013",
    "sha": "sha 1497999546",
    "susan_s": "susan_s 156810662",
    "crc": "crc 469285410",
    "jpeg_d": "jpeg_d 1918145716",
    "patricia": "patricia 301 250 1977669586",
    "susan_c": "susan_c 1 693",
    "susan_e": "susan_e 120 595672943",
    "dijkstra": "dijkstra 1767196592",
    "gsm_d": "gsm_d 983705279",
    "bitcount": "bitcount 11094",
    "stringsearch": "stringsearch 1636949471",
    "quicksort": "quicksort 1079040",
    "rawaudio_e": "rawaudio_e 197342243",
    "rawaudio_d": "rawaudio_d 1291874119",
}


def test_suite_has_all_table2_rows():
    names = workload_names()
    assert len(names) == 18
    assert names[0] == "rijndael_e"      # most dataflow at the top
    assert names[-1] == "rawaudio_d"     # most control at the bottom
    assert set(names) == set(EXPECTED_OUTPUT)


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_workload_output_regression(name):
    result = run_workload(name)
    assert result.exit_code == 0
    assert result.output.strip() == EXPECTED_OUTPUT[name]


def test_workload_programs_cache():
    assert load_workload("crc") is load_workload("crc")
    assert run_workload("crc") is run_workload("crc")


def test_get_workload_and_metadata():
    workload = get_workload("sha")
    assert workload.paper_name == "SHA"
    assert workload.category == "dataflow"


def test_get_workload_unknown_name_lists_valid_names():
    with pytest.raises(ValueError) as excinfo:
        get_workload("nonexistent")
    message = str(excinfo.value)
    assert "nonexistent" in message
    # the error enumerates every valid name, like the paper_system
    # helpful-error precedent
    for name in workload_names():
        assert name in message


def test_dataflow_control_ordering_visible_in_block_sizes():
    """Fig. 3b's qualitative claim: rijndael has far larger basic blocks
    than rawaudio."""
    rijndael = run_workload("rijndael_e").stats.instructions_per_branch
    rawaudio = run_workload("rawaudio_d").stats.instructions_per_branch
    sha = run_workload("sha").stats.instructions_per_branch
    assert rijndael > 2.5 * rawaudio
    assert sha > rawaudio


def test_workloads_are_nontrivial():
    for name in ("sha", "crc", "quicksort"):
        result = run_workload(name)
        assert result.stats.instructions > 50_000
        assert result.trace is not None
        assert len(result.trace.table) > 10
