"""Functional semantics versus independent Python references."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.instruction import Instruction
from repro.isa.semantics import (
    alu_result,
    branch_taken,
    div_result,
    mult_result,
    to_signed,
    to_unsigned,
)

u32 = st.integers(0, 0xFFFFFFFF)


@given(u32)
def test_signed_unsigned_round_trip(value):
    assert to_unsigned(to_signed(value)) == value
    assert -(1 << 31) <= to_signed(value) < (1 << 31)


@given(u32, u32)
def test_addu_wraps(a, b):
    instr = Instruction("addu", rs=1, rt=2, rd=3)
    assert alu_result(instr, a, b) == (a + b) % (1 << 32)


@given(u32, u32)
def test_subu_wraps(a, b):
    instr = Instruction("subu", rs=1, rt=2, rd=3)
    assert alu_result(instr, a, b) == (a - b) % (1 << 32)


@given(u32, u32)
def test_logic_ops(a, b):
    assert alu_result(Instruction("and", rd=1), a, b) == a & b
    assert alu_result(Instruction("or", rd=1), a, b) == a | b
    assert alu_result(Instruction("xor", rd=1), a, b) == a ^ b
    assert alu_result(Instruction("nor", rd=1), a, b) == (~(a | b)) % (1 << 32)


@given(u32, u32)
def test_set_less_than(a, b):
    assert alu_result(Instruction("slt", rd=1), a, b) == \
        int(to_signed(a) < to_signed(b))
    assert alu_result(Instruction("sltu", rd=1), a, b) == int(a < b)


@given(u32, st.integers(0, 31))
def test_shifts_by_shamt(a, shamt):
    assert alu_result(Instruction("sll", rd=1, shamt=shamt), 0, a) == \
        (a << shamt) % (1 << 32)
    assert alu_result(Instruction("srl", rd=1, shamt=shamt), 0, a) == a >> shamt
    expected = to_unsigned(to_signed(a) >> shamt)
    assert alu_result(Instruction("sra", rd=1, shamt=shamt), 0, a) == expected


@given(u32, u32)
def test_variable_shifts_use_low_five_bits(a, b):
    shamt = a & 31
    assert alu_result(Instruction("sllv", rd=1), a, b) == \
        (b << shamt) % (1 << 32)
    assert alu_result(Instruction("srlv", rd=1), a, b) == b >> shamt


def test_lui_shifts_immediate():
    assert alu_result(Instruction("lui", rt=1, imm=0x1234), 0, 0x1234) == \
        0x12340000


@given(u32, u32)
def test_mult_signed(a, b):
    hi, lo = mult_result("mult", a, b)
    product = (to_signed(a) * to_signed(b)) % (1 << 64)
    assert (hi << 32) | lo == product


@given(u32, u32)
def test_multu_unsigned(a, b):
    hi, lo = mult_result("multu", a, b)
    assert (hi << 32) | lo == a * b


@given(u32, u32)
def test_div_signed_matches_c_semantics(a, b):
    hi, lo = div_result("div", a, b)
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        assert (hi, lo) == (to_unsigned(sa), 0)
    else:
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        remainder = sa - quotient * sb
        assert lo == to_unsigned(quotient)
        assert hi == to_unsigned(remainder)
        # the C invariant: (a/b)*b + a%b == a  (mod 2^32)
        assert to_unsigned(to_signed(lo) * sb + to_signed(hi)) == a


@given(u32, u32)
def test_divu_unsigned(a, b):
    hi, lo = div_result("divu", a, b)
    if b == 0:
        assert (hi, lo) == (a, 0)
    else:
        assert lo == a // b
        assert hi == a % b


@given(u32, u32)
def test_branch_semantics(a, b):
    assert branch_taken("beq", a, b) == (a == b)
    assert branch_taken("bne", a, b) == (a != b)
    assert branch_taken("blez", a) == (to_signed(a) <= 0)
    assert branch_taken("bgtz", a) == (to_signed(a) > 0)
    assert branch_taken("bltz", a) == (to_signed(a) < 0)
    assert branch_taken("bgez", a) == (to_signed(a) >= 0)


def test_non_alu_instruction_rejected():
    with pytest.raises(ValueError):
        alu_result(Instruction("lw", rs=1, rt=2), 0, 0)
    with pytest.raises(ValueError):
        mult_result("div", 1, 2)
    with pytest.raises(ValueError):
        branch_taken("jal", 0, 0)
