"""Concurrency guarantees of the persistent artifact cache.

The evaluation service runs warm workers that share one cache
directory; these tests hammer a single key from many threads and
assert no reader ever observes a torn or foreign record, and that
failed stores never leak ``.tmp-*`` litter.
"""

import os
import pickle
import threading
import time

import pytest

from repro.system.artifacts import ArtifactCache


def test_store_load_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "round-trip")
    assert cache.load(key) is None
    cache.store(key, {"cycles": 123})
    assert cache.load(key) == {"cycles": 123}
    assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1


def test_one_key_hammered_from_threads(tmp_path):
    """Parallel writers + readers on ONE key: every read is either a
    miss (before first publication) or one of the complete published
    payloads — never an exception, never a torn record."""
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "hammer")
    valid_payloads = {f"payload-{writer}-{iteration}"
                      for writer in range(4) for iteration in range(25)}
    failures = []
    start = threading.Barrier(8)

    def writer(writer_id):
        start.wait()
        for iteration in range(25):
            cache.store(key, f"payload-{writer_id}-{iteration}")

    def reader():
        start.wait()
        own = ArtifactCache(tmp_path)  # distinct object, same dir
        for _ in range(200):
            value = own.load(key)
            if value is not None and value not in valid_payloads:
                failures.append(value)

    threads = [threading.Thread(target=writer, args=(i,))
               for i in range(4)]
    threads += [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert failures == []
    # after the dust settles the key holds one complete valid payload
    assert cache.load(key) in valid_payloads
    assert cache.stores == 100
    # and no temp litter survived the race
    assert not list(tmp_path.rglob(".tmp-*"))


def test_failed_store_leaves_no_tmp_litter(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "unpicklable")
    with pytest.raises(Exception):
        cache.store(key, lambda: None)  # lambdas cannot pickle
    assert not list(tmp_path.rglob(".tmp-*"))
    assert cache.load(key) is None


def test_damaged_entry_is_dropped_and_recovers(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "damage")
    cache.store(key, "good")
    path = cache._path(key)
    path.write_bytes(b"\x80\x04 torn!")  # truncated pickle
    assert cache.load(key) is None
    assert not path.exists()  # dropped so it cannot recur
    cache.store(key, "fresh")
    assert cache.load(key) == "fresh"


def test_counters_exact_under_threaded_loads(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "counted")
    cache.store(key, "value")
    start = threading.Barrier(8)

    def loader():
        start.wait()
        for _ in range(250):
            assert cache.load(key) == "value"

    threads = [threading.Thread(target=loader) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert cache.hits == 8 * 250
    assert cache.misses == 0


def test_foreign_key_record_is_a_miss(tmp_path):
    """A record whose embedded key disagrees (e.g. a hash-prefix
    collision or hand-copied file) is treated as a miss."""
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "foreign")
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"key": "someone-else",
                                   "payload": "nope"}))
    assert cache.load(key) is None


# ----------------------------------------------------------------------
# Scopes and the size cap (the fleet's shared-store mode).
# ----------------------------------------------------------------------
def _age(cache, key, seconds):
    """Backdate one entry's atime/mtime (simulates an old artifact)."""
    path = cache._path(key)
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def test_scoped_caches_share_keys_but_not_directories(tmp_path):
    plain = ArtifactCache(tmp_path)
    scoped = ArtifactCache(tmp_path, scope="fp00aa")
    key = plain.key("metrics", "unit", "scoped")
    assert scoped.key("metrics", "unit", "scoped") == key  # same hash
    scoped.store(key, "in-scope")
    plain.store(key, "at-root")
    assert scoped._path(key) != plain._path(key)
    assert scoped._path(key).parent.parent == tmp_path / "fp00aa"
    assert scoped.load(key) == "in-scope"
    assert plain.load(key) == "at-root"
    stats = plain.stats()
    assert stats["entries"] == 2  # stats() accounts the whole tree
    assert stats["scopes"] == ["fp00aa"]


def test_prune_requires_a_cap(tmp_path):
    cache = ArtifactCache(tmp_path)
    with pytest.raises(ValueError):
        cache.prune()


def test_prune_evicts_least_recently_read_first(tmp_path):
    cache = ArtifactCache(tmp_path)
    keys = [cache.key("metrics", "unit", f"lru-{i}") for i in range(4)]
    for key in keys:
        cache.store(key, "x" * 4096)
    for index, key in enumerate(keys):
        _age(cache, key, 4000 - index * 1000)  # keys[0] is the oldest
    cache.load(keys[0])  # a read refreshes recency: now the freshest
    sizes = [cache._path(key).stat().st_size for key in keys]
    cap = sizes[0] * 2 + 1  # room for two entries
    report = cache.prune(max_bytes=cap)
    assert report["evicted"] == 2
    assert report["remaining_bytes"] <= cap
    # the two oldest *unread* entries went; the read one survived
    assert cache._path(keys[0]).exists()
    assert not cache._path(keys[1]).exists()
    assert not cache._path(keys[2]).exists()
    assert cache._path(keys[3]).exists()
    assert cache.evictions == 2


def test_prune_never_evicts_pinned_or_fresh_entries(tmp_path):
    cache = ArtifactCache(tmp_path)
    pinned_key = cache.key("metrics", "unit", "pinned")
    fresh_key = cache.key("metrics", "unit", "fresh")
    old_key = cache.key("metrics", "unit", "old")
    for key in (pinned_key, fresh_key, old_key):
        cache.store(key, "y" * 2048)
    _age(cache, pinned_key, 9000)
    _age(cache, old_key, 8000)  # fresh_key keeps its just-written time
    with cache.pin(pinned_key):
        report = cache.prune(max_bytes=1)
    # only the old unpinned entry was evictable
    assert report["evicted"] == 1
    assert cache._path(pinned_key).exists()
    assert cache._path(fresh_key).exists()  # inside the grace window
    assert not cache._path(old_key).exists()
    # unpinned now, and with no grace, the pinned one goes too
    report = cache.prune(max_bytes=1, grace_seconds=0.0)
    assert not cache._path(pinned_key).exists()
    assert report["remaining_bytes"] == 0


def test_store_auto_prunes_under_env_cap(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "8192")
    cache = ArtifactCache(tmp_path)
    assert cache.max_bytes == 8192
    from repro.system import artifacts as mod
    # every store checks the cap (test the trigger, not the cadence)
    monkeypatch.setattr(mod, "_PRUNE_EVERY", 1)
    for index in range(8):
        key = cache.key("metrics", "unit", f"auto-{index}")
        cache.store(key, "z" * 4096)
        _age(cache, key, 600)  # outside the grace window
    assert cache.evictions > 0
    assert sum(size for _, size, _ in cache._entries()) <= 8192


def test_bad_env_cap_is_ignored(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "not-a-number")
    assert ArtifactCache(tmp_path).max_bytes is None
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-5")
    assert ArtifactCache(tmp_path).max_bytes is None
