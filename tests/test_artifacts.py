"""Concurrency guarantees of the persistent artifact cache.

The evaluation service runs warm workers that share one cache
directory; these tests hammer a single key from many threads and
assert no reader ever observes a torn or foreign record, and that
failed stores never leak ``.tmp-*`` litter.
"""

import pickle
import threading

import pytest

from repro.system.artifacts import ArtifactCache


def test_store_load_round_trip(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "round-trip")
    assert cache.load(key) is None
    cache.store(key, {"cycles": 123})
    assert cache.load(key) == {"cycles": 123}
    assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1


def test_one_key_hammered_from_threads(tmp_path):
    """Parallel writers + readers on ONE key: every read is either a
    miss (before first publication) or one of the complete published
    payloads — never an exception, never a torn record."""
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "hammer")
    valid_payloads = {f"payload-{writer}-{iteration}"
                      for writer in range(4) for iteration in range(25)}
    failures = []
    start = threading.Barrier(8)

    def writer(writer_id):
        start.wait()
        for iteration in range(25):
            cache.store(key, f"payload-{writer_id}-{iteration}")

    def reader():
        start.wait()
        own = ArtifactCache(tmp_path)  # distinct object, same dir
        for _ in range(200):
            value = own.load(key)
            if value is not None and value not in valid_payloads:
                failures.append(value)

    threads = [threading.Thread(target=writer, args=(i,))
               for i in range(4)]
    threads += [threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert failures == []
    # after the dust settles the key holds one complete valid payload
    assert cache.load(key) in valid_payloads
    assert cache.stores == 100
    # and no temp litter survived the race
    assert not list(tmp_path.rglob(".tmp-*"))


def test_failed_store_leaves_no_tmp_litter(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "unpicklable")
    with pytest.raises(Exception):
        cache.store(key, lambda: None)  # lambdas cannot pickle
    assert not list(tmp_path.rglob(".tmp-*"))
    assert cache.load(key) is None


def test_damaged_entry_is_dropped_and_recovers(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "damage")
    cache.store(key, "good")
    path = cache._path(key)
    path.write_bytes(b"\x80\x04 torn!")  # truncated pickle
    assert cache.load(key) is None
    assert not path.exists()  # dropped so it cannot recur
    cache.store(key, "fresh")
    assert cache.load(key) == "fresh"


def test_counters_exact_under_threaded_loads(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "counted")
    cache.store(key, "value")
    start = threading.Barrier(8)

    def loader():
        start.wait()
        for _ in range(250):
            assert cache.load(key) == "value"

    threads = [threading.Thread(target=loader) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert cache.hits == 8 * 250
    assert cache.misses == 0


def test_foreign_key_record_is_a_miss(tmp_path):
    """A record whose embedded key disagrees (e.g. a hash-prefix
    collision or hand-copied file) is treated as a miss."""
    cache = ArtifactCache(tmp_path)
    key = cache.key("metrics", "unit", "foreign")
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_bytes(pickle.dumps({"key": "someone-else",
                                   "payload": "nope"}))
    assert cache.load(key) is None
