"""The acceleration-report builder."""

import pytest

from repro.minic import compile_to_program
from repro.system import paper_system
from repro.system.report import build_report

SOURCE = """
unsigned a[32];
int main() {
    int i; int p;
    unsigned acc = 1;
    for (p = 0; p < 8; p++) {
        for (i = 0; i < 32; i++) {
            acc = acc * 31 + a[i];
            a[i] = acc >> 1;
        }
    }
    print_int(acc & 0xffff);
    return 0;
}
"""


@pytest.fixture(scope="module")
def report():
    program = compile_to_program(SOURCE)
    return build_report(program, paper_system("C2", 64, True))


def test_report_fields_are_consistent(report):
    assert report.system == "C2/64/spec"
    assert report.speedup == pytest.approx(
        report.baseline_cycles / report.accelerated_cycles)
    assert report.speedup > 1.0
    assert report.energy_ratio > 1.0
    assert 0 < report.array_coverage <= 1.0
    assert 0 < report.cache_hit_rate <= 1.0
    assert report.blocks_for_80pct <= report.distinct_blocks
    assert sum(report.power_shares.values()) == pytest.approx(1.0)


def test_report_includes_rendered_configs(report):
    assert report.hottest_configs
    assert any("config@0x" in text for text in report.hottest_configs)
    assert any("line " in text for text in report.hottest_configs)


def test_report_renders_as_text(report):
    text = report.render()
    assert "acceleration report @ C2/64/spec" in text
    assert "instructions/branch" in text
    assert "power shares" in text
    assert "hottest cached configurations" in text
    assert f"{report.speedup:.2f}x" in text
