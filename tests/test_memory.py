"""Sparse paged memory."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.memory import AlignmentError_, Memory

addr32 = st.integers(0, 0xFFFF_FFF0)


def test_uninitialised_memory_reads_zero():
    mem = Memory()
    assert mem.read_word(0x10010000) == 0
    assert mem.read_byte(0x7FFFEFFC) == 0


def test_little_endian_word_bytes():
    mem = Memory()
    mem.write_word(0x1000, 0x11223344)
    assert mem.read_byte(0x1000) == 0x44
    assert mem.read_byte(0x1003) == 0x11
    assert mem.read_half(0x1000) == 0x3344
    assert mem.read_half(0x1002) == 0x1122


def test_alignment_enforced():
    mem = Memory()
    with pytest.raises(AlignmentError_):
        mem.read_word(0x1002)
    with pytest.raises(AlignmentError_):
        mem.write_word(0x1001, 0)
    with pytest.raises(AlignmentError_):
        mem.read_half(0x1001)
    with pytest.raises(AlignmentError_):
        mem.write_half(0x1003, 0)


def test_cross_page_block_write():
    mem = Memory()
    base = 0x1FFC  # spans the 4 KiB page boundary at 0x2000
    mem.write_block(base, bytes(range(8)))
    assert mem.read_block(base, 8) == bytes(range(8))
    assert mem.read_word(0x2000) == int.from_bytes(bytes([4, 5, 6, 7]),
                                                   "little")


def test_cstring_read():
    mem = Memory()
    mem.write_block(0x3000, b"hello\x00world")
    assert mem.read_cstring(0x3000) == "hello"
    assert mem.read_cstring(0x3000, limit=3) == "hel"


def test_snapshot_pages_is_copy():
    mem = Memory()
    mem.write_word(0x1000, 1)
    snap = mem.snapshot_pages()
    mem.write_word(0x1000, 2)
    assert snap != mem.snapshot_pages()


@given(st.builds(lambda a: a & ~3, addr32), st.integers(0, 0xFFFFFFFF))
def test_word_round_trip(address, value):
    mem = Memory()
    mem.write_word(address, value)
    assert mem.read_word(address) == value


@given(st.builds(lambda a: a & ~1, addr32), st.integers(0, 0xFFFF))
def test_half_round_trip(address, value):
    mem = Memory()
    mem.write_half(address, value)
    assert mem.read_half(address) == value


@given(addr32, st.binary(min_size=1, max_size=64))
def test_block_round_trip(address, payload):
    mem = Memory()
    mem.write_block(address, payload)
    assert mem.read_block(address, len(payload)) == payload


@given(st.builds(lambda a: a & ~3, addr32), st.integers(0, 0xFFFFFFFF))
def test_byte_writes_compose_into_words(address, value):
    mem = Memory()
    for i in range(4):
        mem.write_byte(address + i, (value >> (8 * i)) & 0xFF)
    assert mem.read_word(address) == value
