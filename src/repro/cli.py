"""Command-line interface.

Usage (installed as ``python -m repro.cli``):

- ``run <file.s|file.c|workload> [--array C3] [--slots 64] [--spec]
  [--fast]`` — run a program or named workload on the plain MIPS and on
  the coupled system, printing outputs, cycles, speedup and DIM
  statistics (``--fast`` uses the block-compiled simulator).
- ``workloads`` — list the 18 MiBench-analog workloads.
- ``inspect <file.s|workload> [--array C1] [--spec]`` — translate the
  hottest basic block and render the resulting array configuration.
- ``characterize <workload>`` — Figure 3-style block profile.
- ``report <target>`` — full acceleration report: characterisation,
  speedup/energy, DIM statistics and the hottest configurations.
- ``suite [--array C2] [--slots 64] [--spec] [--json out.json]
  [--jobs N] [--only a,b] [--fast]`` — evaluate the whole Table 2 suite
  (or a subset) against one system, optionally fanning workloads across
  ``N`` processes; JSON output is byte-identical for any ``--jobs``.
- ``sweep [--arrays C1,C2] [--slots 16,64] [--spec both] [--ideal]
  [--only a,b] [--jobs N] [--json out.json] [--instrumentation i.json]
  [--cache-dir DIR] [--no-cache]`` — evaluate a full workloads x
  configurations matrix through the trace-once / replay-many sweep
  engine with persistent artifact caching; defaults to the paper's
  Table 2 matrix.  Result JSON is byte-identical to per-configuration
  ``suite`` runs, serial or parallel, cold or warm cache.
- ``disasm <file.s|file.c|workload>`` — disassemble a target's text
  segment.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import blocks_for_coverage, instructions_per_branch
from repro.asm import assemble
from repro.asm.program import Program
from repro.cgra.render import render_configuration
from repro.dim import BimodalPredictor, DimParams, Translator
from repro.minic import compile_to_program
from repro.sim import Simulator, run_program
from repro.system import PAPER_SHAPES, evaluate_trace, paper_system
from repro.system.coupled import run_coupled
from repro.system.energy import energy_ratio
from repro.system.traceeval import baseline_metrics
from repro.workloads import all_workloads, load_workload, workload_names


def _load_target(target: str) -> Program:
    """Resolve a CLI target: workload name, .s assembly, or .c mini-C."""
    if target in workload_names():
        return load_workload(target)
    if target.endswith(".s") or target.endswith(".asm"):
        with open(target) as handle:
            return assemble(handle.read())
    if target.endswith(".c"):
        with open(target) as handle:
            return compile_to_program(handle.read(), source_name=target)
    raise SystemExit(
        f"unknown target {target!r}: expected a workload name "
        f"(see 'workloads'), a .s file, or a .c file")


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_target(args.target)
    config = paper_system(args.array, args.slots, args.spec)
    plain = run_program(program, collect_trace=True, fast=args.fast)
    print(f"plain MIPS : {plain.stats.cycles:,} cycles, "
          f"{plain.stats.instructions:,} instructions, "
          f"exit={plain.exit_code}")
    if plain.output:
        print(f"output     : {plain.output.strip()}")
    accel = run_coupled(program, config, fast=args.fast)
    assert accel.output == plain.output
    dim = accel.dim_stats
    base = baseline_metrics(plain.trace, config.timing)
    metrics = evaluate_trace(plain.trace, config)
    print(f"\n{config.name}: {accel.stats.cycles:,} cycles "
          f"-> {plain.stats.cycles / accel.stats.cycles:.2f}x speedup, "
          f"{energy_ratio(base, metrics):.2f}x less energy")
    print(f"DIM        : {dim.translations} translations, "
          f"{dim.extensions} extensions, {dim.flushes} flushes, "
          f"{dim.misspeculations} mis-speculations")
    print(f"array      : {dim.array_executions:,} executions covering "
          f"{dim.array_instructions:,} instructions "
          f"({dim.array_instructions / plain.stats.instructions:.0%} of "
          "the program)")
    print(f"cache      : {accel.cache_hits:,}/{accel.cache_lookups:,} "
          f"hits, predictor accuracy "
          f"{accel.predictor_accuracy:.1%}")
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    print(f"{'name':14s} {'paper row':16s} {'class':9s} description")
    for workload in all_workloads():
        print(f"{workload.name:14s} {workload.paper_name:16s} "
              f"{workload.category:9s} {workload.description}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    program = _load_target(args.target)
    result = run_program(program, collect_trace=True)
    counts = result.trace.block_execution_counts()
    hottest_id = max(counts, key=lambda b: counts[b] *
                     len(result.trace.table.get(b)))
    block = result.trace.table.get(hottest_id)
    print(f"hottest block: 0x{block.start_pc:08x}, {len(block)} "
          f"instructions, executed {counts[hottest_id]:,} times\n")
    sim = Simulator(program)
    predictor = BimodalPredictor(512)
    if args.spec and block.is_conditional:
        for _ in range(3):
            predictor.update(block.branch_pc, True)
    translator = Translator(PAPER_SHAPES[args.array],
                            DimParams(speculation=args.spec),
                            predictor, sim.block_at)
    config = translator.translate(sim.block_at(block.start_pc))
    if config is None:
        print("block too short to translate (fewer than 4 instructions)")
        return 1
    print(render_configuration(config))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    program = _load_target(args.target)
    result = run_program(program, collect_trace=True)
    trace = result.trace
    coverage = blocks_for_coverage(trace)
    print(f"instructions        : {result.stats.instructions:,}")
    print(f"distinct blocks     : {len(trace.table)}")
    print(f"instructions/branch : {instructions_per_branch(trace):.1f}")
    for fraction in sorted(coverage):
        print(f"blocks for {fraction:4.0%}     : {coverage[fraction]}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.system.report import build_report

    program = _load_target(args.target)
    config = paper_system(args.array, args.slots, args.spec)
    report = build_report(program, config)
    print(report.render())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.workloads.suite import evaluate_suite, format_suite

    config = paper_system(args.array, args.slots, args.spec)
    names = _parse_workload_subset(args.only)
    result = evaluate_suite(config, names=names, jobs=args.jobs,
                            fast=args.fast)
    print(format_suite(result))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(result.to_json())
        print(f"\nwrote {args.json}")
    return 0


def _parse_workload_subset(only: Optional[str]) -> Optional[List[str]]:
    if not only:
        return None
    names = [n.strip() for n in only.split(",") if n.strip()]
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)}")
    return names


def _sweep_configs(args: argparse.Namespace) -> List:
    from repro.system.sweep import paper_matrix

    if not args.arrays:
        return paper_matrix()
    arrays = [a.strip() for a in args.arrays.split(",") if a.strip()]
    unknown = sorted(set(arrays) - set(PAPER_SHAPES) - {"ideal"})
    if unknown:
        raise SystemExit(f"unknown arrays: {', '.join(unknown)}")
    slots = [int(s) for s in args.slots.split(",") if s.strip()]
    spec_values = {"off": (False,), "on": (True,),
                   "both": (False, True)}.get(args.spec)
    if spec_values is None:
        raise SystemExit("--spec must be off, on or both")
    configs = []
    for array in arrays:
        for spec in spec_values:
            if array == "ideal":
                configs.append(paper_system("ideal", speculation=spec))
            else:
                for slot_count in slots:
                    configs.append(paper_system(array, slot_count, spec))
    if args.ideal and "ideal" not in arrays:
        for spec in spec_values:
            configs.append(paper_system("ideal", speculation=spec))
    return configs


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.system.artifacts import ArtifactCache, default_cache_dir
    from repro.system.sweep import evaluate_matrix

    configs = _sweep_configs(args)
    names = _parse_workload_subset(args.only)
    cache = None
    if not args.no_cache:
        root = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ArtifactCache(root)
    matrix = evaluate_matrix(configs, names=names, jobs=args.jobs,
                             fast=args.fast, cache=cache)

    print(f"{'system':16s} {'geomean speedup':>16s} "
          f"{'geomean energy':>15s}")
    for suite in matrix.suites:
        print(f"{suite.system:16s} {suite.geomean_speedup:>15.3f}x "
              f"{suite.geomean_energy_ratio:>14.3f}x")
    inst = matrix.instrumentation
    print(f"\n{inst.cells} cells ({inst.workloads} workloads x "
          f"{inst.systems} systems) in {inst.total_seconds:.2f}s "
          f"(trace {inst.trace_seconds:.2f}s, replay "
          f"{inst.replay_seconds:.2f}s)")
    print(f"traces     : {inst.traces_simulated} simulated, "
          f"{inst.traces_from_disk} from disk, "
          f"{inst.traces_in_memory} in memory")
    print(f"cells      : {inst.cells_replayed} replayed, "
          f"{inst.cells_from_disk} from disk artifacts")
    print(f"alloc memo : {inst.alloc_hit_rate:.1%} hit rate "
          f"({inst.alloc_hits:,} hits)")
    if cache is not None:
        print(f"artifacts  : {inst.artifact_hit_rate:.1%} hit rate "
              f"({inst.artifact_hits} hits, {inst.artifact_stores} "
              f"stores) @ {cache.root}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(matrix.results_json())
        print(f"\nwrote {args.json}")
    if args.instrumentation:
        with open(args.instrumentation, "w") as handle:
            handle.write(matrix.instrumentation_json())
        print(f"wrote {args.instrumentation}")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.asm.disassembler import disassemble_program

    program = _load_target(args.target)
    for line in disassemble_program(program):
        print(line)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transparent reconfigurable acceleration (DIM) "
                    "toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a target plain and accelerated")
    run_p.add_argument("target")
    run_p.add_argument("--array", default="C3",
                       choices=sorted(PAPER_SHAPES))
    run_p.add_argument("--slots", type=int, default=64)
    run_p.add_argument("--spec", action="store_true")
    run_p.add_argument("--fast", action="store_true",
                       help="use the block-compiled simulator fast path")
    run_p.set_defaults(func=_cmd_run)

    sub.add_parser("workloads",
                   help="list the benchmark suite").set_defaults(
        func=_cmd_workloads)

    inspect_p = sub.add_parser("inspect",
                               help="render the hottest block's "
                                    "configuration")
    inspect_p.add_argument("target")
    inspect_p.add_argument("--array", default="C1",
                           choices=sorted(PAPER_SHAPES))
    inspect_p.add_argument("--spec", action="store_true")
    inspect_p.set_defaults(func=_cmd_inspect)

    char_p = sub.add_parser("characterize",
                            help="Figure 3-style block profile")
    char_p.add_argument("target")
    char_p.set_defaults(func=_cmd_characterize)

    report_p = sub.add_parser("report",
                              help="full acceleration report for a "
                                   "target")
    report_p.add_argument("target")
    report_p.add_argument("--array", default="C2",
                          choices=sorted(PAPER_SHAPES))
    report_p.add_argument("--slots", type=int, default=64)
    report_p.add_argument("--spec", action="store_true")
    report_p.set_defaults(func=_cmd_report)

    suite_p = sub.add_parser("suite",
                             help="evaluate the whole Table 2 suite")
    suite_p.add_argument("--array", default="C2",
                         choices=sorted(PAPER_SHAPES))
    suite_p.add_argument("--slots", type=int, default=64)
    suite_p.add_argument("--spec", action="store_true")
    suite_p.add_argument("--json", default=None,
                         help="also write results as JSON")
    suite_p.add_argument("--jobs", type=int, default=1,
                         help="fan workload evaluation across N processes "
                              "(results are byte-identical to --jobs 1)")
    suite_p.add_argument("--only", default=None,
                         help="comma-separated workload subset")
    suite_p.add_argument("--fast", action="store_true",
                         help="trace workloads with the block-compiled "
                              "fast path")
    suite_p.set_defaults(func=_cmd_suite)

    sweep_p = sub.add_parser("sweep",
                             help="evaluate a workloads x configurations "
                                  "matrix with the sweep engine")
    sweep_p.add_argument("--arrays", default=None,
                         help="comma-separated arrays (C1,C2,C3,ideal); "
                              "default: the full Table 2 matrix")
    sweep_p.add_argument("--slots", default="16,64,256",
                         help="comma-separated reconfiguration-cache "
                              "sizes (ignored for ideal)")
    sweep_p.add_argument("--spec", default="both",
                         choices=("off", "on", "both"),
                         help="speculation settings to sweep")
    sweep_p.add_argument("--ideal", action="store_true",
                         help="also include the two Ideal columns")
    sweep_p.add_argument("--only", default=None,
                         help="comma-separated workload subset")
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="fan workload rows across N processes "
                              "(results are byte-identical to --jobs 1)")
    sweep_p.add_argument("--fast", action="store_true",
                         help="trace workloads with the block-compiled "
                              "fast path")
    sweep_p.add_argument("--json", default=None,
                         help="write the deterministic matrix report")
    sweep_p.add_argument("--instrumentation", default=None,
                         help="write phase timings and cache counters")
    sweep_p.add_argument("--cache-dir", default=None,
                         help="artifact-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="disable the persistent artifact cache")
    sweep_p.set_defaults(func=_cmd_sweep)

    disasm_p = sub.add_parser("disasm", help="disassemble a target")
    disasm_p.add_argument("target")
    disasm_p.set_defaults(func=_cmd_disasm)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
