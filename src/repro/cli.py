"""Command-line interface.

Usage (installed as ``python -m repro.cli``):

- ``run <file.s|file.c|workload> [--array C3] [--slots 64] [--spec]
  [--fast]`` — run a program or named workload on the plain MIPS and on
  the coupled system, printing outputs, cycles, speedup and DIM
  statistics (``--fast`` uses the block-compiled simulator).
- ``workloads`` — list the 18 MiBench-analog workloads.
- ``inspect <file.s|workload> [--array C1] [--spec]`` — translate the
  hottest basic block and render the resulting array configuration.
- ``characterize <workload>`` — Figure 3-style block profile.
- ``report <target> [--metrics]`` — full acceleration report:
  characterisation, speedup/energy, DIM statistics and the hottest
  configurations; ``--metrics`` appends the unified telemetry counters
  as JSON.
- ``suite [--array C2] [--slots 64] [--spec] [--json out.json]
  [--jobs N] [--only a,b] [--fast]`` — evaluate the whole Table 2 suite
  (or a subset) against one system, optionally fanning workloads across
  ``N`` processes; JSON output is byte-identical for any ``--jobs``.
- ``sweep [--arrays C1,C2] [--slots 16,64] [--spec both] [--ideal]
  [--only a,b] [--jobs N] [--json out.json] [--instrumentation i.json]
  [--telemetry t.jsonl] [--cache-dir DIR] [--no-cache]`` — evaluate a
  full workloads x configurations matrix through the trace-once /
  replay-many sweep engine with persistent artifact caching; defaults
  to the paper's Table 2 matrix.  Result JSON is byte-identical to
  per-configuration ``suite`` runs, serial or parallel, cold or warm
  cache — and identical with or without ``--telemetry``.
- ``explore [--space spec.json] [--strategy grid|random|shalving|
  hillclimb] [--budget N] [--objectives speedup,area,energy]
  [--seed N] [--frontier out.json] [--area-budget GATES] [--only a,b]
  [--jobs N] [--fast] [--url U] [--telemetry t.jsonl]
  [--cache-dir DIR] [--no-cache]`` — multi-objective design-space
  exploration (:mod:`repro.dse`): search the joint (array shape, cache
  slots, speculation, DIM policy) space with a seeded, budget-bounded
  strategy and print/export the Pareto frontier.  ``--url`` dispatches
  evaluation batches to a running ``repro serve``; the frontier JSON
  is byte-identical across serial, ``--jobs N`` and dispatched runs.
- ``mpsoc [--preset sys-s|sys-m|sys-l | --area-budget GATES]
  [--mix name:w,...] [--cores 1,2,4] [--max-arrays N]
  [--serial-fraction F] [--strategy S] [--budget N] [--seed N]
  [--objectives ...] [--frontier out.json] [--jobs N] [--fast]
  [--url U] [--telemetry t.jsonl] [--cache-dir DIR] [--no-cache]``
  — explore heterogeneous MPSoC allocations (:mod:`repro.mpsoc`):
  split an area budget across plain MIPS cores and catalog arrays
  (the shared ``--array/--slots/--spec`` options pick the catalog,
  default C1,C2,C3 at 64 slots with speculation), dispatch each
  workload of the weighted traffic mix to its best-fitting tile, and
  print/export the Pareto frontier over mix-level speedup/area/energy.
  A budget below the cheapest allocation exits with a structured
  machine-readable error; the frontier JSON is byte-identical inline,
  with ``--jobs`` and when ``--url`` dispatches the catalog matrix.
- ``serve [--host H] [--port P] [--workers N] [--cache-dir DIR]
  [--no-cache] [--capacity N] [--scoped-cache]`` — run the persistent
  evaluation service (:mod:`repro.serve`): an HTTP job queue whose
  scheduler coalesces compatible jobs into one matrix replay on warm
  workers.  ``--scoped-cache`` puts each workload fingerprint's
  artifacts in its own subdirectory, which is how fleet workers share
  one ``REPRO_CACHE_DIR`` without contention.
- ``fleet [--host H] [--port P] [--workers N] [--worker-url U ...]
  [--max-inflight N] [--capacity N] [--cache-dir DIR] [--no-cache]``
  — run the distributed evaluation fleet (:mod:`repro.fleet`): a
  coordinator that shards jobs across worker servers by workload
  fingerprint (consistent hashing), monitors worker health, re-
  dispatches jobs from dead workers and sheds load beyond
  ``--max-inflight``.  ``--workers N`` spawns N local worker processes
  sharing one fingerprint-scoped artifact store; ``--worker-url``
  registers already-running servers instead (or additionally).
- ``submit {run,evaluate,sweep} [target] [--url U] [--fleet]
  [--priority N] [--timeout S] [--no-wait] [--json out.json]`` plus
  the shared system options — submit one job to a running service and
  (by default) wait for and print its result.  ``--fleet`` targets a
  coordinator (default port 8360) through the streaming fleet client.
- ``jobs [--url U]`` — list every job the service knows, with states.
- ``cache {stats,prune} [--cache-dir DIR] [--max-bytes N]`` — inspect
  or LRU-prune the shared artifact store.
- ``corpus generate [--seed N] [--count N] [--profile P] [--out M]
  [--names] [--telemetry t.jsonl]`` / ``corpus list <manifest>`` /
  ``corpus inspect <manifest> <kernel> [--source]`` — the seeded
  synthetic kernel corpus (:mod:`repro.corpus`): generate hundreds of
  self-checking assembly kernels with controlled block size, ILP,
  branch bias/predictability, loop nesting and memory intensity, into
  a fingerprinted manifest.  Every workload-taking command accepts
  ``--corpus MANIFEST`` (repeatable) to register the kernels — the
  manifests are exported via ``REPRO_CORPUS`` so sweep ``--jobs``
  pools, serve workers and fleet worker processes resolve the same
  names; ``--corpus-only`` (suite/sweep/explore) restricts the run to
  corpus kernels.
- ``traffic [--url U] [--seed N] [--requests N | --duration S]
  [--rate R] [--arrival poisson|burst|uniform] [--zipf S]
  [--hot-rotate S] [--priorities 0,5] [--deadline-fraction F]
  [--corpus M] [--only a,b] [--dry-run] [--json out.json]
  [--telemetry t.jsonl]`` — replay a seeded, Zipf-skewed open-loop
  traffic mix (:mod:`repro.traffic`) against a running serve or fleet
  endpoint, reporting latency percentiles, batch-coalescing hit rate
  and shed rate from the service's real telemetry.
- ``disasm <file.s|file.c|workload>`` — disassemble a target's text
  segment.

Every subcommand that takes a system shares one option parent
(``--array/--slots/--spec`` plus ``--fast/--jobs/--only`` where they
apply) and builds its configurations through the single canonical
:class:`repro.system.config.SystemSpec` path.  ``--array`` and
``--arrays`` are the same option; both accept comma-separated lists,
as does ``--slots``.  Commands that run exactly one system reject
selections that expand to several.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import blocks_for_coverage, instructions_per_branch
from repro.api import SystemSpec, load_target
from repro.asm.program import Program
from repro.cgra.render import render_configuration
from repro.dim import BimodalPredictor, Translator
from repro.dim.params import DYNFLOW_MODES
from repro.obs import Telemetry
from repro.sim import Simulator, run_program
from repro.system import evaluate_trace
from repro.system.config import PAPER_SHAPES, SystemConfig
from repro.system.coupled import run_coupled
from repro.system.energy import energy_ratio
from repro.system.traceeval import baseline_metrics
from repro.workloads import all_workloads, workload_names

_SPEC_VALUES = {"off": (False,), "on": (True,), "both": (False, True)}


def _load_target(target: str) -> Program:
    """Resolve a CLI target: workload name, .s assembly, or .c mini-C."""
    try:
        return load_target(target)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _shared_options(array: Optional[str], slots: str, spec: str,
                    fast: bool = False, jobs: bool = False,
                    only: bool = False) -> argparse.ArgumentParser:
    """The one option parent shared by every system-taking subcommand.

    ``array``/``slots``/``spec`` set per-command defaults; ``fast``,
    ``jobs`` and ``only`` opt the command into the execution options.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--array", "--arrays", dest="array", default=array,
        help="comma-separated array names (C1,C2,C3,ideal)")
    parent.add_argument(
        "--slots", default=slots,
        help="comma-separated reconfiguration-cache sizes")
    parent.add_argument(
        "--spec", nargs="?", const="on", default=spec,
        choices=("off", "on", "both"),
        help="speculation: off, on, or both (bare --spec means on)")
    parent.add_argument(
        "--dynflow", default="off", choices=DYNFLOW_MODES,
        help="dynamic control-flow mode for every selected "
             "configuration (loop-aware configurations and/or "
             "predicated dual-path merge; needs speculation to take "
             "effect).  Paper arrays are lowered to their shape form, "
             "so configuration names become geometry names")
    if fast:
        parent.add_argument(
            "--fast", action="store_true",
            help="use the block-compiled simulator fast path")
    if jobs:
        parent.add_argument(
            "--jobs", type=int, default=1,
            help="fan work across N processes (results are "
                 "byte-identical to --jobs 1)")
    if only:
        parent.add_argument(
            "--only", default=None,
            help="comma-separated workload subset")
    return parent


def _corpus_options() -> argparse.ArgumentParser:
    """Option parent for commands that can consume corpus manifests."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--corpus", action="append", default=None, metavar="MANIFEST",
        help="register a corpus manifest's kernels as workloads "
             "(repeatable; exported via REPRO_CORPUS so worker "
             "processes see the same corpus)")
    return parent


def _activate_corpus(paths: Optional[List[str]]) -> List[str]:
    """Register corpus manifests and export them to child processes.

    Returns the registered kernel names in manifest order.  Setting
    ``REPRO_CORPUS`` *before* any pool/subprocess fan-out is what makes
    sweep ``--jobs`` workers, serve batch workers and spawned fleet
    workers resolve the same corpus names byte-identically.
    """
    if not paths:
        return []
    import os

    from repro.corpus import ManifestError, load_manifest, register_corpus
    from repro.workloads import CORPUS_ENV

    names: List[str] = []
    try:
        for path in paths:
            names.extend(register_corpus(load_manifest(path)))
    except (OSError, ManifestError, ValueError) as exc:
        raise SystemExit(f"corpus error: {exc}")
    parts = [p for p in os.environ.get(CORPUS_ENV, "").split(os.pathsep)
             if p]
    for path in paths:
        absolute = os.path.abspath(path)
        if absolute not in parts:
            parts.append(absolute)
    os.environ[CORPUS_ENV] = os.pathsep.join(parts)
    return names


def _subset_names(args: argparse.Namespace,
                  corpus_names: List[str]) -> Optional[List[str]]:
    """Resolve ``--only``/``--corpus-only`` into a workload subset."""
    if getattr(args, "corpus_only", False):
        if not corpus_names:
            raise SystemExit("--corpus-only needs at least one --corpus "
                             "manifest")
        if args.only:
            raise SystemExit("--corpus-only and --only are exclusive")
        return corpus_names
    return _parse_workload_subset(args.only)


def _build_specs(args: argparse.Namespace) -> List[SystemSpec]:
    """Expand ``--array/--slots/--spec`` into :class:`SystemSpec`\\ s.

    The single spec-construction path for every subcommand; all
    validation errors surface as :class:`SystemExit` with the
    underlying :class:`repro.system.config.SystemSpec` message.
    """
    arrays = [a.strip() for a in args.array.split(",") if a.strip()]
    try:
        slot_counts = [int(s) for s in str(args.slots).split(",")
                       if str(s).strip()]
    except ValueError:
        raise SystemExit(f"--slots must be comma-separated integers, "
                         f"got {args.slots!r}")
    spec_values = _SPEC_VALUES[args.spec]
    dynflow = getattr(args, "dynflow", "off")
    extras = ((("dynflow_mode", dynflow),) if dynflow != "off" else ())

    def paper_spec(array: str, slots: int, spec: bool) -> SystemSpec:
        # dim extras require the shape form (mirroring the serve wire
        # protocol), so --dynflow lowers a paper array to its geometry.
        if extras and array in PAPER_SHAPES:
            return SystemSpec(shape=PAPER_SHAPES[array], slots=slots,
                              speculation=spec, dim_extras=extras)
        return SystemSpec(array=array, slots=slots, speculation=spec)

    specs: List[SystemSpec] = []
    try:
        if extras and "ideal" in arrays:
            raise ValueError("--dynflow does not apply to the ideal "
                             "array (it never reconfigures)")
        for array in arrays:
            for spec in spec_values:
                if array == "ideal":
                    specs.append(SystemSpec(array="ideal",
                                            speculation=spec))
                else:
                    for slot_count in slot_counts:
                        specs.append(paper_spec(array, slot_count,
                                                spec))
        if getattr(args, "ideal", False) and "ideal" not in arrays:
            if extras:
                raise ValueError("--dynflow does not apply to the "
                                 "ideal array (it never reconfigures)")
            for spec in spec_values:
                specs.append(SystemSpec(array="ideal",
                                        speculation=spec))
    except ValueError as exc:
        raise SystemExit(str(exc))
    if not specs:
        raise SystemExit("no configurations selected")
    return specs


def _build_configs(args: argparse.Namespace) -> List[SystemConfig]:
    """Build system configurations from the shared options.

    ``--array`` unset means the full paper Table 2 matrix; otherwise
    every selected :class:`SystemSpec` is built.
    """
    if args.array is None:
        if getattr(args, "dynflow", "off") != "off":
            raise SystemExit(
                "--dynflow needs an explicit --arrays selection (the "
                "default paper Table 2 matrix is mode-less)")
        from repro.system.sweep import paper_matrix

        return paper_matrix()
    return [spec.build() for spec in _build_specs(args)]


def _single_config(args: argparse.Namespace) -> SystemConfig:
    configs = _build_configs(args)
    if len(configs) != 1:
        raise SystemExit(
            f"this command runs exactly one system, but "
            f"--array/--slots/--spec select {len(configs)}; use 'sweep' "
            f"for a matrix")
    return configs[0]


def _cmd_run(args: argparse.Namespace) -> int:
    _activate_corpus(getattr(args, "corpus", None))
    program = _load_target(args.target)
    config = _single_config(args)
    plain = run_program(program, collect_trace=True, fast=args.fast)
    print(f"plain MIPS : {plain.stats.cycles:,} cycles, "
          f"{plain.stats.instructions:,} instructions, "
          f"exit={plain.exit_code}")
    if plain.output:
        print(f"output     : {plain.output.strip()}")
    accel = run_coupled(program, config, fast=args.fast)
    assert accel.output == plain.output
    dim = accel.dim_stats
    base = baseline_metrics(plain.trace, config.timing)
    metrics = evaluate_trace(plain.trace, config)
    print(f"\n{config.name}: {accel.stats.cycles:,} cycles "
          f"-> {plain.stats.cycles / accel.stats.cycles:.2f}x speedup, "
          f"{energy_ratio(base, metrics):.2f}x less energy")
    print(f"DIM        : {dim.translations} translations, "
          f"{dim.extensions} extensions, {dim.flushes} flushes, "
          f"{dim.misspeculations} mis-speculations")
    print(f"array      : {dim.array_executions:,} executions covering "
          f"{dim.array_instructions:,} instructions "
          f"({dim.array_instructions / plain.stats.instructions:.0%} of "
          "the program)")
    print(f"cache      : {accel.cache_hits:,}/{accel.cache_lookups:,} "
          f"hits, predictor accuracy "
          f"{accel.predictor_accuracy:.1%}")
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    print(f"{'name':14s} {'paper row':16s} {'class':9s} description")
    for workload in all_workloads():
        print(f"{workload.name:14s} {workload.paper_name:16s} "
              f"{workload.category:9s} {workload.description}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    program = _load_target(args.target)
    config = _single_config(args)
    result = run_program(program, collect_trace=True)
    counts = result.trace.block_execution_counts()
    hottest_id = max(counts, key=lambda b: counts[b] *
                     len(result.trace.table.get(b)))
    block = result.trace.table.get(hottest_id)
    print(f"hottest block: 0x{block.start_pc:08x}, {len(block)} "
          f"instructions, executed {counts[hottest_id]:,} times\n")
    sim = Simulator(program)
    predictor = BimodalPredictor(512)
    if config.dim.speculation and block.is_conditional:
        for _ in range(3):
            predictor.update(block.branch_pc, True)
    translator = Translator(config.shape, config.dim, predictor,
                            sim.block_at)
    rendered = translator.translate(sim.block_at(block.start_pc))
    if rendered is None:
        print("block too short to translate (fewer than 4 instructions)")
        return 1
    print(render_configuration(rendered))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    program = _load_target(args.target)
    result = run_program(program, collect_trace=True)
    trace = result.trace
    coverage = blocks_for_coverage(trace)
    print(f"instructions        : {result.stats.instructions:,}")
    print(f"distinct blocks     : {len(trace.table)}")
    print(f"instructions/branch : {instructions_per_branch(trace):.1f}")
    for fraction in sorted(coverage):
        print(f"blocks for {fraction:4.0%}     : {coverage[fraction]}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.system.report import build_report

    program = _load_target(args.target)
    config = _single_config(args)
    telemetry = Telemetry() if args.metrics else None
    report = build_report(program, config, telemetry=telemetry)
    print(report.render())
    if telemetry is not None:
        print("\n=== telemetry ===")
        print(telemetry.to_json())
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.workloads.suite import evaluate_suite, format_suite

    corpus_names = _activate_corpus(args.corpus)
    config = _single_config(args)
    names = _subset_names(args, corpus_names)
    result = evaluate_suite(config, names=names, jobs=args.jobs,
                            fast=args.fast)
    print(format_suite(result))
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(result.to_json())
        print(f"\nwrote {args.json}")
    return 0


def _parse_workload_subset(only: Optional[str]) -> Optional[List[str]]:
    if not only:
        return None
    names = [n.strip() for n in only.split(",") if n.strip()]
    unknown = sorted(set(names) - set(workload_names()))
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)}")
    return names


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.system.artifacts import ArtifactCache, default_cache_dir
    from repro.system.sweep import evaluate_matrix

    corpus_names = _activate_corpus(args.corpus)
    configs = _build_configs(args)
    names = _subset_names(args, corpus_names)
    cache = None
    if not args.no_cache:
        root = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ArtifactCache(root)
    telemetry = Telemetry() if args.telemetry else None
    matrix = evaluate_matrix(configs, names=names, jobs=args.jobs,
                             fast=args.fast, cache=cache,
                             telemetry=telemetry, engine=args.engine)

    print(f"{'system':16s} {'geomean speedup':>16s} "
          f"{'geomean energy':>15s}")
    for suite in matrix.suites:
        print(f"{suite.system:16s} {suite.geomean_speedup:>15.3f}x "
              f"{suite.geomean_energy_ratio:>14.3f}x")
    inst = matrix.instrumentation
    print(f"\n{inst.cells} cells ({inst.workloads} workloads x "
          f"{inst.systems} systems) in {inst.total_seconds:.2f}s "
          f"(trace {inst.trace_seconds:.2f}s, replay "
          f"{inst.replay_seconds:.2f}s)")
    print(f"traces     : {inst.traces_simulated} simulated, "
          f"{inst.traces_from_disk} from disk, "
          f"{inst.traces_in_memory} in memory")
    print(f"cells      : {inst.cells_replayed} replayed "
          f"({inst.cells_columnar} columnar), "
          f"{inst.cells_from_disk} from disk artifacts")
    if inst.columnar_fallback:
        print(f"engine     : columnar unavailable (numpy missing); "
              f"{inst.columnar_fallback} workload rows fell back to "
              f"the event engine")
    print(f"alloc memo : {inst.alloc_hit_rate:.1%} hit rate "
          f"({inst.alloc_hits:,} hits)")
    if cache is not None:
        print(f"artifacts  : {inst.artifact_hit_rate:.1%} hit rate "
              f"({inst.artifact_hits} hits, {inst.artifact_stores} "
              f"stores) @ {cache.root}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(matrix.results_json())
        print(f"\nwrote {args.json}")
    if args.instrumentation:
        with open(args.instrumentation, "w") as handle:
            handle.write(matrix.instrumentation_json())
        print(f"wrote {args.instrumentation}")
    if telemetry is not None:
        telemetry.write_jsonl(args.telemetry)
        print(f"wrote {args.telemetry} ({telemetry.events.emitted} "
              f"events, {telemetry.events.dropped} dropped)")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from repro.dse import default_space, explore, load_space
    from repro.system.artifacts import ArtifactCache, default_cache_dir

    try:
        space = (load_space(args.space) if args.space
                 else default_space())
        if args.area_budget is not None:
            space = _dc.replace(space,
                                area_budget_gates=args.area_budget)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    corpus_names = _activate_corpus(getattr(args, "corpus", None))
    names = _subset_names(args, corpus_names)
    cache = None
    if not args.no_cache:
        root = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ArtifactCache(root)
    client = None
    if args.url:
        from repro.serve.client import ServeError, connect

        try:
            client = connect(args.url, timeout=600.0)
        except (ServeError, OSError) as exc:
            raise SystemExit(f"cannot reach service at {args.url}: "
                             f"{exc}")
    telemetry = Telemetry() if args.telemetry else None
    objectives = tuple(o.strip() for o in args.objectives.split(",")
                       if o.strip())
    try:
        result = explore(space=space, strategy=args.strategy,
                         objectives=objectives, workloads=names,
                         budget=args.budget, seed=args.seed,
                         jobs=args.jobs, fast=args.fast, cache=cache,
                         client=client, telemetry=telemetry)
    except ValueError as exc:
        raise SystemExit(str(exc))

    print(f"{result.strategy} search: {result.evaluations} evaluations "
          f"({result.cells} cells), seed {result.seed}, "
          f"budget {result.budget if result.budget is not None else '-'}")
    print(f"frontier   : {len(result.points)} points "
          f"({result.dominated} dominated), "
          f"hypervolume {result.hypervolume:.4g}\n")
    print(f"{'system':34s} {'gates':>11s} {'speedup':>8s} "
          f"{'energy':>7s}")
    for point in result.points:
        print(f"{point.system:34s} {point.gates:>11,d} "
              f"{point.geomean_speedup:>7.2f}x "
              f"{point.geomean_energy_ratio:>6.2f}x")
    if args.frontier:
        with open(args.frontier, "w") as handle:
            handle.write(result.to_json() + "\n")
        print(f"\nwrote {args.frontier}")
    if telemetry is not None:
        telemetry.write_jsonl(args.telemetry)
        print(f"wrote {args.telemetry} ({telemetry.events.emitted} "
              f"events, {telemetry.events.dropped} dropped)")
    return 0


def _mpsoc_catalog(args: argparse.Namespace):
    """The accelerator catalog from the shared system options.

    Each selected :class:`SystemSpec` becomes one catalog entry; the
    entry is named by its array alone when that is unambiguous,
    otherwise by the full canonical system name.
    """
    specs = _build_specs(args)
    arrays = [spec.array for spec in specs]
    return tuple(
        (spec.array if arrays.count(spec.array) == 1 else spec.name,
         spec)
        for spec in specs)


def _cmd_mpsoc(args: argparse.Namespace) -> int:
    import json

    from repro.mpsoc import (InfeasibleBudgetError, explore_mix,
                             mpsoc_spec)
    from repro.system.artifacts import ArtifactCache, default_cache_dir

    _activate_corpus(getattr(args, "corpus", None))
    spec_kwargs = {"catalog": _mpsoc_catalog(args),
                   "max_arrays": args.max_arrays,
                   "serial_fraction": args.serial_fraction}
    if args.cores:
        try:
            spec_kwargs["core_counts"] = tuple(
                int(c) for c in args.cores.split(",") if c.strip())
        except ValueError:
            raise SystemExit(f"--cores must be comma-separated "
                             f"integers, got {args.cores!r}")
    cache = None
    if not args.no_cache:
        root = args.cache_dir if args.cache_dir else default_cache_dir()
        cache = ArtifactCache(root)
    client = None
    if args.url:
        from repro.serve.client import ServeError, connect

        try:
            client = connect(args.url, timeout=600.0)
        except (ServeError, OSError) as exc:
            raise SystemExit(f"cannot reach service at {args.url}: "
                             f"{exc}")
    telemetry = Telemetry() if args.telemetry else None
    objectives = tuple(o.strip() for o in args.objectives.split(",")
                       if o.strip())
    try:
        spec = mpsoc_spec(preset=args.preset,
                          area_budget_gates=args.area_budget,
                          mix=args.mix, **spec_kwargs)
    except ValueError as exc:
        raise SystemExit(str(exc))
    try:
        result = explore_mix(spec, strategy=args.strategy,
                             objectives=objectives, budget=args.budget,
                             seed=args.seed, jobs=args.jobs,
                             fast=args.fast, cache=cache,
                             client=client, telemetry=telemetry)
    except InfeasibleBudgetError as exc:
        raise SystemExit(json.dumps(exc.as_dict(), sort_keys=True))
    except ValueError as exc:
        raise SystemExit(str(exc))

    frontier = result.frontier
    stats = result.stats
    label = spec.name or f"{spec.area_budget_gates} gates"
    print(f"scenario   : {label} "
          f"({spec.area_budget_gates:,} gates), mix "
          + ",".join(f"{n}:{w:g}" for n, w in spec.mix))
    print(f"allocations: {stats.feasible_allocations} feasible "
          f"({stats.pruned_allocations} pruned by budget/pairing), "
          f"{stats.allocations_scored} scored via "
          f"{stats.matrix_cells} matrix cells")
    print(f"frontier   : {len(frontier.points)} points "
          f"({frontier.dominated} dominated), "
          f"hypervolume {frontier.hypervolume:.4g}\n")
    print(f"{'allocation':20s} {'gates':>11s} {'speedup':>8s} "
          f"{'energy':>7s}")
    for point in frontier.points:
        print(f"{point.system:20s} {point.gates:>11,d} "
              f"{point.geomean_speedup:>7.2f}x "
              f"{point.geomean_energy_ratio:>6.2f}x")
    tables = result.dispatch_tables()
    best = frontier.points[-1].system if frontier.points else None
    if best is not None and tables.get(best):
        print(f"\ndispatch for {best}:")
        for row in tables[best]:
            print(f"  {row.workload:14s} -> {row.tile:6s} "
                  f"({row.speedup:.2f}x, weight {row.weight:g})")
    if args.frontier:
        with open(args.frontier, "w") as handle:
            handle.write(frontier.to_json() + "\n")
        print(f"\nwrote {args.frontier}")
    if telemetry is not None:
        telemetry.write_jsonl(args.telemetry)
        print(f"wrote {args.telemetry} ({telemetry.events.emitted} "
              f"events, {telemetry.events.dropped} dropped)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import serve_forever
    from repro.system.artifacts import default_cache_dir

    _activate_corpus(args.corpus)
    cache_root = None
    if not args.no_cache:
        cache_root = (args.cache_dir if args.cache_dir
                      else default_cache_dir())
    return serve_forever(host=args.host, port=args.port,
                         workers=args.workers, cache_root=cache_root,
                         capacity=args.capacity,
                         batch_window=args.batch_window,
                         scoped_cache=args.scoped_cache)


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.local import fleet_forever
    from repro.system.artifacts import default_cache_dir

    _activate_corpus(args.corpus)
    cache_root = None
    if not args.no_cache:
        cache_root = str(args.cache_dir if args.cache_dir
                         else default_cache_dir())
    return fleet_forever(host=args.host, port=args.port,
                         workers=args.workers,
                         worker_urls=args.worker_url,
                         cache_root=cache_root,
                         capacity=args.capacity,
                         worker_jobs=args.worker_jobs,
                         max_inflight=args.max_inflight,
                         heartbeat_interval=args.heartbeat_interval,
                         heartbeat_failures=args.heartbeat_failures)


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.system.artifacts import ArtifactCache, default_cache_dir

    root = args.cache_dir if args.cache_dir else default_cache_dir()
    cache = ArtifactCache(root, max_bytes=args.max_bytes)
    stats = cache.stats()
    if args.action == "stats":
        cap = stats["max_bytes"]
        print(f"root    : {stats['root']}")
        print(f"entries : {stats['entries']:,}")
        print(f"size    : {stats['total_bytes']:,} bytes"
              + (f" (cap {cap:,})" if cap else " (no cap)"))
        if stats["scopes"]:
            print(f"scopes  : {len(stats['scopes'])} "
                  f"({', '.join(stats['scopes'][:8])}"
                  f"{', ...' if len(stats['scopes']) > 8 else ''})")
        if stats["entries"]:
            print(f"ages    : newest {stats['newest_age_seconds']:.0f}s, "
                  f"oldest {stats['oldest_age_seconds']:.0f}s")
        return 0
    try:
        report = cache.prune(max_bytes=args.max_bytes,
                             grace_seconds=args.grace)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"evicted {report['evicted']} entries "
          f"({report['evicted_bytes']:,} bytes); "
          f"{report['remaining_bytes']:,} bytes remain")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    _activate_corpus(args.corpus)
    url = args.url
    if args.fleet:
        from repro.fleet.client import FleetClient

        if url is None:
            url = "http://127.0.0.1:8360"
        client: ServeClient = FleetClient(url)
    else:
        client = ServeClient(url or "http://127.0.0.1:8350")
    configs = [spec.to_dict() for spec in _build_specs(args)]
    names = _parse_workload_subset(args.only)
    kwargs = dict(fast=args.fast, priority=args.priority,
                  timeout=args.timeout)
    try:
        if args.kind == "run":
            if not args.target:
                raise SystemExit("submit run needs a target")
            if len(configs) != 1:
                raise SystemExit("submit run takes exactly one system")
            job = client.submit("run", target=args.target,
                                configs=configs, **kwargs)
        elif args.kind == "evaluate":
            if len(configs) != 1:
                raise SystemExit("submit evaluate takes exactly one "
                                 "system; use 'submit sweep' for a "
                                 "matrix")
            job = client.submit("evaluate", configs=configs,
                                names=names, **kwargs)
        else:
            job = client.submit("sweep", configs=configs, names=names,
                                **kwargs)
        print(f"submitted {job['job_id']} "
              f"(state={job['state']}, "
              f"fingerprint={job['fingerprint']})")
        if args.no_wait:
            return 0
        payload = client.wait(job["job_id"])
    except ServeError as exc:
        raise SystemExit(f"service error [{exc.code}]: {exc}")
    result = payload["result"]
    if result["kind"] == "run":
        print(f"{result['target']} on {result['system']}: "
              f"{result['speedup']:.2f}x speedup, "
              f"{result['energy_ratio']:.2f}x less energy")
    elif result["kind"] == "evaluate":
        print(f"{result['system']}: geomean speedup "
              f"{result['geomean_speedup']:.3f}x")
    else:
        print(f"sweep over {len(result['systems'])} systems done")
    body = result.get("suite_json") or result.get("matrix_json")
    if args.json and body:
        with open(args.json, "w") as handle:
            handle.write(body)
        print(f"wrote {args.json}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    try:
        jobs = client.jobs()
        health = client.healthz()
    except ServeError as exc:
        raise SystemExit(f"service error [{exc.code}]: {exc}")
    print(f"{'job':10s} {'kind':9s} {'state':10s} {'prio':>4s} "
          f"{'att':>3s} {'batch':>5s} error")
    for job in jobs:
        error = (job.get("error") or {}).get("code", "")
        print(f"{job['job_id']:10s} {job['kind']:9s} "
              f"{job['state']:10s} {job['priority']:>4d} "
              f"{job['attempts']:>3d} {job['batch_width']:>5d} "
              f"{error}")
    print(f"\nqueue depth {health['queue_depth']}, "
          f"{health['active_jobs']} active, "
          f"workers={health['workers']}, paused={health['paused']}")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.asm.disassembler import disassemble_program

    program = _load_target(args.target)
    for line in disassemble_program(program):
        print(line)
    return 0


def _cmd_corpus_generate(args: argparse.Namespace) -> int:
    from repro.corpus import CorpusKnobs, GenerationError, generate_corpus

    try:
        knobs = CorpusKnobs.named(args.profile)
    except ValueError as exc:
        raise SystemExit(str(exc))
    telemetry = Telemetry() if args.telemetry else None
    try:
        corpus = generate_corpus(args.seed, args.count, knobs=knobs,
                                 telemetry=telemetry)
    except GenerationError as exc:
        raise SystemExit(f"generation failed: {exc}")
    out = args.out or f"corpus_{args.seed}.json"
    corpus.write(out, telemetry=telemetry)
    # with --names the kernel names go to stdout (pipeable into
    # --only), so the summary moves to stderr.
    stream = sys.stderr if args.names else sys.stdout
    categories = {}
    instructions = 0
    for kernel in corpus.kernels:
        categories[kernel.category] = categories.get(kernel.category,
                                                     0) + 1
        instructions += kernel.instructions
    shape = ", ".join(f"{count} {name}" for name, count
                      in sorted(categories.items()))
    print(f"wrote {out}: {corpus.count} kernels (seed {args.seed}, "
          f"profile {knobs.profile})", file=stream)
    print(f"mix        : {shape}", file=stream)
    print(f"dynamic    : {instructions:,} self-checked instructions",
          file=stream)
    if args.names:
        for name in corpus.names():
            print(name)
    if args.telemetry and telemetry is not None:
        telemetry.write_jsonl(args.telemetry)
        print(f"wrote {args.telemetry}", file=stream)
    return 0


def _cmd_corpus_list(args: argparse.Namespace) -> int:
    from repro.corpus import ManifestError, load_manifest

    try:
        manifest = load_manifest(args.manifest)
    except (OSError, ManifestError) as exc:
        raise SystemExit(str(exc))
    print(f"corpus seed {manifest['seed']}, "
          f"profile {manifest.get('profile', 'mixed')}, "
          f"{manifest['count']} kernels")
    print(f"{'name':12s} {'class':9s} {'blk':>3s} {'ilp':>3s} "
          f"{'dia':>3s} {'nest':>4s} {'mem':>5s} {'instrs':>8s} "
          f"checksum")
    for entry in manifest["kernels"]:
        knobs = entry["knobs"]
        trips = "x".join(str(t) for t in knobs["trips"])
        print(f"{entry['name']:12s} {entry['category']:9s} "
              f"{knobs['block_size']:>3d} {knobs['ilp']:>3d} "
              f"{knobs['diamonds']:>3d} {trips:>4s} "
              f"{knobs['mem_intensity']:>5.2f} "
              f"{entry['instructions']:>8,d} {entry['checksum']}")
    return 0


def _cmd_corpus_inspect(args: argparse.Namespace) -> int:
    import json as _json

    from repro.corpus import ManifestError, load_manifest, \
        rebuild_kernel_source

    try:
        manifest = load_manifest(args.manifest)
    except (OSError, ManifestError) as exc:
        raise SystemExit(str(exc))
    entry = next((k for k in manifest["kernels"]
                  if k["name"] == args.kernel), None)
    if entry is None:
        known = ", ".join(k["name"] for k in manifest["kernels"][:10])
        raise SystemExit(f"kernel {args.kernel!r} not in manifest "
                         f"(first kernels: {known}, ...)")
    try:
        source = rebuild_kernel_source(int(manifest["seed"]), entry)
    except ManifestError as exc:
        raise SystemExit(str(exc))
    print(_json.dumps(entry, indent=2, sort_keys=True))
    if args.source:
        print("\n" + source, end="")
    return 0


def _cmd_traffic(args: argparse.Namespace) -> int:
    from repro.traffic import TrafficSpec, build_schedule, popularity, \
        replay_traffic

    corpus_names = _activate_corpus(args.corpus)
    names = _parse_workload_subset(args.only) or corpus_names \
        or workload_names()
    specs = _build_specs(args)
    if len(specs) != 1:
        raise SystemExit("traffic drives exactly one system "
                         "configuration")
    try:
        priorities = tuple(int(p) for p in args.priorities.split(",")
                           if p.strip())
    except ValueError:
        raise SystemExit(f"--priorities must be comma-separated "
                         f"integers, got {args.priorities!r}")
    try:
        spec = TrafficSpec(
            seed=args.seed, requests=args.requests,
            duration=args.duration, rate=args.rate,
            arrival=args.arrival, burst=args.burst, zipf_s=args.zipf,
            hot_rotate=args.hot_rotate, priorities=priorities or (0,),
            deadline_fraction=args.deadline_fraction,
            deadline=args.deadline, fast=not args.no_fast)
        if args.dry_run:
            schedule = build_schedule(spec, names)
            print(f"{'#':>5s} {'at(s)':>8s} {'epoch':>5s} {'prio':>4s} "
                  f"{'deadline':>8s} name")
            for request in schedule:
                deadline = (f"{request.deadline:.1f}"
                            if request.deadline is not None else "-")
                print(f"{request.index:>5d} {request.at:>8.3f} "
                      f"{request.epoch:>5d} {request.priority:>4d} "
                      f"{deadline:>8s} {request.name}")
            print("\npopularity (requests per workload):")
            for name, count in popularity(schedule).items():
                print(f"  {name:14s} {count}")
            return 0
    except ValueError as exc:
        raise SystemExit(str(exc))

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url)
    telemetry = Telemetry()
    try:
        report = replay_traffic(client, spec, names,
                                config=specs[0].to_dict(),
                                telemetry=telemetry, poll=args.poll,
                                drain_timeout=args.drain_timeout)
    except (ServeError, OSError) as exc:
        raise SystemExit(f"cannot replay against {args.url}: {exc}")
    summary = report.summary()
    print(f"planned    : {summary['planned']} requests over "
          f"{summary['unique_workloads']} workloads "
          f"(zipf s={spec.zipf_s}, {spec.arrival} arrivals at "
          f"{spec.rate}/s)")
    print(f"outcome    : {summary['completed']} completed, "
          f"{summary['failed']} failed, {summary['shed']} shed, "
          f"{summary['timed_out']} timed out in "
          f"{summary['run_seconds']:.2f}s "
          f"({summary['throughput_rps']:.1f} done/s)")
    print(f"latency    : p50 {summary['latency_p50_ms']:.1f}ms, "
          f"p90 {summary['latency_p90_ms']:.1f}ms, "
          f"p99 {summary['latency_p99_ms']:.1f}ms "
          f"(max outstanding {summary['max_outstanding']})")
    print(f"coalescing : {summary['batched_jobs']} jobs in "
          f"{summary['batches']} batches "
          f"(hit rate {summary['coalescing_rate']:.0%}), "
          f"shed rate {summary['shed_rate']:.0%}")
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(report.to_json() + "\n")
        print(f"\nwrote {args.json}")
    if args.telemetry:
        telemetry.write_jsonl(args.telemetry)
        print(f"wrote {args.telemetry}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transparent reconfigurable acceleration (DIM) "
                    "toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run a target plain and accelerated",
        parents=[_shared_options("C3", "64", "off", fast=True),
                 _corpus_options()])
    run_p.add_argument("target")
    run_p.set_defaults(func=_cmd_run)

    sub.add_parser("workloads",
                   help="list the benchmark suite").set_defaults(
        func=_cmd_workloads)

    inspect_p = sub.add_parser(
        "inspect", help="render the hottest block's configuration",
        parents=[_shared_options("C1", "64", "off")])
    inspect_p.add_argument("target")
    inspect_p.set_defaults(func=_cmd_inspect)

    char_p = sub.add_parser("characterize",
                            help="Figure 3-style block profile")
    char_p.add_argument("target")
    char_p.set_defaults(func=_cmd_characterize)

    report_p = sub.add_parser(
        "report", help="full acceleration report for a target",
        parents=[_shared_options("C2", "64", "off")])
    report_p.add_argument("target")
    report_p.add_argument("--metrics", action="store_true",
                          help="append unified telemetry counters as "
                               "JSON")
    report_p.set_defaults(func=_cmd_report)

    suite_p = sub.add_parser(
        "suite", help="evaluate the whole Table 2 suite",
        parents=[_shared_options("C2", "64", "off", fast=True,
                                 jobs=True, only=True),
                 _corpus_options()])
    suite_p.add_argument("--json", default=None,
                         help="also write results as JSON")
    suite_p.add_argument("--corpus-only", action="store_true",
                         help="evaluate only the --corpus kernels "
                              "(skip the 18 built-ins)")
    suite_p.set_defaults(func=_cmd_suite)

    sweep_p = sub.add_parser(
        "sweep",
        help="evaluate a workloads x configurations matrix with the "
             "sweep engine",
        parents=[_shared_options(None, "16,64,256", "both", fast=True,
                                 jobs=True, only=True),
                 _corpus_options()])
    sweep_p.add_argument("--corpus-only", action="store_true",
                         help="sweep only the --corpus kernels (skip "
                              "the 18 built-ins)")
    sweep_p.add_argument("--ideal", action="store_true",
                         help="also include the two Ideal columns")
    sweep_p.add_argument("--json", default=None,
                         help="write the deterministic matrix report")
    sweep_p.add_argument("--instrumentation", default=None,
                         help="write phase timings and cache counters")
    sweep_p.add_argument("--telemetry", default=None,
                         help="write the unified telemetry event "
                              "stream as JSONL")
    sweep_p.add_argument("--cache-dir", default=None,
                         help="artifact-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="disable the persistent artifact cache")
    sweep_p.add_argument("--engine", default="auto",
                         choices=("auto", "event", "columnar"),
                         help="replay engine: the vectorised columnar "
                              "evaluator or the event-driven loop "
                              "(auto picks columnar when numpy is "
                              "available; results are identical)")
    sweep_p.set_defaults(func=_cmd_sweep)

    explore_p = sub.add_parser(
        "explore",
        help="multi-objective design-space exploration (Pareto "
             "frontier over speedup/area/energy)",
        parents=[_corpus_options()])
    explore_p.add_argument("--corpus-only", action="store_true",
                           help="explore over only the --corpus "
                                "kernels")
    explore_p.add_argument("--space", default=None,
                           help="declarative parameter-space JSON "
                                "(default: the built-in grid around "
                                "Table 1)")
    explore_p.add_argument("--strategy", default="grid",
                           help="search strategy: grid, random, "
                                "shalving, or hillclimb")
    explore_p.add_argument("--budget", type=int, default=None,
                           help="max candidate-evaluations at any "
                                "fidelity (default: exhaust the space)")
    explore_p.add_argument("--objectives", default="speedup,area",
                           help="comma-separated objectives "
                                "(speedup, area, energy); the first "
                                "is primary")
    explore_p.add_argument("--seed", type=int, default=0,
                           help="RNG seed: same seed + space + budget "
                                "=> byte-identical frontier")
    explore_p.add_argument("--frontier", default=None,
                           help="write the deterministic frontier "
                                "JSON report")
    explore_p.add_argument("--area-budget", type=int, default=None,
                           help="prune candidates above this many "
                                "total gates before evaluating")
    explore_p.add_argument("--only", default=None,
                           help="comma-separated workload subset")
    explore_p.add_argument("--jobs", type=int, default=1,
                           help="fan inline evaluation across N "
                                "processes (results byte-identical)")
    explore_p.add_argument("--fast", action="store_true",
                           help="trace workloads through the "
                                "block-compiled simulator")
    explore_p.add_argument("--url", default=None,
                           help="dispatch evaluation batches to a "
                                "running repro serve instance")
    explore_p.add_argument("--telemetry", default=None,
                           help="write the dse.* telemetry event "
                                "stream as JSONL")
    explore_p.add_argument("--cache-dir", default=None,
                           help="artifact-cache directory (default: "
                                "$REPRO_CACHE_DIR or ~/.cache/repro)")
    explore_p.add_argument("--no-cache", action="store_true",
                           help="disable the persistent artifact "
                                "cache")
    explore_p.set_defaults(func=_cmd_explore)

    mpsoc_p = sub.add_parser(
        "mpsoc",
        help="explore MPSoC core/array allocations for a traffic mix",
        parents=[_shared_options("C1,C2,C3", "64", "on", fast=True,
                                 jobs=True),
                 _corpus_options()])
    mpsoc_p.add_argument("--preset", default=None,
                         choices=("sys-s", "sys-m", "sys-l"),
                         help="area-budget preset derived from the "
                              "Table 3a unit costs")
    mpsoc_p.add_argument("--area-budget", type=int, default=None,
                         help="explicit area budget in gates "
                              "(instead of --preset)")
    mpsoc_p.add_argument("--mix", default=None,
                         help="weighted traffic mix as name:weight,"
                              "... (default: the whole suite, equal "
                              "weights)")
    mpsoc_p.add_argument("--cores", default=None,
                         help="comma-separated candidate core counts "
                              "(default 1,2,4)")
    mpsoc_p.add_argument("--max-arrays", type=int, default=2,
                         help="array slots per allocation")
    mpsoc_p.add_argument("--serial-fraction", type=float, default=0.1,
                         help="Amdahl serial fraction of each "
                              "workload's phase model")
    mpsoc_p.add_argument("--strategy", default="grid",
                         help="search strategy: grid, random, "
                              "shalving, or hillclimb")
    mpsoc_p.add_argument("--budget", type=int, default=None,
                         help="max allocation evaluations (default: "
                              "exhaust the feasible space)")
    mpsoc_p.add_argument("--objectives", default="speedup,area",
                         help="comma-separated objectives (speedup, "
                              "area, energy)")
    mpsoc_p.add_argument("--seed", type=int, default=0,
                         help="RNG seed: same seed + scenario => "
                              "byte-identical frontier")
    mpsoc_p.add_argument("--frontier", default=None,
                         help="write the deterministic frontier JSON "
                              "report")
    mpsoc_p.add_argument("--url", default=None,
                         help="dispatch the catalog matrix to a "
                              "running repro serve / fleet "
                              "coordinator")
    mpsoc_p.add_argument("--telemetry", default=None,
                         help="write the mpsoc.*/dse.* telemetry "
                              "event stream as JSONL")
    mpsoc_p.add_argument("--cache-dir", default=None,
                         help="artifact-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    mpsoc_p.add_argument("--no-cache", action="store_true",
                         help="disable the persistent artifact cache")
    mpsoc_p.set_defaults(func=_cmd_mpsoc)

    serve_p = sub.add_parser(
        "serve", help="run the persistent evaluation service",
        parents=[_corpus_options()])
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8350)
    serve_p.add_argument("--workers", type=int, default=0,
                         help="warm process-pool workers (0 = run "
                              "batches in-process)")
    serve_p.add_argument("--capacity", type=int, default=256,
                         help="bounded queue size (submissions beyond "
                              "it are rejected)")
    serve_p.add_argument("--batch-window", type=float, default=0.02,
                         help="seconds to wait for coalescable jobs "
                              "after the first claim")
    serve_p.add_argument("--cache-dir", default=None,
                         help="artifact-cache directory pinned into "
                              "every worker (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="disable the persistent artifact cache")
    serve_p.add_argument("--scoped-cache", action="store_true",
                         help="store artifacts under per-fingerprint "
                              "subdirectories (fleet workers sharing "
                              "one cache dir)")
    serve_p.set_defaults(func=_cmd_serve)

    fleet_p = sub.add_parser(
        "fleet",
        help="run the distributed evaluation fleet coordinator",
        parents=[_corpus_options()])
    fleet_p.add_argument("--host", default="127.0.0.1")
    fleet_p.add_argument("--port", type=int, default=8360)
    fleet_p.add_argument("--workers", type=int, default=2,
                         help="local worker processes to spawn (0 = "
                              "only --worker-url servers)")
    fleet_p.add_argument("--worker-url", action="append", default=None,
                         help="register an already-running repro serve "
                              "(repeatable)")
    fleet_p.add_argument("--max-inflight", type=int, default=1024,
                         help="fleet-wide unfinished-job cap; beyond "
                              "it submissions are shed with "
                              "fleet_saturated")
    fleet_p.add_argument("--capacity", type=int, default=1024,
                         help="per-worker bounded queue size")
    fleet_p.add_argument("--worker-jobs", type=int, default=0,
                         help="warm process-pool workers inside each "
                              "spawned worker")
    fleet_p.add_argument("--heartbeat-interval", type=float,
                         default=0.25,
                         help="seconds between worker health polls")
    fleet_p.add_argument("--heartbeat-failures", type=int, default=3,
                         help="consecutive failed polls before a "
                              "worker is declared dead")
    fleet_p.add_argument("--cache-dir", default=None,
                         help="shared artifact store for all spawned "
                              "workers (default: $REPRO_CACHE_DIR or "
                              "~/.cache/repro)")
    fleet_p.add_argument("--no-cache", action="store_true",
                         help="disable the shared artifact store")
    fleet_p.set_defaults(func=_cmd_fleet)

    cache_p = sub.add_parser(
        "cache", help="inspect or prune the shared artifact store")
    cache_p.add_argument("action", choices=("stats", "prune"))
    cache_p.add_argument("--cache-dir", default=None,
                         help="artifact-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_p.add_argument("--max-bytes", type=int, default=None,
                         help="size cap for prune (default: "
                              "$REPRO_CACHE_MAX_BYTES)")
    cache_p.add_argument("--grace", type=float, default=60.0,
                         help="never evict entries read within this "
                              "many seconds")
    cache_p.set_defaults(func=_cmd_cache)

    submit_p = sub.add_parser(
        "submit", help="submit a job to a running service",
        parents=[_shared_options("C2", "64", "off", fast=True,
                                 only=True),
                 _corpus_options()])
    submit_p.add_argument("kind", choices=("run", "evaluate", "sweep"))
    submit_p.add_argument("target", nargs="?", default=None,
                          help="run jobs: workload name or source path")
    submit_p.add_argument("--url", default=None,
                          help="service URL (default: "
                               "http://127.0.0.1:8350, or :8360 with "
                               "--fleet)")
    submit_p.add_argument("--fleet", action="store_true",
                          help="target a fleet coordinator through the "
                               "streaming fleet client")
    submit_p.add_argument("--priority", type=int, default=0,
                          help="higher runs first (FIFO within a "
                               "priority)")
    submit_p.add_argument("--timeout", type=float, default=None,
                          help="per-job deadline in seconds")
    submit_p.add_argument("--no-wait", action="store_true",
                          help="print the job id and return instead of "
                               "polling for the result")
    submit_p.add_argument("--json", default=None,
                          help="write the result body (suite/matrix "
                               "JSON) to a file")
    submit_p.set_defaults(func=_cmd_submit)

    jobs_p = sub.add_parser(
        "jobs", help="list the jobs of a running service")
    jobs_p.add_argument("--url", default="http://127.0.0.1:8350")
    jobs_p.set_defaults(func=_cmd_jobs)

    corpus_p = sub.add_parser(
        "corpus",
        help="generate or inspect seeded synthetic workload corpora")
    corpus_sub = corpus_p.add_subparsers(dest="action", required=True)

    gen_p = corpus_sub.add_parser(
        "generate",
        help="generate a seeded, self-checking kernel corpus")
    gen_p.add_argument("--seed", type=int, default=0,
                       help="corpus seed: same seed + knobs => "
                            "byte-identical manifest")
    gen_p.add_argument("--count", type=int, default=100,
                       help="number of kernels to generate")
    gen_p.add_argument("--profile", default="mixed",
                       help="knob profile: mixed, dataflow, control, "
                            "memory, loopy, or divergent")
    gen_p.add_argument("--out", default=None,
                       help="manifest path (default corpus_<seed>.json)")
    gen_p.add_argument("--names", action="store_true",
                       help="print kernel names to stdout, one per "
                            "line (summary goes to stderr) for piping "
                            "into --only")
    gen_p.add_argument("--telemetry", default=None,
                       help="write the corpus.* telemetry event "
                            "stream as JSONL")
    gen_p.set_defaults(func=_cmd_corpus_generate)

    list_p = corpus_sub.add_parser(
        "list", help="tabulate a corpus manifest's kernels")
    list_p.add_argument("manifest")
    list_p.set_defaults(func=_cmd_corpus_list)

    cinspect_p = corpus_sub.add_parser(
        "inspect",
        help="show one kernel's knobs, fingerprints and source")
    cinspect_p.add_argument("manifest")
    cinspect_p.add_argument("kernel")
    cinspect_p.add_argument("--source", action="store_true",
                            help="also print the regenerated assembly")
    cinspect_p.set_defaults(func=_cmd_corpus_inspect)

    traffic_p = sub.add_parser(
        "traffic",
        help="replay a seeded traffic mix against a running "
             "service/fleet",
        parents=[_shared_options("C2", "64", "on", only=True),
                 _corpus_options()])
    traffic_p.add_argument("--url", default="http://127.0.0.1:8350",
                           help="serve or fleet-coordinator URL")
    traffic_p.add_argument("--seed", type=int, default=0,
                           help="schedule seed: same seed + spec => "
                                "identical request sequence")
    traffic_p.add_argument("--requests", type=int, default=200,
                           help="requests to schedule (ignored with "
                                "--duration)")
    traffic_p.add_argument("--duration", type=float, default=None,
                           help="schedule this many seconds of "
                                "arrivals instead of a fixed count")
    traffic_p.add_argument("--rate", type=float, default=50.0,
                           help="mean arrival rate, requests/second")
    traffic_p.add_argument("--arrival", default="poisson",
                           choices=("poisson", "burst", "uniform"),
                           help="open-loop arrival process")
    traffic_p.add_argument("--burst", type=int, default=8,
                           help="requests per burst (--arrival burst)")
    traffic_p.add_argument("--zipf", type=float, default=1.1,
                           help="Zipf popularity skew (0 = uniform)")
    traffic_p.add_argument("--hot-rotate", type=float, default=0.0,
                           help="seconds between hot-set rotations "
                                "(0 = stable popularity)")
    traffic_p.add_argument("--priorities", default="0",
                           help="comma-separated priority mix, drawn "
                                "uniformly per request")
    traffic_p.add_argument("--deadline-fraction", type=float,
                           default=0.0,
                           help="fraction of requests carrying a "
                                "server-side deadline")
    traffic_p.add_argument("--deadline", type=float, default=5.0,
                           help="the deadline (seconds) for that "
                                "fraction")
    traffic_p.add_argument("--no-fast", action="store_true",
                           help="submit jobs without the "
                                "block-compiled fast path")
    traffic_p.add_argument("--poll", type=float, default=0.05,
                           help="seconds between completion polls")
    traffic_p.add_argument("--drain-timeout", type=float, default=300.0,
                           help="abort the replay after this many "
                                "seconds")
    traffic_p.add_argument("--dry-run", action="store_true",
                           help="print the deterministic schedule "
                                "without contacting a server")
    traffic_p.add_argument("--json", default=None,
                           help="write the full replay report as JSON")
    traffic_p.add_argument("--telemetry", default=None,
                           help="write the traffic.* telemetry event "
                                "stream as JSONL")
    traffic_p.set_defaults(func=_cmd_traffic)

    disasm_p = sub.add_parser("disasm", help="disassemble a target")
    disasm_p.add_argument("target")
    disasm_p.set_defaults(func=_cmd_disasm)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
