"""`repro.corpus` — the seeded synthetic workload corpus.

Turns workload coverage into a dial: ``generate_corpus(seed, count)``
emits hundreds of parameterised, self-checking assembly kernels with
controlled basic-block size, ILP width, branch bias/predictability,
loop structure and memory intensity, fingerprints them into a versioned
manifest, and registers them through the :mod:`repro.workloads`
registry so every consumer — ``suite``, ``sweep``, ``dse``, ``serve``,
``fleet``, ``mpsoc`` — sees them as ordinary workloads.

CLI: ``repro corpus generate|list|inspect``.  Worker processes inherit
registered corpora through the ``REPRO_CORPUS`` environment variable
(see :mod:`repro.workloads`).
"""

from repro.corpus.generator import GeneratedKernel, GenerationError, \
    encoding_fingerprint, generate_kernel, generate_source, kernel_name
from repro.corpus.knobs import PROFILES, CorpusKnobs, KernelKnobs, \
    draw_kernel_knobs, kernel_seed
from repro.corpus.manifest import Corpus, CorpusStats, ManifestError, \
    draw_manifest_knobs, generate_corpus, load_manifest, \
    rebuild_kernel_source, register_corpus

__all__ = [
    "Corpus",
    "CorpusKnobs",
    "CorpusStats",
    "GeneratedKernel",
    "GenerationError",
    "KernelKnobs",
    "ManifestError",
    "PROFILES",
    "draw_kernel_knobs",
    "draw_manifest_knobs",
    "encoding_fingerprint",
    "generate_corpus",
    "generate_kernel",
    "generate_source",
    "kernel_name",
    "kernel_seed",
    "load_manifest",
    "rebuild_kernel_source",
    "register_corpus",
]
