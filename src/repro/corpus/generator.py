"""The seeded kernel generator: knobs in, self-checking assembly out.

Each kernel is a loop nest (depth 1–3, fixed trip counts) around a body
of straight-line segments and if/else diamonds, emitted directly as
assembly for the table-driven assembler.  The dials of
:class:`~repro.corpus.knobs.KernelKnobs` control exactly the properties
the paper's DIM analysis cares about: basic-block size, exploitable ILP
width (independent accumulator chains), branch bias and predictability
(counter-keyed vs entropy-keyed predicates), loop depth/trip counts, and
memory intensity/stride.

Register plan (fixed; ``$at`` is reserved for pseudo-op expansion):

=========  ===========================================================
``$s0-2``  loop counters, outermost first
``$s5``    xorshift32 entropy state — the data-dependent value stream
``$s6``    strided memory cursor (word index)
``$s7``    base address of the data pool
``$t0-3``  ILP accumulator chains (``knobs.ilp`` of them live)
``$t8/9``  scratch: computed addresses / loaded values
``$a1``    diamond predicates
=========  ===========================================================

Every kernel is *self-checking*: it folds the chains, the entropy state
and the whole data pool into one 32-bit checksum, prints it (syscall
34), compares it against the expected value embedded in the kernel, and
exits 0 on match / 1 on mismatch.  Generation runs each kernel twice
through the interpreter: once with a placeholder to *learn* the
checksum (the checksum is computed and printed before the comparison,
so the placeholder cannot perturb it), then again with the real value
embedded to prove the self-check passes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from repro.corpus.knobs import CorpusKnobs, KernelKnobs, draw_kernel_knobs, \
    kernel_seed

#: replaced by the expected checksum between the learn and verify passes.
_EXPECTED_SLOT = "__EXPECTED__"

#: dynamic-instruction ceiling for generation-time runs; a kernel that
#: trips this is a generator bug, not a slow kernel.
_RUN_CEILING = 400_000

#: chain registers in issue order.
_CHAINS = ("$t0", "$t1", "$t2", "$t3")
_COUNTERS = ("$s0", "$s1", "$s2")

#: commutative-ish ALU mixing ops for chain updates (op, needs_rt).
_ALU_OPS = ("addu", "subu", "xor", "or", "and")


@dataclass(frozen=True)
class GeneratedKernel:
    """One finished kernel plus its identity and provenance."""

    name: str
    index: int
    seed: int
    source: str
    checksum: int
    knobs: KernelKnobs
    category: str
    #: sha256 of the final (expected-embedded) assembly source.
    source_sha256: str
    #: sha256 over the assembled image: entry, text bytes, data bytes.
    encoding_sha256: str
    #: sha256 of the program's architectural output (the printed hex).
    result_hash: str
    instructions: int
    blocks: int

    def manifest_entry(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "index": self.index,
            "category": self.category,
            "knobs": self.knobs.to_dict(),
            "checksum": f"0x{self.checksum:08x}",
            "source_sha256": self.source_sha256,
            "encoding_sha256": self.encoding_sha256,
            "result_hash": self.result_hash,
            "instructions": self.instructions,
            "blocks": self.blocks,
        }


class GenerationError(RuntimeError):
    """A generated kernel failed its generation-time self-check."""


def kernel_name(seed: int, index: int) -> str:
    return f"c{seed}k{index:03d}"


class _Emitter:
    """Accumulates assembly lines for one kernel."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self._label = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def label(self, name: str) -> None:
        self.lines.append(name + ":")

    def fresh(self, stem: str) -> str:
        self._label += 1
        return f"{stem}_{self._label}"

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def generate_source(seed: int, index: int, knobs: KernelKnobs,
                    expected: Optional[int] = None) -> str:
    """Emit the kernel's assembly, deterministically.

    With ``expected=None`` the self-check slot holds a placeholder (the
    learn pass); with a value it holds that checksum.  Both calls make
    identical RNG draws, so the two sources differ only in the embedded
    constant — this is what makes manifests regenerable from
    ``(seed, index, knobs, checksum)`` alone.
    """
    rng = Random(kernel_seed(seed, index) ^ 0x5DEECE66D)
    out = _Emitter()
    chains = _CHAINS[:knobs.ilp]

    pool_init = [rng.getrandbits(32) for _ in range(knobs.pool_words)]
    entropy_init = rng.getrandbits(32) or 0x9E3779B9

    out.lines.append(f"# corpus kernel {kernel_name(seed, index)}")
    out.lines.append(".data")
    out.label("pool")
    for i in range(0, knobs.pool_words, 8):
        words = ", ".join(f"0x{w:08x}" for w in pool_init[i:i + 8])
        out.emit(f".word {words}")
    out.lines.append(".text")
    out.label("__start")
    out.emit(f"li $s5, 0x{entropy_init:08x}")
    out.emit("li $s6, 0")
    out.emit("la $s7, pool")
    for i, chain in enumerate(chains):
        out.emit(f"li {chain}, 0x{rng.getrandbits(32):08x}")

    # Loop nest prologue/epilogue bracket the body.
    loop_tops: List[Tuple[str, str, int]] = []
    for depth, trip in enumerate(knobs.trips):
        counter = _COUNTERS[depth]
        top = out.fresh("loop")
        out.emit(f"li {counter}, 0")
        out.label(top)
        loop_tops.append((top, counter, trip))

    _emit_body(out, rng, knobs, chains)

    for top, counter, trip in reversed(loop_tops):
        out.emit(f"addiu {counter}, {counter}, 1")
        out.emit(f"blt {counter}, {trip}, {top}")

    _emit_checksum(out, knobs, chains, expected)
    return out.text()


def _emit_body(out: _Emitter, rng: Random, knobs: KernelKnobs,
               chains: Tuple[str, ...]) -> None:
    inner_counter = _COUNTERS[len(knobs.trips) - 1]
    inner_trip = knobs.trips[-1]
    for seg in range(knobs.segments):
        _emit_entropy_step(out)
        _emit_segment(out, rng, knobs, chains)
        if seg < knobs.diamonds:
            _emit_diamond(out, rng, knobs, chains, inner_counter,
                          inner_trip)
    # Any diamonds beyond the segment count trail the last segment.
    for _ in range(knobs.segments, knobs.diamonds):
        _emit_diamond(out, rng, knobs, chains, inner_counter, inner_trip)


def _emit_entropy_step(out: _Emitter) -> None:
    """One xorshift32 step on ``$s5`` — the data-dependent value stream."""
    out.emit("sll $t8, $s5, 13")
    out.emit("xor $s5, $s5, $t8")
    out.emit("srl $t8, $s5, 17")
    out.emit("xor $s5, $s5, $t8")
    out.emit("sll $t8, $s5, 5")
    out.emit("xor $s5, $s5, $t8")


def _emit_segment(out: _Emitter, rng: Random, knobs: KernelKnobs,
                  chains: Tuple[str, ...]) -> None:
    """One straight-line block of ``block_size`` ops.

    ALU ops round-robin across the accumulator chains so a width-N
    kernel really carries N independent dependence chains for the array
    to exploit; a ``mem_intensity`` fraction of slots become pool
    loads/stores (alternating strided-cursor and chain-indexed
    addressing, biased by the stride knob); a ``mult_weight`` fraction
    become multiplies.
    """
    mask = knobs.pool_words - 1
    for slot in range(knobs.block_size):
        chain = chains[slot % len(chains)]
        other = chains[(slot + 1) % len(chains)]
        if rng.random() < knobs.mem_intensity:
            if rng.random() < 0.5:
                # Strided walk: cursor advances by the stride knob.
                out.emit(f"addiu $s6, $s6, {knobs.mem_stride}")
                out.emit(f"andi $t8, $s6, {mask}")
            else:
                # Irregular: index comes from live chain data.
                out.emit(f"andi $t8, {chain}, {mask}")
            out.emit("sll $t8, $t8, 2")
            out.emit("addu $t8, $t8, $s7")
            if rng.random() < 0.3:
                out.emit(f"sw {chain}, 0($t8)")
            else:
                out.emit("lw $t9, 0($t8)")
                out.emit(f"addu {chain}, {chain}, $t9")
        elif rng.random() < knobs.mult_weight:
            out.emit(f"mul {chain}, {chain}, {other}")
            out.emit(f"addiu {chain}, {chain}, {rng.randint(1, 255)}")
        else:
            op = _ALU_OPS[rng.randrange(len(_ALU_OPS))]
            if op in ("or", "and"):
                # Pure or/and converges to fixpoints; mix an addiu in.
                out.emit(f"{op} {chain}, {chain}, {other}")
                out.emit(f"addiu {chain}, {chain}, "
                         f"{rng.randint(1, 4095)}")
            else:
                out.emit(f"{op} {chain}, {chain}, {other}")


def _emit_diamond(out: _Emitter, rng: Random, knobs: KernelKnobs,
                  chains: Tuple[str, ...], counter: str,
                  trip: int) -> None:
    """One if/else diamond.

    Predictable diamonds key on the innermost loop counter (taken for
    the first ``bias * trip`` iterations — a pattern any history
    predictor nails); unpredictable ones key on the entropy stream
    (taken with probability ``bias`` but patternless).
    """
    then_label = out.fresh("then")
    end_label = out.fresh("end")
    predictable = rng.random() < knobs.predictability
    if predictable:
        threshold = max(1, min(trip - 1, round(knobs.branch_bias * trip))) \
            if trip > 1 else 1
        out.emit(f"slti $a1, {counter}, {threshold}")
    else:
        threshold = max(1, min(255, round(knobs.branch_bias * 256)))
        out.emit("andi $a1, $s5, 255")
        out.emit(f"slti $a1, $a1, {threshold}")
    chain = chains[rng.randrange(len(chains))]
    other = chains[rng.randrange(len(chains))]
    out.emit(f"bnez $a1, {then_label}")
    out.emit(f"xor {chain}, {chain}, {other}")
    out.emit(f"addiu {chain}, {chain}, {rng.randint(1, 1023)}")
    out.emit(f"j {end_label}")
    out.label(then_label)
    out.emit(f"addu {chain}, {chain}, {other}")
    out.emit(f"sll $t8, {chain}, {rng.randint(1, 7)}")
    out.emit(f"xor {chain}, {chain}, $t8")
    out.label(end_label)


def _emit_checksum(out: _Emitter, knobs: KernelKnobs,
                   chains: Tuple[str, ...],
                   expected: Optional[int]) -> None:
    """Fold all live state into ``$a0``, print it, self-check, exit.

    The fold and the print happen *before* the comparison, so the
    printed checksum is identical whether the embedded expectation is
    the placeholder or the real value — that is what lets the learn
    pass read the truth.
    """
    out.emit(f"move $a0, {chains[0]}")
    for chain in chains[1:]:
        out.emit(f"xor $a0, $a0, {chain}")
        out.emit(f"sll $t8, $a0, 1")
        out.emit("xor $a0, $a0, $t8")
    out.emit("addu $a0, $a0, $s5")
    fold = out.fresh("fold")
    out.emit("li $s0, 0")
    out.emit("move $t8, $s7")
    out.label(fold)
    out.emit("lw $t9, 0($t8)")
    out.emit("xor $a0, $a0, $t9")
    out.emit("addu $a0, $a0, $s0")
    out.emit("addiu $t8, $t8, 4")
    out.emit("addiu $s0, $s0, 1")
    out.emit(f"blt $s0, {knobs.pool_words}, {fold}")
    out.emit("li $v0, 34")
    out.emit("syscall")
    slot = _EXPECTED_SLOT if expected is None else f"0x{expected:08x}"
    out.emit(f"li $t8, {slot}")
    pass_label = out.fresh("pass")
    out.emit(f"beq $a0, $t8, {pass_label}")
    out.emit("li $a0, 1")
    out.emit("li $v0, 17")
    out.emit("syscall")
    out.label(pass_label)
    out.emit("li $v0, 10")
    out.emit("syscall")


# ---------------------------------------------------------------------------
# Generation with self-check.
# ---------------------------------------------------------------------------

def encoding_fingerprint(source: str) -> str:
    """sha256 over the assembled image — entry point, text, data.

    This is the artifact the caches and fleet shards actually key on, so
    the determinism property is stated (and tested) at this level, not
    just over source text.
    """
    from repro.asm import assemble

    program = assemble(source)
    digest = hashlib.sha256()
    digest.update(program.entry.to_bytes(4, "little"))
    digest.update(len(program.text).to_bytes(4, "little"))
    digest.update(program.text)
    digest.update(program.data)
    return digest.hexdigest()


def generate_kernel(seed: int, index: int,
                    corpus: Optional[CorpusKnobs] = None,
                    knobs: Optional[KernelKnobs] = None) -> GeneratedKernel:
    """Generate, self-check and fingerprint one kernel.

    Runs the learn pass and the verify pass through the interpreter (no
    fast path: the architectural reference engine vouches for the
    checksum).  Raises :class:`GenerationError` if the verify pass does
    not exit 0 printing the learned checksum.
    """
    from repro.asm import assemble
    from repro.sim import run_program

    if knobs is None:
        knobs = draw_kernel_knobs(seed, index, corpus or CorpusKnobs.mixed())

    learn_source = generate_source(seed, index, knobs, expected=None)
    learn_text = learn_source.replace(_EXPECTED_SLOT, "0x00000000")
    learn = run_program(assemble(learn_text), collect_trace=False,
                        max_instructions=_RUN_CEILING)
    output = learn.output.strip()
    if not output.startswith("0x") or len(output) != 10:
        raise GenerationError(
            f"kernel {kernel_name(seed, index)}: learn pass printed "
            f"{learn.output!r}, expected one 0x%08x checksum")
    checksum = int(output, 16)

    source = generate_source(seed, index, knobs, expected=checksum)
    verify = run_program(assemble(source), collect_trace=True,
                         max_instructions=_RUN_CEILING)
    if verify.exit_code != 0 or verify.output != learn.output:
        raise GenerationError(
            f"kernel {kernel_name(seed, index)}: self-check failed "
            f"(exit {verify.exit_code}, output {verify.output!r} vs "
            f"{learn.output!r})")

    blocks = len(verify.trace.block_execution_counts()) \
        if verify.trace is not None else 0
    return GeneratedKernel(
        name=kernel_name(seed, index), index=index, seed=seed,
        source=source, checksum=checksum, knobs=knobs,
        category=knobs.category,
        source_sha256=hashlib.sha256(source.encode()).hexdigest(),
        encoding_sha256=encoding_fingerprint(source),
        result_hash=hashlib.sha256(verify.output.encode()).hexdigest(),
        instructions=verify.stats.instructions, blocks=int(blocks))
