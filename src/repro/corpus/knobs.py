"""Corpus knobs: the dials that parameterise generated kernels.

Two layers.  :class:`CorpusKnobs` describes a *corpus*: the ranges each
structural dial may take, named by the profile presets (``mixed``,
``dataflow``, ``control``, ``memory``, ``loopy``, ``divergent``).  :class:`KernelKnobs` is one
concrete draw — every field pinned to a value — derived deterministically
from ``(corpus seed, kernel index, corpus knobs)``.

Determinism policy: all draws go through :class:`random.Random` seeded
with integers only (string seeds would hash differently under differing
``PYTHONHASHSEED``), no iteration over sets/dicts feeds a draw, and every
fractional knob is quantised to a multiple of 1/16 so values survive
JSON round-trips byte-exactly across processes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from random import Random
from typing import Dict, List, Tuple

#: quantum for fractional knobs — every ratio is a multiple of this.
FRACTION_QUANTUM = 16

#: mixing constants for deriving per-kernel seeds (Knuth multiplicative
#: hashing); keeps adjacent kernel indices statistically unrelated.
_SEED_MIX = 2_654_435_761
_INDEX_MIX = 40_503


def kernel_seed(seed: int, index: int) -> int:
    """The integer RNG seed for kernel ``index`` of corpus ``seed``."""
    return ((seed & 0xFFFFFFFF) * _SEED_MIX + (index + 1) * _INDEX_MIX) \
        & 0x7FFF_FFFF_FFFF


def _fraction(rng: Random, lo16: int, hi16: int) -> float:
    """A quantised fraction in [lo16/16, hi16/16] inclusive."""
    return rng.randint(lo16, hi16) / FRACTION_QUANTUM


@dataclass(frozen=True)
class CorpusKnobs:
    """Ranges for one corpus; inclusive ``(lo, hi)`` bounds throughout.

    Fractions are expressed in sixteenths (``bias16``/``pred16``/
    ``mem16``/``mult16``) so the corpus description itself is integral
    and round-trips exactly.
    """

    profile: str = "mixed"
    block_size: Tuple[int, int] = (4, 20)
    ilp: Tuple[int, int] = (1, 4)
    segments: Tuple[int, int] = (1, 3)
    diamonds: Tuple[int, int] = (0, 3)
    bias16: Tuple[int, int] = (2, 14)
    pred16: Tuple[int, int] = (0, 16)
    loop_depth: Tuple[int, int] = (1, 3)
    trips: Tuple[int, int] = (2, 12)
    mem16: Tuple[int, int] = (0, 8)
    mult16: Tuple[int, int] = (0, 4)
    strides: Tuple[int, ...] = (1, 2, 4, 8)
    pool_words: Tuple[int, ...] = (32, 64, 128)
    #: soft cap on dynamic instructions per kernel; trip counts are
    #: scaled down until the estimated cost fits.
    budget: int = 6000

    @classmethod
    def mixed(cls) -> "CorpusKnobs":
        return cls()

    @classmethod
    def dataflow(cls) -> "CorpusKnobs":
        """Long straight-line blocks, wide ILP, few hard branches."""
        return cls(profile="dataflow", block_size=(12, 28), ilp=(2, 4),
                   segments=(2, 4), diamonds=(0, 1), pred16=(12, 16),
                   loop_depth=(1, 2), mem16=(0, 4), mult16=(1, 6))

    @classmethod
    def control(cls) -> "CorpusKnobs":
        """Short blocks, deep nests, many poorly-predictable diamonds."""
        return cls(profile="control", block_size=(3, 8), ilp=(1, 2),
                   segments=(1, 2), diamonds=(2, 5), bias16=(5, 11),
                   pred16=(0, 8), loop_depth=(2, 3), mem16=(0, 4))

    @classmethod
    def memory(cls) -> "CorpusKnobs":
        """Load/store dominated, strided and irregular access."""
        return cls(profile="memory", block_size=(6, 16), ilp=(1, 3),
                   diamonds=(0, 2), mem16=(6, 12), strides=(1, 2, 4, 8, 16),
                   pool_words=(64, 128, 256))

    @classmethod
    def loopy(cls) -> "CorpusKnobs":
        """Tight hot loops with high trip counts and tame branching.

        The stress profile for loop-aware configurations
        (``DimParams.dynflow_mode="loop"``): small single-segment
        bodies that close into one iterating configuration, almost no
        diamonds, and counter-keyed (perfectly predictable) predicates
        when one does appear, so reconfiguration amortisation — not
        speculation — dominates the speedup.
        """
        return cls(profile="loopy", block_size=(8, 16), ilp=(2, 4),
                   segments=(1, 2), diamonds=(0, 1), pred16=(12, 16),
                   loop_depth=(1, 2), trips=(8, 24), mem16=(2, 6),
                   budget=9000)

    @classmethod
    def divergent(cls) -> "CorpusKnobs":
        """Unbiased, entropy-keyed diamonds the predictor cannot tame.

        The stress profile for predicated dual-path merge
        (``DimParams.dynflow_mode="dual"``): many diamonds keyed on the
        xorshift stream with near-even bias, so bimodal counters never
        saturate and speculative merging stalls — exactly where
        translating both directions under predication pays.
        """
        return cls(profile="divergent", block_size=(3, 8), ilp=(1, 3),
                   segments=(1, 2), diamonds=(3, 6), bias16=(6, 10),
                   pred16=(0, 4), loop_depth=(1, 2), mem16=(0, 4))

    @classmethod
    def named(cls, profile: str) -> "CorpusKnobs":
        try:
            factory = _PROFILES[profile]
        except KeyError:
            valid = ", ".join(sorted(_PROFILES))
            raise ValueError(
                f"unknown corpus profile {profile!r}: valid profiles are "
                f"{valid}")
        return factory()

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        return {key: list(value) if isinstance(value, tuple) else value
                for key, value in payload.items()}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CorpusKnobs":
        kwargs = dict(payload)
        for key, value in kwargs.items():
            if isinstance(value, list):
                kwargs[key] = tuple(value)
        return cls(**kwargs)


_PROFILES = {
    "mixed": CorpusKnobs.mixed,
    "dataflow": CorpusKnobs.dataflow,
    "control": CorpusKnobs.control,
    "memory": CorpusKnobs.memory,
    "loopy": CorpusKnobs.loopy,
    "divergent": CorpusKnobs.divergent,
}

PROFILES: List[str] = sorted(_PROFILES)


@dataclass(frozen=True)
class KernelKnobs:
    """One concrete kernel: every dial pinned.

    ``branch_bias`` is the probability a diamond predicate takes the
    then-side; ``predictability`` the fraction of diamonds keyed on the
    (perfectly predictable) loop counter rather than on the xorshift
    entropy stream; ``mem_intensity`` the fraction of body slots that
    become loads/stores; ``mult_weight`` the fraction of ALU slots that
    become multiplies (the array has no divider, so division never
    appears).
    """

    block_size: int
    ilp: int
    segments: int
    diamonds: int
    branch_bias: float
    predictability: float
    loop_depth: int
    trips: Tuple[int, ...]
    mem_intensity: float
    mem_stride: int
    mult_weight: float
    pool_words: int

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["trips"] = list(self.trips)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "KernelKnobs":
        kwargs = dict(payload)
        kwargs["trips"] = tuple(kwargs["trips"])
        return cls(**kwargs)

    @property
    def category(self) -> str:
        """Place the kernel on the paper's dataflow..control axis.

        Mirrors how Table 2 orders workloads: kernels dominated by
        straight-line arithmetic are 'dataflow', kernels dominated by
        hard-to-predict branching are 'control'.
        """
        hardness = self.diamonds * (1.0 - self.predictability)
        if hardness <= 0.5 and self.block_size >= 8:
            return "dataflow"
        if hardness >= 1.5 or (self.diamonds >= 2 and self.block_size < 8):
            return "control"
        return "mid"


def draw_kernel_knobs(seed: int, index: int,
                      corpus: CorpusKnobs) -> KernelKnobs:
    """Deterministically pin every dial for kernel ``index``.

    Uses a dedicated :class:`random.Random` stream per kernel (see
    :func:`kernel_seed`) so inserting or dropping kernels never shifts
    any other kernel's draw.
    """
    rng = Random(kernel_seed(seed, index))
    block_size = rng.randint(*corpus.block_size)
    ilp = rng.randint(*corpus.ilp)
    segments = rng.randint(*corpus.segments)
    diamonds = rng.randint(*corpus.diamonds)
    branch_bias = _fraction(rng, *corpus.bias16)
    predictability = min(1.0, _fraction(rng, *corpus.pred16))
    loop_depth = rng.randint(*corpus.loop_depth)
    trips = tuple(rng.randint(*corpus.trips) for _ in range(loop_depth))
    mem_intensity = min(1.0, _fraction(rng, *corpus.mem16))
    mem_stride = rng.choice(list(corpus.strides))
    mult_weight = min(1.0, _fraction(rng, *corpus.mult16))
    pool_words = rng.choice(list(corpus.pool_words))

    # Scale the loop nest until the estimated dynamic cost fits the
    # corpus budget: the generator must stay cheap enough to self-check
    # hundreds of kernels through the interpreter at generation time.
    body_cost = segments * (block_size + 4) + diamonds * 8 \
        + max(1, int(round(segments * block_size * mem_intensity))) * 4
    trips = _fit_budget(trips, body_cost, corpus.budget)
    return KernelKnobs(
        block_size=block_size, ilp=ilp, segments=segments,
        diamonds=diamonds, branch_bias=branch_bias,
        predictability=predictability, loop_depth=len(trips), trips=trips,
        mem_intensity=mem_intensity, mem_stride=mem_stride,
        mult_weight=mult_weight, pool_words=pool_words)


def _fit_budget(trips: Tuple[int, ...], body_cost: int,
                budget: int) -> Tuple[int, ...]:
    """Shrink the largest trip counts until the nest fits ``budget``."""
    counts = list(trips)
    def cost() -> int:
        total = body_cost
        for t in reversed(counts):
            total = t * (total + 3)
        return total
    while cost() > budget:
        widest = counts.index(max(counts))
        if counts[widest] <= 2:
            if len(counts) > 1:
                counts.pop(0)
                continue
            break
        counts[widest] -= 1
    return tuple(counts)
