"""Corpus assembly: generate many kernels, fingerprint them, register them.

A corpus is identified by ``(seed, knobs)`` and materialised as a
*manifest* — JSON carrying the corpus parameters plus, per kernel, the
concrete knob draw and four fingerprints (source sha256, assembled-image
sha256, architectural checksum, output hash).  Sources are **not**
stored: the generator is deterministic, so
``generate_source(seed, index, knobs, checksum)`` rebuilds each kernel
byte-identically, and :func:`register_corpus` verifies the rebuilt
source against the manifest's ``source_sha256`` before admitting it to
the :mod:`repro.workloads` registry.  That check is what turns the
manifest into a *versioned* artifact — if the generator ever drifts, a
stale manifest refuses to load instead of silently renaming different
programs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.corpus.generator import GeneratedKernel, generate_kernel, \
    generate_source, kernel_name
from repro.corpus.knobs import CorpusKnobs, KernelKnobs, draw_kernel_knobs

MANIFEST_VERSION = 1


@dataclass
class CorpusStats:
    """Carrier for the closed ``corpus.*`` counter/timer namespace."""

    kernels_generated: int = 0
    kernels_verified: int = 0
    verify_failures: int = 0
    kernels_registered: int = 0
    dynamic_instructions: int = 0
    generate_seconds: float = 0.0
    verify_seconds: float = 0.0


class ManifestError(ValueError):
    """A manifest is malformed or does not match the generator."""


@dataclass
class Corpus:
    """A generated corpus: the kernels plus everything the manifest holds."""

    seed: int
    knobs: CorpusKnobs
    kernels: List[GeneratedKernel] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.kernels)

    def names(self) -> List[str]:
        return [kernel.name for kernel in self.kernels]

    def manifest(self) -> Dict[str, object]:
        return {
            "version": MANIFEST_VERSION,
            "seed": self.seed,
            "count": self.count,
            "profile": self.knobs.profile,
            "corpus_knobs": self.knobs.to_dict(),
            "kernels": [kernel.manifest_entry() for kernel in self.kernels],
        }

    def manifest_json(self) -> str:
        return json.dumps(self.manifest(), indent=2, sort_keys=True) + "\n"

    def write(self, path: str, telemetry=None) -> str:
        text = self.manifest_json()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        if telemetry is not None:
            telemetry.emit("corpus.manifest_written", path=str(path),
                           seed=self.seed, count=self.count)
        return text


def generate_corpus(seed: int, count: int,
                    knobs: Optional[CorpusKnobs] = None,
                    telemetry=None,
                    stats: Optional[CorpusStats] = None) -> Corpus:
    """Generate and self-check ``count`` kernels for corpus ``seed``.

    Every kernel is verified through the interpreter at generation time
    (see :func:`repro.corpus.generator.generate_kernel`); a verification
    failure aborts the corpus — a partially-bad corpus must never reach
    a manifest.
    """
    from time import perf_counter

    from repro.corpus.generator import GenerationError

    knobs = knobs or CorpusKnobs.mixed()
    stats = stats if stats is not None else CorpusStats()
    corpus = Corpus(seed=seed, knobs=knobs)
    started = perf_counter()
    for index in range(count):
        try:
            kernel = generate_kernel(seed, index, corpus=knobs)
        except GenerationError:
            stats.verify_failures += 1
            if telemetry is not None:
                _export(telemetry, stats)
            raise
        stats.kernels_generated += 1
        stats.kernels_verified += 1
        stats.dynamic_instructions += kernel.instructions
        corpus.kernels.append(kernel)
        if telemetry is not None:
            telemetry.emit("corpus.kernel_generated", name=kernel.name,
                           seed=seed, index=index,
                           category=kernel.category,
                           checksum=f"0x{kernel.checksum:08x}",
                           instructions=kernel.instructions)
    stats.generate_seconds += perf_counter() - started
    # Self-check runs dominate generation; attribute half the wall time
    # to verification would be a guess — instead time is all reported
    # under generate_seconds and verify_seconds counts only re-verify
    # passes (registration-time audits).
    if telemetry is not None:
        _export(telemetry, stats)
    return corpus


def _export(telemetry, stats: CorpusStats) -> None:
    from repro.obs.schema import corpus_counters, corpus_timers

    telemetry.count_many(corpus_counters(stats))
    for name, value in corpus_timers(stats).items():
        telemetry.add_time(name, value)


def load_manifest(path: str) -> Dict[str, object]:
    """Read and structurally validate a manifest file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    _check_manifest(payload, origin=str(path))
    return payload


def _check_manifest(payload: object, origin: str) -> None:
    if not isinstance(payload, dict):
        raise ManifestError(f"{origin}: manifest must be a JSON object")
    version = payload.get("version")
    if version != MANIFEST_VERSION:
        raise ManifestError(
            f"{origin}: manifest version {version!r} is not "
            f"{MANIFEST_VERSION}")
    for key in ("seed", "count", "corpus_knobs", "kernels"):
        if key not in payload:
            raise ManifestError(f"{origin}: manifest missing {key!r}")
    kernels = payload["kernels"]
    if not isinstance(kernels, list) or len(kernels) != payload["count"]:
        raise ManifestError(
            f"{origin}: kernel list does not match count="
            f"{payload['count']!r}")
    for entry in kernels:
        for key in ("name", "index", "knobs", "checksum", "source_sha256"):
            if key not in entry:
                raise ManifestError(
                    f"{origin}: kernel entry missing {key!r}")


def rebuild_kernel_source(seed: int, entry: Dict[str, object]) -> str:
    """Regenerate one manifest kernel's source, verifying its hash."""
    import hashlib

    knobs = KernelKnobs.from_dict(entry["knobs"])
    checksum = int(entry["checksum"], 16)
    source = generate_source(seed, int(entry["index"]), knobs,
                             expected=checksum)
    digest = hashlib.sha256(source.encode()).hexdigest()
    if digest != entry["source_sha256"]:
        raise ManifestError(
            f"kernel {entry['name']}: regenerated source hash {digest} "
            f"does not match manifest {entry['source_sha256']} — the "
            f"generator has drifted from the manifest's version")
    return source


def register_corpus(manifest, telemetry=None,
                    stats: Optional[CorpusStats] = None) -> List[str]:
    """Admit a corpus (manifest dict or :class:`Corpus`) to the registry.

    Returns the registered workload names in manifest order.  Loading is
    idempotent: re-registering an identical corpus is a no-op, while a
    name collision with different content raises (see
    :func:`repro.workloads.register_workload`).
    """
    from repro.workloads import Workload, register_workload

    stats = stats if stats is not None else CorpusStats()
    if isinstance(manifest, Corpus):
        seed = manifest.seed
        profile = manifest.knobs.profile
        pairs = [(kernel.manifest_entry(), kernel.source)
                 for kernel in manifest.kernels]
    else:
        seed = int(manifest["seed"])
        profile = manifest.get("profile", "mixed")
        pairs = [(entry, rebuild_kernel_source(seed, entry))
                 for entry in manifest["kernels"]]

    names: List[str] = []
    for entry, source in pairs:
        register_workload(Workload(
            name=str(entry["name"]),
            paper_name=str(entry["name"]),
            category=str(entry.get("category", "mid")),
            source=source,
            description=(f"synthetic corpus kernel (seed {seed}, "
                         f"profile {profile}, "
                         f"checksum {entry['checksum']})"),
            kind="asm"))
        names.append(str(entry["name"]))
        stats.kernels_registered += 1
    if telemetry is not None:
        telemetry.emit("corpus.registered", seed=seed, count=len(names),
                       profile=str(profile))
        _export(telemetry, stats)
    return names


def expected_name(seed: int, index: int) -> str:
    """The registry name kernel ``index`` of corpus ``seed`` will get."""
    return kernel_name(seed, index)


def draw_manifest_knobs(seed: int, count: int,
                        knobs: Optional[CorpusKnobs] = None
                        ) -> List[KernelKnobs]:
    """The concrete knob draws a corpus would use, without generating.

    Cheap preview for ``repro corpus list --dry-run`` style inspection.
    """
    knobs = knobs or CorpusKnobs.mixed()
    return [draw_kernel_knobs(seed, index, knobs) for index in range(count)]
