"""Reproduction of Beck et al., "Transparent Reconfigurable Acceleration for
Heterogeneous Embedded Applications" (DATE 2008).

The package couples a from-scratch MIPS I toolchain and simulator with the
paper's contribution: Dynamic Instruction Merging (DIM), a hardware binary
translator that maps runs of MIPS instructions onto a coarse-grained
reconfigurable array, caches the resulting configurations, and speculates
across basic blocks with a bimodal predictor.

Stable API (the :mod:`repro.api` facade)
----------------------------------------
- :class:`repro.SystemSpec` — the one canonical, JSON-round-trippable
  system description every entry point builds configurations from
  (``repro.build_config`` remains as a deprecated shim).
- :func:`repro.run` — run one target plain and accelerated, bit-exact.
- :func:`repro.evaluate` — the Table 2 suite against one system.
- :func:`repro.sweep` — a workloads x configurations matrix through the
  trace-once / replay-many sweep engine.
- :func:`repro.connect` — a client for a running ``repro serve``
  evaluation service (:mod:`repro.serve`) or ``repro fleet``
  coordinator (:mod:`repro.fleet` — same ``/v1`` protocol), which
  executes the same verbs as queued jobs with batch coalescing and
  warm caches.
- :func:`repro.explore` — multi-objective design-space exploration
  (:mod:`repro.dse`): seeded, budget-bounded strategies over the joint
  (shape, cache, speculation, policy) space returning a Pareto
  frontier.
- :func:`repro.mpsoc` — heterogeneous MPSoC scenario exploration
  (:mod:`repro.mpsoc`): core-count x array-shape allocations under
  Sys-S/M/L area budgets, ranked against weighted traffic mixes.
- :func:`repro.corpus` — seeded synthetic workload corpus generation
  (:mod:`repro.corpus`): self-checking assembly kernels registered as
  ordinary workloads.
- :func:`repro.traffic` — seeded traffic-mix replay against a live
  serve/fleet endpoint (:mod:`repro.traffic`).
- :class:`repro.Telemetry` / :data:`repro.NULL_TELEMETRY` — the unified
  observability sink accepted by all of the above (:mod:`repro.obs`).

Internal modules (:mod:`repro.sim`, :mod:`repro.dim`,
:mod:`repro.system`, ...) stay importable for research use, but the
facade above is the supported surface.
"""

from repro.api import (
    DimParams,
    RunComparison,
    SystemSpec,
    Target,
    build_config,
    connect,
    corpus,
    evaluate,
    explore,
    load_target,
    mpsoc,
    run,
    sweep,
    traffic,
)
from repro.obs import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "DimParams",
    "RunComparison",
    "SystemSpec",
    "Target",
    "build_config",
    "connect",
    "corpus",
    "evaluate",
    "explore",
    "load_target",
    "mpsoc",
    "run",
    "sweep",
    "traffic",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
]
