"""Reproduction of Beck et al., "Transparent Reconfigurable Acceleration for
Heterogeneous Embedded Applications" (DATE 2008).

The package couples a from-scratch MIPS I toolchain and simulator with the
paper's contribution: Dynamic Instruction Merging (DIM), a hardware binary
translator that maps runs of MIPS instructions onto a coarse-grained
reconfigurable array, caches the resulting configurations, and speculates
across basic blocks with a bimodal predictor.

Top-level convenience API
-------------------------
- :func:`repro.asm.assemble` — assemble MIPS source to a loadable program.
- :func:`repro.minic.compile_to_program` — compile mini-C to a program.
- :class:`repro.sim.Simulator` — the plain MIPS core.
- :class:`repro.system.CoupledSimulator` — MIPS + DIM + array, bit-exact.
- :func:`repro.system.evaluate_trace` — fast trace-driven evaluation.
- :data:`repro.system.PAPER_CONFIGS` — Table 1's three array shapes.
- :func:`repro.workloads.load_workload` — the 18 MiBench-analog kernels.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
