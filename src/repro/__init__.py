"""Reproduction of Beck et al., "Transparent Reconfigurable Acceleration for
Heterogeneous Embedded Applications" (DATE 2008).

The package couples a from-scratch MIPS I toolchain and simulator with the
paper's contribution: Dynamic Instruction Merging (DIM), a hardware binary
translator that maps runs of MIPS instructions onto a coarse-grained
reconfigurable array, caches the resulting configurations, and speculates
across basic blocks with a bimodal predictor.

Stable API (the :mod:`repro.api` facade)
----------------------------------------
- :func:`repro.build_config` — construct a Table 1 system configuration.
- :func:`repro.run` — run one target plain and accelerated, bit-exact.
- :func:`repro.evaluate` — the Table 2 suite against one system.
- :func:`repro.sweep` — a workloads x configurations matrix through the
  trace-once / replay-many sweep engine.
- :func:`repro.connect` — a client for a running ``repro serve``
  evaluation service (:mod:`repro.serve`), which executes the same
  verbs as queued jobs with batch coalescing and warm caches.
- :func:`repro.explore` — multi-objective design-space exploration
  (:mod:`repro.dse`): seeded, budget-bounded strategies over the joint
  (shape, cache, speculation, policy) space returning a Pareto
  frontier.
- :class:`repro.Telemetry` / :data:`repro.NULL_TELEMETRY` — the unified
  observability sink accepted by all of the above (:mod:`repro.obs`).

Internal modules (:mod:`repro.sim`, :mod:`repro.dim`,
:mod:`repro.system`, ...) stay importable for research use, but the
facade above is the supported surface.
"""

from repro.api import (
    RunComparison,
    Target,
    build_config,
    connect,
    evaluate,
    explore,
    load_target,
    run,
    sweep,
)
from repro.obs import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "RunComparison",
    "Target",
    "build_config",
    "connect",
    "evaluate",
    "explore",
    "load_target",
    "run",
    "sweep",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetrySnapshot",
]
