"""The MIPS core: functional execution plus cycle accounting.

The simulator is deliberately *not* a structural pipeline model: the paper
reports cycle counts from a single-issue in-order core, and that timing is
captured exactly by per-instruction costs plus three penalty sources
(taken control transfers, the load-use interlock, and early HI/LO reads).
Interlock state resets at basic-block boundaries (the transfer bubble
hides any cross-block hazard), which makes every block's cost a static
property — the key fact that lets :mod:`repro.system.traceeval` replay
traces with cycle-exact agreement.

The core exposes a :meth:`Simulator.step` API so the coupled MIPS+DIM
simulator can interleave normal execution with array execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter as _perf_counter
from typing import Dict, List, Optional, Tuple

from repro.asm.program import Program, STACK_TOP
from repro.isa.instruction import Instruction, decode
from repro.isa.opcodes import Format, InstrClass
from repro.isa.semantics import (
    alu_result,
    branch_taken,
    div_result,
    mult_result,
)
from repro.obs import NULL_TELEMETRY
from repro.sim.cache import CacheHierarchy
from repro.sim.memory import Memory
from repro.sim.stats import RunStats, TimingModel
from repro.sim.syscalls import handle_syscall
from repro.sim.trace import BasicBlock, BlockTable, Trace, TraceEvent


class SimulationError(Exception):
    """Raised on illegal instructions, runaway loops, or bad PCs."""


@dataclass
class RunResult:
    """Outcome of one simulation."""

    exit_code: int
    output: str
    stats: RunStats
    trace: Optional[Trace]
    registers: List[int]
    memory: Memory

    @property
    def cycles(self) -> int:
        return self.stats.cycles


@dataclass(frozen=True)
class StepOutcome:
    """What one :meth:`Simulator.step` did."""

    block_end: bool
    taken: bool
    exited: bool
    pc: int       # address of the executed instruction
    next_pc: int


#: Decoded entry: (instruction, class, sources, dest, uses_immediate_b).
_DecodedEntry = Tuple[Instruction, InstrClass, Tuple[int, ...],
                      Optional[int], bool]


class Simulator:
    """Functional + cycle-accounting simulator for one program."""

    def __init__(self, program: Program,
                 timing: Optional[TimingModel] = None,
                 collect_trace: bool = False,
                 max_instructions: int = 200_000_000,
                 caches: Optional[CacheHierarchy] = None,
                 fast: bool = False,
                 telemetry=None):
        self.program = program
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.timing = timing or TimingModel()
        self.collect_trace = collect_trace
        self.caches = caches or CacheHierarchy()
        self.max_instructions = max_instructions
        self.memory = Memory()
        self.memory.load_program(program)
        self.regs: List[int] = [0] * 32
        self.regs[29] = STACK_TOP  # $sp
        self.pc = program.entry
        self.hi = 0
        self.lo = 0
        self.exit_code: Optional[int] = None
        self.output_parts: List[str] = []
        self.stats = RunStats()
        self.block_table = BlockTable()
        # Decode results are a program property (text is immutable), so
        # every simulator of one Program shares a single decode cache.
        self._decoded: Dict[int, _DecodedEntry] = program.decode_cache
        self._trace_events: List[TraceEvent] = []
        self._block_start = self.pc
        self._last_load_dest: Optional[int] = None
        self._hilo_ready = 0
        self.fast = fast
        self._fast_engine = None
        # Cache timing is address-dependent, so the block-compiled fast
        # path only engages on the (default) ideal-memory configuration.
        if fast and self.caches.icache is None \
                and self.caches.dcache is None:
            from repro.sim.fastpath import FastPath
            self._fast_engine = FastPath(self)

    # ------------------------------------------------------------------
    def decode_at(self, pc: int) -> _DecodedEntry:
        """Decode (with caching) the instruction at ``pc``."""
        entry = self._decoded.get(pc)
        if entry is None:
            word = self.memory.read_word(pc)
            instr = decode(word)
            if instr is None:
                raise SimulationError(
                    f"illegal instruction 0x{word:08x} at pc 0x{pc:08x}")
            entry = (instr, instr.klass, instr.sources(),
                     instr.destination(), instr.info.fmt is Format.I)
            self._decoded[pc] = entry
        return entry

    def block_at(self, start_pc: int) -> BasicBlock:
        """Return (registering if new) the dynamic basic block at ``start_pc``."""
        block = self.block_table.get_by_pc(start_pc)
        if block is not None:
            return block
        instrs = []
        pc = start_pc
        while True:
            instr, klass, _, _, _ = self.decode_at(pc)
            instrs.append(instr)
            if instr.info.is_control or klass is InstrClass.SYSCALL:
                break
            pc += 4
        return self.block_table.add(start_pc, tuple(instrs))

    # ------------------------------------------------------------------
    def step(self) -> StepOutcome:  # noqa: C901 - the interpreter core
        """Execute exactly one instruction."""
        timing = self.timing
        stats = self.stats
        regs = self.regs
        pc = self.pc
        instr, klass, sources, dest, imm_form = self.decode_at(pc)
        stats.instructions += 1
        stats.fetches += 1
        cycles = 1
        icache = self.caches.icache
        if icache is not None and not icache.access(pc):
            cycles += icache.config.miss_penalty
            stats.icache_misses += 1
        if self._last_load_dest is not None \
                and self._last_load_dest in sources:
            cycles += timing.load_use_stall
            stats.load_use_stalls += 1
        self._last_load_dest = None
        next_pc = pc + 4
        mnemonic = instr.mnemonic
        block_end = False
        taken = False

        if klass is InstrClass.ALU or klass is InstrClass.SHIFT \
                or klass is InstrClass.NOP:
            if dest is not None:
                b = instr.imm if imm_form else regs[instr.rt]
                regs[dest] = alu_result(instr, regs[instr.rs], b)
        elif klass is InstrClass.LOAD:
            stats.loads += 1
            address = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            dcache = self.caches.dcache
            if dcache is not None and not dcache.access(address):
                cycles += dcache.config.miss_penalty
                stats.dcache_misses += 1
            value = _load(self.memory, mnemonic, address)
            if dest is not None:
                regs[dest] = value
                self._last_load_dest = dest
        elif klass is InstrClass.STORE:
            stats.stores += 1
            address = (regs[instr.rs] + instr.imm) & 0xFFFFFFFF
            dcache = self.caches.dcache
            if dcache is not None and not dcache.access(address):
                cycles += dcache.config.miss_penalty
                stats.dcache_misses += 1
            _store(self.memory, mnemonic, address, regs[instr.rt])
        elif klass is InstrClass.BRANCH:
            stats.branches += 1
            block_end = True
            taken = branch_taken(mnemonic, regs[instr.rs], regs[instr.rt])
            if taken:
                next_pc = instr.branch_target(pc)
                cycles += timing.branch_penalty
                stats.taken_transfers += 1
        elif klass is InstrClass.JUMP:
            stats.branches += 1
            stats.taken_transfers += 1
            cycles += timing.branch_penalty
            block_end = True
            taken = True
            if mnemonic == "jr":
                next_pc = regs[instr.rs]
            elif mnemonic == "jalr":
                if dest is not None:
                    regs[dest] = pc + 4
                next_pc = regs[instr.rs]
            else:
                if mnemonic == "jal":
                    regs[31] = pc + 4
                next_pc = instr.branch_target(pc)
        elif klass is InstrClass.MULT:
            self.hi, self.lo = mult_result(mnemonic, regs[instr.rs],
                                           regs[instr.rt])
            self._hilo_ready = stats.cycles + cycles + timing.mult_latency
        elif klass is InstrClass.DIV:
            self.hi, self.lo = div_result(mnemonic, regs[instr.rs],
                                          regs[instr.rt])
            self._hilo_ready = stats.cycles + cycles + timing.div_latency
        elif klass is InstrClass.HILO:
            if mnemonic == "mfhi" or mnemonic == "mflo":
                wait = self._hilo_ready - (stats.cycles + cycles)
                if wait > 0:
                    cycles += wait
                    stats.hilo_stalls += wait
                if dest is not None:
                    regs[dest] = self.hi if mnemonic == "mfhi" else self.lo
            elif mnemonic == "mthi":
                self.hi = regs[instr.rs]
            else:
                self.lo = regs[instr.rs]
        elif klass is InstrClass.SYSCALL:
            stats.syscalls += 1
            cycles += timing.syscall_cycles - 1
            block_end = True
            self.exit_code = handle_syscall(regs, self.memory,
                                            self.output_parts)
        else:  # pragma: no cover - classes are exhaustive
            raise SimulationError(f"unhandled class {klass}")

        stats.cycles += cycles
        if block_end:
            # The transfer bubble hides cross-block hazards: reset the
            # interlock trackers so block costs are statically computable.
            self._last_load_dest = None
            self._hilo_ready = 0
            if self.collect_trace:
                block = self.block_at(self._block_start)
                self._trace_events.append(TraceEvent(block.block_id, taken))
            self._block_start = next_pc
        self.pc = next_pc
        if stats.instructions > self.max_instructions:
            raise SimulationError(
                f"instruction budget exceeded at pc 0x{pc:08x}")
        return StepOutcome(block_end, taken, self.exit_code is not None,
                           pc, next_pc)

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute until the program exits."""
        telemetry = self.telemetry
        start = _perf_counter() if telemetry.enabled else 0.0
        engine = self._fast_engine
        if engine is not None:
            engine.run_to_exit()
        else:
            while self.exit_code is None:
                self.step()
        if telemetry.enabled:
            telemetry.add_time("sim.run_seconds",
                               _perf_counter() - start)
            telemetry.count("sim.runs")
            telemetry.count("sim.instructions", self.stats.instructions)
            telemetry.count("sim.cycles", self.stats.cycles)
        return self.result()

    def step_block(self) -> StepOutcome:
        """Execute through the end of the current basic block.

        Uses the block-compiled fast path when enabled; otherwise steps
        the interpreter.  Either way the returned outcome has
        ``block_end=True`` and identical architectural effects.
        """
        engine = self._fast_engine
        if engine is not None:
            return engine.run_block()
        while True:
            outcome = self.step()
            if outcome.block_end:
                return outcome

    def result(self) -> RunResult:
        trace = Trace(self.block_table, self._trace_events) \
            if self.collect_trace else None
        return RunResult(self.exit_code if self.exit_code is not None
                         else -1,
                         "".join(self.output_parts), self.stats, trace,
                         self.regs, self.memory)

    def reset_block_start(self, pc: int) -> None:
        """Used by the coupled simulator after array execution."""
        self._block_start = pc
        self._last_load_dest = None
        self._hilo_ready = 0


def _load(memory: Memory, mnemonic: str, address: int) -> int:
    if mnemonic == "lw":
        return memory.read_word(address)
    if mnemonic == "lbu":
        return memory.read_byte(address)
    if mnemonic == "lb":
        value = memory.read_byte(address)
        return (value - 0x100) & 0xFFFFFFFF if value & 0x80 else value
    if mnemonic == "lhu":
        return memory.read_half(address)
    if mnemonic == "lh":
        value = memory.read_half(address)
        return (value - 0x10000) & 0xFFFFFFFF if value & 0x8000 else value
    raise SimulationError(f"bad load {mnemonic}")


def _store(memory: Memory, mnemonic: str, address: int, value: int) -> None:
    if mnemonic == "sw":
        memory.write_word(address, value & 0xFFFFFFFF)
    elif mnemonic == "sb":
        memory.write_byte(address, value)
    elif mnemonic == "sh":
        memory.write_half(address, value)
    else:
        raise SimulationError(f"bad store {mnemonic}")


def run_program(program: Program, collect_trace: bool = False,
                timing: Optional[TimingModel] = None,
                max_instructions: int = 200_000_000,
                caches: Optional[CacheHierarchy] = None,
                fast: bool = False,
                telemetry=None) -> RunResult:
    """One-shot convenience: simulate ``program`` to completion."""
    sim = Simulator(program, timing=timing, collect_trace=collect_trace,
                    max_instructions=max_instructions, caches=caches,
                    fast=fast, telemetry=telemetry)
    return sim.run()
