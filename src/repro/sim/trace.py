"""Dynamic basic-block trace collection.

A *dynamic basic block* is the run of instructions from a control-transfer
target (or the entry point) up to and including the next control transfer
or syscall.  DIM translates exactly these runs, so the trace — a block
table plus a sequence of (block id, branch outcome) events — is sufficient
to replay the complete DIM state machine without re-executing the program
(see :mod:`repro.system.traceeval`).
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass


@dataclass(frozen=True, eq=False)
class BasicBlock:
    """Static description of one dynamic basic block.

    Identity-based equality/hash: each block is registered exactly once
    per :class:`BlockTable`, and identity keys make cost-model memoisation
    cheap and collision-free across tables.
    """

    block_id: int
    start_pc: int
    instructions: Tuple[Instruction, ...]

    def __post_init__(self) -> None:
        # precompute the hot-path views once (frozen dataclass, so via
        # object.__setattr__)
        last = self.instructions[-1]
        terminator = last if last.info.is_control else None
        object.__setattr__(self, "terminator", terminator)
        object.__setattr__(
            self, "is_conditional",
            terminator is not None
            and terminator.klass is InstrClass.BRANCH)

    #: the final control instruction, or None (syscall-ended block).
    terminator: Optional[Instruction] = field(init=False)
    #: True when the terminator is a conditional branch.
    is_conditional: bool = field(init=False)

    @property
    def branch_pc(self) -> int:
        return self.start_pc + 4 * (len(self.instructions) - 1)

    @property
    def fallthrough_pc(self) -> int:
        return self.start_pc + 4 * len(self.instructions)

    def taken_target(self) -> Optional[int]:
        """Target when the terminator is taken (None for jr/jalr/syscall)."""
        term = self.terminator
        if term is None or term.mnemonic in ("jr", "jalr"):
            return None
        return term.branch_target(self.branch_pc)

    def __len__(self) -> int:
        return len(self.instructions)


class BlockTable:
    """Registry of basic blocks keyed by start PC."""

    def __init__(self) -> None:
        self._by_pc: Dict[int, BasicBlock] = {}
        self.blocks: List[BasicBlock] = []

    def get_by_pc(self, pc: int) -> Optional[BasicBlock]:
        return self._by_pc.get(pc)

    def get(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def add(self, start_pc: int,
            instructions: Tuple[Instruction, ...]) -> BasicBlock:
        block = BasicBlock(len(self.blocks), start_pc, instructions)
        self.blocks.append(block)
        self._by_pc[start_pc] = block
        return block

    def __len__(self) -> int:
        return len(self.blocks)


@dataclass(frozen=True)
class TraceEvent:
    """One executed basic block and the outcome of its terminator.

    ``taken`` is False for fall-through conditional branches and for
    blocks ended by a syscall; unconditional transfers record True.
    """

    block_id: int
    taken: bool


@dataclass
class Trace:
    """A full basic-block execution trace."""

    table: BlockTable
    events: List[TraceEvent] = field(default_factory=list)

    #: cached (ids, taken, length) triple backing :meth:`event_arrays`;
    #: not part of the dataclass proper (excluded from eq/repr/pickle
    #: of the payload shape the artifact cache stores).
    _event_arrays: Optional[Tuple[array, bytes, int]] = \
        field(default=None, repr=False, compare=False)

    def block_execution_counts(self) -> Dict[int, int]:
        return Counter(event.block_id for event in self.events)

    def event_arrays(self) -> Tuple[array, bytes]:
        """The events as flat columns: (block ids ``array('I')``, taken
        flags ``bytes``).

        Computed once and cached on the instance, so the artifact
        encoder and the columnar replay engine share a single lowering
        pass.  The cache is invalidated if events were appended since.
        """
        cached = self._event_arrays
        if cached is None or cached[2] != len(self.events):
            ids = array("I", (event.block_id for event in self.events))
            taken = bytes(1 if event.taken else 0
                          for event in self.events)
            cached = (ids, taken, len(self.events))
            self._event_arrays = cached
        return cached[0], cached[1]

    def seed_event_arrays(self, ids: array, taken: bytes) -> None:
        """Adopt precomputed event columns (artifact-cache decode path)."""
        if len(ids) == len(self.events) and len(taken) == len(self.events):
            self._event_arrays = (ids, taken, len(self.events))

    def __len__(self) -> int:
        return len(self.events)
