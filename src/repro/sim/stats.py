"""Timing parameters and run statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class TimingModel:
    """Cycle costs of the single-issue in-order MIPS core.

    The baseline follows the R3000 structure: one instruction per cycle,
    a one-cycle bubble for every taken control transfer (the delay slot,
    modelled as if filled with a nop), a one-cycle load-use interlock, and
    multi-cycle multiply/divide whose latency is only exposed when HI/LO
    is read too early.
    """

    branch_penalty: int = 1
    load_use_stall: int = 1
    mult_latency: int = 4
    div_latency: int = 16
    syscall_cycles: int = 1


@dataclass
class RunStats:
    """Counters accumulated over one simulation."""

    instructions: int = 0
    cycles: int = 0
    taken_transfers: int = 0
    load_use_stalls: int = 0
    hilo_stalls: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    fetches: int = 0
    syscalls: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0
    class_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def instructions_per_branch(self) -> float:
        """Fig. 3b's metric: dynamic instructions per control transfer."""
        control = self.branches
        return self.instructions / control if control else float("inf")

    def merge(self, other: "RunStats") -> None:
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.taken_transfers += other.taken_transfers
        self.load_use_stalls += other.load_use_stalls
        self.hilo_stalls += other.hilo_stalls
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.fetches += other.fetches
        self.syscalls += other.syscalls
        self.icache_misses += other.icache_misses
        self.dcache_misses += other.dcache_misses
        for key, value in other.class_counts.items():
            self.class_counts[key] = self.class_counts.get(key, 0) + value
