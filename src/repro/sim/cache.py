"""Instruction/data cache models.

The paper's memory interface (Section 4.3): load/store units assume a
cache hit; "if a miss occurs, the whole array operation stops until the
miss is resolved".  These models provide that behaviour for both the
plain core and the coupled system.

Caches are *timing-and-energy* models only — data always comes from the
backing :class:`~repro.sim.memory.Memory`, so enabling them never changes
architectural results, only cycle counts.  Because miss patterns depend
on addresses, cache timing is supported by the functional simulators but
not by the trace-driven evaluator (traces do not carry addresses); the
benchmark harnesses therefore run their cache studies through the
coupled simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache."""

    size_bytes: int = 4096
    line_bytes: int = 16
    associativity: int = 1
    miss_penalty: int = 12

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("size must be a multiple of line x ways")
        sets = self.size_bytes // (self.line_bytes * self.associativity)
        if sets & (sets - 1):
            raise ValueError("number of sets must be a power of two")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


class CacheModel:
    """A set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = config.num_sets - 1
        # per set: list of tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on a hit."""
        self.accesses += 1
        line = address >> self._offset_bits
        ways = self._sets[line & self._index_mask]
        tag = line >> (self._index_mask.bit_length())
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
        return False

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0


@dataclass
class CacheHierarchy:
    """Optional instruction and data caches for a simulator.

    ``None`` for either cache means ideal (single-cycle) memory on that
    path — the default everywhere, matching the paper's headline results.
    """

    icache: Optional[CacheModel] = None
    dcache: Optional[CacheModel] = None

    @classmethod
    def build(cls, icache: Optional[CacheConfig] = None,
              dcache: Optional[CacheConfig] = None) -> "CacheHierarchy":
        return cls(
            icache=CacheModel(icache) if icache else None,
            dcache=CacheModel(dcache) if dcache else None,
        )
