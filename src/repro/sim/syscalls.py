"""SPIM-style syscall handling.

Supported services (selected by ``$v0``):

==== ======================= =========================
code service                 arguments
==== ======================= =========================
1    print integer (signed)  ``$a0``
4    print NUL string        ``$a0`` = address
10   exit (code 0)           —
11   print character         ``$a0``
17   exit with code          ``$a0``
34   print integer as hex    ``$a0``
==== ======================= =========================
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.semantics import to_signed
from repro.sim.memory import Memory


class SyscallError(Exception):
    """Raised for an unknown syscall number."""


def handle_syscall(regs: List[int], memory: Memory,
                   output: List[str]) -> Optional[int]:
    """Service one syscall.

    Returns the exit code when the program requested termination, or
    None when execution should continue.  ``output`` accumulates printed
    text.
    """
    code = regs[2]  # $v0
    a0 = regs[4]
    if code == 1:
        output.append(str(to_signed(a0)))
        return None
    if code == 4:
        output.append(memory.read_cstring(a0))
        return None
    if code == 10:
        return 0
    if code == 11:
        output.append(chr(a0 & 0xFF))
        return None
    if code == 17:
        return a0 & 0xFF
    if code == 34:
        output.append(f"0x{a0 & 0xFFFFFFFF:08x}")
        return None
    raise SyscallError(f"unsupported syscall {code}")
