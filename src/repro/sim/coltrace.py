"""Columnar lowering of basic-block traces.

A :class:`~repro.sim.trace.Trace` is a Python list of per-event objects;
every replay engine that walks it pays one interpreter step per event.
This module lowers a trace *once* into flat numpy arrays — per-event
block id and branch outcome, per-block occurrence tables — plus the one
piece of derived history that makes whole-sweep vectorization possible:
the **bimodal-predictor timeline**.

The timeline exists because the predictor's update sequence is
configuration-independent.  Every consumed trace event whose block ends
in a conditional branch produces exactly one ``update(branch_pc,
taken)`` — on the normal path via ``observe_branch``, on the array path
via ``speculation_outcome`` (which updates before it compares), and a
``covered == 0`` reprocessed event defers its single update to the
reprocessing step.  The dynamic control-flow kinds preserve the
invariant: a loop configuration updates each interior merged branch
through ``speculation_outcome`` and the iterating back-edge through
``loop_backedge`` (once per trip, i.e. once per consumed back-edge
event), and a dual-path configuration updates its predicated branch
through ``dual_resolution`` and the winner block's own terminator
through ``observe_branch`` — still exactly one update per consumed
conditional event.  Jump- and syscall-terminated blocks never update.
The update *sequence* is therefore a pure function of the trace, so the
counter value of any predictor index at any event boundary ``t`` (the
state after the updates of events ``< t``) can be precomputed once per
(trace, table size) and shared by every configuration of a sweep.  The
same argument holds for the evaluator's ``seen`` set: the set of block
start PCs discovered by event boundary ``t`` is exactly the blocks of
``events[0..t)`` for every configuration.  ``repro.system.colreplay``
builds on both invariants.

numpy is optional (``pip install repro[fast]``): :func:`numpy_or_none`
gates every entry point, honouring ``REPRO_NO_NUMPY=1`` for forcing the
pure-Python event engine in tests and CI.
"""

from __future__ import annotations

import os
from array import array
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.sim.trace import Trace

#: bump when the artifact payload layout changes (see to_payload).
COLTRACE_FORMAT = 1

#: saturation classes: the projection of a 2-bit counter the DIM
#: policies actually consume (saturated_direction / merge gating).
CLASS_NONE = -1
CLASS_NOT_TAKEN = 0
CLASS_TAKEN = 1

#: an "end of trace" sentinel larger than any event boundary.
NO_BOUND = 1 << 62

_NUMPY = None
_NUMPY_CHECKED = False


def numpy_or_none():
    """The numpy module, or None when unavailable (or disabled).

    The import is attempted once per process; the ``REPRO_NO_NUMPY``
    environment switch is honoured on every call so tests can toggle
    the fallback path without reloading modules.
    """
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on environment
            numpy = None
        _NUMPY = numpy
    return _NUMPY


def numpy_available() -> bool:
    """True when the columnar engine can run in this process."""
    return numpy_or_none() is not None


def _class_of(counter: int) -> int:
    if counter == 3:
        return CLASS_TAKEN
    if counter == 0:
        return CLASS_NOT_TAKEN
    return CLASS_NONE


class PredictorTimeline:
    """Compressed bimodal-predictor history for one (trace, table size).

    For every predictor index the timeline stores the event boundaries
    at which the *saturation class* (taken / not-taken / unsaturated)
    changes; a query "what would ``saturated_direction(pc)`` return
    after the updates of events ``< t``" is one bisect.  Oscillation
    between the two weak states never appends a boundary, so the lists
    stay short even for noisy branches.

    ``updates`` and ``hits`` are the whole-trace totals of
    :class:`~repro.dim.predictor.BimodalPredictor` — identical for
    every configuration sharing this table size, which is why
    ``predictor_accuracy`` can be read off the timeline.
    """

    __slots__ = ("entries", "updates", "hits", "_mask", "_initial_class",
                 "_bounds", "_classes", "_np_cache")

    def __init__(self, entries: int, updates: int, hits: int,
                 bounds: Dict[int, List[int]],
                 classes: Dict[int, List[int]],
                 initial_class: int = CLASS_NONE):
        self.entries = entries
        self.updates = updates
        self.hits = hits
        self._mask = entries - 1
        self._initial_class = initial_class
        self._bounds = bounds
        self._classes = classes
        self._np_cache: Dict[int, Tuple[object, object]] = {}

    @classmethod
    def build(cls, positions: List[int], pcs: List[int],
              takens: List[int], entries: int,
              initial: int = 1) -> "PredictorTimeline":
        """Replay the config-independent update sequence once.

        ``positions``/``pcs``/``takens`` list every conditional-branch
        event of the trace in order (see ``ColumnarTrace.branch_events``).
        """
        if entries & (entries - 1):
            raise ValueError("predictor entries must be a power of two")
        np = numpy_or_none()
        if np is not None and len(positions) >= 4096:
            return cls._build_grouped(np, positions, pcs, takens,
                                      entries, initial)
        mask = entries - 1
        initial_class = _class_of(initial)
        bounds: Dict[int, List[int]] = {}
        classes: Dict[int, List[int]] = {}
        counters: Dict[int, int] = {}
        hits = 0
        get_counter = counters.get
        for pos, pc, taken in zip(positions, pcs, takens):
            index = (pc >> 2) & mask
            counter = get_counter(index, initial)
            if (counter >= 2) == (taken == 1):
                hits += 1
            if taken:
                if counter < 3:
                    counter += 1
            elif counter > 0:
                counter -= 1
            counters[index] = counter
            klass = _class_of(counter)
            clist = classes.get(index)
            if clist is None:
                bounds[index] = [0]
                classes[index] = clist = [initial_class]
            if klass != clist[-1]:
                bounds[index].append(pos + 1)
                clist.append(klass)
        return cls(entries, len(positions), hits, bounds, classes,
                   initial_class)

    @classmethod
    def _build_grouped(cls, np, positions: List[int], pcs: List[int],
                       takens: List[int], entries: int,
                       initial: int) -> "PredictorTimeline":
        """Group updates by counter index, then walk each group tight.

        Counter indices are independent, and a stable sort preserves
        chronological order within each group, so the per-index walk
        reproduces the scalar loop exactly — without a dict lookup per
        event."""
        mask = entries - 1
        initial_class = _class_of(initial)
        idx = (np.asarray(pcs, dtype=np.int64) >> 2) & mask
        n = len(idx)
        order = np.argsort(idx, kind="stable")
        idx_sorted = idx[order]
        starts = np.flatnonzero(
            np.r_[True, idx_sorted[1:] != idx_sorted[:-1]])
        ends = np.r_[starts[1:], n]
        pos_sorted = np.asarray(positions, dtype=np.int64)[order].tolist()
        tak_sorted = np.asarray(takens, dtype=np.int64)[order].tolist()
        bounds: Dict[int, List[int]] = {}
        classes: Dict[int, List[int]] = {}
        hits = 0
        for start, end in zip(starts.tolist(), ends.tolist()):
            counter = initial
            last_class = initial_class
            blist = [0]
            clist = [initial_class]
            for j in range(start, end):
                taken = tak_sorted[j]
                if (counter >= 2) == (taken == 1):
                    hits += 1
                if taken:
                    if counter < 3:
                        counter += 1
                elif counter > 0:
                    counter -= 1
                if counter == 3:
                    klass = CLASS_TAKEN
                elif counter == 0:
                    klass = CLASS_NOT_TAKEN
                else:
                    klass = CLASS_NONE
                if klass != last_class:
                    blist.append(pos_sorted[j] + 1)
                    clist.append(klass)
                    last_class = klass
            index = int(idx_sorted[start])
            bounds[index] = blist
            classes[index] = clist
        return cls(entries, n, hits, bounds, classes, initial_class)

    # ------------------------------------------------------------------
    # Queries.  ``t`` is an event *boundary*: the state after the
    # updates of events < t.
    # ------------------------------------------------------------------
    def class_at(self, pc: int, t: int) -> int:
        blist = self._bounds.get((pc >> 2) & self._mask)
        if blist is None:
            return self._initial_class
        index = bisect_right(blist, t) - 1
        return self._classes[(pc >> 2) & self._mask][index]

    def saturated_direction(self, pc: int, t: int) -> Optional[bool]:
        """What ``BimodalPredictor.saturated_direction`` returns at t."""
        klass = self.class_at(pc, t)
        return None if klass < 0 else klass == CLASS_TAKEN

    def class_span(self, pc: int, t: int) -> Tuple[int, int, int]:
        """(class, lo, hi): the class at ``t`` and the maximal boundary
        interval ``[lo, hi)`` over which it is constant."""
        index_key = (pc >> 2) & self._mask
        blist = self._bounds.get(index_key)
        if blist is None:
            return self._initial_class, 0, NO_BOUND
        index = bisect_right(blist, t) - 1
        hi = blist[index + 1] if index + 1 < len(blist) else NO_BOUND
        return self._classes[index_key][index], blist[index], hi

    def class_for_many(self, pc: int, ts):
        """Vectorized :meth:`class_at` over a numpy array of boundaries."""
        np = numpy_or_none()
        index_key = (pc >> 2) & self._mask
        cached = self._np_cache.get(index_key)
        if cached is None:
            blist = self._bounds.get(index_key)
            if blist is None:
                return np.full(len(ts), self._initial_class, dtype=np.int8)
            cached = (np.asarray(blist, dtype=np.int64),
                      np.asarray(self._classes[index_key], dtype=np.int8))
            self._np_cache[index_key] = cached
        np_bounds, np_classes = cached
        return np_classes[np.searchsorted(np_bounds, ts, side="right") - 1]

    # ------------------------------------------------------------------
    # Artifact payload (numpy-free, picklable).
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "entries": self.entries,
            "updates": self.updates,
            "hits": self.hits,
            "initial_class": self._initial_class,
            "bounds": {k: array("q", v) for k, v in self._bounds.items()},
            "classes": {k: array("b", v)
                        for k, v in self._classes.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "PredictorTimeline":
        return cls(payload["entries"], payload["updates"], payload["hits"],
                   {k: list(v) for k, v in payload["bounds"].items()},
                   {k: list(v) for k, v in payload["classes"].items()},
                   payload["initial_class"])


class ColumnarTrace:
    """One trace lowered to flat arrays (requires numpy).

    Array fields (``n`` events, ``nblocks`` table entries):

    - ``ev`` (int32[n]) / ``tk`` (int8[n]) — per-event block id and
      terminator outcome, straight from ``Trace.event_arrays()``;
    - ``rank`` (int64[n]) — occurrence index of each event within its
      block (event ``i`` is the ``rank[i]``-th execution of ``ev[i]``);
    - ``occ[b]`` (int64 array) — ascending event positions of block ``b``;
    - ``first_occ`` (int64[nblocks]) — first event position, ``n`` when
      the block never occurs;
    - ``blk_is_cond`` / ``blk_branch_pc`` — per-block structural columns.

    Predictor timelines are built lazily per table size and cached (and
    round-trip through the artifact payload, so warm sweeps skip the
    whole per-event pass).
    """

    def __init__(self, trace: Trace):
        np = numpy_or_none()
        if np is None:
            raise RuntimeError("columnar lowering requires numpy "
                               "(pip install repro[fast])")
        self.trace = trace
        self.table = trace.table
        ids, taken = trace.event_arrays()
        n = len(trace.events)
        self.n = n
        blocks = trace.table.blocks
        self.nblocks = len(blocks)
        self.ev = np.frombuffer(ids, dtype=np.uint32).astype(np.int64)
        self.tk = np.frombuffer(taken, dtype=np.uint8).astype(np.int64)
        #: 2*block + taken, the row key of the cost tables.
        self.key2 = 2 * self.ev + self.tk
        self.ev_list = self.ev.tolist()
        self.tk_list = self.tk.tolist()

        order = np.argsort(self.ev, kind="stable")
        sorted_ev = self.ev[order]
        if n:
            starts = np.flatnonzero(
                np.r_[True, sorted_ev[1:] != sorted_ev[:-1]])
            lengths = np.diff(np.r_[starts, n])
            within = np.arange(n, dtype=np.int64) \
                - np.repeat(starts, lengths)
        else:
            starts = np.zeros(0, dtype=np.int64)
            lengths = starts
            within = starts
        self.rank = np.empty(n, dtype=np.int64)
        self.rank[order] = within
        self.rank_list = self.rank.tolist()

        self.occ: List[object] = [None] * self.nblocks
        empty = np.zeros(0, dtype=np.int64)
        for start, length in zip(starts.tolist(), lengths.tolist()):
            self.occ[int(sorted_ev[start])] = order[start:start + length]
        for block_id in range(self.nblocks):
            if self.occ[block_id] is None:
                self.occ[block_id] = empty
        self.first_occ = np.fromiter(
            (positions[0] if len(positions) else n
             for positions in self.occ), dtype=np.int64,
            count=self.nblocks)

        self.blk_is_cond = np.fromiter(
            (block.is_conditional for block in blocks), dtype=bool,
            count=self.nblocks)
        self.blk_branch_pc = np.fromiter(
            (block.branch_pc for block in blocks), dtype=np.int64,
            count=self.nblocks)
        #: start PC -> first event position of a block at that PC (the
        #: block-provider view: get_by_pc keeps the latest registration,
        #: the ``seen`` set fills at the earliest occurrence of any).
        self.first_event_by_pc: Dict[int, int] = {}
        for block in blocks:
            first = int(self.first_occ[block.block_id])
            if first >= n:
                continue
            known = self.first_event_by_pc.get(block.start_pc)
            if known is None or first < known:
                self.first_event_by_pc[block.start_pc] = first

        self._branch_events: Optional[Tuple[List[int], List[int],
                                            List[int]]] = None
        self._timelines: Dict[int, PredictorTimeline] = {}

    @classmethod
    def from_trace(cls, trace: Trace) -> "ColumnarTrace":
        return cls(trace)

    def branch_events(self) -> Tuple[List[int], List[int], List[int]]:
        """(positions, branch PCs, outcomes) of every conditional event
        — the config-independent predictor update sequence."""
        cached = self._branch_events
        if cached is None:
            np = numpy_or_none()
            positions = np.flatnonzero(self.blk_is_cond[self.ev])
            cached = (positions.tolist(),
                      self.blk_branch_pc[self.ev[positions]].tolist(),
                      self.tk[positions].tolist())
            self._branch_events = cached
        return cached

    def timeline(self, entries: int) -> PredictorTimeline:
        """The (cached) predictor timeline for one table size."""
        timeline = self._timelines.get(entries)
        if timeline is None:
            positions, pcs, takens = self.branch_events()
            timeline = PredictorTimeline.build(positions, pcs, takens,
                                               entries)
            self._timelines[entries] = timeline
        return timeline

    @property
    def timelines_built(self) -> int:
        """How many predictor timelines are materialised (the sweep
        layer re-persists the lowering artifact when this grows)."""
        return len(self._timelines)

    # ------------------------------------------------------------------
    # Artifact persistence.  The payload is numpy-free so it can be
    # loaded (and judged stale) in processes without numpy installed.
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        ids, taken = self.trace.event_arrays()
        return {
            "version": COLTRACE_FORMAT,
            "event_ids": ids,
            "event_taken": taken,
            "timelines": {entries: timeline.to_payload()
                          for entries, timeline in self._timelines.items()},
        }

    @classmethod
    def from_payload(cls, trace: Trace,
                     payload: dict) -> Optional["ColumnarTrace"]:
        """Rebuild from a stored payload, or None when it is stale.

        The trace object itself is required — templates and cost tables
        need the live :class:`BasicBlock` objects — so the payload only
        short-circuits the per-event lowering passes and the predictor
        timelines."""
        if not isinstance(payload, dict) \
                or payload.get("version") != COLTRACE_FORMAT:
            return None
        ids = payload.get("event_ids")
        taken = payload.get("event_taken")
        if ids is None or taken is None \
                or len(ids) != len(trace.events) \
                or len(taken) != len(trace.events):
            return None
        # seed the trace-level cache so lowering skips the event walk
        trace.seed_event_arrays(ids, taken)
        lowered = cls(trace)
        for entries, stored in payload.get("timelines", {}).items():
            try:
                lowered._timelines[int(entries)] = \
                    PredictorTimeline.from_payload(stored)
            except (KeyError, TypeError, ValueError):
                continue
        return lowered
