"""Sparse paged memory with little-endian byte order.

Pages are 4 KiB bytearrays allocated on first touch, so the full 32-bit
address space (text at 0x0040_0000, data at 0x1001_0000, stack just below
0x8000_0000) is available without preallocating anything.
"""

from __future__ import annotations

from typing import Dict

from repro.asm.program import Program

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class MemoryError_(Exception):
    """Access outside any mapped region in strict mode (unused by default)."""


class AlignmentError_(Exception):
    """Raised on a misaligned half-word or word access."""


class Memory:
    """Byte-addressable sparse memory."""

    __slots__ = ("_pages",)

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    def _page(self, index: int) -> bytearray:
        page = self._pages.get(index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[index] = page
        return page

    # -- loads -----------------------------------------------------------
    def read_byte(self, address: int) -> int:
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def read_half(self, address: int) -> int:
        if address & 1:
            raise AlignmentError_(f"lh/lhu at 0x{address:08x}")
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        offset = address & PAGE_MASK
        return page[offset] | (page[offset + 1] << 8)

    def read_word(self, address: int) -> int:
        if address & 3:
            raise AlignmentError_(f"lw at 0x{address:08x}")
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        offset = address & PAGE_MASK
        return (page[offset] | (page[offset + 1] << 8)
                | (page[offset + 2] << 16) | (page[offset + 3] << 24))

    # -- stores ----------------------------------------------------------
    def write_byte(self, address: int, value: int) -> None:
        self._page(address >> PAGE_SHIFT)[address & PAGE_MASK] = value & 0xFF

    def write_half(self, address: int, value: int) -> None:
        if address & 1:
            raise AlignmentError_(f"sh at 0x{address:08x}")
        page = self._page(address >> PAGE_SHIFT)
        offset = address & PAGE_MASK
        page[offset] = value & 0xFF
        page[offset + 1] = (value >> 8) & 0xFF

    def write_word(self, address: int, value: int) -> None:
        if address & 3:
            raise AlignmentError_(f"sw at 0x{address:08x}")
        page = self._page(address >> PAGE_SHIFT)
        offset = address & PAGE_MASK
        page[offset] = value & 0xFF
        page[offset + 1] = (value >> 8) & 0xFF
        page[offset + 2] = (value >> 16) & 0xFF
        page[offset + 3] = (value >> 24) & 0xFF

    # -- bulk ------------------------------------------------------------
    def write_block(self, address: int, payload: bytes) -> None:
        for i, byte in enumerate(payload):
            self.write_byte(address + i, byte)

    def read_block(self, address: int, length: int) -> bytes:
        return bytes(self.read_byte(address + i) for i in range(length))

    def read_cstring(self, address: int, limit: int = 4096) -> str:
        chars = []
        for i in range(limit):
            byte = self.read_byte(address + i)
            if byte == 0:
                break
            chars.append(chr(byte))
        return "".join(chars)

    def load_program(self, program: Program) -> None:
        self.write_block(program.text_base, program.text)
        if program.data:
            self.write_block(program.data_base, program.data)

    def snapshot_pages(self) -> Dict[int, bytes]:
        """Immutable copy of all touched pages (used by equivalence tests)."""
        return {index: bytes(page) for index, page in self._pages.items()}
