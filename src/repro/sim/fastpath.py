"""Block-compiled fast execution engine.

The per-instruction interpreter in :mod:`repro.sim.cpu` pays full decode
dispatch, operand extraction and hazard tracking on every instruction.
But (see DESIGN.md §5) a basic block's cost is a *static* property: the
interlock trackers reset at every control transfer, so the cycles of a
block depend only on the block body and the terminator outcome.  This
module exploits that fact by specializing each basic block, on first
visit, into a single generated Python function:

- operands, immediates and branch targets are folded into the source as
  literals (decode happens exactly once, through the program-wide decode
  cache);
- instruction-class dispatch disappears — each instruction becomes one
  or two straight-line statements with the exact semantics of
  :mod:`repro.isa.semantics`;
- the block's static cycle/event cost (computed by the same
  :class:`~repro.system.costmodel.BlockCostModel` that powers the trace
  evaluator) is applied as one bulk update per block.

Steady-state execution therefore dispatches once per *block* instead of
once per *instruction*, while producing bit-identical architectural
state, statistics and trace events — asserted by
``tests/test_fastpath.py`` over the full workload suite.

Scope and invalidation rule: the generated code and the decode cache
assume the text segment is immutable.  Self-modifying code is out of
scope; every compiled store asserts that its target lies outside
``.text`` and raises :class:`~repro.sim.cpu.SimulationError` otherwise
(the interpreter would silently execute stale decodes instead).  Cache
timing is dynamic (miss patterns depend on addresses), so a simulator
with I/D caches configured keeps the per-instruction interpreter.

Compiled factories are cached on the :class:`~repro.asm.program.Program`
itself, keyed by ``(pc, collect_trace, timing, max_instructions)``, so
repeated simulations of one program (the Table 2 sweep, differential
tests) skip code generation entirely and only re-bind the closures to
the new simulator's register file, memory and counters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, InstrClass
from repro.isa.semantics import div_result, mult_result
from repro.sim.syscalls import handle_syscall
from repro.sim.trace import BasicBlock, TraceEvent

#: Safety bound: a decoded block longer than this means execution ran off
#: the program text into zeroed memory (the interpreter would burn its
#: instruction budget one nop at a time instead).
MAX_BLOCK_LEN = 65_536

_MASK = 0xFFFFFFFF

#: a compiled block: zero-argument closure returning (taken, next_pc).
CompiledBlock = Callable[[], Tuple[bool, int]]


def _sgn(var: str) -> str:
    """Expression re-interpreting canonical-u32 variable ``var`` as signed."""
    return f"({var} - 0x100000000 if {var} & 0x80000000 else {var})"


def _emit_body(instr: Instruction, lines: List[str],
               text_base: int, text_end: int) -> None:
    """Emit straight-line statements for one non-terminator instruction."""
    klass = instr.klass
    m = instr.mnemonic
    rs = f"regs[{instr.rs}]"
    if klass is InstrClass.NOP:
        return
    if klass is InstrClass.ALU or klass is InstrClass.SHIFT:
        dest = instr.destination()
        if dest is None:
            return
        d = f"regs[{dest}]"
        imm_form = instr.info.fmt is Format.I
        b = repr(instr.imm) if imm_form else f"regs[{instr.rt}]"
        if m in ("add", "addu", "addi", "addiu"):
            lines.append(f"{d} = ({rs} + {b}) & 0xFFFFFFFF")
        elif m in ("sub", "subu"):
            lines.append(f"{d} = ({rs} - {b}) & 0xFFFFFFFF")
        elif m in ("and", "andi"):
            lines.append(f"{d} = {rs} & {b}")
        elif m in ("or", "ori"):
            lines.append(f"{d} = {rs} | {b}")
        elif m in ("xor", "xori"):
            lines.append(f"{d} = {rs} ^ {b}")
        elif m == "nor":
            lines.append(f"{d} = ~({rs} | {b}) & 0xFFFFFFFF")
        elif m in ("slt", "slti"):
            lines.append(f"_a = {rs}")
            if imm_form:
                lines.append(f"{d} = 1 if {_sgn('_a')} < {instr.imm} else 0")
            else:
                lines.append(f"_b = {b}")
                lines.append(
                    f"{d} = 1 if {_sgn('_a')} < {_sgn('_b')} else 0")
        elif m in ("sltu", "sltiu"):
            b_u = repr(instr.imm & _MASK) if imm_form else b
            lines.append(f"{d} = 1 if {rs} < {b_u} else 0")
        elif m == "lui":
            lines.append(f"{d} = {(instr.imm << 16) & _MASK}")
        elif m == "sll":
            lines.append(f"{d} = ({b} << {instr.shamt}) & 0xFFFFFFFF")
        elif m == "srl":
            lines.append(f"{d} = {b} >> {instr.shamt}")
        elif m == "sra":
            lines.append(f"_b = {b}")
            lines.append(
                f"{d} = ({_sgn('_b')} >> {instr.shamt}) & 0xFFFFFFFF")
        elif m == "sllv":
            lines.append(f"{d} = ({b} << ({rs} & 31)) & 0xFFFFFFFF")
        elif m == "srlv":
            lines.append(f"{d} = {b} >> ({rs} & 31)")
        elif m == "srav":
            lines.append(f"_b = {b}")
            lines.append(
                f"{d} = ({_sgn('_b')} >> ({rs} & 31)) & 0xFFFFFFFF")
        else:  # pragma: no cover - ALU/SHIFT mnemonics are exhaustive
            raise ValueError(f"cannot compile {m}")
    elif klass is InstrClass.LOAD:
        lines.append(f"_a = ({rs} + {instr.imm}) & 0xFFFFFFFF")
        dest = instr.destination()
        if m == "lw":
            expr = "rw(_a)"
        elif m == "lbu":
            expr = "rb(_a)"
        elif m == "lhu":
            expr = "rh(_a)"
        elif m == "lb":
            lines.append("_v = rb(_a)")
            expr = "(_v - 0x100) & 0xFFFFFFFF if _v & 0x80 else _v"
        else:  # lh
            lines.append("_v = rh(_a)")
            expr = "(_v - 0x10000) & 0xFFFFFFFF if _v & 0x8000 else _v"
        if dest is not None:
            lines.append(f"regs[{dest}] = {expr}")
        elif m in ("lw", "lbu", "lhu"):
            lines.append(expr)  # keep the access (alignment checks)
    elif klass is InstrClass.STORE:
        lines.append(f"_a = ({rs} + {instr.imm}) & 0xFFFFFFFF")
        lines.append(f"if {text_base} <= _a < {text_end}:")
        lines.append(
            "    raise SimulationError('store to .text at 0x%08x: "
            "self-modifying code is unsupported by the fast path' % _a)")
        if m == "sw":
            lines.append(f"ww(_a, regs[{instr.rt}])")
        elif m == "sb":
            lines.append(f"wb(_a, regs[{instr.rt}])")
        else:  # sh
            lines.append(f"wh(_a, regs[{instr.rt}])")
    elif klass is InstrClass.MULT:
        lines.append(f"sim.hi, sim.lo = mult_result('{m}', {rs}, "
                     f"regs[{instr.rt}])")
    elif klass is InstrClass.DIV:
        lines.append(f"sim.hi, sim.lo = div_result('{m}', {rs}, "
                     f"regs[{instr.rt}])")
    elif klass is InstrClass.HILO:
        if m in ("mfhi", "mflo"):
            dest = instr.destination()
            if dest is not None:
                src = "hi" if m == "mfhi" else "lo"
                lines.append(f"regs[{dest}] = sim.{src}")
        elif m == "mthi":
            lines.append(f"sim.hi = {rs}")
        else:  # mtlo
            lines.append(f"sim.lo = {rs}")
    else:  # pragma: no cover - terminators are emitted separately
        raise ValueError(f"cannot compile {m} mid-block")


def _emit_terminator(instr: Instruction, pc: int,
                     lines: List[str]) -> str:
    """Emit the block terminator; returns the ``taken`` expression."""
    klass = instr.klass
    m = instr.mnemonic
    if klass is InstrClass.BRANCH:
        taken_target = instr.branch_target(pc)
        fallthrough = pc + 4
        lines.append(f"_b = regs[{instr.rs}]")
        if m == "beq":
            lines.append(f"taken = _b == regs[{instr.rt}]")
        elif m == "bne":
            lines.append(f"taken = _b != regs[{instr.rt}]")
        elif m == "blez":
            lines.append("taken = _b == 0 or _b >= 0x80000000")
        elif m == "bgtz":
            lines.append("taken = _b != 0 and _b < 0x80000000")
        elif m == "bltz":
            lines.append("taken = _b >= 0x80000000")
        else:  # bgez
            lines.append("taken = _b < 0x80000000")
        lines.append(
            f"next_pc = {taken_target} if taken else {fallthrough}")
        return "taken"
    if klass is InstrClass.JUMP:
        if m == "jr":
            lines.append(f"next_pc = regs[{instr.rs}]")
        elif m == "jalr":
            dest = instr.destination()
            if dest is not None:
                lines.append(f"regs[{dest}] = {pc + 4}")
            lines.append(f"next_pc = regs[{instr.rs}]")
        else:  # j / jal
            if m == "jal":
                lines.append(f"regs[31] = {pc + 4}")
            lines.append(f"next_pc = {instr.branch_target(pc)}")
        return "True"
    # SYSCALL-class terminator (syscall or break): may end the run.
    lines.append("sim.exit_code = handle_syscall(regs, memory, out)")
    lines.append(f"next_pc = {pc + 4}")
    return "False"


class FastPath:
    """Per-simulator block compiler and execution driver."""

    def __init__(self, sim) -> None:
        # Deferred import: repro.system imports repro.sim at package
        # initialisation; by the time a Simulator exists both are ready.
        from repro.system.costmodel import shared_cost_model

        self.sim = sim
        self._model = shared_cost_model(sim.timing)
        self._compiled: Dict[int, CompiledBlock] = {}
        self._term_pc: Dict[int, int] = {}
        self._factories = sim.program.fastpath_cache
        self._flags = (sim.collect_trace, sim.timing, sim.max_instructions)

    # ------------------------------------------------------------------
    def run_to_exit(self) -> None:
        """Drive the simulator to program exit, one block at a time."""
        sim = self.sim
        compiled = self._compiled
        compile_block = self.compile_block
        pc = sim.pc
        while sim.exit_code is None:
            fn = compiled.get(pc)
            if fn is None:
                fn = compile_block(pc)
            _, pc = fn()

    def run_block(self):
        """Execute the current basic block; returns a StepOutcome.

        Mirrors stepping the interpreter until ``block_end`` — this is
        what the coupled simulator calls between array executions (the
        entry pc may be mid-block after a partially covered block; the
        suffix simply compiles as its own block).
        """
        from repro.sim.cpu import StepOutcome

        sim = self.sim
        pc = sim.pc
        fn = self._compiled.get(pc)
        if fn is None:
            fn = self.compile_block(pc)
        taken, next_pc = fn()
        return StepOutcome(True, taken, sim.exit_code is not None,
                           self._term_pc[pc], next_pc)

    # ------------------------------------------------------------------
    def compile_block(self, pc: int) -> CompiledBlock:
        """Specialize (with program-level caching) the block at ``pc``."""
        key = (pc, *self._flags)
        cached = self._factories.get(key)
        if cached is None:
            cached = self._build_factory(pc)
            self._factories[key] = cached
            if self.sim.telemetry.enabled:
                self.sim.telemetry.count("fastpath.blocks_compiled")
        factory, length = cached
        sim = self.sim
        # Registering the block at first entry matches the interpreter's
        # registration at first completion (nothing runs in between), so
        # trace block ids agree between the two paths.
        block_id = sim.block_at(pc).block_id if sim.collect_trace else -1
        memory = sim.memory
        fn = factory(sim, sim.regs, sim.stats, memory,
                     memory.read_byte, memory.read_half, memory.read_word,
                     memory.write_byte, memory.write_half,
                     memory.write_word, sim.output_parts,
                     sim._trace_events.append, block_id)
        self._compiled[pc] = fn
        self._term_pc[pc] = pc + 4 * (length - 1)
        return fn

    def _build_factory(self, start_pc: int):
        sim = self.sim
        instrs: List[Instruction] = []
        pc = start_pc
        while True:
            instr, klass, _, _, _ = sim.decode_at(pc)
            instrs.append(instr)
            if instr.info.is_control or klass is InstrClass.SYSCALL:
                break
            if len(instrs) > MAX_BLOCK_LEN:
                from repro.sim.cpu import SimulationError
                raise SimulationError(
                    f"runaway block at pc 0x{start_pc:08x} "
                    f"(no terminator within {MAX_BLOCK_LEN} instructions)")
            pc += 4
        block = BasicBlock(-1, start_pc, tuple(instrs))
        cost = self._model.cost(block)
        source = self._render_source(instrs, start_pc, cost)
        namespace = {
            "mult_result": mult_result,
            "div_result": div_result,
            "handle_syscall": handle_syscall,
            "TraceEvent": TraceEvent,
            "SimulationError": _simulation_error(),
        }
        exec(compile(source, f"<fastblock 0x{start_pc:08x}>", "exec"),
             namespace)
        return namespace["_factory"], len(instrs)

    def _render_source(self, instrs: List[Instruction], start_pc: int,
                       cost) -> str:
        sim = self.sim
        program = sim.program
        collect_trace, _, max_instructions = self._flags
        body: List[str] = []
        pc = start_pc
        for instr in instrs[:-1]:
            _emit_body(instr, body, program.text_base, program.text_end)
            pc += 4
        taken_expr = _emit_terminator(instrs[-1], pc, body)

        n = cost.instructions
        body.append(f"stats.instructions += {n}")
        body.append(f"stats.fetches += {n}")
        for attr, value in (("loads", cost.loads),
                            ("stores", cost.stores),
                            ("branches", cost.branches),
                            ("load_use_stalls", cost.load_use_stalls),
                            ("hilo_stalls", cost.hilo_stalls),
                            ("syscalls", cost.syscalls)):
            if value:
                body.append(f"stats.{attr} += {value}")
        if taken_expr == "taken":  # conditional branch terminator
            body.append("if taken:")
            body.append(f"    stats.cycles += {cost.cycles_taken}")
            body.append("    stats.taken_transfers += 1")
            body.append("else:")
            body.append(f"    stats.cycles += {cost.cycles_not_taken}")
        elif taken_expr == "True":  # unconditional jump terminator
            body.append(f"stats.cycles += {cost.cycles_taken}")
            body.append("stats.taken_transfers += 1")
        else:  # syscall terminator
            body.append(f"stats.cycles += {cost.cycles_not_taken}")
        body.append("sim._block_start = next_pc")
        body.append("sim.pc = next_pc")
        if collect_trace:
            body.append(f"append(TraceEvent(block_id, {taken_expr}))")
        body.append(f"if stats.instructions > {max_instructions}:")
        body.append("    raise SimulationError("
                    f"'instruction budget exceeded at pc 0x{start_pc:08x}')")
        body.append(f"return {taken_expr}, next_pc")

        inner = "\n".join(f"        {line}" for line in body)
        return (
            "def _factory(sim, regs, stats, memory, rb, rh, rw, wb, wh, "
            "ww, out, append, block_id):\n"
            "    def _block():\n"
            f"{inner}\n"
            "    return _block\n"
        )


def _simulation_error():
    from repro.sim.cpu import SimulationError
    return SimulationError
