"""MIPS I functional simulator with cycle accounting.

The simulator executes programs produced by :mod:`repro.asm` or
:mod:`repro.minic`, models the timing of a single-issue in-order R3000-class
pipeline (load-use interlock, taken-branch penalty, multiply/divide
latency), services SPIM-style syscalls, and can record the basic-block
trace that drives the fast DIM evaluator in :mod:`repro.system.traceeval`.
"""

from repro.sim.cache import CacheConfig, CacheHierarchy, CacheModel
from repro.sim.memory import Memory, MemoryError_, AlignmentError_
from repro.sim.stats import RunStats, TimingModel
from repro.sim.trace import BasicBlock, BlockTable, TraceEvent, Trace
from repro.sim.cpu import Simulator, RunResult, SimulationError, run_program

__all__ = [
    "run_program",
    "CacheConfig",
    "CacheHierarchy",
    "CacheModel",
    "Memory",
    "MemoryError_",
    "AlignmentError_",
    "RunStats",
    "TimingModel",
    "BasicBlock",
    "BlockTable",
    "TraceEvent",
    "Trace",
    "Simulator",
    "RunResult",
    "SimulationError",
]
