"""Pluggable scoring objectives over evaluated design points.

An :class:`Objective` reads one number off an
:class:`~repro.dse.runner.Evaluation` and declares its optimisation
*sense*; the frontier machinery (:mod:`repro.dse.frontier`) never looks
inside evaluations itself, so new objectives compose without touching
dominance or hypervolume code.

The built-in registry mirrors the paper's three evaluation axes:

- ``speedup`` — geometric-mean speedup over the workload set (Table 2),
  maximised;
- ``area``    — total gates of the array from the Table 3 model
  (:mod:`repro.system.area`), minimised;
- ``energy``  — geometric-mean energy-consumption ratio vs the
  standalone MIPS (Figures 5-6, :mod:`repro.system.energy`), maximised
  (the ratio is "how many times *less* energy").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

MAXIMIZE = "max"
MINIMIZE = "min"


@dataclass(frozen=True)
class Objective:
    """One scoring dimension of the exploration."""

    name: str
    sense: str  # MAXIMIZE or MINIMIZE
    attr: str   # the Evaluation attribute carrying the value
    description: str

    def __post_init__(self):
        if self.sense not in (MAXIMIZE, MINIMIZE):
            raise ValueError(f"objective sense must be '{MAXIMIZE}' or "
                             f"'{MINIMIZE}', got {self.sense!r}")

    def value(self, evaluation) -> float:
        return float(getattr(evaluation, self.attr))

    def better(self, a: float, b: float) -> bool:
        """True when score ``a`` strictly beats score ``b``."""
        return a > b if self.sense == MAXIMIZE else a < b


#: the built-in objective registry, keyed by CLI/JSON name.
OBJECTIVES: Dict[str, Objective] = {
    "speedup": Objective(
        "speedup", MAXIMIZE, "geomean_speedup",
        "geometric-mean speedup over the workload set"),
    "area": Objective(
        "area", MINIMIZE, "gates",
        "total array gates (Table 3 area model)"),
    "energy": Objective(
        "energy", MAXIMIZE, "geomean_energy_ratio",
        "geometric-mean energy-consumption ratio vs the plain MIPS"),
}


def resolve_objectives(names: Sequence[str]) -> Tuple[Objective, ...]:
    """Map objective names onto registry entries, preserving order.

    The first objective is the *primary* one — successive halving ranks
    rungs by it and the hill climber climbs it.  Raises
    :class:`ValueError` naming the valid choices on an unknown or
    duplicate name, and on an empty selection.
    """
    if not names:
        raise ValueError("at least one objective is required")
    resolved = []
    seen = set()
    for name in names:
        objective = OBJECTIVES.get(name)
        if objective is None:
            valid = ", ".join(sorted(OBJECTIVES))
            raise ValueError(f"unknown objective {name!r}: valid "
                             f"objectives are {valid}")
        if name in seen:
            raise ValueError(f"duplicate objective {name!r}")
        seen.add(name)
        resolved.append(objective)
    return tuple(resolved)
