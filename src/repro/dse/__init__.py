"""``repro.dse`` — multi-objective design-space exploration.

The paper's stated future work is "finding the ideal shape for the
reconfigurable array"; this subsystem does that search.  A declarative
:class:`ParameterSpace` names the knobs (array geometry,
reconfiguration-cache slots, speculation, any ``DimParams`` policy
field) and their feasible values; a :class:`Strategy` spends a bounded
evaluation budget on candidates; a runner scores every batch through
the trace-once / replay-many engine (inline, multi-process, or
dispatched to a running ``repro serve``); and the result is a true
Pareto :class:`FrontierResult` over pluggable objectives — geomean
speedup, total gates (Table 3), geomean energy ratio (Figures 5-6) —
not a single scalar ranking.

Everything is deterministic by construction: enumeration order is
fixed, sampling comes from one caller-seeded RNG, ties break on
candidate identity, and evaluation floats are identical across serial,
``--jobs N`` and serve-dispatched execution — so the frontier JSON is
byte-identical across all three (asserted in ``tests/test_dse.py``).

>>> from repro import dse
>>> result = dse.explore(strategy="shalving", seed=7, budget=12,
...                      workloads=["crc", "quicksort"])
>>> len(result.points) >= 1
True
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence

from repro.dse.frontier import (
    FrontierResult,
    build_frontier,
    dominates,
    hypervolume,
    objective_vector,
    pareto_indices,
)
from repro.dse.objectives import (
    MAXIMIZE,
    MINIMIZE,
    OBJECTIVES,
    Objective,
    resolve_objectives,
)
from repro.dse.runner import (
    DseStats,
    Evaluation,
    MatrixRunner,
    TraceRunner,
)
from repro.dse.space import (
    Axis,
    Candidate,
    ParameterSpace,
    default_space,
    load_space,
)
from repro.dse.strategies import (
    STRATEGIES,
    GridSearch,
    HillClimb,
    RandomSearch,
    Strategy,
    SuccessiveHalving,
    resolve_strategy,
)

#: the default objective selection: the paper's speedup-vs-area
#: trade-off (Figures 5-6 add energy; pass ``objectives=("speedup",
#: "area", "energy")`` for all three axes).
DEFAULT_OBJECTIVES = ("speedup", "area")


def explore(space: Optional[ParameterSpace] = None,
            strategy: str = "grid",
            objectives: Sequence[str] = DEFAULT_OBJECTIVES,
            workloads: Optional[Sequence[str]] = None,
            budget: Optional[int] = None,
            seed: int = 0,
            jobs: int = 1,
            fast: bool = False,
            cache=None, cache_dir=None, client=None,
            base_dim=None, timing=None, energy_params=None,
            telemetry=None,
            runner=None) -> FrontierResult:
    """Run one seeded, budget-bounded exploration; return the frontier.

    ``space`` defaults to :func:`default_space`; ``strategy`` is a
    :data:`STRATEGIES` name; ``budget`` caps candidate-evaluations at
    any fidelity (``None`` = exhaust the space).  Pass ``client`` (a
    :class:`repro.serve.ServeClient`) to dispatch evaluation batches to
    a running service instead of evaluating inline; pass ``runner`` to
    substitute the whole execution layer (e.g. a
    :class:`TraceRunner` over pre-simulated traces).  The returned
    :class:`FrontierResult` serialises to byte-identical JSON for the
    same (space, strategy, seed, budget, objectives, workloads)
    regardless of ``jobs``, cache temperature, or dispatch mode.
    """
    from repro.system.energy import EnergyParams

    space = space if space is not None else default_space()
    resolved_objectives = resolve_objectives(objectives)
    resolved_strategy = resolve_strategy(strategy)
    if runner is None:
        runner = MatrixRunner(
            space, workloads=workloads, base_dim=base_dim,
            timing=timing,
            energy_params=(energy_params if energy_params is not None
                           else EnergyParams()),
            jobs=jobs, fast=fast, cache=cache, cache_dir=cache_dir,
            client=client, telemetry=telemetry)
    start = time.perf_counter()
    evaluations = resolved_strategy.explore(
        space, resolved_objectives, runner, budget, random.Random(seed))
    unique = {}
    for evaluation in evaluations:
        unique.setdefault(evaluation.candidate.id, evaluation)
    front, dominated, volume = build_frontier(
        list(unique.values()), resolved_objectives)
    runner.stats.frontier_points = len(front)
    runner.stats.dominated = dominated
    runner.stats.total_seconds = time.perf_counter() - start
    sink = runner.telemetry
    if sink is not None and sink.enabled:
        sink.emit("dse.frontier_computed", strategy=resolved_strategy.name,
                  seed=seed, points=len(front), dominated=dominated,
                  evaluations=runner.stats.evaluations,
                  hypervolume=volume)
        sink.count_many(runner.stats.counters())
        for name, seconds in runner.stats.timer_values().items():
            sink.add_time(name, seconds)
    return FrontierResult(
        strategy=resolved_strategy.name, seed=seed, budget=budget,
        objectives=resolved_objectives, workloads=runner.workloads,
        space=space.to_dict(), points=tuple(front), dominated=dominated,
        evaluations=runner.stats.evaluations, cells=runner.stats.cells,
        hypervolume=volume)


__all__ = [
    "Axis",
    "Candidate",
    "DEFAULT_OBJECTIVES",
    "DseStats",
    "Evaluation",
    "FrontierResult",
    "GridSearch",
    "HillClimb",
    "MAXIMIZE",
    "MINIMIZE",
    "MatrixRunner",
    "OBJECTIVES",
    "Objective",
    "ParameterSpace",
    "RandomSearch",
    "STRATEGIES",
    "Strategy",
    "SuccessiveHalving",
    "TraceRunner",
    "build_frontier",
    "default_space",
    "dominates",
    "explore",
    "hypervolume",
    "load_space",
    "objective_vector",
    "pareto_indices",
    "resolve_objectives",
    "resolve_strategy",
]
