"""Declarative parameter-space specification for design-space exploration.

A :class:`ParameterSpace` names the knobs the explorer may turn — array
geometry (:class:`~repro.cgra.shape.ArrayShape` fields), the
reconfiguration-cache size, speculation, and any other
:class:`~repro.dim.params.DimParams` policy field — and the discrete
values each may take.  A :class:`Candidate` is one point of the joint
space; the space can enumerate itself deterministically, sample itself
from a caller-seeded RNG, produce the local-mutation neighbourhood of a
point, price a point with the Table 3 area model, and build the
:class:`~repro.system.config.SystemConfig` the evaluation engines run.

Constraints (currently: a total-gate area budget) are part of the space,
not of the strategies — every enumeration/sampling/neighbourhood call
returns only feasible points, so a tight budget makes any search cheap,
exactly like the old ``analysis.shape_search`` pre-simulation pruning.

Spaces are declarative data: :meth:`ParameterSpace.to_dict` /
:meth:`ParameterSpace.from_dict` round-trip through JSON, which is what
``repro explore --space file.json`` loads.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import random
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.cgra.shape import ArrayShape, default_immediate_slots
from repro.dim.params import DimParams
from repro.sim.stats import TimingModel
from repro.system.area import AreaParams, area_report
from repro.system.config import SystemConfig, SystemSpec

#: ArrayShape fields an axis may target, in constructor order.
SHAPE_AXES: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(ArrayShape))

#: DimParams fields an axis may target (``cache_slots`` and
#: ``speculation`` are ordinary axes; the rest ride in the wire spec's
#: ``dim`` extras when a batch is dispatched to ``repro serve``).
DIM_AXES: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(DimParams))

#: every axis name a space may declare.
KNOWN_AXES: Tuple[str, ...] = SHAPE_AXES + DIM_AXES

#: the shape fields carried verbatim in a serve wire spec.
WIRE_SHAPE_FIELDS: Tuple[str, ...] = SHAPE_AXES

#: axis names registered by :class:`ParameterSpace` extensions
#: (namespace -> names); see :func:`register_axes`.
_EXTENSION_AXES: Dict[str, Tuple[str, ...]] = {}


def register_axes(namespace: str, names: Iterable[str]) -> None:
    """Extend the closed axis vocabulary with an extension's axes.

    The axis vocabulary stays closed — an unknown name is still a
    :class:`ValueError` — but subsystems layering new search dimensions
    on the explorer (``repro.mpsoc`` registers its ``cores`` and
    ``array<i>`` allocation axes this way) declare them here once at
    import time.  Registration is idempotent; a namespace's names
    simply replace its previous set.
    """
    _EXTENSION_AXES[namespace] = tuple(names)


def known_axes() -> Tuple[str, ...]:
    """Every currently valid axis name (built-in + registered)."""
    extras = tuple(name for names in _EXTENSION_AXES.values()
                   for name in names)
    return KNOWN_AXES + extras


@dataclass(frozen=True)
class Candidate:
    """One point of the design space: a frozen axis -> value mapping.

    Values are canonically sorted by axis name so equal points compare
    and hash equal regardless of how they were constructed.
    """

    values: Tuple[Tuple[str, object], ...]

    @classmethod
    def of(cls, mapping: Mapping[str, object]) -> "Candidate":
        return cls(tuple(sorted(mapping.items())))

    def get(self, name: str, default: object = None) -> object:
        for key, value in self.values:
            if key == name:
                return value
        return default

    def as_dict(self) -> Dict[str, object]:
        return dict(self.values)

    @property
    def id(self) -> str:
        """Canonical text identity, the deterministic tie-breaker every
        ranking in :mod:`repro.dse.strategies` sorts by."""
        return ",".join(f"{key}={value}" for key, value in self.values)

    def mutated(self, name: str, value: object) -> "Candidate":
        updated = self.as_dict()
        updated[name] = value
        return Candidate.of(updated)


@dataclass(frozen=True)
class Axis:
    """One explorable knob and its discrete value set."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self):
        valid = known_axes()
        if self.name not in valid:
            raise ValueError(
                f"unknown axis {self.name!r}: valid axes are "
                f"{', '.join(valid)}")
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@lru_cache(maxsize=4096)
def _gates(shape: ArrayShape, params: AreaParams) -> int:
    return area_report(shape, params).total_gates


@dataclass(frozen=True)
class ParameterSpace:
    """The joint search space plus its feasibility constraints.

    Either ``axes`` (a cartesian grid) or ``explicit`` (a fixed candidate
    list, used by the :mod:`repro.analysis.shape_search` back-compat
    wrapper) describes the raw points; ``area_budget_gates`` prunes the
    infeasible ones before any evaluation happens.
    """

    axes: Tuple[Axis, ...] = ()
    explicit: Optional[Tuple[Candidate, ...]] = None
    area_budget_gates: Optional[int] = None
    area_params: AreaParams = AreaParams()

    def __post_init__(self):
        if self.explicit is None and not self.axes:
            raise ValueError("a space needs axes or explicit candidates")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axes: {names}")

    # ------------------------------------------------------------------
    # Enumeration, sampling, neighbourhoods.
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Raw point count before constraint filtering."""
        if self.explicit is not None:
            return len(self.explicit)
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def _raw(self) -> Iterable[Candidate]:
        if self.explicit is not None:
            return iter(self.explicit)
        return (Candidate.of(dict(zip([a.name for a in self.axes], combo)))
                for combo in itertools.product(
                    *(a.values for a in self.axes)))

    def candidates(self) -> List[Candidate]:
        """Every feasible point, in deterministic enumeration order
        (axis-major cartesian product, or the explicit list's order)."""
        return [c for c in self._raw() if self.satisfies(c)]

    def sample(self, n: int, rng: random.Random) -> List[Candidate]:
        """``n`` distinct feasible points drawn with the caller's seeded
        RNG — same seed, same space, same sample, on every platform."""
        pool = self.candidates()
        return rng.sample(pool, min(n, len(pool)))

    def neighbors(self, candidate: Candidate) -> List[Candidate]:
        """The feasible one-step mutations of ``candidate``: each axis
        moved to the adjacent value in its declared ordering."""
        if self.explicit is not None:
            return []
        moved: List[Candidate] = []
        for axis in self.axes:
            current = candidate.get(axis.name)
            index = axis.values.index(current)
            for step in (-1, 1):
                neighbor = index + step
                if 0 <= neighbor < len(axis.values):
                    moved.append(candidate.mutated(
                        axis.name, axis.values[neighbor]))
        return [c for c in moved if self.satisfies(c)]

    def satisfies(self, candidate: Candidate) -> bool:
        if self.area_budget_gates is None:
            return True
        return self.gates_of(candidate) <= self.area_budget_gates

    # ------------------------------------------------------------------
    # Point -> system.
    # ------------------------------------------------------------------
    def shape_of(self, candidate: Candidate) -> ArrayShape:
        fields: Dict[str, object] = {}
        for name in SHAPE_AXES:
            value = candidate.get(name)
            if value is not None:
                fields[name] = value
        missing = [name for name in ("rows", "alus_per_row",
                                     "mults_per_row", "ldsts_per_row")
                   if name not in fields]
        if missing:
            raise ValueError(
                f"space does not pin the array shape: candidate "
                f"{candidate.id!r} is missing {', '.join(missing)} "
                f"(pin fixed dimensions with single-value axes)")
        if "immediate_slots" not in fields:
            fields["immediate_slots"] = default_immediate_slots(
                int(fields["rows"]))
        return ArrayShape(**fields)

    def dim_of(self, candidate: Candidate,
               base: Optional[DimParams] = None) -> DimParams:
        base = base if base is not None else DimParams()
        overrides = {name: candidate.get(name) for name in DIM_AXES
                     if candidate.get(name) is not None}
        return dataclasses.replace(base, **overrides)

    def config_of(self, candidate: Candidate,
                  base_dim: Optional[DimParams] = None,
                  timing: Optional[TimingModel] = None) -> SystemConfig:
        """The complete system a candidate denotes.

        The configuration name is canonical and injective over the
        space (see :func:`repro.system.config.custom_name`), which is
        what lets serve-dispatched batches slice their results back out
        by name.  Routed through the canonical
        :class:`~repro.system.config.SystemSpec`, like every other
        config constructor.
        """
        return SystemSpec.of(self.shape_of(candidate),
                             self.dim_of(candidate, base_dim)
                             ).build(timing=timing)

    def gates_of(self, candidate: Candidate) -> int:
        """Table 3a total gates of the candidate's array."""
        return _gates(self.shape_of(candidate), self.area_params)

    def wire_spec(self, candidate: Candidate,
                  base_dim: Optional[DimParams] = None
                  ) -> Dict[str, object]:
        """The candidate as a ``repro.serve`` protocol config object.

        The inverse lives in
        :func:`repro.serve.protocol.system_spec`; both sides are the
        canonical :class:`~repro.system.config.SystemSpec` wire form,
        so they build identically-named configurations by construction
        (asserted by the differential tests in ``tests/test_dse.py``).
        """
        return SystemSpec.of(self.shape_of(candidate),
                             self.dim_of(candidate, base_dim)).to_dict()

    # ------------------------------------------------------------------
    # Declarative round-trip.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "axes": {axis.name: list(axis.values) for axis in self.axes},
            "area_budget_gates": self.area_budget_gates,
        }
        if self.explicit is not None:
            payload["explicit"] = [c.as_dict() for c in self.explicit]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ParameterSpace":
        axes = tuple(Axis(name, tuple(values))
                     for name, values in payload.get("axes", {}).items())
        explicit = payload.get("explicit")
        if explicit is not None:
            explicit = tuple(Candidate.of(entry) for entry in explicit)
        budget = payload.get("area_budget_gates")
        if budget is not None:
            budget = int(budget)
        return cls(axes=axes, explicit=explicit,
                   area_budget_gates=budget)

    @classmethod
    def for_shapes(cls, shapes: Sequence[ArrayShape],
                   area_budget_gates: Optional[int] = None,
                   area_params: AreaParams = AreaParams()
                   ) -> "ParameterSpace":
        """An explicit space over a fixed shape list (no dim axes) —
        the form :func:`repro.analysis.shape_search.search_shapes`
        wraps."""
        explicit = tuple(
            Candidate.of({name: getattr(shape, name)
                          for name in SHAPE_AXES})
            for shape in shapes)
        return cls(axes=(), explicit=explicit,
                   area_budget_gates=area_budget_gates,
                   area_params=area_params)


def default_space() -> ParameterSpace:
    """The built-in exploration grid around Table 1's designs.

    64 points: rows x ALUs/line x LD-STs/line x cache slots x
    speculation, with the immediate table following the shared
    two-slots-per-line convention
    (:func:`repro.cgra.shape.default_immediate_slots`).
    """
    return ParameterSpace(axes=(
        Axis("rows", (16, 24, 48, 96)),
        Axis("alus_per_row", (4, 8)),
        Axis("mults_per_row", (2,)),
        Axis("ldsts_per_row", (2, 6)),
        Axis("cache_slots", (16, 64)),
        Axis("speculation", (False, True)),
    ))


def dynflow_space() -> ParameterSpace:
    """The dynamic control-flow exploration grid.

    :func:`default_space` with the ``dynflow_mode`` axis opened up: the
    same geometry/cache/speculation grid, each point additionally
    evaluated with loop-aware configurations, predicated dual-path
    merge, both, or neither (``DimParams.dynflow_mode``).  The
    frontier over this space dominates (weakly, and strictly somewhere
    on loop-heavy mixes) the frontier of :func:`default_space`, since
    the ``off`` plane *is* the default space — asserted by the dynflow
    smoke suite.
    """
    base = default_space()
    return ParameterSpace(axes=base.axes + (
        Axis("dynflow_mode", ("off", "loop", "dual", "both")),
    ))


def load_space(path) -> ParameterSpace:
    """Load a declarative space spec from a JSON file."""
    with open(Path(path)) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})")
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: space spec must be a JSON object")
    return ParameterSpace.from_dict(payload)
