"""Pareto dominance, frontier extraction, and the exploration report.

Multi-objective search returns a *frontier*, not a scalar winner: a
point survives iff no other evaluated point is at least as good on
every objective and strictly better on one.  This module implements
that dominance relation (irreflexive and transitive — property-tested
in ``tests/test_dse.py``), extracts the frontier, summarises it with a
dominated-hypervolume figure, and serialises the whole exploration as
deterministic JSON: no timestamps, no timings, no dispatch details, so
the bytes are identical across serial, ``--jobs N`` and serve-dispatched
runs of the same seeded search.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.objectives import MINIMIZE, Objective


def objective_vector(evaluation, objectives: Sequence[Objective]
                     ) -> Tuple[float, ...]:
    """The evaluation's scores in objective order (raw senses kept)."""
    return tuple(objective.value(evaluation) for objective in objectives)


def dominates(a: Sequence[float], b: Sequence[float],
              objectives: Sequence[Objective]) -> bool:
    """True iff ``a`` Pareto-dominates ``b``.

    ``a`` must be at least as good on every objective and strictly
    better on at least one; equal vectors never dominate each other,
    which keeps the relation irreflexive.
    """
    if len(a) != len(b) or len(a) != len(objectives):
        raise ValueError("vector/objective arity mismatch")
    strictly_better = False
    for av, bv, objective in zip(a, b, objectives):
        if objective.sense == MINIMIZE:
            av, bv = -av, -bv
        if av < bv:
            return False
        if av > bv:
            strictly_better = True
    return strictly_better


def pareto_indices(vectors: Sequence[Sequence[float]],
                   objectives: Sequence[Objective]) -> List[int]:
    """Indices of the non-dominated vectors, in input order.

    Duplicate vectors all survive (none dominates its copy), so a
    frontier never silently drops a distinct design point that ties.
    """
    survivors = []
    for i, candidate in enumerate(vectors):
        if not any(dominates(other, candidate, objectives)
                   for j, other in enumerate(vectors) if j != i):
            survivors.append(i)
    return survivors


def hypervolume(vectors: Sequence[Sequence[float]],
                objectives: Sequence[Objective],
                reference: Optional[Sequence[float]] = None) -> float:
    """Dominated hypervolume of a point set w.r.t. a reference point.

    Every objective is flipped to maximise-sense; ``reference`` defaults
    to the componentwise worst of the set itself, so boundary points
    contribute zero and the figure measures the *spread* the frontier
    covers.  Exact recursive slicing — fine for the small frontiers a
    DSE run produces, and fully deterministic.
    """
    if not vectors:
        return 0.0
    oriented = [tuple(-v if o.sense == MINIMIZE else v
                      for v, o in zip(vec, objectives))
                for vec in vectors]
    if reference is None:
        ref = tuple(min(vec[d] for vec in oriented)
                    for d in range(len(objectives)))
    else:
        ref = tuple(-r if o.sense == MINIMIZE else r
                    for r, o in zip(reference, objectives))
    shifted = [tuple(max(0.0, v - r) for v, r in zip(vec, ref))
               for vec in oriented]
    return _slice_volume(shifted, len(objectives))


def _slice_volume(points: List[Tuple[float, ...]], dims: int) -> float:
    if not points:
        return 0.0
    if dims == 1:
        return max(p[0] for p in points)
    ordered = sorted(points, key=lambda p: p[-1], reverse=True)
    volume = 0.0
    for i, point in enumerate(ordered):
        upper = point[-1]
        lower = ordered[i + 1][-1] if i + 1 < len(ordered) else 0.0
        if upper > lower:
            projection = [q[:-1] for q in ordered[:i + 1]]
            volume += (upper - lower) * _slice_volume(projection,
                                                      dims - 1)
    return volume


@dataclass(frozen=True)
class FrontierResult:
    """Everything one exploration produced, serialisable and diffable."""

    strategy: str
    seed: int
    budget: Optional[int]
    objectives: Tuple[Objective, ...]
    workloads: Tuple[str, ...]
    space: Dict[str, object]
    #: the Pareto-optimal full-fidelity evaluations, sorted by
    #: candidate identity (deterministic across dispatch modes).
    points: Tuple[object, ...]
    #: full-fidelity evaluations dominated by the frontier.
    dominated: int
    #: candidate-evaluations executed (all fidelities).
    evaluations: int
    #: (candidate x workload) cells those evaluations cost.
    cells: int
    hypervolume: float

    def best(self, objective_name: Optional[str] = None):
        """The frontier point maximising one objective (default: the
        primary), ties broken by candidate identity."""
        names = [o.name for o in self.objectives]
        name = objective_name or names[0]
        objective = self.objectives[names.index(name)]
        ranked = sorted(self.points,
                        key=lambda e: (-objective.value(e)
                                       if objective.sense != MINIMIZE
                                       else objective.value(e),
                                       e.candidate.id))
        return ranked[0] if ranked else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema_version": 1,
            "strategy": self.strategy,
            "seed": self.seed,
            "budget": self.budget,
            "objectives": [{"name": o.name, "sense": o.sense}
                           for o in self.objectives],
            "workloads": list(self.workloads),
            "space": self.space,
            "evaluations": self.evaluations,
            "cells": self.cells,
            "dominated": self.dominated,
            "hypervolume": self.hypervolume,
            "frontier": [{
                "candidate": evaluation.candidate.as_dict(),
                "system": evaluation.system,
                "gates": evaluation.gates,
                "geomean_speedup": evaluation.geomean_speedup,
                "geomean_energy_ratio": evaluation.geomean_energy_ratio,
                "objectives": {o.name: o.value(evaluation)
                               for o in self.objectives},
            } for evaluation in self.points],
        }

    def to_json(self) -> str:
        """Deterministic report: byte-identical for the same (space,
        strategy, seed, budget, objectives, workloads) regardless of
        ``--jobs``, artifact-cache temperature, or serve dispatch."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def build_frontier(evaluations: Sequence[object],
                   objectives: Sequence[Objective]
                   ) -> Tuple[List[object], int, float]:
    """(frontier sorted by candidate id, dominated count, hypervolume).

    The hypervolume is computed over the *whole* evaluated set with its
    own worst corner as reference, so it is comparable across strategies
    that evaluated the same points.
    """
    vectors = [objective_vector(e, objectives) for e in evaluations]
    survivors = pareto_indices(vectors, objectives)
    front = sorted((evaluations[i] for i in survivors),
                   key=lambda e: e.candidate.id)
    volume = hypervolume([vectors[i] for i in survivors], objectives,
                         reference=[
                             (max if o.sense == MINIMIZE else min)(
                                 vec[d] for vec in vectors)
                             for d, o in enumerate(objectives)]
                         ) if vectors else 0.0
    return front, len(evaluations) - len(survivors), volume
