"""Pluggable search strategies over a :class:`ParameterSpace`.

A strategy decides *which* candidates to spend the evaluation budget on;
it never computes a score itself — every number comes from the runner
(:mod:`repro.dse.runner`), and the frontier is built afterwards from the
full-fidelity evaluations the strategy returns.  That split keeps every
strategy trivially deterministic: given the same space, seed and budget,
the sequence of runner calls — and therefore the frontier — is
identical whether the runner evaluates inline, with ``--jobs``, or by
dispatching to a ``repro serve`` instance.

Budget semantics: ``budget`` counts **candidate-evaluations at any
fidelity** (a successive-halving rung evaluation on the cheap workload
subset costs one unit, same as a full-suite evaluation).  ``None``
means unbounded — exhaust the feasible space.  Ranking ties always
break on :attr:`Candidate.id`, never on dict/hash order.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.dse.objectives import MINIMIZE, Objective
from repro.dse.space import Candidate, ParameterSpace


def _rank_key(objective: Objective):
    """Sort key: best candidate first, ties broken by identity."""
    if objective.sense == MINIMIZE:
        return lambda e: (objective.value(e), e.candidate.id)
    return lambda e: (-objective.value(e), e.candidate.id)


class Strategy:
    """One search policy; subclasses override :meth:`explore`."""

    #: the registry/CLI name.
    name = ""

    def explore(self, space: ParameterSpace,
                objectives: Sequence[Objective], runner,
                budget, rng: random.Random) -> List[object]:
        """Spend the budget; return full-fidelity evaluations."""
        raise NotImplementedError


class GridSearch(Strategy):
    """Exhaustive enumeration in the space's deterministic order.

    With a budget smaller than the feasible space, only the first
    ``budget`` points (enumeration order) are evaluated — predictable,
    but biased towards the early axes; prefer ``random`` for a fair
    subsample.
    """

    name = "grid"

    def explore(self, space, objectives, runner, budget, rng):
        pool = space.candidates()
        if budget is not None:
            pool = pool[:budget]
        return runner.evaluate(pool)


class RandomSearch(Strategy):
    """Seeded uniform sampling without replacement."""

    name = "random"

    def explore(self, space, objectives, runner, budget, rng):
        count = budget if budget is not None else space.size
        return runner.evaluate(space.sample(count, rng))


class SuccessiveHalving(Strategy):
    """Two-rung successive halving: screen cheap, promote survivors.

    Rung 0 samples ``floor(4B/5)`` candidates and scores each on the
    cheap workload subset (the first quarter of the runner's workload
    list); rung 1 promotes the top quarter of the rung — capped by the
    remaining budget, but always at least one — to the full suite.
    Only rung-1 (full-fidelity) evaluations are returned; a cheap-subset
    score is a screening signal, not a comparable result.
    """

    name = "shalving"
    keep_fraction = 0.25
    cheap_fraction = 0.25

    def explore(self, space, objectives, runner, budget, rng):
        pool = space.candidates()
        if not pool:
            return []
        budget = budget if budget is not None else len(pool)
        rung = space.sample(max(1, (4 * budget) // 5), rng)
        cheap = runner.cheap_workloads(self.cheap_fraction)
        screened = runner.evaluate(rung, cheap)
        screened = sorted(screened, key=_rank_key(objectives[0]))
        remaining = budget - len(rung)
        promote = max(1, min(int(len(rung) * self.keep_fraction),
                             remaining))
        runner.rung_promoted(rung_size=len(rung), promoted=promote,
                             cheap_workloads=len(cheap))
        return runner.evaluate(
            [evaluation.candidate for evaluation in screened[:promote]])


class HillClimb(Strategy):
    """Greedy local search with seeded random restarts.

    From a sampled start, repeatedly evaluate the one-step neighbours
    (axis value moved to an adjacent entry) and move to the first that
    improves the primary objective; when no neighbour improves (or the
    space is explicit and has no neighbourhood), restart from a fresh
    sample until the budget is spent.  Every full evaluation made along
    the way is returned, so the frontier still sees the whole walk.
    """

    name = "hillclimb"

    def explore(self, space, objectives, runner, budget, rng):
        pool = space.candidates()
        if not pool:
            return []
        budget = budget if budget is not None else len(pool)
        primary = objectives[0]
        visited: Dict[str, object] = {}

        def score(candidate: Candidate):
            evaluation = visited.get(candidate.id)
            if evaluation is None:
                evaluation = runner.evaluate([candidate])[0]
                visited[candidate.id] = evaluation
            return evaluation

        while len(visited) < budget and len(visited) < len(pool):
            unvisited = [c for c in pool if c.id not in visited]
            current = unvisited[rng.randrange(len(unvisited))]
            best = score(current)
            improving = True
            while improving and len(visited) < budget:
                improving = False
                for neighbor in space.neighbors(current):
                    if len(visited) >= budget:
                        break
                    known = neighbor.id in visited
                    evaluation = score(neighbor)
                    if not known and primary.better(
                            primary.value(evaluation),
                            primary.value(best)):
                        current, best = neighbor, evaluation
                        improving = True
                        break
        return sorted(visited.values(), key=lambda e: e.candidate.id)


#: the strategy registry, keyed by CLI/JSON name.
STRATEGIES: Dict[str, Strategy] = {
    strategy.name: strategy
    for strategy in (GridSearch(), RandomSearch(), SuccessiveHalving(),
                     HillClimb())
}


def resolve_strategy(name: str) -> Strategy:
    """Look up a strategy; :class:`ValueError` names the valid set."""
    strategy = STRATEGIES.get(name)
    if strategy is None:
        valid = ", ".join(sorted(STRATEGIES))
        raise ValueError(f"unknown strategy {name!r}: valid strategies "
                         f"are {valid}")
    return strategy
