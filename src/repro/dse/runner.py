"""Candidate-batch execution for the design-space explorer.

Two runners share one contract — ``evaluate(candidates, names)`` returns
one :class:`Evaluation` per candidate, memoised per (candidate,
workload-set) so strategies may re-request points for free:

- :class:`MatrixRunner` — the production path.  Batches go through the
  trace-once / replay-many engine
  (:func:`repro.system.sweep.evaluate_matrix` with its
  ``TranslationMemo`` and :class:`~repro.system.artifacts.ArtifactCache`
  layers), serially or with ``jobs`` processes, or are dispatched as
  ``sweep`` jobs to a running ``repro serve`` instance via
  :class:`~repro.serve.client.ServeClient`.  All three modes return
  bit-identical floats (JSON round-trips floats exactly), which is what
  makes the frontier byte-identical across them.
- :class:`TraceRunner` — evaluates against caller-supplied traces with
  the exact float-operation sequence the historical
  ``analysis.shape_search.search_shapes`` used, so its back-compat
  wrapper reproduces pre-``repro.dse`` outputs to the last bit.

Everything either runner observes flows through the ``dse.*`` namespace
of :mod:`repro.obs` (counters via :class:`DseStats`, events via the
injected :class:`~repro.obs.Telemetry`); telemetry never changes a
returned number.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.dim.memo import TranslationMemo
from repro.dim.params import DimParams
from repro.obs import Telemetry
from repro.obs.schema import dse_counters, dse_timers
from repro.sim.stats import TimingModel
from repro.sim.trace import Trace
from repro.system.artifacts import ArtifactCache
from repro.system.colreplay import (
    ColumnarContext,
    baseline_metrics_columnar,
    columnar_available,
    evaluate_trace_columnar,
)
from repro.system.config import SystemConfig, SystemSpec
from repro.system.energy import EnergyParams, energy_ratio
from repro.system.sweep import evaluate_matrix
from repro.system.traceeval import baseline_metrics, evaluate_trace
from repro.workloads import workload_names

from repro.dse.space import Candidate, ParameterSpace


@dataclass(frozen=True)
class Evaluation:
    """One candidate scored against one workload set."""

    candidate: Candidate
    #: the canonical system-configuration name the candidate denotes.
    system: str
    workloads: Tuple[str, ...]
    geomean_speedup: float
    geomean_energy_ratio: float
    gates: int
    #: True when ``workloads`` is the runner's full workload set; only
    #: full evaluations enter a frontier.
    full: bool


@dataclass
class DseStats:
    """Counters and timers of one exploration (``dse.*`` schema)."""

    evaluations: int = 0        # candidate-evaluations, any fidelity
    cells: int = 0              # candidate x workload cells requested
    batches: int = 0
    full_evaluations: int = 0
    cheap_evaluations: int = 0
    promotions: int = 0
    dispatched_batches: int = 0  # batches sent to a serve instance
    frontier_points: int = 0
    dominated: int = 0
    total_seconds: float = 0.0
    evaluate_seconds: float = 0.0

    def counters(self) -> Dict[str, int]:
        """This record under the unified ``dse.*`` counter schema."""
        return dse_counters(self)

    def timer_values(self) -> Dict[str, float]:
        """Wall-clock phases under the unified ``dse.*`` timer schema."""
        return dse_timers(self)


class _RunnerBase:
    """Shared memoisation, accounting and telemetry plumbing."""

    def __init__(self, workloads: Sequence[str],
                 telemetry: Optional[Telemetry] = None):
        self.workloads: Tuple[str, ...] = tuple(workloads)
        if not self.workloads:
            raise ValueError("a runner needs at least one workload")
        self.telemetry = telemetry
        self.stats = DseStats()
        self._memo: Dict[Tuple[str, Tuple[str, ...]], Evaluation] = {}

    @property
    def _observing(self) -> bool:
        return self.telemetry is not None and self.telemetry.enabled

    def cheap_workloads(self, fraction: float = 0.25) -> Tuple[str, ...]:
        """The low-fidelity screening subset: the first ``fraction`` of
        the workload list (deterministic — a prefix, not a sample)."""
        count = max(1, math.ceil(len(self.workloads) * fraction))
        return self.workloads[:count]

    def evaluate(self, candidates: Sequence[Candidate],
                 names: Optional[Sequence[str]] = None
                 ) -> List[Evaluation]:
        """Score ``candidates`` against ``names`` (default: the full
        workload set).  Already-scored (candidate, names) pairs are
        served from the memo; the rest go down in one batch."""
        names = tuple(names) if names is not None else self.workloads
        full = names == self.workloads
        fresh: List[Candidate] = []
        queued = set()
        for candidate in candidates:
            key = (candidate.id, names)
            if key not in self._memo and candidate.id not in queued:
                queued.add(candidate.id)
                fresh.append(candidate)
        if fresh:
            start = time.perf_counter()
            scored = self._score_batch(fresh, names)
            self.stats.evaluate_seconds += time.perf_counter() - start
            self.stats.batches += 1
            self.stats.evaluations += len(fresh)
            self.stats.cells += len(fresh) * len(names)
            if full:
                self.stats.full_evaluations += len(fresh)
            else:
                self.stats.cheap_evaluations += len(fresh)
            for candidate, (system, speedup, energy, gates) in zip(
                    fresh, scored):
                self._memo[(candidate.id, names)] = Evaluation(
                    candidate=candidate, system=system, workloads=names,
                    geomean_speedup=speedup,
                    geomean_energy_ratio=energy, gates=gates, full=full)
            if self._observing:
                self.telemetry.emit("dse.batch_evaluated",
                                    width=len(fresh),
                                    workloads=len(names), full=full,
                                    dispatched=self._dispatched)
        return [self._memo[(c.id, names)] for c in candidates]

    def rung_promoted(self, rung_size: int, promoted: int,
                      cheap_workloads: int) -> None:
        """Record a successive-halving promotion (stats + event)."""
        self.stats.promotions += promoted
        if self._observing:
            self.telemetry.emit("dse.rung_promoted", rung=rung_size,
                                promoted=promoted,
                                cheap_workloads=cheap_workloads)

    #: overridden by runners that can dispatch to a service.
    _dispatched = False

    def _score_batch(self, batch: Sequence[Candidate],
                     names: Tuple[str, ...]
                     ) -> List[Tuple[str, float, float, int]]:
        """(system name, geomean speedup, geomean energy, gates) per
        candidate, in batch order."""
        raise NotImplementedError


class MatrixRunner(_RunnerBase):
    """Evaluate batches through the matrix sweep engine or a service."""

    def __init__(self, space: ParameterSpace,
                 workloads: Optional[Sequence[str]] = None,
                 base_dim: Optional[DimParams] = None,
                 timing: Optional[TimingModel] = None,
                 energy_params: EnergyParams = EnergyParams(),
                 jobs: int = 1, fast: bool = False,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir=None, client=None,
                 telemetry: Optional[Telemetry] = None):
        super().__init__(workloads if workloads is not None
                         else workload_names(), telemetry)
        if cache is None and cache_dir is not None:
            cache = ArtifactCache(cache_dir)
        if client is not None and timing is not None \
                and timing != TimingModel():
            raise ValueError("serve dispatch evaluates under the "
                             "default timing model; drop the custom "
                             "timing or the client")
        self.space = space
        self.base_dim = base_dim
        self.timing = timing
        self.energy_params = energy_params
        self.jobs = jobs
        self.fast = fast
        self.cache = cache
        self.client = client

    @property
    def _dispatched(self) -> bool:
        return self.client is not None

    def config_for(self, candidate: Candidate) -> SystemConfig:
        return self.space.config_of(candidate, self.base_dim,
                                    self.timing)

    def _score_batch(self, batch, names):
        if self.client is not None:
            return self._score_remote(batch, names)
        configs = [self.config_for(c) for c in batch]
        matrix = evaluate_matrix(configs, names=list(names),
                                 energy_params=self.energy_params,
                                 jobs=self.jobs, fast=self.fast,
                                 cache=self.cache,
                                 telemetry=self.telemetry)
        scored = []
        for candidate, config in zip(batch, configs):
            suite = matrix.suite(config.name)
            scored.append((config.name, suite.geomean_speedup,
                           suite.geomean_energy_ratio,
                           self.space.gates_of(candidate)))
        return scored

    def _score_remote(self, batch, names):
        """One coalescable ``sweep`` job per batch.

        The service evaluates through the same
        :func:`~repro.system.sweep.evaluate_matrix` code path; its
        ``matrix_json`` carries the geomeans as JSON floats, which
        round-trip exactly — so remote scores equal inline scores bit
        for bit.
        """
        specs = [self.space.wire_spec(c, self.base_dim) for c in batch]
        job = self.client.submit("sweep", configs=specs,
                                 names=list(names), fast=self.fast)
        payload = self.client.wait(job["job_id"])
        matrix = json.loads(payload["result"]["matrix_json"])
        by_system = {entry["system"]: entry
                     for entry in matrix["systems"]}
        self.stats.dispatched_batches += 1
        scored = []
        for candidate in batch:
            name = self.config_for(candidate).name
            entry = by_system[name]
            scored.append((name, entry["geomean_speedup"],
                           entry["geomean_energy_ratio"],
                           self.space.gates_of(candidate)))
        return scored


class TraceRunner(_RunnerBase):
    """Evaluate candidates against pre-simulated traces.

    This is the engine behind the
    :func:`repro.analysis.shape_search.search_shapes` back-compat
    wrapper, so it deliberately replays that function's exact float
    arithmetic: per-workload speedups multiplied in trace-dict order,
    then one ``** (1/n)`` — same operations, same order, same bits.
    With numpy present each workload keeps one shared
    :class:`~repro.system.colreplay.ColumnarContext`; otherwise one
    :class:`~repro.dim.memo.TranslationMemo` per workload is shared
    across every candidate, exactly as the old grid loop shared it.
    Both engines compute bit-identical metrics, so the scores (and any
    frontier built from them) do not depend on which one ran.
    """

    def __init__(self, space: ParameterSpace,
                 traces: Mapping[str, Trace],
                 dim: Optional[DimParams] = None,
                 timing: Optional[TimingModel] = None,
                 energy_params: EnergyParams = EnergyParams(),
                 telemetry: Optional[Telemetry] = None):
        if not traces:
            raise ValueError("TraceRunner needs at least one trace")
        super().__init__(tuple(traces), telemetry)
        self.space = space
        self.traces = dict(traces)
        self.dim = dim if dim is not None \
            else DimParams(cache_slots=64, speculation=True)
        self.timing = timing if timing is not None else TimingModel()
        self.energy_params = energy_params
        # columnar when numpy is importable, event-driven otherwise;
        # both produce bit-identical metrics, so the frontier is the
        # same either way.
        self.contexts: Optional[Dict[str, ColumnarContext]] = None
        self.memos: Optional[Dict[str, TranslationMemo]] = None
        if columnar_available():
            self.contexts = {name: ColumnarContext(trace, name=name)
                             for name, trace in self.traces.items()}
            self.baselines = {
                name: baseline_metrics_columnar(context, self.timing)
                for name, context in self.contexts.items()}
        else:
            self.baselines = {name: baseline_metrics(trace, self.timing)
                              for name, trace in self.traces.items()}
            self.memos = {name: TranslationMemo() for name in self.traces}

    def _score_batch(self, batch, names):
        wanted = set(names)
        scored = []
        for candidate in batch:
            config = SystemSpec.of(
                self.space.shape_of(candidate),
                self.space.dim_of(candidate, self.dim),
            ).build(timing=self.timing)
            speed_product = 1.0
            energy_product = 1.0
            for name, trace in self.traces.items():
                if name not in wanted:
                    continue
                if self.contexts is not None:
                    metrics = evaluate_trace_columnar(
                        trace, config, name=name,
                        context=self.contexts[name])
                else:
                    metrics = evaluate_trace(trace, config,
                                             memo=self.memos[name])
                base = self.baselines[name]
                speed_product *= base.cycles / metrics.cycles
                energy_product *= energy_ratio(base, metrics,
                                               self.energy_params)
            exponent = 1.0 / len(names)
            scored.append((config.name, speed_product ** exponent,
                           energy_product ** exponent,
                           self.space.gates_of(candidate)))
        return scored
