"""The stable public API facade.

Seven verbs cover the package's evaluation surface, re-exported from
``repro`` itself; internal modules remain importable but are no longer
the advertised entry points:

- :class:`SystemSpec` — the one canonical, JSON-round-trippable system
  description (:mod:`repro.system.config`); every entry point (CLI
  subcommands, serve protocol, DSE runners, MPSoC allocator) builds
  configurations from it.
- :func:`run` — one target, plain vs accelerated, bit-exact.
- :func:`evaluate` — the Table 2 suite (or a subset) on one system.
- :func:`sweep` — the full workloads x configurations matrix through
  the trace-once / replay-many engine.
- :func:`connect` — a client for a running ``repro serve`` service or
  ``repro fleet`` coordinator (both speak the same ``/v1`` protocol),
  which executes the same verbs as queued jobs with batch coalescing
  and warm caches (:mod:`repro.serve`, :mod:`repro.fleet`); results
  are byte-identical to the offline calls above.
- :func:`explore` — multi-objective design-space exploration
  (:mod:`repro.dse`): seeded, budget-bounded strategies over the joint
  (shape, cache, speculation, policy) space, returning a Pareto
  frontier with exact hypervolume.
- :func:`mpsoc` — heterogeneous MPSoC scenario exploration
  (:mod:`repro.mpsoc`): rank core-count x array-shape allocations
  under an area budget against a weighted traffic mix.
- :func:`corpus` — generate a seeded synthetic workload corpus
  (:mod:`repro.corpus`) of self-checking assembly kernels and register
  them so every other verb sees them as ordinary workloads.
- :func:`traffic` — replay a seeded, Zipf-skewed traffic mix against a
  connected serve/fleet endpoint (:mod:`repro.traffic`) and report
  latency percentiles, coalescing and shed rates.

:func:`build_config` remains as a deprecated shim over
``SystemSpec(array=...).build()``.

All verbs accept an optional :class:`repro.obs.Telemetry` sink where
observation makes sense; telemetry never changes any returned number.

>>> import repro
>>> config = repro.SystemSpec(array="C3", slots=64,
...                           speculation=True).build()
>>> result = repro.run("crc", config=config)
>>> round(result.speedup, 1) > 1.0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.asm import assemble
from repro.asm.program import Program
from repro.minic import compile_to_program
from repro.obs import Telemetry
from repro.sim.cpu import RunResult, run_program
from repro.system.artifacts import ArtifactCache
from repro.dim.params import DimParams
from repro.system.config import SystemConfig, SystemSpec
from repro.system.coupled import CoupledRunResult, run_coupled
from repro.system.energy import EnergyParams, energy_ratio
from repro.system.sweep import MatrixResult, evaluate_matrix, paper_matrix
from repro.system.traceeval import (
    SystemMetrics,
    baseline_metrics,
    evaluate_trace,
)
from repro.workloads import load_workload, workload_names
from repro.workloads.suite import SuiteResult, evaluate_suite

#: a target: workload name, ``.s``/``.asm``/``.c`` path, or a Program.
Target = Union[str, Program]


def build_config(array: str = "C3", slots: int = 64,
                 speculation: bool = False) -> SystemConfig:
    """Build a system configuration from Table 1's array names.

    .. deprecated:: 1.2
        A thin back-compat shim over the canonical
        :class:`repro.system.config.SystemSpec`; new code should write
        ``SystemSpec(array=array, slots=slots,
        speculation=speculation).build()``, which also covers arbitrary
        geometries (the shape form).  Raises :class:`ValueError` naming
        the valid arrays on an unknown ``array``.
    """
    return SystemSpec(array=array, slots=slots,
                      speculation=speculation).build()


def load_target(target: Target) -> Program:
    """Resolve a workload name, assembly/mini-C path, or Program."""
    if isinstance(target, Program):
        return target
    if target in workload_names():
        return load_workload(target)
    if target.endswith(".s") or target.endswith(".asm"):
        with open(target) as handle:
            return assemble(handle.read())
    if target.endswith(".c"):
        with open(target) as handle:
            return compile_to_program(handle.read(), source_name=target)
    raise ValueError(
        f"unknown target {target!r}: expected a workload name "
        f"(see repro.workloads.workload_names()), a .s file, or a "
        f".c file")


@dataclass(frozen=True)
class RunComparison:
    """One target run plain and accelerated, with derived metrics."""

    config: SystemConfig
    plain: RunResult
    accelerated: CoupledRunResult
    baseline: SystemMetrics
    metrics: SystemMetrics
    energy_params: EnergyParams = EnergyParams()

    @property
    def speedup(self) -> float:
        return self.plain.stats.cycles / self.accelerated.stats.cycles

    @property
    def energy_ratio(self) -> float:
        """How many times less energy the accelerated system uses."""
        return energy_ratio(self.baseline, self.metrics,
                            self.energy_params)


def run(target: Target, config: Optional[SystemConfig] = None,
        fast: bool = False,
        telemetry: Optional[Telemetry] = None) -> RunComparison:
    """Run ``target`` on the plain MIPS and on the coupled system.

    The two runs are asserted bit-exact (same program output); the
    returned comparison carries both raw results plus the trace-driven
    baseline/accelerated metrics used for energy accounting.
    """
    program = load_target(target)
    config = config if config is not None \
        else SystemSpec(array="C3").build()
    plain = run_program(program, collect_trace=True, fast=fast,
                        telemetry=telemetry)
    accelerated = run_coupled(program, config, fast=fast)
    assert accelerated.output == plain.output, \
        "accelerated run diverged from the plain run"
    baseline = baseline_metrics(plain.trace, config.timing)
    metrics = evaluate_trace(plain.trace, config, telemetry=telemetry)
    return RunComparison(config=config, plain=plain,
                         accelerated=accelerated, baseline=baseline,
                         metrics=metrics)


def evaluate(config: Optional[SystemConfig] = None,
             names: Optional[Iterable[str]] = None,
             jobs: int = 1, fast: bool = False,
             energy_params: EnergyParams = EnergyParams()) -> SuiteResult:
    """Evaluate the whole suite (or ``names``) against one system."""
    config = config if config is not None else SystemSpec(
        array="C2", slots=64, speculation=True).build()
    return evaluate_suite(config, names=names, jobs=jobs, fast=fast,
                          energy_params=energy_params)


def sweep(configs: Optional[Sequence[SystemConfig]] = None,
          names: Optional[Iterable[str]] = None,
          jobs: int = 1, fast: bool = False,
          cache: Optional[ArtifactCache] = None,
          cache_dir: Optional[Path] = None,
          telemetry: Optional[Telemetry] = None,
          energy_params: EnergyParams = EnergyParams(),
          engine: str = "auto") -> MatrixResult:
    """Evaluate a workloads x configurations matrix.

    Defaults to the paper's full Table 2 matrix
    (:func:`repro.system.sweep.paper_matrix`).  ``engine`` picks the
    replay implementation (``auto``/``event``/``columnar``); results
    are identical whichever one runs.
    """
    configs = list(configs) if configs is not None else paper_matrix()
    return evaluate_matrix(configs, names=names, jobs=jobs, fast=fast,
                           cache=cache, cache_dir=cache_dir,
                           telemetry=telemetry,
                           energy_params=energy_params, engine=engine)


def connect(url: str = "http://127.0.0.1:8350", timeout: float = 60.0):
    """A :class:`repro.serve.ServeClient` for a running service.

    Works unchanged against a ``repro fleet`` coordinator — the fleet
    speaks the same ``/v1`` protocol (for high-throughput streaming
    against a fleet, :class:`repro.fleet.FleetClient` adds bounded
    in-flight windows).  Verifies the protocol version against the
    server's ``healthz`` before returning.  Deferred import so the
    offline API keeps zero service dependencies.
    """
    from repro.serve.client import connect as serve_connect

    return serve_connect(url, timeout=timeout)


def explore(space=None, strategy: str = "grid",
            objectives: Sequence[str] = ("speedup", "area"),
            workloads: Optional[Sequence[str]] = None,
            budget: Optional[int] = None, seed: int = 0,
            jobs: int = 1, fast: bool = False,
            cache: Optional[ArtifactCache] = None,
            cache_dir: Optional[Path] = None, client=None,
            telemetry: Optional[Telemetry] = None, **kwargs):
    """Seeded, budget-bounded design-space exploration
    (:mod:`repro.dse`); returns a Pareto
    :class:`~repro.dse.frontier.FrontierResult`.

    Deferred import so the core API carries no exploration
    dependencies; see :func:`repro.dse.explore` for the full parameter
    set (``client`` dispatches evaluation batches to a running
    ``repro serve`` instance).
    """
    from repro.dse import explore as dse_explore

    return dse_explore(space=space, strategy=strategy,
                       objectives=objectives, workloads=workloads,
                       budget=budget, seed=seed, jobs=jobs, fast=fast,
                       cache=cache, cache_dir=cache_dir, client=client,
                       telemetry=telemetry, **kwargs)


def mpsoc(spec=None, **kwargs):
    """Explore heterogeneous MPSoC allocations (:mod:`repro.mpsoc`).

    Rank core-count x array-shape mixes under an area budget (Sys-S/M/L
    presets or explicit gates) against a weighted traffic mix, through
    the same four DSE strategies and Pareto frontier as
    :func:`explore`; returns a
    :class:`~repro.mpsoc.MpsocExploration`.  Deferred import so the
    core API carries no scenario-layer dependencies; see
    :func:`repro.mpsoc.explore_mix` for the full parameter set
    (``client`` dispatches evaluation to a running ``repro serve`` or
    ``repro fleet`` instance).
    """
    from repro.mpsoc import explore_mix

    return explore_mix(spec, **kwargs)


def corpus(seed: int = 0, count: int = 100, profile: str = "mixed",
           register: bool = True,
           telemetry: Optional[Telemetry] = None):
    """Generate a seeded synthetic workload corpus (:mod:`repro.corpus`).

    Emits ``count`` parameterised, self-checking assembly kernels drawn
    from the named knob ``profile`` (``mixed``/``dataflow``/``control``/
    ``memory``) and, when ``register`` is true, registers them through
    the :mod:`repro.workloads` registry so :func:`run`,
    :func:`evaluate`, :func:`sweep`, :func:`explore` and the services
    consume them like any built-in workload.  Returns the
    :class:`~repro.corpus.Corpus`; write its manifest with
    ``.write(path)``.  Deferred import so the core API carries no
    generator dependencies.
    """
    from repro.corpus import CorpusKnobs, generate_corpus, \
        register_corpus

    generated = generate_corpus(seed, count,
                                knobs=CorpusKnobs.named(profile),
                                telemetry=telemetry)
    if register:
        register_corpus(generated, telemetry=telemetry)
    return generated


def traffic(client, spec=None, names: Optional[Sequence[str]] = None,
            telemetry: Optional[Telemetry] = None, **kwargs):
    """Replay a seeded traffic mix against a live service
    (:mod:`repro.traffic`).

    ``client`` is a :func:`connect` result (serve or fleet — same /v1
    protocol); ``spec`` a :class:`~repro.traffic.TrafficSpec` (built
    from ``kwargs`` when omitted); ``names`` the candidate workloads
    (defaults to every registered name, including corpus kernels).
    Returns a :class:`~repro.traffic.TrafficReport` with latency
    percentiles, batch-coalescing hit rate and shed rate measured from
    real service telemetry.  Deferred import so the core API carries no
    replay dependencies.
    """
    from repro.traffic import TrafficSpec, replay_traffic

    if spec is None:
        spec = TrafficSpec(**kwargs)
        kwargs = {}
    elif kwargs:
        raise TypeError("pass either spec or TrafficSpec kwargs, "
                        "not both")
    picked = list(names) if names is not None else workload_names()
    return replay_traffic(client, spec, picked, telemetry=telemetry)


__all__ = [
    "Target",
    "DimParams",
    "RunComparison",
    "SystemSpec",
    "build_config",
    "connect",
    "corpus",
    "explore",
    "load_target",
    "mpsoc",
    "run",
    "evaluate",
    "sweep",
    "traffic",
]
