"""The stable public API facade.

Four verbs cover the package's evaluation surface, re-exported from
``repro`` itself; internal modules remain importable but are no longer
the advertised entry points:

- :func:`build_config` — the single way a system configuration is
  constructed (the CLI routes every subcommand through it).
- :func:`run` — one target, plain vs accelerated, bit-exact.
- :func:`evaluate` — the Table 2 suite (or a subset) on one system.
- :func:`sweep` — the full workloads x configurations matrix through
  the trace-once / replay-many engine.
- :func:`connect` — a client for a running ``repro serve`` service,
  which executes the same three verbs as queued jobs with batch
  coalescing and warm caches (:mod:`repro.serve`); results are
  byte-identical to the offline calls above.

All four accept an optional :class:`repro.obs.Telemetry` sink where
observation makes sense; telemetry never changes any returned number.

>>> import repro
>>> config = repro.build_config("C3", slots=64, speculation=True)
>>> result = repro.run("crc", config=config)
>>> round(result.speedup, 1) > 1.0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.asm import assemble
from repro.asm.program import Program
from repro.minic import compile_to_program
from repro.obs import Telemetry
from repro.sim.cpu import RunResult, run_program
from repro.system.artifacts import ArtifactCache
from repro.system.config import SystemConfig, paper_system
from repro.system.coupled import CoupledRunResult, run_coupled
from repro.system.energy import EnergyParams, energy_ratio
from repro.system.sweep import MatrixResult, evaluate_matrix, paper_matrix
from repro.system.traceeval import (
    SystemMetrics,
    baseline_metrics,
    evaluate_trace,
)
from repro.workloads import load_workload, workload_names
from repro.workloads.suite import SuiteResult, evaluate_suite

#: a target: workload name, ``.s``/``.asm``/``.c`` path, or a Program.
Target = Union[str, Program]


def build_config(array: str = "C3", slots: int = 64,
                 speculation: bool = False) -> SystemConfig:
    """Build a system configuration from Table 1's array names.

    The one configuration constructor every entry point (CLI
    subcommands included) routes through.  Raises :class:`ValueError`
    naming the valid arrays on an unknown ``array``.
    """
    return paper_system(array, slots, speculation)


def load_target(target: Target) -> Program:
    """Resolve a workload name, assembly/mini-C path, or Program."""
    if isinstance(target, Program):
        return target
    if target in workload_names():
        return load_workload(target)
    if target.endswith(".s") or target.endswith(".asm"):
        with open(target) as handle:
            return assemble(handle.read())
    if target.endswith(".c"):
        with open(target) as handle:
            return compile_to_program(handle.read(), source_name=target)
    raise ValueError(
        f"unknown target {target!r}: expected a workload name "
        f"(see repro.workloads.workload_names()), a .s file, or a "
        f".c file")


@dataclass(frozen=True)
class RunComparison:
    """One target run plain and accelerated, with derived metrics."""

    config: SystemConfig
    plain: RunResult
    accelerated: CoupledRunResult
    baseline: SystemMetrics
    metrics: SystemMetrics
    energy_params: EnergyParams = EnergyParams()

    @property
    def speedup(self) -> float:
        return self.plain.stats.cycles / self.accelerated.stats.cycles

    @property
    def energy_ratio(self) -> float:
        """How many times less energy the accelerated system uses."""
        return energy_ratio(self.baseline, self.metrics,
                            self.energy_params)


def run(target: Target, config: Optional[SystemConfig] = None,
        fast: bool = False,
        telemetry: Optional[Telemetry] = None) -> RunComparison:
    """Run ``target`` on the plain MIPS and on the coupled system.

    The two runs are asserted bit-exact (same program output); the
    returned comparison carries both raw results plus the trace-driven
    baseline/accelerated metrics used for energy accounting.
    """
    program = load_target(target)
    config = config if config is not None else build_config()
    plain = run_program(program, collect_trace=True, fast=fast,
                        telemetry=telemetry)
    accelerated = run_coupled(program, config, fast=fast)
    assert accelerated.output == plain.output, \
        "accelerated run diverged from the plain run"
    baseline = baseline_metrics(plain.trace, config.timing)
    metrics = evaluate_trace(plain.trace, config, telemetry=telemetry)
    return RunComparison(config=config, plain=plain,
                         accelerated=accelerated, baseline=baseline,
                         metrics=metrics)


def evaluate(config: Optional[SystemConfig] = None,
             names: Optional[Iterable[str]] = None,
             jobs: int = 1, fast: bool = False,
             energy_params: EnergyParams = EnergyParams()) -> SuiteResult:
    """Evaluate the whole suite (or ``names``) against one system."""
    config = config if config is not None else build_config("C2", 64,
                                                            True)
    return evaluate_suite(config, names=names, jobs=jobs, fast=fast,
                          energy_params=energy_params)


def sweep(configs: Optional[Sequence[SystemConfig]] = None,
          names: Optional[Iterable[str]] = None,
          jobs: int = 1, fast: bool = False,
          cache: Optional[ArtifactCache] = None,
          cache_dir: Optional[Path] = None,
          telemetry: Optional[Telemetry] = None,
          energy_params: EnergyParams = EnergyParams(),
          engine: str = "auto") -> MatrixResult:
    """Evaluate a workloads x configurations matrix.

    Defaults to the paper's full Table 2 matrix
    (:func:`repro.system.sweep.paper_matrix`).  ``engine`` picks the
    replay implementation (``auto``/``event``/``columnar``); results
    are identical whichever one runs.
    """
    configs = list(configs) if configs is not None else paper_matrix()
    return evaluate_matrix(configs, names=names, jobs=jobs, fast=fast,
                           cache=cache, cache_dir=cache_dir,
                           telemetry=telemetry,
                           energy_params=energy_params, engine=engine)


def connect(url: str = "http://127.0.0.1:8350", timeout: float = 60.0):
    """A :class:`repro.serve.ServeClient` for a running service.

    Verifies the protocol version against the server's ``healthz``
    before returning.  Deferred import so the offline API keeps zero
    service dependencies.
    """
    from repro.serve.client import connect as serve_connect

    return serve_connect(url, timeout=timeout)


def explore(space=None, strategy: str = "grid",
            objectives: Sequence[str] = ("speedup", "area"),
            workloads: Optional[Sequence[str]] = None,
            budget: Optional[int] = None, seed: int = 0,
            jobs: int = 1, fast: bool = False,
            cache: Optional[ArtifactCache] = None,
            cache_dir: Optional[Path] = None, client=None,
            telemetry: Optional[Telemetry] = None, **kwargs):
    """Seeded, budget-bounded design-space exploration
    (:mod:`repro.dse`); returns a Pareto
    :class:`~repro.dse.frontier.FrontierResult`.

    Deferred import so the core API carries no exploration
    dependencies; see :func:`repro.dse.explore` for the full parameter
    set (``client`` dispatches evaluation batches to a running
    ``repro serve`` instance).
    """
    from repro.dse import explore as dse_explore

    return dse_explore(space=space, strategy=strategy,
                       objectives=objectives, workloads=workloads,
                       budget=budget, seed=seed, jobs=jobs, fast=fast,
                       cache=cache, cache_dir=cache_dir, client=client,
                       telemetry=telemetry, **kwargs)


__all__ = [
    "Target",
    "RunComparison",
    "build_config",
    "connect",
    "explore",
    "load_target",
    "run",
    "evaluate",
    "sweep",
]
