"""`repro.traffic` — seeded traffic-mix replay against serve/fleet.

Builds fully deterministic request schedules (Zipf-skewed popularity,
hot-set rotation, Poisson/burst/uniform open-loop arrivals,
priority/deadline mixes) and replays them open-loop against any /v1
endpoint — a single :mod:`repro.serve` service or a
:mod:`repro.fleet` coordinator — reporting latency percentiles,
batch-coalescing hit rate and shed rate from real telemetry.

CLI: ``repro traffic``.
"""

from repro.traffic.replay import SHED_CODES, TrafficReport, TrafficStats, \
    replay_traffic
from repro.traffic.schedule import ARRIVALS, ScheduledRequest, TrafficSpec, \
    arrival_times, build_schedule, popularity, zipf_weights

__all__ = [
    "ARRIVALS",
    "SHED_CODES",
    "ScheduledRequest",
    "TrafficReport",
    "TrafficSpec",
    "TrafficStats",
    "arrival_times",
    "build_schedule",
    "popularity",
    "replay_traffic",
    "zipf_weights",
]
