"""Deterministic traffic schedules: who asks for what, when.

A schedule is computed entirely up front from a :class:`TrafficSpec` and
the candidate workload names, so the same ``(spec, names)`` pair always
yields the identical request sequence — the replayer only adds wall-clock
pacing.  Three generators compose:

- **Popularity** — Zipf over a rank permutation of the names: the rank-r
  workload is requested with weight ``1/(r+1)**s``.  With ``s=0`` traffic
  is uniform; ``s≈1.1`` gives the classic hot-head/long-tail shape.
- **Hot-set rotation** — every ``hot_rotate`` seconds the rank
  permutation is reshuffled (seeded by the epoch number), modelling
  popularity drift: the head workloads change while the shape stays
  Zipf.  Rotation exercises exactly the caches that assume a stable hot
  set (batch coalescing, artifact store, fleet shard affinity).
- **Arrivals** — open-loop processes: ``poisson`` (exponential gaps at
  ``rate`` req/s), ``burst`` (Poisson bursts of ``burst`` back-to-back
  requests), or ``uniform`` (fixed gaps).

Priorities and deadlines are drawn per-request from the spec's mix and
ride the existing serve protocol fields (``priority``, ``timeout``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

ARRIVALS = ("poisson", "burst", "uniform")

#: epoch-mixing constant for rotation reshuffles.
_EPOCH_MIX = 0x9E37_79B9


@dataclass(frozen=True)
class TrafficSpec:
    """One traffic mix, fully described."""

    seed: int = 0
    #: number of requests to schedule (ignored when ``duration`` is set).
    requests: int = 200
    #: schedule until this many seconds instead of a fixed count.
    duration: Optional[float] = None
    #: mean arrival rate, requests/second.
    rate: float = 50.0
    arrival: str = "poisson"
    #: requests per burst when ``arrival == "burst"``.
    burst: int = 8
    #: Zipf skew exponent; 0 = uniform popularity.
    zipf_s: float = 1.1
    #: seconds between hot-set rotations; 0 disables rotation.
    hot_rotate: float = 0.0
    #: priority mix drawn uniformly per request (serve orders by it).
    priorities: Tuple[int, ...] = (0,)
    #: fraction of requests carrying a server-side deadline.
    deadline_fraction: float = 0.0
    #: the deadline (seconds) attached to that fraction.
    deadline: float = 5.0
    fast: bool = True

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["priorities"] = list(self.priorities)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrafficSpec":
        kwargs = dict(payload)
        if "priorities" in kwargs:
            kwargs["priorities"] = tuple(kwargs["priorities"])
        return cls(**kwargs)


@dataclass(frozen=True)
class ScheduledRequest:
    """One planned request: when, what, and how urgent."""

    index: int
    #: seconds after replay start.
    at: float
    name: str
    priority: int
    #: server-side deadline in seconds, or None.
    deadline: Optional[float]
    #: which hot-set epoch the request belongs to.
    epoch: int

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


def zipf_weights(count: int, s: float) -> List[float]:
    """Unnormalised Zipf weights for ranks 0..count-1."""
    return [1.0 / (rank + 1) ** s for rank in range(count)]


def _epoch_ranking(names: Sequence[str], seed: int,
                   epoch: int) -> List[str]:
    """The popularity ranking (hottest first) for one rotation epoch."""
    ranked = list(names)
    Random((seed + 1) * _EPOCH_MIX + epoch * 7919).shuffle(ranked)
    return ranked


def _cumulative(weights: Sequence[float]) -> List[float]:
    total = 0.0
    out = []
    for w in weights:
        total += w
        out.append(total)
    return out


def _pick(cumulative: List[float], point: float) -> int:
    """Index of the first cumulative weight exceeding ``point``."""
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < point:
            lo = mid + 1
        else:
            hi = mid
    return lo


def arrival_times(spec: TrafficSpec) -> List[float]:
    """The deterministic arrival offsets (seconds) of the schedule."""
    if spec.arrival not in ARRIVALS:
        raise ValueError(
            f"unknown arrival process {spec.arrival!r}: expected one of "
            f"{', '.join(ARRIVALS)}")
    if spec.rate <= 0:
        raise ValueError("rate must be positive")
    rng = Random((spec.seed + 1) * 48271)
    times: List[float] = []
    t = 0.0

    def more() -> bool:
        if spec.duration is not None:
            return t <= spec.duration
        return len(times) < spec.requests

    if spec.arrival == "uniform":
        gap = 1.0 / spec.rate
        while True:
            t += gap
            if not more():
                break
            times.append(t)
    elif spec.arrival == "poisson":
        while True:
            t += rng.expovariate(spec.rate)
            if not more():
                break
            times.append(t)
    else:  # burst
        burst = max(1, spec.burst)
        burst_rate = spec.rate / burst
        while True:
            t += rng.expovariate(burst_rate)
            if not more():
                break
            for _ in range(burst):
                times.append(t)
                if spec.duration is None and len(times) >= spec.requests:
                    break
            if spec.duration is None and len(times) >= spec.requests:
                break
    if spec.duration is None:
        times = times[:spec.requests]
    return times


def build_schedule(spec: TrafficSpec,
                   names: Sequence[str]) -> List[ScheduledRequest]:
    """The full deterministic request schedule for ``spec`` over
    ``names``."""
    if not names:
        raise ValueError("traffic needs at least one workload name")
    times = arrival_times(spec)
    weights = zipf_weights(len(names), spec.zipf_s)
    cumulative = _cumulative(weights)
    total = cumulative[-1]
    draw = Random((spec.seed + 1) * 69621)

    schedule: List[ScheduledRequest] = []
    rankings: Dict[int, List[str]] = {}
    for index, at in enumerate(times):
        epoch = int(at // spec.hot_rotate) if spec.hot_rotate > 0 else 0
        ranking = rankings.get(epoch)
        if ranking is None:
            ranking = _epoch_ranking(names, spec.seed, epoch) \
                if spec.hot_rotate > 0 else list(names)
            rankings[epoch] = ranking
        name = ranking[_pick(cumulative, draw.random() * total)]
        priority = spec.priorities[draw.randrange(len(spec.priorities))]
        deadline = spec.deadline \
            if draw.random() < spec.deadline_fraction else None
        schedule.append(ScheduledRequest(
            index=index, at=at, name=name, priority=priority,
            deadline=deadline, epoch=epoch))
    return schedule


def popularity(schedule: Sequence[ScheduledRequest]) -> Dict[str, int]:
    """Request counts per workload, most-requested first."""
    counts: Dict[str, int] = {}
    for request in schedule:
        counts[request.name] = counts.get(request.name, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))
