"""The open-loop traffic replayer.

Drives a live serve/fleet endpoint with a precomputed schedule (see
:mod:`repro.traffic.schedule`).  Open loop means arrivals do not wait
for completions: a submitter thread sleeps to each scheduled offset and
submits regardless of backlog, so queueing delay shows up as *latency*
(measured from the scheduled arrival, not the submit call) instead of
being silently absorbed — the honest way to measure a service under
load.  The main thread polls the service's job list and marks
completions; backpressure rejections (``queue_full``,
``fleet_saturated``, ``shutting_down``) are counted as shed, exactly the
signal the coordinator's load-shed path emits.

The report combines client-side observations (latency percentiles, shed
rate, throughput) with the server's own ``serve.*`` telemetry diff
(batch-coalescing hit rate), so the numbers cross-check against the
service's metrics endpoint.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.traffic.schedule import ScheduledRequest, TrafficSpec, \
    build_schedule, popularity

#: serve/fleet error codes that mean "load was shed", not "job failed".
SHED_CODES = frozenset({"queue_full", "fleet_saturated", "shutting_down"})

#: job states that end a request (mirrors serve.protocol.JobState).
_TERMINAL = frozenset({"done", "failed", "cancelled", "timeout"})


@dataclass
class TrafficStats:
    """Carrier for the closed ``traffic.*`` counter/timer namespace."""

    requests_planned: int = 0
    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    requests_shed: int = 0
    requests_timed_out: int = 0
    hot_rotations: int = 0
    unique_workloads: int = 0
    max_outstanding: int = 0
    run_seconds: float = 0.0
    submit_seconds: float = 0.0
    poll_seconds: float = 0.0


@dataclass
class TrafficReport:
    """What a replay measured."""

    spec: TrafficSpec
    stats: TrafficStats
    #: per-request latency (seconds, scheduled arrival -> terminal).
    latencies: List[float] = field(default_factory=list)
    popularity: Dict[str, int] = field(default_factory=dict)
    #: server-side batch coalescing over the replay window.
    batches: int = 0
    batched_jobs: int = 0

    def percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def coalescing_rate(self) -> float:
        """Fraction of batched jobs that shared a batch with another."""
        if self.batched_jobs <= 0:
            return 0.0
        return 1.0 - min(self.batches, self.batched_jobs) \
            / self.batched_jobs

    @property
    def shed_rate(self) -> float:
        planned = self.stats.requests_planned
        return self.stats.requests_shed / planned if planned else 0.0

    @property
    def throughput_rps(self) -> float:
        if self.stats.run_seconds <= 0:
            return 0.0
        return self.stats.requests_completed / self.stats.run_seconds

    def summary(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "planned": self.stats.requests_planned,
            "submitted": self.stats.requests_submitted,
            "completed": self.stats.requests_completed,
            "failed": self.stats.requests_failed,
            "shed": self.stats.requests_shed,
            "timed_out": self.stats.requests_timed_out,
            "hot_rotations": self.stats.hot_rotations,
            "unique_workloads": self.stats.unique_workloads,
            "max_outstanding": self.stats.max_outstanding,
            "run_seconds": round(self.stats.run_seconds, 6),
            "throughput_rps": round(self.throughput_rps, 3),
            "latency_p50_ms": round(self.percentile(0.50) * 1e3, 3),
            "latency_p90_ms": round(self.percentile(0.90) * 1e3, 3),
            "latency_p99_ms": round(self.percentile(0.99) * 1e3, 3),
            "batches": self.batches,
            "batched_jobs": self.batched_jobs,
            "coalescing_rate": round(self.coalescing_rate, 4),
            "shed_rate": round(self.shed_rate, 4),
            "popularity": self.popularity,
        }

    def to_json(self) -> str:
        return json.dumps(self.summary(), indent=2, sort_keys=True)


def _counter(metrics: Dict[str, object], name: str) -> int:
    counters = metrics.get("counters", {})
    value = counters.get(name, 0) if isinstance(counters, dict) else 0
    return int(value) if isinstance(value, (int, float)) else 0


class _Submitter(threading.Thread):
    """Sleeps to each scheduled arrival and submits, come what may."""

    def __init__(self, client, schedule: Sequence[ScheduledRequest],
                 spec: TrafficSpec, config: Dict[str, object],
                 state: "_ReplayState"):
        super().__init__(name="traffic-submitter", daemon=True)
        self.client = client
        self.schedule = schedule
        self.spec = spec
        self.config = config
        self.state = state

    def run(self) -> None:
        from repro.serve.client import ServeError

        state = self.state
        last_epoch: Optional[int] = None
        for request in self.schedule:
            if state.abort.is_set():
                break
            now = time.monotonic()
            wake = state.start + request.at
            if wake > now:
                time.sleep(wake - now)
            if last_epoch is not None and request.epoch != last_epoch:
                with state.lock:
                    state.stats.hot_rotations += 1
                state.emit("traffic.hot_rotated", epoch=request.epoch,
                           at=round(request.at, 6))
            last_epoch = request.epoch
            submit_started = time.monotonic()
            try:
                job = self.client.submit(
                    "evaluate", configs=[dict(self.config)],
                    names=[request.name], fast=self.spec.fast,
                    priority=request.priority, timeout=request.deadline)
            except ServeError as error:
                with state.lock:
                    state.stats.submit_seconds += \
                        time.monotonic() - submit_started
                    if error.code in SHED_CODES:
                        state.stats.requests_shed += 1
                    else:
                        state.stats.requests_failed += 1
                    state.settled += 1
                state.emit("traffic.request_shed", index=request.index,
                           name=request.name, code=error.code)
                continue
            except OSError:
                with state.lock:
                    state.stats.requests_failed += 1
                    state.settled += 1
                continue
            with state.lock:
                state.stats.requests_submitted += 1
                state.stats.submit_seconds += \
                    time.monotonic() - submit_started
                state.pending[str(job["job_id"])] = request
            state.emit("traffic.request_submitted", index=request.index,
                       name=request.name, job_id=str(job["job_id"]),
                       priority=request.priority)
        state.done_submitting.set()


class _ReplayState:
    """Shared between the submitter and the polling loop."""

    def __init__(self, telemetry, stats: TrafficStats):
        self.lock = threading.Lock()
        self.start = 0.0
        self.pending: Dict[str, ScheduledRequest] = {}
        self.settled = 0
        self.stats = stats
        self.done_submitting = threading.Event()
        self.abort = threading.Event()
        self._telemetry = telemetry

    def emit(self, event_type: str, **fields) -> None:
        if self._telemetry is not None:
            with self.lock:
                self._telemetry.emit(event_type, **fields)


def replay_traffic(client, spec: TrafficSpec,
                   names: Sequence[str],
                   config: Optional[Dict[str, object]] = None,
                   telemetry=None,
                   poll: float = 0.05,
                   drain_timeout: float = 300.0,
                   stats: Optional[TrafficStats] = None) -> TrafficReport:
    """Replay ``spec`` against a live service; return the report.

    ``client`` is any object speaking the :class:`ServeClient` surface
    (a direct server or a fleet coordinator — both serve the same /v1
    protocol).  ``config`` is the system configuration each evaluate job
    carries; defaults to the paper's C2/64/speculative array.
    """
    schedule = build_schedule(spec, names)
    config = config or {"array": "C2", "slots": 64, "speculation": True}
    stats = stats if stats is not None else TrafficStats()
    stats.requests_planned = len(schedule)
    stats.unique_workloads = len({request.name for request in schedule})
    state = _ReplayState(telemetry, stats)

    before = client.metrics()
    latencies: List[float] = []
    state.start = time.monotonic()
    submitter = _Submitter(client, schedule, spec, config, state)
    submitter.start()

    deadline = state.start + drain_timeout
    while True:
        with state.lock:
            outstanding = len(state.pending)
            settled = state.settled
        stats.max_outstanding = max(stats.max_outstanding, outstanding)
        if state.done_submitting.is_set() and outstanding == 0:
            break
        if time.monotonic() > deadline:
            state.abort.set()
            with state.lock:
                stats.requests_timed_out += len(state.pending)
                state.pending.clear()
            break
        time.sleep(poll)
        poll_started = time.monotonic()
        try:
            jobs = client.jobs()
        except OSError:
            continue
        finally:
            stats.poll_seconds += time.monotonic() - poll_started
        observed = time.monotonic()
        states = {str(job["job_id"]): str(job.get("state", ""))
                  for job in jobs}
        finished: List[tuple] = []
        with state.lock:
            for job_id, request in list(state.pending.items()):
                job_state = states.get(job_id)
                if job_state in _TERMINAL:
                    del state.pending[job_id]
                    state.settled += 1
                    latency = observed - (state.start + request.at)
                    if job_state == "done":
                        stats.requests_completed += 1
                        latencies.append(latency)
                    elif job_state == "timeout":
                        stats.requests_timed_out += 1
                    else:
                        stats.requests_failed += 1
                    finished.append((request, job_id, job_state, latency))
        for request, job_id, job_state, latency in finished:
            state.emit("traffic.request_finished", index=request.index,
                       name=request.name, job_id=job_id, state=job_state,
                       latency_ms=round(latency * 1e3, 3))
    submitter.join(timeout=10.0)
    stats.run_seconds = time.monotonic() - state.start

    after = client.metrics()
    report = TrafficReport(
        spec=spec, stats=stats, latencies=latencies,
        popularity=popularity(schedule),
        batches=_counter(after, "serve.batches")
        - _counter(before, "serve.batches"),
        batched_jobs=_counter(after, "serve.batched_jobs")
        - _counter(before, "serve.batched_jobs"))
    if telemetry is not None:
        from repro.obs.schema import traffic_counters, traffic_timers

        state.emit("traffic.replay_done",
                   planned=stats.requests_planned,
                   completed=stats.requests_completed,
                   shed=stats.requests_shed,
                   p99_ms=report.summary()["latency_p99_ms"])
        with state.lock:
            telemetry.count_many(traffic_counters(stats))
            for name, value in traffic_timers(stats).items():
                telemetry.add_time(name, value)
    return report
