"""``repro.mpsoc`` — heterogeneous MPSoC scenario exploration.

The paper evaluates exactly one system point: a single MIPS core
coupled to one DIM-fed array.  Its area and energy accounting (Table
3, Figures 5/6) begs the system-level question this subsystem answers:
given a fixed area budget, what *mix* of plain cores and
differently-shaped arrays serves a multi-workload traffic mix best?

One :class:`MpsocSpec` (budget + accelerator catalog + weighted
traffic mix + phase model) induces an :class:`AllocationSpace` over
``cores`` x ``array<i>`` axes — a :class:`repro.dse.space.
ParameterSpace` extension, so all four DSE strategies and the
Pareto/hypervolume frontier rank allocations out of the box.  Scoring
is two-tier: the catalog x workloads affinity matrix evaluates ONCE
through :func:`repro.system.sweep.evaluate_matrix` (inline, or as one
``sweep`` job against a ``repro serve`` service / ``repro fleet``
coordinator — byte-identical either way), then every candidate
allocation is a cheap dispatch + Amdahl composition over those shared
per-workload rows (:mod:`repro.mpsoc.dispatch`,
:mod:`repro.mpsoc.phases`).

>>> from repro import mpsoc
>>> result = mpsoc.explore_mix(preset="sys-s", mix="crc:2,sha:1",
...                            strategy="grid", fast=True)
>>> len(result.frontier.points) >= 1
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.dse import explore as dse_explore
from repro.dse.frontier import FrontierResult

from repro.mpsoc.allocator import (
    AllocationSpace,
    InfeasibleBudgetError,
    allocation_space,
)
from repro.mpsoc.dispatch import (
    PLAIN_CORE,
    DispatchRow,
    MpsocRunner,
    MpsocStats,
    dispatch_mix,
)
from repro.mpsoc.phases import compose_mix, throughput_rate
from repro.mpsoc.spec import (
    MAX_ARRAY_SLOTS,
    NO_ARRAY,
    MpsocSpec,
    budget_presets,
    default_catalog,
    mpsoc_spec,
    parse_mix,
)

#: mix-level objectives default to all three axes — an MPSoC trade
#: study is about speedup *and* die area *and* energy.
DEFAULT_OBJECTIVES = ("speedup", "area")


@dataclass(frozen=True)
class MpsocExploration:
    """One scenario exploration: the frontier plus its dispatch story.

    ``frontier`` is the ordinary DSE
    :class:`~repro.dse.frontier.FrontierResult` (allocation candidates,
    mix-level objectives, exact hypervolume); :meth:`to_json` delegates
    to it verbatim, so the golden/byte-identity guarantees are the
    frontier's own.  ``dispatch`` maps each frontier allocation name to
    its per-workload :class:`~repro.mpsoc.dispatch.DispatchRow` table.
    """

    spec: MpsocSpec
    frontier: FrontierResult
    dispatch: Tuple[Tuple[str, Tuple[DispatchRow, ...]], ...]
    stats: MpsocStats

    def to_json(self) -> str:
        return self.frontier.to_json()

    def dispatch_tables(self) -> Dict[str, Tuple[DispatchRow, ...]]:
        return dict(self.dispatch)


def explore_mix(spec: Optional[MpsocSpec] = None, *,
                preset: Optional[str] = None,
                area_budget_gates: Optional[int] = None,
                mix=None,
                strategy: str = "grid",
                objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                budget: Optional[int] = None,
                seed: int = 0,
                jobs: int = 1,
                fast: bool = False,
                cache=None, cache_dir=None, client=None,
                energy_params=None, telemetry=None,
                engine: str = "auto",
                **spec_kwargs) -> MpsocExploration:
    """Explore one MPSoC scenario; return frontier + dispatch tables.

    Either pass a ready :class:`MpsocSpec`, or let the keyword form
    build one (``preset``/``area_budget_gates``, ``mix``, plus any
    :class:`MpsocSpec` field).  ``strategy``/``objectives``/``budget``/
    ``seed`` are the usual DSE knobs; ``client`` dispatches the catalog
    matrix to a running service or fleet coordinator.  Raises the
    structured :class:`InfeasibleBudgetError` when the budget admits no
    allocation.  The frontier JSON is deterministic for a fixed seed
    and byte-identical across inline, serve-dispatched and
    fleet-dispatched evaluation.
    """
    from repro.system.energy import EnergyParams

    if spec is None:
        spec = mpsoc_spec(preset=preset,
                          area_budget_gates=area_budget_gates,
                          mix=mix, **spec_kwargs)
    elif (preset is not None or area_budget_gates is not None
          or mix is not None or spec_kwargs):
        raise ValueError("pass either a spec or the keyword form, "
                         "not both")
    space = allocation_space(spec)
    runner = MpsocRunner(
        spec, space,
        energy_params=(energy_params if energy_params is not None
                       else EnergyParams()),
        jobs=jobs, fast=fast, cache=cache, cache_dir=cache_dir,
        client=client, telemetry=telemetry, engine=engine)
    feasible = len(space.candidates())
    runner.stats.feasible_allocations = feasible
    runner.stats.pruned_allocations = space.size - feasible
    if telemetry is not None and telemetry.enabled:
        telemetry.emit("mpsoc.space_pruned", feasible=feasible,
                       pruned=space.size - feasible,
                       budget_gates=spec.area_budget_gates)
    frontier = dse_explore(space=space, strategy=strategy,
                           objectives=objectives, budget=budget,
                           seed=seed, telemetry=telemetry,
                           runner=runner)
    dispatch = tuple(
        (point.system, runner.dispatch_table(point.candidate))
        for point in frontier.points)
    return MpsocExploration(spec=spec, frontier=frontier,
                            dispatch=dispatch, stats=runner.stats)


def score_allocation(spec: MpsocSpec, cores: int,
                     arrays: Sequence[str] = (), **runner_kwargs):
    """Score one explicit allocation; returns ``(evaluation,
    dispatch_rows)``.

    The single-point entry the degenerate-case tests build on: with
    one core and one catalog array, the dispatch rows reproduce the
    single-system ``repro.api.evaluate`` numbers bit for bit.
    """
    space = allocation_space(spec)
    values: Dict[str, object] = {"cores": cores}
    for i in range(spec.max_arrays):
        values[f"array{i}"] = (arrays[i] if i < len(arrays)
                               else NO_ARRAY)
    from repro.dse.space import Candidate

    candidate = Candidate.of(values)
    gates = space.gates_of(candidate)
    if gates > spec.area_budget_gates:
        raise InfeasibleBudgetError(
            spec.area_budget_gates, gates,
            what=f"allocation {space.allocation_name(candidate)}")
    if not space.satisfies(candidate):
        raise ValueError(
            f"infeasible allocation "
            f"{space.allocation_name(candidate)}: arrays must pair "
            f"with cores and follow catalog order")
    runner = MpsocRunner(spec, space, **runner_kwargs)
    evaluation = runner.evaluate([candidate])[0]
    return evaluation, runner.dispatch_table(candidate)


__all__ = [
    "AllocationSpace",
    "DEFAULT_OBJECTIVES",
    "DispatchRow",
    "InfeasibleBudgetError",
    "MAX_ARRAY_SLOTS",
    "MpsocExploration",
    "MpsocRunner",
    "MpsocSpec",
    "MpsocStats",
    "NO_ARRAY",
    "PLAIN_CORE",
    "allocation_space",
    "budget_presets",
    "compose_mix",
    "default_catalog",
    "dispatch_mix",
    "explore_mix",
    "mpsoc_spec",
    "parse_mix",
    "score_allocation",
    "throughput_rate",
]


import sys as _sys  # noqa: E402


# Importing any submodule rebinds the ``mpsoc`` attribute of the
# ``repro`` package from the :func:`repro.api.mpsoc` facade verb to
# this module, so the module itself must stay callable for
# ``repro.mpsoc(...)`` to keep working after the first call.
class _CallableModule(_sys.modules[__name__].__class__):
    def __call__(self, spec=None, **kwargs):
        return explore_mix(spec, **kwargs)


_sys.modules[__name__].__class__ = _CallableModule
