"""The allocation search space: core counts x array-shape mixes.

An allocation is one :class:`~repro.dse.space.Candidate` over the axes
``cores`` (how many MIPS cores the die carries) and ``array0`` ..
``array<max_arrays-1>`` (which catalog accelerator, if any, fills each
array slot).  :class:`AllocationSpace` extends
:class:`~repro.dse.space.ParameterSpace` — the axes are registered with
the DSE axis vocabulary via
:func:`repro.dse.space.register_axes` — so all four exploration
strategies, the memoising runners, and the Pareto/hypervolume frontier
operate on allocations exactly as they do on array geometries.

Feasibility is threefold and lives in the space, not the strategies
(the DSE convention):

- **budget**: ``cores * core_gates + sum(array gates) <= budget``
  (Table 3a totals via :func:`repro.system.area.area_report`);
- **pairing**: at most one array per core (``len(arrays) <= cores``);
- **canonical order**: array slots are sorted by catalog order with
  empty slots last, so each *multiset* of arrays appears exactly once
  (slot permutations are pruned, not double-counted).

A budget too small for even the cheapest allocation raises the
structured :class:`InfeasibleBudgetError`, never a bare crash.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Optional, Tuple

from repro.dse.space import (
    Axis,
    Candidate,
    ParameterSpace,
    register_axes,
)
from repro.system.area import AreaParams, area_report
from repro.system.config import SystemSpec

from repro.mpsoc.spec import MAX_ARRAY_SLOTS, NO_ARRAY, MpsocSpec

#: the allocation axes join the closed DSE axis vocabulary once, at
#: import time.
register_axes("mpsoc", ("cores",) + tuple(
    f"array{i}" for i in range(MAX_ARRAY_SLOTS)))


class InfeasibleBudgetError(ValueError):
    """No allocation fits the area budget — a structured error.

    Carries the budget and the cheapest possible allocation cost so
    callers (CLI, service) can report machine-readable diagnostics via
    :meth:`as_dict` instead of crashing.
    """

    code = "infeasible_budget"

    def __init__(self, budget: int, cheapest: int,
                 what: str = "the cheapest (a single plain core)"):
        super().__init__(
            f"area budget of {budget} gates admits no allocation: "
            f"{what} needs {cheapest} gates")
        self.budget = budget
        self.cheapest = cheapest

    def as_dict(self) -> Dict[str, object]:
        return {"error": {"code": self.code, "message": str(self),
                          "budget_gates": self.budget,
                          "cheapest_allocation_gates": self.cheapest}}


@lru_cache(maxsize=1024)
def _system_gates(spec: SystemSpec, params: AreaParams) -> int:
    """Table 3a total gates of one catalog accelerator."""
    return area_report(spec.build().shape, params).total_gates


@dataclass(frozen=True)
class AllocationSpace(ParameterSpace):
    """A :class:`ParameterSpace` over one scenario's allocations."""

    spec: Optional[MpsocSpec] = None

    def __post_init__(self):
        super().__post_init__()
        if self.spec is None:
            raise ValueError("an AllocationSpace needs its MpsocSpec")

    # ------------------------------------------------------------------
    # Allocation views.
    # ------------------------------------------------------------------
    def slots_of(self, candidate: Candidate) -> Tuple[str, ...]:
        """The raw array-slot values, slot order."""
        return tuple(candidate.get(f"array{i}", NO_ARRAY)
                     for i in range(self.spec.max_arrays))

    def arrays_of(self, candidate: Candidate) -> Tuple[str, ...]:
        """The catalog names of the allocation's arrays (may repeat)."""
        return tuple(slot for slot in self.slots_of(candidate)
                     if slot != NO_ARRAY)

    def cores_of(self, candidate: Candidate) -> int:
        return int(candidate.get("cores"))

    def allocation_name(self, candidate: Candidate) -> str:
        """Canonical allocation identity, e.g. ``2c+C1+C2`` (injective
        thanks to the canonical slot ordering)."""
        cores = self.cores_of(candidate)
        return f"{cores}c" + "".join(
            f"+{name}" for name in self.arrays_of(candidate))

    def catalog_gates(self, name: str) -> int:
        return _system_gates(self.spec.catalog_specs()[name],
                             self.area_params)

    def gates_of(self, candidate: Candidate) -> int:
        """Die cost: cores at the MIPS unit price plus the arrays'
        Table 3a totals."""
        gates = self.cores_of(candidate) * self.spec.core_gates
        for name in self.arrays_of(candidate):
            gates += self.catalog_gates(name)
        return gates

    # ------------------------------------------------------------------
    # Feasibility.
    # ------------------------------------------------------------------
    def _canonical(self, slots: Tuple[str, ...]) -> bool:
        order = {name: i for i, (name, _)
                 in enumerate(self.spec.catalog)}
        keys = [(1, 0) if slot == NO_ARRAY else (0, order[slot])
                for slot in slots]
        return keys == sorted(keys)

    def satisfies(self, candidate: Candidate) -> bool:
        slots = self.slots_of(candidate)
        if not self._canonical(slots):
            return False
        arrays = [s for s in slots if s != NO_ARRAY]
        if len(arrays) > self.cores_of(candidate):
            return False
        return self.gates_of(candidate) <= self.spec.area_budget_gates

    # ------------------------------------------------------------------
    # Declarative round-trip.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        payload = super().to_dict()
        payload["mpsoc"] = self.spec.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]
                  ) -> "AllocationSpace":
        spec = MpsocSpec.from_dict(payload["mpsoc"])
        return allocation_space(spec)


def allocation_space(spec: MpsocSpec) -> AllocationSpace:
    """The :class:`AllocationSpace` of one scenario.

    Raises :class:`InfeasibleBudgetError` (structured, machine
    readable) when not even the cheapest allocation — the smallest core
    count with every array slot empty — fits the budget.
    """
    axes = (Axis("cores", spec.core_counts),) + tuple(
        Axis(f"array{i}",
             (NO_ARRAY,) + tuple(name for name, _ in spec.catalog))
        for i in range(spec.max_arrays))
    space = AllocationSpace(
        axes=axes, area_budget_gates=spec.area_budget_gates, spec=spec)
    cheapest = min(spec.core_counts) * spec.core_gates
    if cheapest > spec.area_budget_gates:
        raise InfeasibleBudgetError(spec.area_budget_gates, cheapest)
    return space
