"""Amdahl-style serial/throughput phase composition.

Each workload in the traffic mix runs in two phases on an allocation
of ``cores`` MIPS cores, ``len(arrays)`` of which are coupled to a
DIM-fed array (the pairing constraint guarantees ``arrays <= cores``):

- the **serial phase** (fraction ``serial_fraction`` of baseline time)
  runs on the single best tile the dispatcher picked — rate
  ``row.speedup``;
- the **throughput phase** (the rest) spreads independent requests
  over every tile: each coupled tile contributes that workload's
  per-array speedup, each plain core contributes 1.0 — rate
  :func:`throughput_rate`.

Per-workload time against the one-plain-core baseline (= 1.0) is
``serial/S + (1 - serial)/R``; the **mix speedup** is the reciprocal
of the weighted sum of those times (a weighted harmonic mean, the
correct aggregate for a shared-time traffic mix), and the **mix energy
ratio** is the weighted geometric mean of the dispatched tiles' energy
ratios.

Bit-exactness note: when an allocation offers a single effective tile
(``R == S``) the two phases collapse and the time is computed as the
single division ``1/S`` — mathematically identical, but it keeps the
degenerate one-core/one-array scenario *bit-for-bit* equal to the
paper's own single-system ``repro.api.evaluate`` numbers, which the
acceptance tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence, Tuple

if TYPE_CHECKING:  # avoid a cycle: dispatch.py imports this module
    from repro.mpsoc.dispatch import DispatchRow

#: per-(workload, catalog array) scores: ``(speedup, energy_ratio)``.
ScoreTable = Mapping[Tuple[str, str], Tuple[float, float]]


def throughput_rate(workload: str, cores: int,
                    arrays: Sequence[str],
                    scores: ScoreTable) -> float:
    """Aggregate request-throughput rate of one workload, in plain-core
    units: every coupled tile at its array speedup, every remaining
    plain core at 1.0."""
    rate = float(cores - len(arrays))
    for array in arrays:
        rate += scores[(workload, array)][0]
    return rate


def compose_mix(rows: Sequence["DispatchRow"], cores: int,
                arrays: Sequence[str], scores: ScoreTable,
                serial_fraction: float) -> Tuple[float, float]:
    """(mix speedup, mix energy ratio) of one dispatched allocation.

    ``rows`` carry normalised weights summing to one, in mix order —
    the float-operation order is fixed, which is what keeps the
    composition byte-identical across inline, serve-dispatched and
    fleet-dispatched scoring.
    """
    if len(rows) == 1:
        row = rows[0]
        rate = throughput_rate(row.workload, cores, arrays, scores)
        if rate == row.speedup:
            # a singleton mix on a single effective tile IS the paper's
            # single-system scenario; return its numbers untouched.
            return row.speedup, row.energy_ratio
    total_time = 0.0
    energy = 1.0
    for row in rows:
        rate = throughput_rate(row.workload, cores, arrays, scores)
        if rate == row.speedup:
            time = 1.0 / row.speedup
        else:
            time = (serial_fraction / row.speedup
                    + (1.0 - serial_fraction) / rate)
        total_time += row.weight * time
        energy *= row.energy_ratio ** row.weight
    return 1.0 / total_time, energy
