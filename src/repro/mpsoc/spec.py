"""Declarative description of one heterogeneous MPSoC scenario.

An :class:`MpsocSpec` fixes everything an allocation search needs:

- an **area budget** in Table 3a gate-equivalents, either explicit or
  one of the Sys-S/M/L presets (:func:`budget_presets`), all derived
  live from :func:`repro.system.area.area_report` unit costs plus the
  :func:`repro.system.area.mips_core_gates` core price;
- an **accelerator catalog** — named
  :class:`~repro.system.config.SystemSpec` entries an allocation may
  instantiate (default: the paper's C1/C2/C3 arrays);
- a weighted **traffic mix** of benchmark workloads;
- the allocation grid (``core_counts``, ``max_arrays``) and the
  Amdahl ``serial_fraction`` of each request (see
  :mod:`repro.mpsoc.phases`).

Specs are frozen values that round-trip through JSON
(:meth:`MpsocSpec.to_dict` / :meth:`MpsocSpec.from_dict`), so a
scenario travels in files and wire payloads exactly like a
:class:`~repro.system.config.SystemSpec` does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.system.area import AreaParams, area_report, mips_core_gates
from repro.system.config import PAPER_SHAPES, SystemSpec
from repro.workloads import workload_names

#: the most array slots an allocation may hold (the allocator registers
#: one ``array<i>`` axis per slot with the DSE axis vocabulary).
MAX_ARRAY_SLOTS = 8

#: catalog-slot marker for "no array in this slot".
NO_ARRAY = "-"


def budget_presets(params: AreaParams = AreaParams()) -> Dict[str, int]:
    """The Sys-S/M/L area budgets, in Table 3a gate-equivalents.

    Derived from the paper's own unit costs rather than hardcoded:
    Sys-S affords a dual-core with one C1 array, Sys-M a quad-core with
    a C1 + C2 array pair, Sys-L an eight-core with two C3 arrays —
    echoing the small/medium/large system tiers of the lumos MPSoC
    model.
    """
    gates = {name: area_report(PAPER_SHAPES[name], params).total_gates
             for name in ("C1", "C2", "C3")}
    core = mips_core_gates(params)
    return {
        "sys-s": 2 * core + gates["C1"],
        "sys-m": 4 * core + gates["C1"] + gates["C2"],
        "sys-l": 8 * core + 2 * gates["C3"],
    }


def default_catalog(slots: int = 64, speculation: bool = True
                    ) -> Tuple[Tuple[str, SystemSpec], ...]:
    """The paper's three array configurations as a catalog."""
    return tuple(
        (array, SystemSpec(array=array, slots=slots,
                           speculation=speculation))
        for array in ("C1", "C2", "C3"))


def parse_mix(text: str) -> Tuple[Tuple[str, float], ...]:
    """Parse the CLI's ``name:weight,name:weight,...`` mix syntax
    (weight defaults to 1)."""
    mix = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, _, raw = part.partition(":")
            try:
                weight = float(raw)
            except ValueError:
                raise ValueError(f"bad mix weight {raw!r} for "
                                 f"{name!r}") from None
        else:
            name, weight = part, 1.0
        mix.append((name, weight))
    return tuple(mix)


@dataclass(frozen=True)
class MpsocSpec:
    """One MPSoC scenario: budget, catalog, traffic mix, phase model."""

    area_budget_gates: int
    mix: Tuple[Tuple[str, float], ...]
    catalog: Tuple[Tuple[str, SystemSpec], ...] = \
        field(default_factory=default_catalog)
    core_counts: Tuple[int, ...] = (1, 2, 4)
    max_arrays: int = 2
    serial_fraction: float = 0.1
    core_gates: int = field(default_factory=mips_core_gates)
    name: str = ""

    def __post_init__(self):
        object.__setattr__(self, "mix", tuple(
            (str(n), float(w)) for n, w in self.mix))
        object.__setattr__(self, "catalog", tuple(
            (str(n), s) for n, s in self.catalog))
        object.__setattr__(self, "core_counts",
                           tuple(int(c) for c in self.core_counts))
        if not (isinstance(self.area_budget_gates, int)
                and not isinstance(self.area_budget_gates, bool)):
            raise ValueError("area_budget_gates must be an integer")
        if not self.mix:
            raise ValueError("the traffic mix must not be empty")
        known = set(workload_names())
        seen = set()
        for workload, weight in self.mix:
            if workload not in known:
                raise ValueError(f"unknown workload {workload!r} in "
                                 f"the traffic mix")
            if workload in seen:
                raise ValueError(f"duplicate workload {workload!r} in "
                                 f"the traffic mix")
            seen.add(workload)
            if not weight > 0.0:
                raise ValueError(f"mix weight of {workload!r} must be "
                                 f"positive, got {weight}")
        if not self.catalog:
            raise ValueError("the accelerator catalog must not be empty")
        names = [n for n, _ in self.catalog]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate catalog names: {names}")
        for entry_name, entry in self.catalog:
            if (not entry_name or entry_name == NO_ARRAY
                    or any(ch in entry_name for ch in "+,= \t")):
                raise ValueError(f"bad catalog name {entry_name!r} "
                                 f"(reserved characters)")
            if not isinstance(entry, SystemSpec):
                raise ValueError(f"catalog entry {entry_name!r} must "
                                 f"be a SystemSpec")
        if not self.core_counts:
            raise ValueError("core_counts must not be empty")
        if any(c <= 0 for c in self.core_counts):
            raise ValueError("core counts must be positive")
        if list(self.core_counts) != sorted(set(self.core_counts)):
            raise ValueError("core_counts must be strictly increasing")
        if not 1 <= self.max_arrays <= MAX_ARRAY_SLOTS:
            raise ValueError(f"max_arrays must be in "
                             f"1..{MAX_ARRAY_SLOTS}")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if self.core_gates <= 0:
            raise ValueError("core_gates must be positive")

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    @property
    def workloads(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.mix)

    def weights(self, names: Optional[Sequence[str]] = None
                ) -> Tuple[Tuple[str, float], ...]:
        """The mix restricted to ``names`` (default: all of it), with
        weights normalised to sum to one, in mix order."""
        wanted = set(names) if names is not None else None
        subset = [(n, w) for n, w in self.mix
                  if wanted is None or n in wanted]
        if not subset:
            raise ValueError("no mix workloads selected")
        total = sum(w for _, w in subset)
        return tuple((n, w / total) for n, w in subset)

    def catalog_specs(self) -> Dict[str, SystemSpec]:
        return dict(self.catalog)

    # ------------------------------------------------------------------
    # JSON round-trip.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "area_budget_gates": self.area_budget_gates,
            "mix": [[n, w] for n, w in self.mix],
            "catalog": [[n, s.to_dict()] for n, s in self.catalog],
            "core_counts": list(self.core_counts),
            "max_arrays": self.max_arrays,
            "serial_fraction": self.serial_fraction,
            "core_gates": self.core_gates,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MpsocSpec":
        if not isinstance(payload, Mapping):
            raise ValueError("an MPSoC spec must be a JSON object")
        unknown = set(payload) - {"area_budget_gates", "mix", "catalog",
                                  "core_counts", "max_arrays",
                                  "serial_fraction", "core_gates",
                                  "name"}
        if unknown:
            raise ValueError(f"unknown spec fields: {sorted(unknown)}")
        kwargs: Dict[str, object] = {
            "area_budget_gates": payload.get("area_budget_gates"),
            "mix": tuple((n, w) for n, w in payload.get("mix", ())),
        }
        if "catalog" in payload:
            kwargs["catalog"] = tuple(
                (n, SystemSpec.from_dict(entry))
                for n, entry in payload["catalog"])
        for key in ("core_counts", "max_arrays", "serial_fraction",
                    "core_gates", "name"):
            if key in payload:
                value = payload[key]
                kwargs[key] = tuple(value) if key == "core_counts" \
                    else value
        return cls(**kwargs)


MixLike = Union[str, Mapping[str, float],
                Sequence[Tuple[str, float]], Sequence[str], None]


def mpsoc_spec(preset: Optional[str] = None,
               area_budget_gates: Optional[int] = None,
               mix: MixLike = None, **kwargs) -> MpsocSpec:
    """Convenience constructor: resolve a budget preset and a mix form.

    ``preset`` is ``sys-s``/``sys-m``/``sys-l`` (mutually exclusive
    with an explicit ``area_budget_gates``); ``mix`` may be the CLI's
    ``"name:weight,..."`` string, a mapping, a pair sequence, a plain
    name sequence (equal weights), or ``None`` for the whole suite at
    equal weights.  Remaining keyword arguments pass through to
    :class:`MpsocSpec`.
    """
    if (preset is None) == (area_budget_gates is None):
        raise ValueError("pick exactly one of preset= or "
                         "area_budget_gates=")
    if preset is not None:
        presets = budget_presets()
        if preset not in presets:
            valid = ", ".join(sorted(presets))
            raise ValueError(f"unknown budget preset {preset!r}: valid "
                             f"presets are {valid}")
        area_budget_gates = presets[preset]
        kwargs.setdefault("name", preset)
    if mix is None:
        pairs = tuple((n, 1.0) for n in workload_names())
    elif isinstance(mix, str):
        pairs = parse_mix(mix)
    elif isinstance(mix, Mapping):
        pairs = tuple(mix.items())
    else:
        entries = list(mix)
        if entries and isinstance(entries[0], str):
            pairs = tuple((n, 1.0) for n in entries)
        else:
            pairs = tuple(entries)
    return MpsocSpec(area_budget_gates=area_budget_gates, mix=pairs,
                     **kwargs)
