"""Per-kernel dispatch and the allocation-scoring runner.

**Dispatch rule.** Each workload in the traffic mix goes to the
allocation array with the highest per-workload speedup (catalog order
breaks ties).  When the allocation has spare plain cores
(``cores > len(arrays)``) and even the best array decelerates the
workload, it runs on a plain core at speedup 1.0 instead; when every
core is coupled there is no plain tile — DIM is transparent — so the
best array takes it regardless.  Per-kernel affinity comes from the
per-workload :class:`~repro.workloads.suite.WorkloadResult` rows of one
:func:`~repro.system.sweep.evaluate_matrix` call over the catalog
(one trace per workload; every array shape is just more cells), so a
degenerate one-core/one-array allocation reproduces the single-system
``repro.api.evaluate`` numbers bit for bit.

**Runner.** :class:`MpsocRunner` implements the
:class:`repro.dse.runner._RunnerBase` contract, which is what lets all
four DSE strategies and the Pareto frontier rank allocations out of
the box.  The expensive part — the catalog x workloads matrix — is
evaluated ONCE per workload subset and shared by every allocation in
the search; each candidate then costs only a dispatch + composition
pass.  With a ``client`` the matrix is dispatched as a single
``sweep`` job to a running ``repro serve`` service or ``repro fleet``
coordinator (same ``/v1`` protocol); JSON round-trips the per-workload
floats exactly, so remote scores equal inline scores bit for bit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dse.runner import DseStats, _RunnerBase
from repro.dse.space import Candidate
from repro.obs import Telemetry
from repro.obs.schema import mpsoc_counters, mpsoc_timers
from repro.system.artifacts import ArtifactCache
from repro.system.energy import EnergyParams
from repro.system.sweep import evaluate_matrix

from repro.mpsoc.allocator import AllocationSpace
from repro.mpsoc.phases import ScoreTable, compose_mix
from repro.mpsoc.spec import MpsocSpec

#: dispatch-target marker for a plain (uncoupled) MIPS core.
PLAIN_CORE = "core"


@dataclass(frozen=True)
class DispatchRow:
    """One workload's dispatch decision under one allocation."""

    workload: str
    weight: float      # normalised mix weight
    tile: str          # catalog array name, or PLAIN_CORE
    system: str        # canonical config name ("" for a plain core)
    speedup: float
    energy_ratio: float

    def as_dict(self) -> Dict[str, object]:
        return {"workload": self.workload, "weight": self.weight,
                "tile": self.tile, "system": self.system,
                "speedup": self.speedup,
                "energy_ratio": self.energy_ratio}


def dispatch_mix(weights: Sequence[Tuple[str, float]], cores: int,
                 arrays: Sequence[str], scores: ScoreTable,
                 systems: Dict[str, str]) -> Tuple[DispatchRow, ...]:
    """Dispatch every mix workload to its best-fitting tile.

    ``weights`` are normalised (workload, weight) pairs in mix order;
    ``arrays`` the allocation's catalog names; ``systems`` maps catalog
    names to canonical config names.
    """
    rows: List[DispatchRow] = []
    has_plain = cores > len(arrays)
    for workload, weight in weights:
        best: Optional[str] = None
        best_speedup = 0.0
        best_energy = 1.0
        for array in arrays:
            speedup, energy = scores[(workload, array)]
            if best is None or speedup > best_speedup:
                best, best_speedup, best_energy = array, speedup, energy
        if best is None or (has_plain and best_speedup < 1.0):
            rows.append(DispatchRow(workload, weight, PLAIN_CORE, "",
                                    1.0, 1.0))
        else:
            rows.append(DispatchRow(workload, weight, best,
                                    systems[best], best_speedup,
                                    best_energy))
    return tuple(rows)


@dataclass
class MpsocStats(DseStats):
    """DSE counters plus the ``mpsoc.*`` scenario-layer additions."""

    allocations_scored: int = 0
    feasible_allocations: int = 0
    pruned_allocations: int = 0
    dispatch_accelerated: int = 0
    dispatch_plain: int = 0
    matrix_cells: int = 0
    compose_seconds: float = 0.0

    def counters(self) -> Dict[str, int]:
        merged = super().counters()
        merged.update(mpsoc_counters(self))
        return merged

    def timer_values(self) -> Dict[str, float]:
        merged = super().timer_values()
        merged.update(mpsoc_timers(self))
        return merged


class MpsocRunner(_RunnerBase):
    """Score candidate allocations for the DSE strategies."""

    def __init__(self, spec: MpsocSpec, space: AllocationSpace,
                 energy_params: EnergyParams = EnergyParams(),
                 jobs: int = 1, fast: bool = False,
                 cache: Optional[ArtifactCache] = None,
                 cache_dir=None, client=None,
                 telemetry: Optional[Telemetry] = None,
                 engine: str = "auto"):
        super().__init__(spec.workloads, telemetry)
        if cache is None and cache_dir is not None:
            cache = ArtifactCache(cache_dir)
        self.spec = spec
        self.space = space
        self.energy_params = energy_params
        self.jobs = jobs
        self.fast = fast
        self.cache = cache
        self.client = client
        self.engine = engine
        self.stats = MpsocStats()
        #: canonical config name per catalog entry.
        self.systems: Dict[str, str] = {
            name: entry.name for name, entry in spec.catalog}
        self._scores: Dict[Tuple[str, ...], ScoreTable] = {}
        self._dispatch: Dict[Tuple[str, Tuple[str, ...]],
                             Tuple[DispatchRow, ...]] = {}

    @property
    def _dispatched(self) -> bool:
        return self.client is not None

    def dispatch_table(self, candidate: Candidate,
                       names: Optional[Sequence[str]] = None
                       ) -> Tuple[DispatchRow, ...]:
        """The dispatch decisions of an already-scored allocation."""
        names = tuple(names) if names is not None else self.workloads
        return self._dispatch[(candidate.id, names)]

    # ------------------------------------------------------------------
    # Catalog affinity scores (one matrix per workload subset).
    # ------------------------------------------------------------------
    def catalog_scores(self, names: Tuple[str, ...]) -> ScoreTable:
        if names not in self._scores:
            self._scores[names] = self._evaluate_catalog(names)
            self.stats.matrix_cells += len(self.spec.catalog) * len(names)
        return self._scores[names]

    def _evaluate_catalog(self, names: Tuple[str, ...]) -> ScoreTable:
        if self.client is not None:
            return self._evaluate_catalog_remote(names)
        configs = [entry.build() for _, entry in self.spec.catalog]
        matrix = evaluate_matrix(configs, names=list(names),
                                 energy_params=self.energy_params,
                                 jobs=self.jobs, fast=self.fast,
                                 cache=self.cache,
                                 telemetry=self.telemetry,
                                 engine=self.engine)
        scores: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for (catalog_name, _), config in zip(self.spec.catalog, configs):
            suite = matrix.suite(config.name)
            for row in suite.results:
                scores[(row.workload, catalog_name)] = (
                    row.speedup, row.energy_ratio)
        return scores

    def _evaluate_catalog_remote(self, names: Tuple[str, ...]
                                 ) -> ScoreTable:
        """One coalescable ``sweep`` job for the whole catalog; the
        per-workload floats come back through JSON, which round-trips
        them exactly."""
        specs = [entry.to_dict() for _, entry in self.spec.catalog]
        job = self.client.submit("sweep", configs=specs,
                                 names=list(names), fast=self.fast)
        payload = self.client.wait(job["job_id"])
        matrix = json.loads(payload["result"]["matrix_json"])
        by_system = {entry["system"]: entry
                     for entry in matrix["systems"]}
        self.stats.dispatched_batches += 1
        scores: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for catalog_name, entry in self.spec.catalog:
            system = by_system[entry.name]
            for row in system["results"]:
                scores[(row["workload"], catalog_name)] = (
                    row["speedup"], row["energy_ratio"])
        return scores

    # ------------------------------------------------------------------
    # The _RunnerBase contract.
    # ------------------------------------------------------------------
    def _score_batch(self, batch: Sequence[Candidate],
                     names: Tuple[str, ...]
                     ) -> List[Tuple[str, float, float, int]]:
        scores = self.catalog_scores(names)
        weights = self.spec.weights(names)
        scored: List[Tuple[str, float, float, int]] = []
        start = time.perf_counter()
        for candidate in batch:
            cores = self.space.cores_of(candidate)
            arrays = self.space.arrays_of(candidate)
            rows = dispatch_mix(weights, cores, arrays, scores,
                                self.systems)
            speedup, energy = compose_mix(
                rows, cores, arrays, scores, self.spec.serial_fraction)
            self._dispatch[(candidate.id, names)] = rows
            name = self.space.allocation_name(candidate)
            scored.append((name, speedup, energy,
                           self.space.gates_of(candidate)))
            self.stats.allocations_scored += 1
            plain = sum(1 for row in rows if row.tile == PLAIN_CORE)
            self.stats.dispatch_plain += plain
            self.stats.dispatch_accelerated += len(rows) - plain
            if self._observing:
                self.telemetry.emit(
                    "mpsoc.allocation_scored", allocation=name,
                    cores=cores, arrays=len(arrays),
                    gates=scored[-1][3], mix_speedup=speedup,
                    workloads=len(names))
        self.stats.compose_seconds += time.perf_counter() - start
        return scored
