"""The distributed evaluation fleet.

Scales the persistent evaluation service (:mod:`repro.serve`) across N
worker processes/machines without changing its protocol or its
byte-identical-results guarantee:

- :mod:`repro.fleet.hashring` — consistent-hash assignment of workload
  fingerprints to worker shards.
- :mod:`repro.fleet.coordinator` — the sharding front end: worker
  registration/heartbeat, health-based failover with automatic job
  re-dispatch, result caching, load shedding; protocol-compatible with
  a single server so existing clients work unchanged.
- :mod:`repro.fleet.client` — the streaming client: bounded in-flight
  windows, shed-aware backoff, bulk completion polling, ordered
  delivery.
- :mod:`repro.fleet.local` — local bring-up: spawn worker subprocesses
  sharing one fingerprint-scoped artifact store (``repro fleet``).
"""

from repro.fleet.client import FleetClient
from repro.fleet.coordinator import (
    FleetCoordinator,
    FleetStats,
    start_fleet_http,
)
from repro.fleet.hashring import HashRing
from repro.fleet.local import LocalWorker, fleet_forever, spawn_fleet

__all__ = [
    "FleetClient",
    "FleetCoordinator",
    "FleetStats",
    "HashRing",
    "LocalWorker",
    "fleet_forever",
    "spawn_fleet",
    "start_fleet_http",
]
