"""Local fleet bring-up: spawn worker processes, wire the coordinator.

The coordinator itself is process-agnostic — it only ever sees worker
*URLs*.  This module provides the local-machine convenience layer the
CLI, the benchmarks and CI use: launch N ``repro serve`` worker
processes on ephemeral ports (sharing one artifact store in
fingerprint-scoped mode), register them, and run the coordinator's
HTTP front end in the foreground.

Worker processes are real ``python -m repro.cli serve`` subprocesses,
not threads: each owns its GIL, so a 4-worker fleet gets genuine 4-way
parallelism over the CPU-bound matrix replays — which is where the
fleet's throughput win over a single server comes from.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.fleet.coordinator import FleetCoordinator, start_fleet_http

#: the worker's one-line banner carries the ephemeral bound port.
_BANNER = re.compile(r"listening on (http://[\d.]+:\d+)")


class LocalWorker:
    """One ``repro serve`` worker subprocess."""

    def __init__(self, proc: subprocess.Popen, url: str, worker_id: str):
        self.proc = proc
        self.url = url
        self.id = worker_id

    def terminate(self, timeout: float = 5.0) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=timeout)

    def kill(self) -> None:
        """Hard-kill (failover tests: no drain, no goodbye)."""
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10.0)


def _worker_env() -> dict:
    """The subprocess environment, with :mod:`repro` importable even
    when the parent runs from a source checkout."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}" if existing
                         else src)
    return env


def spawn_worker(worker_id: str, cache_root: Optional[str] = None,
                 scoped_cache: bool = True, capacity: int = 1024,
                 workers: int = 0, batch_window: float = 0.02,
                 startup_timeout: float = 30.0) -> LocalWorker:
    """Start one worker server on an ephemeral port; returns when its
    banner (and therefore its bound URL) has been read."""
    cmd = [sys.executable, "-m", "repro.cli", "serve",
           "--host", "127.0.0.1", "--port", "0",
           "--capacity", str(capacity),
           "--workers", str(workers),
           "--batch-window", str(batch_window)]
    if cache_root is None:
        cmd.append("--no-cache")
    else:
        cmd += ["--cache-dir", str(cache_root)]
        if scoped_cache:
            cmd.append("--scoped-cache")
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True,
                            env=_worker_env())
    deadline = time.monotonic() + startup_timeout
    banner = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner = line.strip()
        match = _BANNER.search(banner)
        if match:
            return LocalWorker(proc, match.group(1), worker_id)
    proc.kill()
    raise RuntimeError(f"worker {worker_id} failed to start "
                       f"(last output: {banner!r})")


def spawn_fleet(coordinator: FleetCoordinator, count: int,
                cache_root: Optional[str] = None,
                scoped_cache: bool = True, capacity: int = 1024,
                workers: int = 0,
                batch_window: float = 0.02) -> List[LocalWorker]:
    """Spawn ``count`` workers and register each with ``coordinator``."""
    spawned: List[LocalWorker] = []
    try:
        for index in range(count):
            worker = spawn_worker(f"w{index}", cache_root=cache_root,
                                  scoped_cache=scoped_cache,
                                  capacity=capacity, workers=workers,
                                  batch_window=batch_window)
            coordinator.register_worker(worker.id, worker.url)
            spawned.append(worker)
    except Exception:
        for worker in spawned:
            worker.terminate()
        raise
    return spawned


def fleet_forever(host: str = "127.0.0.1", port: int = 8360,
                  workers: int = 2,
                  worker_urls: Optional[List[str]] = None,
                  cache_root: Optional[str] = None,
                  scoped_cache: bool = True, capacity: int = 1024,
                  worker_jobs: int = 0, max_inflight: int = 1024,
                  heartbeat_interval: float = 0.25,
                  heartbeat_failures: int = 3) -> int:
    """Run a coordinator (plus optional local workers) until shut down
    over HTTP.  The CLI entry point behind ``repro fleet``."""
    coordinator = FleetCoordinator(
        max_inflight=max_inflight,
        heartbeat_interval=heartbeat_interval,
        heartbeat_failures=heartbeat_failures)
    spawned = spawn_fleet(coordinator, workers, cache_root=cache_root,
                          scoped_cache=scoped_cache, capacity=capacity,
                          workers=worker_jobs) if workers else []
    for index, url in enumerate(worker_urls or []):
        coordinator.register_worker(f"ext{index}", url)
    if not coordinator.live_workers():
        for worker in spawned:
            worker.terminate()
        print("repro fleet: no workers (use --workers N or "
              "--worker-url)", file=sys.stderr)
        return 1
    coordinator.start()
    server, thread = start_fleet_http(coordinator, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro fleet: listening on http://{bound_host}:{bound_port} "
          f"({len(coordinator.live_workers())} workers, "
          f"cache={cache_root or 'disabled'})")
    for worker in spawned:
        print(f"repro fleet: worker {worker.id} at {worker.url}")
    try:
        server.shutdown_requested.wait()
    except KeyboardInterrupt:
        print("\nrepro fleet: draining ...")
        coordinator.stop(drain=True, shutdown_workers=True)
    server.shutdown()
    thread.join(5.0)
    for worker in spawned:
        worker.terminate()
    return 0
