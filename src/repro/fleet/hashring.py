"""Consistent-hash shard assignment for the evaluation fleet.

The coordinator maps every job's *workload fingerprint* (the batch-
coalescing key of :class:`repro.serve.protocol.JobRequest`) to one
worker shard.  Requirements:

- **Determinism** — the same fingerprint always lands on the same live
  worker, so a shard accumulates that fingerprint's trace, columnar
  context and translation memo once and serves every later job from
  warm state, and its batch scheduler keeps coalescing same-workload
  jobs into single replays.
- **Stability under membership change** — when a worker joins or dies,
  only the fingerprints owned by the affected arc move; everything else
  keeps its shard (and its warm caches).  A mod-N table would reshuffle
  nearly every fingerprint on every failover.

Implementation: the classic ring.  Each worker id is hashed to
``replicas`` virtual points on a 64-bit circle (more points = smoother
load spread); a fingerprint hashes to one point and walks clockwise to
the first live worker.  Hashes are SHA-256 (stable across processes and
Python versions — ``hash()`` is salted and useless here).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

#: virtual points per worker; 128 keeps the max/mean shard load within
#: ~1.3x for small fleets without noticeable lookup cost.
DEFAULT_REPLICAS = 128


def _point(data: str) -> int:
    """A stable 64-bit position on the ring."""
    digest = hashlib.sha256(data.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over worker ids."""

    def __init__(self, replicas: int = DEFAULT_REPLICAS):
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []  # sorted (point, node)
        self._keys: List[int] = []
        self._nodes: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Membership.
    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Add ``node``; idempotent."""
        if node in self._nodes:
            return
        points = [_point(f"{node}#{replica}")
                  for replica in range(self.replicas)]
        self._nodes[node] = points
        for point in points:
            index = bisect.bisect(self._keys, point)
            self._keys.insert(index, point)
            self._points.insert(index, (point, node))

    def remove(self, node: str) -> None:
        """Remove ``node``; idempotent."""
        if node not in self._nodes:
            return
        del self._nodes[node]
        self._points = [(point, owner) for point, owner in self._points
                        if owner != node]
        self._keys = [point for point, _ in self._points]

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def node_for(self, key: str) -> Optional[str]:
        """The live worker owning ``key``, or None on an empty ring."""
        if not self._keys:
            return None
        index = bisect.bisect(self._keys, _point(key))
        if index == len(self._keys):
            index = 0
        return self._points[index][1]

    def preference(self, key: str) -> List[str]:
        """Every node in fallback order for ``key``: the owner first,
        then each next-distinct node clockwise.  The coordinator walks
        this list when a forward fails mid-submission."""
        if not self._keys:
            return []
        order: List[str] = []
        start = bisect.bisect(self._keys, _point(key))
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in order:
                order.append(node)
                if len(order) == len(self._nodes):
                    break
        return order

    def assignment(self, keys: List[str]) -> Dict[str, List[str]]:
        """Bulk view: node -> keys it owns (balance diagnostics)."""
        shards: Dict[str, List[str]] = {node: [] for node in self._nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                shards[owner].append(key)
        return shards
