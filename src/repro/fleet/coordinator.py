"""The fleet coordinator: fingerprint-sharded job routing with failover.

One :class:`FleetCoordinator` fronts N worker ``repro serve`` instances
(:class:`repro.serve.server.EvalService` behind HTTP).  It speaks the
same versioned JSON protocol as a single server — ``submit`` /
``status`` / ``result`` / ``cancel`` / ``jobs`` / ``metrics`` — so the
blocking :class:`repro.serve.client.ServeClient` and every existing CLI
verb work against a fleet unchanged.  What it adds:

- **Fingerprint sharding.**  Every submission is validated once, its
  workload fingerprint computed, and the job forwarded to the worker a
  consistent-hash ring (:mod:`repro.fleet.hashring`) assigns that
  fingerprint.  All jobs replaying the same workload traces land on the
  same shard, so each worker keeps its trace/coltrace/memo locality and
  its batch scheduler keeps coalescing them into single columnar
  replays — the fleet scales the *number of distinct fingerprints*
  across machines without giving up the single-server batching wins.
- **Registration, heartbeat, failover.**  Workers are registered
  explicitly (``POST /v1/register``).  A monitor thread polls every
  worker each ``heartbeat_interval``; the poll doubles as the state
  sync (one ``jobs`` listing per worker per cycle, not one request per
  job) and as the liveness probe.  ``heartbeat_failures`` consecutive
  failed polls mark a worker dead: it leaves the ring and every job it
  still owed a result is **re-dispatched** to the surviving shards
  (``fleet.redispatch``).  Batch evaluation is deterministic, so a
  re-run yields byte-identical results.
- **Result caching.**  The monitor fetches every finished job's result
  payload into the coordinator the moment it is terminal, so a worker
  crash after completion loses nothing and clients never talk to
  workers directly.
- **Load shedding.**  ``max_inflight`` bounds the jobs the fleet holds
  un-finished.  Beyond it, submissions fail fast with the structured
  ``fleet_saturated`` error (HTTP 429) instead of queueing without
  bound — the streaming client (:mod:`repro.fleet.client`) backs off
  and retries on exactly that code.

Everything observable flows through ``fleet.*`` counters/timers/events
in the closed :mod:`repro.obs` schema.
"""

from __future__ import annotations

import http.client
import itertools
import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro.obs import SCHEMA_VERSION, Telemetry
from repro.obs.schema import fleet_counters, fleet_timers
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobState,
    ProtocolError,
    dumps,
    loads,
    validate_submission,
)
from repro.fleet.hashring import HashRing

#: everything a worker request can raise when the worker is dying:
#: refused/reset sockets (OSError) and torn HTTP exchanges
#: (BadStatusLine et al. are not OSError subclasses).
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


@dataclass
class FleetStats:
    """Coordinator counters, the carrier behind ``fleet.*`` telemetry."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_shed: int = 0
    forwards: int = 0
    forward_failures: int = 0
    redispatches: int = 0
    workers_registered: int = 0
    workers_lost: int = 0
    poll_cycles: int = 0
    max_inflight_seen: int = 0
    forward_seconds: float = 0.0
    poll_seconds: float = 0.0


@dataclass
class WorkerHandle:
    """One registered worker shard and its pooled client."""

    id: str
    url: str
    client: ServeClient
    alive: bool = True
    failures: int = 0
    jobs_owned: int = 0


@dataclass
class FleetJob:
    """One fleet-level job and where it currently lives."""

    id: str
    payload: Dict[str, object]  # normalised spec, replayable verbatim
    kind: str
    fingerprint: str
    priority: int
    worker_id: Optional[str] = None
    remote_id: Optional[str] = None
    state: str = JobState.PENDING
    result: Optional[Dict[str, object]] = None
    error: Optional[Dict[str, object]] = None
    redispatches: int = 0
    batch_width: int = 0
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    #: True while a forward is in progress; keeps the monitor's
    #: stranded-job retry from double-submitting a job whose first
    #: forward has not finished yet.
    dispatching: bool = False

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def status(self) -> Dict[str, object]:
        """Wire status, shaped like a single server's job status."""
        payload: Dict[str, object] = {
            "job_id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "fingerprint": self.fingerprint,
            "attempts": self.redispatches + 1,
            "batch_width": self.batch_width,
            "worker": self.worker_id,
        }
        if self.error is not None:
            payload["error"] = dict(self.error)
        return payload


class FleetCoordinator:
    """Shards jobs across worker servers by workload fingerprint."""

    def __init__(self, max_inflight: int = 1024,
                 heartbeat_interval: float = 0.25,
                 heartbeat_failures: int = 3,
                 max_redispatch: int = 3,
                 worker_timeout: float = 60.0,
                 telemetry: Optional[Telemetry] = None):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.max_inflight = max_inflight
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_failures = heartbeat_failures
        self.max_redispatch = max_redispatch
        self.worker_timeout = worker_timeout
        self.telemetry = (telemetry if telemetry is not None
                          else Telemetry())
        self.stats = FleetStats()
        self.ring = HashRing()
        self.workers: Dict[str, WorkerHandle] = {}
        self.jobs: Dict[str, FleetJob] = {}
        self._seq = itertools.count(1)
        self._lock = threading.RLock()
        self._accepting = True
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "FleetCoordinator":
        assert self._monitor is None, "coordinator already started"
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="repro-fleet-monitor",
                                         daemon=True)
        self._monitor.start()
        return self

    def stop(self, drain: bool = True, timeout: float = 300.0,
             shutdown_workers: bool = False) -> Dict[str, object]:
        """Stop the fleet; with ``drain`` wait for every accepted job's
        result to be cached first, so a clean shutdown strands nothing."""
        self._accepting = False
        deadline = time.monotonic() + timeout
        if drain:
            while self.inflight and time.monotonic() < deadline:
                if self._monitor is None:  # inline use: step manually
                    self.poll_once()
                time.sleep(min(0.02, self.heartbeat_interval))
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        downed: List[str] = []
        if shutdown_workers:
            for worker in list(self.workers.values()):
                if not worker.alive:
                    continue
                try:
                    worker.client.shutdown(drain=drain)
                    downed.append(worker.id)
                except (ServeError, *_TRANSPORT_ERRORS):
                    pass
        return {"drained": drain, "active": self.inflight,
                "jobs": len(self.jobs), "workers_shutdown": downed}

    # ------------------------------------------------------------------
    # Worker membership.
    # ------------------------------------------------------------------
    def register_worker(self, worker_id: str,
                        url: str) -> Dict[str, object]:
        """Add (or re-add) a worker shard; verifies it is reachable."""
        if not worker_id or not isinstance(worker_id, str):
            raise ProtocolError("bad_param", "worker_id must be a "
                                "non-empty string", "worker_id")
        if not isinstance(url, str) or not url.startswith("http"):
            raise ProtocolError("bad_param", "url must be an http URL",
                                "url")
        client = ServeClient(url, timeout=self.worker_timeout)
        try:
            health = client.healthz()
        except (ServeError, *_TRANSPORT_ERRORS) as exc:
            raise ProtocolError("bad_param",
                                f"worker {worker_id!r} at {url} is not "
                                f"reachable: {exc}", "url")
        if health.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError("bad_param",
                                f"worker {worker_id!r} speaks protocol "
                                f"{health.get('protocol')}, coordinator "
                                f"speaks {PROTOCOL_VERSION}", "url")
        with self._lock:
            previous = self.workers.get(worker_id)
            if previous is not None and previous.alive:
                previous.url, previous.client = url, client
                return {"worker_id": worker_id, "workers": len(self.ring)}
            self.workers[worker_id] = WorkerHandle(id=worker_id, url=url,
                                                   client=client)
            self.ring.add(worker_id)
            self.stats.workers_registered += 1
            if self.telemetry.enabled:
                self.telemetry.emit("fleet.worker_registered",
                                    worker_id=worker_id, url=url,
                                    workers=len(self.ring))
        return {"worker_id": worker_id, "workers": len(self.ring)}

    def heartbeat(self, worker_id: str) -> Dict[str, object]:
        """Worker-initiated liveness push: resets the failure count."""
        with self._lock:
            worker = self.workers.get(worker_id)
            if worker is None:
                raise ProtocolError("unknown_worker",
                                    f"no worker {worker_id!r}",
                                    http_status=404)
            worker.failures = 0
            return {"worker_id": worker_id, "alive": worker.alive}

    def _mark_dead(self, worker: WorkerHandle) -> None:
        """Remove a dead worker from the ring and rescue its jobs."""
        with self._lock:
            if not worker.alive:
                return
            worker.alive = False
            self.ring.remove(worker.id)
            self.stats.workers_lost += 1
            if self.telemetry.enabled:
                self.telemetry.emit("fleet.worker_lost",
                                    worker_id=worker.id,
                                    workers=len(self.ring))
            orphans = [job for job in self.jobs.values()
                       if job.worker_id == worker.id and not job.terminal]
        for job in orphans:
            self._redispatch(job)

    # ------------------------------------------------------------------
    # Submission and routing.
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._lock:
            return sum(1 for job in self.jobs.values()
                       if not job.terminal)

    def live_workers(self) -> List[str]:
        with self._lock:
            return [w.id for w in self.workers.values() if w.alive]

    def submit(self, payload: object) -> Dict[str, object]:
        """Validate, shard by fingerprint, and forward one job."""
        if not self._accepting:
            raise ProtocolError("shutting_down",
                                "fleet is draining; submission rejected",
                                http_status=503)
        request = validate_submission(payload)
        spec = request.as_dict()
        with self._lock:
            inflight = sum(1 for job in self.jobs.values()
                           if not job.terminal)
            if inflight >= self.max_inflight:
                self.stats.jobs_shed += 1
                if self.telemetry.enabled:
                    self.telemetry.emit("fleet.job_shed",
                                        fingerprint=request.fingerprint,
                                        inflight=inflight)
                raise ProtocolError(
                    "fleet_saturated",
                    f"fleet holds {inflight} unfinished jobs "
                    f"(cap {self.max_inflight}); back off and resubmit",
                    http_status=429)
            job = FleetJob(id=f"f{next(self._seq):06d}", payload=spec,
                           kind=request.kind,
                           fingerprint=request.fingerprint,
                           priority=request.priority,
                           submitted_at=time.monotonic(),
                           dispatching=True)
            self.jobs[job.id] = job
            self.stats.jobs_submitted += 1
            self.stats.max_inflight_seen = max(
                self.stats.max_inflight_seen, inflight + 1)
        try:
            self._dispatch(job)
        except ProtocolError as exc:
            # submission-time forwarding failure: the job never reached
            # a shard, so it must not linger in the fleet table.
            with self._lock:
                self.jobs.pop(job.id, None)
                self.stats.jobs_submitted -= 1
                if exc.code == "fleet_saturated":
                    self.stats.jobs_shed += 1
                    if self.telemetry.enabled:
                        self.telemetry.emit(
                            "fleet.job_shed",
                            fingerprint=job.fingerprint,
                            inflight=inflight)
            raise
        return job.status()

    def _dispatch(self, job: FleetJob) -> None:
        """:meth:`_forward` under the ``dispatching`` guard."""
        with self._lock:
            job.dispatching = True
        try:
            self._forward(job)
        finally:
            with self._lock:
                job.dispatching = False

    def _forward(self, job: FleetJob) -> None:
        """Send ``job`` to the shard its fingerprint owns; on a dead or
        unreachable owner, walk the ring's fallback order.

        Raises :class:`ProtocolError` (``fleet_saturated`` on shard
        backpressure, ``no_workers`` when every shard is gone or
        refused) and leaves the job unassigned; callers decide whether
        that drops the job (submission) or parks it (re-dispatch).
        """
        start = time.perf_counter()
        try:
            with self._lock:
                order = [worker_id
                         for worker_id in self.ring.preference(
                             job.fingerprint)
                         if self.workers[worker_id].alive]
            if not order:
                raise ProtocolError("no_workers",
                                    "no live workers in the fleet",
                                    http_status=503)
            for worker_id in order:
                with self._lock:
                    worker = self.workers.get(worker_id)
                    if worker is None or not worker.alive:
                        continue
                try:
                    remote = worker.client.submit_payload(job.payload)
                except ServeError as exc:
                    if exc.code in ("queue_full", "shutting_down"):
                        # genuine backpressure from the shard its
                        # fingerprint owns: surface it as a shed so the
                        # client backs off instead of breaking locality
                        # by spilling onto another shard.
                        raise ProtocolError(
                            "fleet_saturated",
                            f"shard {worker_id} rejected the job "
                            f"({exc.code}): {exc}", http_status=429)
                    with self._lock:
                        self.stats.forward_failures += 1
                    continue
                except _TRANSPORT_ERRORS:
                    with self._lock:
                        self.stats.forward_failures += 1
                        worker.failures += 1
                    continue
                with self._lock:
                    job.worker_id = worker_id
                    job.remote_id = remote["job_id"]
                    job.state = remote.get("state", JobState.PENDING)
                    worker.jobs_owned += 1
                    self.stats.forwards += 1
                    if self.telemetry.enabled:
                        self.telemetry.emit(
                            "fleet.job_dispatched", job_id=job.id,
                            worker_id=worker_id,
                            fingerprint=job.fingerprint,
                            remote_id=job.remote_id)
                return
            raise ProtocolError("no_workers",
                                "every live worker refused the job",
                                http_status=503)
        finally:
            with self._lock:
                self.stats.forward_seconds += time.perf_counter() - start

    def _redispatch(self, job: FleetJob) -> None:
        """Move a dead shard's unfinished job to a surviving shard."""
        with self._lock:
            job.redispatches += 1
            job.worker_id = None
            job.remote_id = None
            job.state = JobState.PENDING
            if job.redispatches > self.max_redispatch:
                self._finalize(job, JobState.FAILED,
                               {"code": "worker_failure",
                                "message": f"re-dispatched "
                                           f"{self.max_redispatch} times "
                                           f"without a surviving result"})
                return
            self.stats.redispatches += 1
            if self.telemetry.enabled:
                self.telemetry.emit("fleet.job_redispatched",
                                    job_id=job.id,
                                    fingerprint=job.fingerprint,
                                    redispatches=job.redispatches)
        try:
            self._dispatch(job)
        except ProtocolError:
            # no workers right now: the job stays pending/unassigned and
            # the monitor retries it each cycle (new workers may join).
            pass

    # ------------------------------------------------------------------
    # The monitor: heartbeat + state sync + result harvesting.
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                self.poll_once()
            except Exception:  # monitor must never die
                pass

    def poll_once(self) -> None:
        """One heartbeat/sync pass over every worker (also used by
        tests and the drain loop for deterministic stepping)."""
        start = time.perf_counter()
        with self._lock:
            handles = list(self.workers.values())
        for worker in handles:
            if not worker.alive:
                continue
            # snapshot what we own on the worker BEFORE asking for its
            # listing: a job forwarded after the snapshot cannot be
            # mistaken for one the worker forgot.
            with self._lock:
                owned = [job for job in self.jobs.values()
                         if job.worker_id == worker.id
                         and not job.terminal]
            try:
                listing = worker.client.jobs()
            except (ServeError, *_TRANSPORT_ERRORS):
                with self._lock:
                    worker.failures += 1
                    dead = worker.failures >= self.heartbeat_failures
                if dead:
                    self._mark_dead(worker)
                continue
            with self._lock:
                worker.failures = 0
            self._absorb_listing(worker, owned, listing)
        # jobs that lost their shard while the ring was empty
        with self._lock:
            stranded = [job for job in self.jobs.values()
                        if job.worker_id is None and not job.terminal
                        and not job.dispatching]
            have_workers = len(self.ring) > 0
        if have_workers:
            for job in stranded:
                try:
                    self._dispatch(job)
                except ProtocolError:
                    pass
        with self._lock:
            self.stats.poll_cycles += 1
            self.stats.poll_seconds += time.perf_counter() - start

    def _absorb_listing(self, worker: WorkerHandle,
                        owned: List[FleetJob],
                        listing: List[Dict[str, object]]) -> None:
        """Fold one worker's job listing into the fleet state; fetch
        results for newly-terminal jobs."""
        by_remote = {entry["job_id"]: entry for entry in listing}
        for job in owned:
            with self._lock:
                if job.terminal or job.worker_id != worker.id:
                    continue  # reconciled by another path meanwhile
            entry = by_remote.get(job.remote_id)
            if entry is None:
                # the worker restarted and forgot the job: re-dispatch
                self._redispatch(job)
                continue
            state = entry["state"]
            with self._lock:
                job.batch_width = int(entry.get("batch_width", 0))
                if state not in JobState.TERMINAL:
                    job.state = state
                    continue
            if state == JobState.DONE:
                try:
                    payload = worker.client.result(job.remote_id)
                except ServeError as exc:
                    self._finalize(job, JobState.FAILED,
                                   {"code": "worker_failure",
                                    "message": f"result fetch failed: "
                                               f"[{exc.code}] {exc}"})
                    continue
                except _TRANSPORT_ERRORS:
                    continue  # worker died mid-fetch; heartbeat decides
                with self._lock:
                    job.result = payload.get("result")
                self._finalize(job, JobState.DONE)
            else:
                error = entry.get("error") or {
                    "code": f"job_{state}", "message": state}
                self._finalize(job, state, dict(error))

    def _finalize(self, job: FleetJob, state: str,
                  error: Optional[Dict[str, object]] = None) -> None:
        with self._lock:
            if job.terminal:
                return
            job.state = state
            job.error = error
            job.finished_at = time.monotonic()
            if state == JobState.DONE:
                self.stats.jobs_completed += 1
            else:
                self.stats.jobs_failed += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    "fleet.job_finished", job_id=job.id, state=state,
                    worker_id=job.worker_id,
                    redispatches=job.redispatches,
                    latency_seconds=job.finished_at - job.submitted_at)

    # ------------------------------------------------------------------
    # Client-facing views (protocol-compatible with a single server).
    # ------------------------------------------------------------------
    def _job(self, job_id: str) -> FleetJob:
        with self._lock:
            job = self.jobs.get(job_id)
        if job is None:
            raise ProtocolError("unknown_job", f"no job {job_id!r}",
                                http_status=404)
        return job

    def status(self, job_id: str) -> Dict[str, object]:
        return self._job(job_id).status()

    def job_listing(self, active: bool = False
                    ) -> List[Dict[str, object]]:
        with self._lock:
            jobs = sorted(self.jobs.values(), key=lambda job: job.id)
            if active:
                jobs = [job for job in jobs if not job.terminal]
            return [job.status() for job in jobs]

    def result(self, job_id: str, wait: bool = False,
               timeout: float = 60.0) -> Dict[str, object]:
        job = self._job(job_id)
        deadline = time.monotonic() + timeout
        while wait and not job.terminal:
            if time.monotonic() > deadline:
                break
            time.sleep(0.02)
        if job.state == JobState.DONE:
            return {"job_id": job.id, "state": job.state,
                    "result": job.result}
        code = {JobState.FAILED: "job_failed",
                JobState.CANCELLED: "job_cancelled",
                JobState.TIMEOUT: "job_timeout"}.get(job.state,
                                                     "not_finished")
        status = 409 if code == "not_finished" else 410
        message = (job.error or {}).get("message", job.state)
        raise ProtocolError(code, f"job {job.id} is {job.state}: "
                                  f"{message}", http_status=status)

    def cancel(self, job_id: str) -> Dict[str, object]:
        job = self._job(job_id)
        if job.terminal:
            return job.status()
        with self._lock:
            worker = (self.workers.get(job.worker_id)
                      if job.worker_id else None)
        if worker is None or not worker.alive:
            self._finalize(job, JobState.CANCELLED,
                           {"code": "job_cancelled",
                            "message": "cancelled while unassigned"})
            return job.status()
        try:
            remote = worker.client.cancel(job.remote_id)
        except (ServeError, *_TRANSPORT_ERRORS):
            return job.status()  # the monitor will reconcile
        if remote.get("state") in JobState.TERMINAL:
            self._finalize(job, remote["state"],
                           dict(remote.get("error") or {
                               "code": "job_cancelled",
                               "message": "cancelled"}))
        return job.status()

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        with self._lock:
            live = [w.id for w in self.workers.values() if w.alive]
            dead = [w.id for w in self.workers.values() if not w.alive]
            inflight = sum(1 for job in self.jobs.values()
                           if not job.terminal)
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "role": "coordinator",
            "workers": len(live),
            "worker_ids": sorted(live),
            "dead_workers": sorted(dead),
            "queue_depth": inflight,
            "active_jobs": inflight,
            "max_inflight": self.max_inflight,
            "paused": False,
            "accepting": self._accepting,
        }

    def worker_listing(self) -> List[Dict[str, object]]:
        with self._lock:
            return [{"worker_id": w.id, "url": w.url, "alive": w.alive,
                     "failures": w.failures, "jobs_owned": w.jobs_owned}
                    for w in sorted(self.workers.values(),
                                    key=lambda w: w.id)]

    def metrics(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self.telemetry.counters)
            counters.update(fleet_counters(self.stats))
            timers = dict(self.telemetry.timers)
            timers.update(fleet_timers(self.stats))
            return {
                "schema_version": SCHEMA_VERSION,
                "protocol": PROTOCOL_VERSION,
                "counters": dict(sorted(counters.items())),
                "timers": dict(sorted(timers.items())),
                "events": self.telemetry.meta_record(),
            }

    def events_jsonl(self) -> str:
        with self._lock:
            lines = [json.dumps(self.telemetry.meta_record(),
                                sort_keys=True)]
            if self.telemetry.events is not None:
                lines.extend(json.dumps(record, sort_keys=True)
                             for record in self.telemetry.events)
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTTP front end.
# ----------------------------------------------------------------------
class FleetHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to one :class:`FleetCoordinator`."""

    daemon_threads = True

    def __init__(self, address, coordinator: FleetCoordinator):
        super().__init__(address, _Handler)
        self.coordinator = coordinator
        #: set by the shutdown route; fleet_forever exits on it.
        self.shutdown_requested = threading.Event()


class _Handler(BaseHTTPRequestHandler):
    """The coordinator's wire protocol: a strict superset of a single
    server's (submit/status/result/cancel/jobs/healthz/metrics/events/
    shutdown behave identically, so :class:`ServeClient` needs no fleet
    mode), plus ``register``/``heartbeat``/``workers`` for membership.
    """

    protocol_version = "HTTP/1.1"
    # replies are one buffered write; Nagle would otherwise delay
    # them behind the client's delayed ACK on keep-alive sockets.
    disable_nagle_algorithm = True
    server: FleetHTTPServer

    def log_message(self, format, *args):  # noqa: A002
        pass

    def _reply(self, payload: Dict[str, object],
               status: int = 200) -> None:
        body = dumps(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, text: str, status: int = 200) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        return loads(self.rfile.read(length) if length else b"")

    def _route(self):
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts and parts[0] == "v1":
            parts = parts[1:]
        if not parts:
            raise ProtocolError("not_found", "no route", http_status=404)
        return parts[0], (parts[1] if len(parts) > 1 else None)

    def _query(self) -> str:
        return (self.path.split("?") + [""])[1]

    def do_GET(self) -> None:  # noqa: N802
        fleet = self.server.coordinator
        try:
            head, arg = self._route()
            if head == "healthz":
                self._reply(fleet.healthz())
            elif head == "metrics":
                self._reply(fleet.metrics())
            elif head == "events":
                self._reply_text(fleet.events_jsonl())
            elif head == "workers":
                self._reply({"workers": fleet.worker_listing(),
                             "protocol": PROTOCOL_VERSION})
            elif head == "jobs" and arg is None:
                active = "active=1" in self._query()
                self._reply({"jobs": fleet.job_listing(active=active),
                             "protocol": PROTOCOL_VERSION})
            elif head == "status" and arg:
                self._reply(fleet.status(arg))
            elif head == "result" and arg:
                wait = "wait=1" in self._query()
                self._reply(fleet.result(arg, wait=wait))
            else:
                raise ProtocolError("not_found",
                                    f"no route {self.path!r}",
                                    http_status=404)
        except ProtocolError as exc:
            self._reply(exc.as_dict(), status=exc.http_status)

    def do_POST(self) -> None:  # noqa: N802
        fleet = self.server.coordinator
        try:
            head, arg = self._route()
            if head == "submit":
                self._reply(fleet.submit(self._body()), status=202)
            elif head == "cancel" and arg:
                self._reply(fleet.cancel(arg))
            elif head == "register":
                body = self._body()
                if not isinstance(body, dict):
                    raise ProtocolError("bad_json", "register body must "
                                        "be a JSON object")
                self._reply(fleet.register_worker(
                    body.get("worker_id"), body.get("url")))
            elif head == "heartbeat" and arg:
                self._reply(fleet.heartbeat(arg))
            elif head == "shutdown":
                body = self._body() or {}
                drain = bool(body.get("drain", True)) \
                    if isinstance(body, dict) else True
                workers = bool(body.get("workers", False)) \
                    if isinstance(body, dict) else False
                summary = fleet.stop(drain=drain,
                                     shutdown_workers=workers)
                summary["protocol"] = PROTOCOL_VERSION
                self._reply(summary)
                self.server.shutdown_requested.set()
            else:
                raise ProtocolError("not_found",
                                    f"no route {self.path!r}",
                                    http_status=404)
        except ProtocolError as exc:
            self._reply(exc.as_dict(), status=exc.http_status)


def start_fleet_http(coordinator: FleetCoordinator,
                     host: str = "127.0.0.1", port: int = 0):
    """Start the coordinator's HTTP front end on a background thread.

    Returns ``(server, thread)``; ``server.server_address`` carries the
    bound port when ``port=0``.
    """
    server = FleetHTTPServer((host, port), coordinator)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-fleet-http", daemon=True)
    thread.start()
    return server, thread
