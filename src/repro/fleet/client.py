"""The streaming fleet client: windowed submission with backpressure.

:class:`FleetClient` extends the blocking
:class:`repro.serve.client.ServeClient` (same pooled keep-alive
transport, same structured errors) with a *streaming* mode built for
bursts of hundreds-to-thousands of jobs:

- **Bounded in-flight window.**  :meth:`stream` keeps at most
  ``window`` jobs un-finished on the fleet at any moment, however large
  the input is — the client, not the coordinator, is the first line of
  backpressure, so one greedy producer cannot saturate the fleet for
  everyone else.
- **Explicit load shedding.**  When the coordinator (or the owning
  shard) answers ``fleet_saturated``/``queue_full``, the client backs
  off exponentially and resubmits the same spec; shed responses are
  flow control, not failures.
- **Bulk completion polling.**  Instead of one ``status`` request per
  in-flight job per tick, the client asks for the fleet's *active* job
  list once per tick (``GET /v1/jobs?active=1``) and diffs its own
  in-flight ids against it — O(1) requests per tick regardless of the
  window, which is what lets a 5000-job burst poll without drowning
  the coordinator.
- **Ordered delivery.**  Results are yielded in submission order
  (completion order is whatever the shards produce); an out-of-order
  completion is buffered until its predecessors arrive.

The non-streaming inherited methods (``submit``/``wait``/``metrics``
and friends) work against a coordinator unchanged, because the
coordinator's wire protocol is a superset of a single server's.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.serve.client import ServeClient, ServeError

#: error codes the streaming client treats as flow control.
SHED_CODES = frozenset({"fleet_saturated", "queue_full"})


class FleetClient(ServeClient):
    """A :class:`ServeClient` with a streaming, windowed submit path."""

    def __init__(self, base_url: str = "http://127.0.0.1:8360",
                 timeout: float = 60.0, window: int = 32,
                 poll: float = 0.02, shed_backoff: float = 0.05,
                 shed_backoff_cap: float = 2.0):
        super().__init__(base_url, timeout=timeout)
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.poll = poll
        self.shed_backoff = shed_backoff
        self.shed_backoff_cap = shed_backoff_cap
        #: streaming flow-control accounting (since construction).
        self.stream_stats: Dict[str, int] = {
            "submitted": 0, "completed": 0, "shed_waits": 0, "polls": 0}

    # ------------------------------------------------------------------
    def stream(self, specs: Iterable[Dict[str, object]],
               window: Optional[int] = None,
               timeout: Optional[float] = None,
               on_error: str = "raise",
               ) -> Iterator[Tuple[int, Dict[str, object]]]:
        """Run every job spec through the fleet; yield ``(index,
        result_payload)`` in submission order.

        At most ``window`` jobs are in flight at once.  Shed responses
        (:data:`SHED_CODES`) pause submission with exponential backoff
        and retry the same spec.  ``on_error`` controls terminal job
        failures: ``"raise"`` (default) propagates the
        :class:`ServeError`; ``"yield"`` delivers
        ``{"error": {"code", "message"}}`` in the result slot so a long
        burst survives individual failures.
        """
        if on_error not in ("raise", "yield"):
            raise ValueError("on_error must be 'raise' or 'yield'")
        window = window if window is not None else self.window
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        pending = deque(enumerate(specs))
        inflight: Dict[str, int] = {}  # job_id -> submission index
        ready: Dict[int, Dict[str, object]] = {}
        next_out = 0
        backoff = self.shed_backoff

        while pending or inflight or ready:
            # 1. top up the window.
            while pending and len(inflight) < window:
                index, spec = pending[0]
                try:
                    status = self.submit_payload(spec)
                except ServeError as exc:
                    if exc.code in SHED_CODES:
                        self.stream_stats["shed_waits"] += 1
                        time.sleep(backoff)
                        backoff = min(self.shed_backoff_cap,
                                      backoff * 2)
                        break  # retry the same spec next round
                    raise
                pending.popleft()
                inflight[status["job_id"]] = index
                self.stream_stats["submitted"] += 1
                backoff = self.shed_backoff

            # 2. drain everything deliverable in order.
            while next_out in ready:
                yield next_out, ready.pop(next_out)
                next_out += 1

            if not inflight and not pending:
                continue  # only buffered out-of-order results remain

            # 3. one bulk poll: whichever of our jobs is no longer in
            # the fleet's active list is terminal.
            if inflight:
                self.stream_stats["polls"] += 1
                active = {job["job_id"]
                          for job in self.jobs(active=True)}
                finished = [job_id for job_id in inflight
                            if job_id not in active]
                for job_id in finished:
                    index = inflight.pop(job_id)
                    try:
                        ready[index] = self.result(job_id)
                    except ServeError as exc:
                        if on_error == "raise":
                            raise
                        ready[index] = {"error": {
                            "code": exc.code, "message": str(exc)}}
                    self.stream_stats["completed"] += 1
                if not finished:
                    time.sleep(self.poll)
            elif pending:
                time.sleep(self.poll)

            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"stream exceeded {timeout}s with "
                    f"{len(inflight)} in flight, {len(pending)} pending")

    def map(self, specs: List[Dict[str, object]],
            window: Optional[int] = None,
            timeout: Optional[float] = None,
            on_error: str = "raise") -> List[Dict[str, object]]:
        """:meth:`stream` collected into a list, index-aligned with
        ``specs``."""
        results: List[Optional[Dict[str, object]]] = [None] * len(specs)
        for index, payload in self.stream(specs, window=window,
                                          timeout=timeout,
                                          on_error=on_error):
            results[index] = payload
        return results  # type: ignore[return-value]
