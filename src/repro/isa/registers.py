"""MIPS register-file naming conventions (o32)."""

from __future__ import annotations

#: Canonical architectural names for the 32 general-purpose registers.
REGISTER_NAMES = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

_NAME_TO_NUMBER = {name: i for i, name in enumerate(REGISTER_NAMES)}
# Numeric aliases ($0 .. $31) and the $s8 alias for $fp.
_NAME_TO_NUMBER.update({str(i): i for i in range(32)})
_NAME_TO_NUMBER["s8"] = 30

#: Registers that a well-formed program may treat as always zero.
ZERO = 0
AT = 1
V0 = 2
V1 = 3
A0 = 4
A1 = 5
A2 = 6
A3 = 7
GP = 28
SP = 29
FP = 30
RA = 31


def register_number(name: str) -> int:
    """Map a register name (with or without a leading ``$``) to its number.

    Accepts symbolic names (``"t0"``, ``"$sp"``), numeric names (``"$8"``)
    and the ``s8`` alias for ``fp``.  Raises :class:`KeyError` for unknown
    names.
    """
    if name.startswith("$"):
        name = name[1:]
    return _NAME_TO_NUMBER[name.lower()]


def register_name(number: int) -> str:
    """Map a register number (0..31) to its canonical symbolic name."""
    return REGISTER_NAMES[number]
