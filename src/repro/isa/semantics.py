"""Pure functional semantics of the implemented MIPS I subset.

Both the pipeline model (:mod:`repro.sim.cpu`) and the reconfigurable-array
executor (:mod:`repro.system.coupled`) evaluate instructions through these
functions, so accelerated execution is bit-identical to native execution by
construction.  All register values are canonical unsigned 32-bit ints.
"""

from __future__ import annotations

from typing import Tuple

from repro.isa.instruction import Instruction

MASK32 = 0xFFFFFFFF


def to_signed(value: int) -> int:
    """Interpret a canonical u32 as a signed 32-bit integer."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value: int) -> int:
    """Canonicalise any Python int to u32 (two's complement wrap)."""
    return value & MASK32


def alu_result(instr: Instruction, a: int, b: int) -> int:
    """Result of an ALU or shift instruction.

    ``a`` is the rs value and ``b`` the rt value (for R-format) or the
    already-extended immediate (for I-format); both u32-canonical except
    that sign-extended immediates arrive as signed ints and are wrapped
    here.  Overflow-trapping variants (``add``/``addi``/``sub``) are
    computed modulo 2^32 like their unsigned twins: the workloads never
    rely on the trap, and the paper's array has no trap path either.
    """
    m = instr.mnemonic
    if m in ("add", "addu", "addi", "addiu"):
        return (a + b) & MASK32
    if m in ("sub", "subu"):
        return (a - b) & MASK32
    if m in ("and", "andi"):
        return a & b & MASK32
    if m in ("or", "ori"):
        return (a | b) & MASK32
    if m in ("xor", "xori"):
        return (a ^ b) & MASK32
    if m == "nor":
        return ~(a | b) & MASK32
    if m in ("slt", "slti"):
        return 1 if to_signed(a) < to_signed(b) else 0
    if m in ("sltu", "sltiu"):
        return 1 if to_unsigned(a) < to_unsigned(b) else 0
    if m == "lui":
        return (b << 16) & MASK32
    if m == "sll":
        return (b << instr.shamt) & MASK32
    if m == "srl":
        return (to_unsigned(b) >> instr.shamt) & MASK32
    if m == "sra":
        return (to_signed(b) >> instr.shamt) & MASK32
    if m == "sllv":
        return (b << (a & 0x1F)) & MASK32
    if m == "srlv":
        return (to_unsigned(b) >> (a & 0x1F)) & MASK32
    if m == "srav":
        return (to_signed(b) >> (a & 0x1F)) & MASK32
    raise ValueError(f"not an ALU/shift instruction: {m}")


def mult_result(mnemonic: str, a: int, b: int) -> Tuple[int, int]:
    """(hi, lo) of ``mult``/``multu``."""
    if mnemonic == "mult":
        product = to_signed(a) * to_signed(b)
    elif mnemonic == "multu":
        product = to_unsigned(a) * to_unsigned(b)
    else:
        raise ValueError(f"not a multiply: {mnemonic}")
    product &= 0xFFFFFFFFFFFFFFFF
    return (product >> 32) & MASK32, product & MASK32


def div_result(mnemonic: str, a: int, b: int) -> Tuple[int, int]:
    """(hi, lo) = (remainder, quotient) of ``div``/``divu``.

    Division by zero leaves (hi, lo) architecturally undefined on MIPS; we
    define it as (a, 0) so simulation stays deterministic.
    """
    if mnemonic == "div":
        sa, sb = to_signed(a), to_signed(b)
        if sb == 0:
            return to_unsigned(sa), 0
        # MIPS divides with truncation toward zero (C semantics).
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        remainder = sa - quotient * sb
        return to_unsigned(remainder), to_unsigned(quotient)
    if mnemonic == "divu":
        ua, ub = to_unsigned(a), to_unsigned(b)
        if ub == 0:
            return ua, 0
        return ua % ub, ua // ub
    raise ValueError(f"not a divide: {mnemonic}")


def branch_taken(mnemonic: str, a: int, b: int = 0) -> bool:
    """Outcome of a conditional branch given rs (``a``) and rt (``b``)."""
    if mnemonic == "beq":
        return to_unsigned(a) == to_unsigned(b)
    if mnemonic == "bne":
        return to_unsigned(a) != to_unsigned(b)
    if mnemonic == "blez":
        return to_signed(a) <= 0
    if mnemonic == "bgtz":
        return to_signed(a) > 0
    if mnemonic == "bltz":
        return to_signed(a) < 0
    if mnemonic == "bgez":
        return to_signed(a) >= 0
    raise ValueError(f"not a branch: {mnemonic}")
