"""Opcode tables and per-instruction metadata for the implemented MIPS I subset.

The subset covers everything the mini-C compiler emits and everything found
in hand-written workload assembly: the full integer ALU, shifts, multiply /
divide with HI/LO, all byte/half/word loads and stores, branches, jumps and
``syscall``.  Floating point is intentionally absent — the paper's array
"does not support floating point operations" and only non-FP MiBench
programs are evaluated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple


class InstrClass(enum.Enum):
    """Coarse behavioural class, used by the simulator and by DIM.

    DIM's translation hardware only understands a subset of the ISA; the
    class is how it decides whether an instruction can enter the array
    (see :meth:`OpInfo.array_supported`).
    """

    ALU = "alu"            # add/sub/logic/slt/lui — one array ALU op
    SHIFT = "shift"        # sll/srl/sra and variable forms — array ALU op
    MULT = "mult"          # mult/multu — array multiplier op
    DIV = "div"            # div/divu — unsupported by the array
    HILO = "hilo"          # mfhi/mflo/mthi/mtlo — unsupported by the array
    LOAD = "load"          # lb/lbu/lh/lhu/lw — array load/store unit
    STORE = "store"        # sb/sh/sw — array load/store unit
    BRANCH = "branch"      # conditional branches — block terminators
    JUMP = "jump"          # j/jal/jr/jalr — block terminators
    SYSCALL = "syscall"    # syscall/break — unsupported, ends translation
    NOP = "nop"            # canonical nop (sll $0,$0,0)


class Format(enum.Enum):
    """Binary encoding format."""

    R = "R"
    I = "I"
    J = "J"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one mnemonic."""

    mnemonic: str
    fmt: Format
    opcode: int
    #: funct field for R-format, rt field for REGIMM branches, else None.
    funct: Optional[int]
    klass: InstrClass
    #: operand roles: which of rs/rt are read, which of rd/rt is written.
    reads_rs: bool = False
    reads_rt: bool = False
    writes_rd: bool = False
    writes_rt: bool = False
    #: immediate is sign-extended (True) or zero-extended (False).
    signed_imm: bool = True
    #: True for the REGIMM encodings (opcode 0x01, branch selected by rt).
    regimm: bool = False

    @property
    def array_supported(self) -> bool:
        """Whether DIM may place this instruction inside a configuration.

        Conditional branches are special: they terminate a basic block but
        *can* live in the array as the comparison feeding the speculation
        check, so they are reported separately by the translator.
        """
        return self.klass in (
            InstrClass.ALU,
            InstrClass.SHIFT,
            InstrClass.MULT,
            InstrClass.LOAD,
            InstrClass.STORE,
        )

    @property
    def is_control(self) -> bool:
        """True for any instruction that can redirect the PC."""
        return self.klass in (InstrClass.BRANCH, InstrClass.JUMP)


def _r(mnemonic: str, funct: int, klass: InstrClass, *, rs=True, rt=True,
       rd=True) -> OpInfo:
    return OpInfo(mnemonic, Format.R, 0x00, funct, klass,
                  reads_rs=rs, reads_rt=rt, writes_rd=rd)


def _i(mnemonic: str, opcode: int, klass: InstrClass, *, rs=True, rt=False,
       wrt=True, signed=True) -> OpInfo:
    return OpInfo(mnemonic, Format.I, opcode, None, klass,
                  reads_rs=rs, reads_rt=rt, writes_rt=wrt, signed_imm=signed)


_OPS = [
    # --- R-format ALU -----------------------------------------------------
    _r("add", 0x20, InstrClass.ALU),
    _r("addu", 0x21, InstrClass.ALU),
    _r("sub", 0x22, InstrClass.ALU),
    _r("subu", 0x23, InstrClass.ALU),
    _r("and", 0x24, InstrClass.ALU),
    _r("or", 0x25, InstrClass.ALU),
    _r("xor", 0x26, InstrClass.ALU),
    _r("nor", 0x27, InstrClass.ALU),
    _r("slt", 0x2A, InstrClass.ALU),
    _r("sltu", 0x2B, InstrClass.ALU),
    # --- shifts ------------------------------------------------------------
    _r("sll", 0x00, InstrClass.SHIFT, rs=False),
    _r("srl", 0x02, InstrClass.SHIFT, rs=False),
    _r("sra", 0x03, InstrClass.SHIFT, rs=False),
    _r("sllv", 0x04, InstrClass.SHIFT),
    _r("srlv", 0x06, InstrClass.SHIFT),
    _r("srav", 0x07, InstrClass.SHIFT),
    # --- multiply / divide -------------------------------------------------
    _r("mult", 0x18, InstrClass.MULT, rd=False),
    _r("multu", 0x19, InstrClass.MULT, rd=False),
    _r("div", 0x1A, InstrClass.DIV, rd=False),
    _r("divu", 0x1B, InstrClass.DIV, rd=False),
    _r("mfhi", 0x10, InstrClass.HILO, rs=False, rt=False),
    _r("mflo", 0x12, InstrClass.HILO, rs=False, rt=False),
    _r("mthi", 0x11, InstrClass.HILO, rt=False, rd=False),
    _r("mtlo", 0x13, InstrClass.HILO, rt=False, rd=False),
    # --- register jumps ----------------------------------------------------
    _r("jr", 0x08, InstrClass.JUMP, rt=False, rd=False),
    _r("jalr", 0x09, InstrClass.JUMP, rt=False),
    OpInfo("syscall", Format.R, 0x00, 0x0C, InstrClass.SYSCALL),
    OpInfo("break", Format.R, 0x00, 0x0D, InstrClass.SYSCALL),
    # --- I-format ALU ------------------------------------------------------
    _i("addi", 0x08, InstrClass.ALU),
    _i("addiu", 0x09, InstrClass.ALU),
    _i("slti", 0x0A, InstrClass.ALU),
    _i("sltiu", 0x0B, InstrClass.ALU),
    _i("andi", 0x0C, InstrClass.ALU, signed=False),
    _i("ori", 0x0D, InstrClass.ALU, signed=False),
    _i("xori", 0x0E, InstrClass.ALU, signed=False),
    _i("lui", 0x0F, InstrClass.ALU, rs=False, signed=False),
    # --- loads / stores ----------------------------------------------------
    _i("lb", 0x20, InstrClass.LOAD),
    _i("lh", 0x21, InstrClass.LOAD),
    _i("lw", 0x23, InstrClass.LOAD),
    _i("lbu", 0x24, InstrClass.LOAD),
    _i("lhu", 0x25, InstrClass.LOAD),
    _i("sb", 0x28, InstrClass.STORE, rt=True, wrt=False),
    _i("sh", 0x29, InstrClass.STORE, rt=True, wrt=False),
    _i("sw", 0x2B, InstrClass.STORE, rt=True, wrt=False),
    # --- branches ----------------------------------------------------------
    _i("beq", 0x04, InstrClass.BRANCH, rt=True, wrt=False),
    _i("bne", 0x05, InstrClass.BRANCH, rt=True, wrt=False),
    _i("blez", 0x06, InstrClass.BRANCH, wrt=False),
    _i("bgtz", 0x07, InstrClass.BRANCH, wrt=False),
    OpInfo("bltz", Format.I, 0x01, 0x00, InstrClass.BRANCH,
           reads_rs=True, regimm=True),
    OpInfo("bgez", Format.I, 0x01, 0x01, InstrClass.BRANCH,
           reads_rs=True, regimm=True),
    # --- absolute jumps ----------------------------------------------------
    OpInfo("j", Format.J, 0x02, None, InstrClass.JUMP),
    OpInfo("jal", Format.J, 0x03, None, InstrClass.JUMP),
]

#: Mnemonic -> metadata for every implemented instruction.
OPCODES: Dict[str, OpInfo] = {op.mnemonic: op for op in _OPS}

#: (opcode, funct) -> OpInfo for R-format decode.
_R_BY_FUNCT: Dict[int, OpInfo] = {
    op.funct: op for op in _OPS if op.fmt is Format.R
}
#: opcode -> OpInfo for non-special, non-regimm decode.
_BY_OPCODE: Dict[int, OpInfo] = {
    op.opcode: op for op in _OPS
    if op.fmt is not Format.R and not op.regimm
}
#: rt field -> OpInfo for REGIMM decode.
_REGIMM_BY_RT: Dict[int, OpInfo] = {op.funct: op for op in _OPS if op.regimm}


def lookup(mnemonic: str) -> OpInfo:
    """Return metadata for ``mnemonic``; raises KeyError if unimplemented."""
    return OPCODES[mnemonic]


def decode_fields(opcode: int, rt: int, funct: int) -> Optional[OpInfo]:
    """Resolve raw fields to an :class:`OpInfo` (None if unrecognised)."""
    if opcode == 0x00:
        return _R_BY_FUNCT.get(funct)
    if opcode == 0x01:
        return _REGIMM_BY_RT.get(rt)
    return _BY_OPCODE.get(opcode)


def instruction_sources(info: OpInfo, rs: int, rt: int) -> Tuple[int, ...]:
    """Register numbers read by an instruction with the given fields."""
    sources = []
    if info.reads_rs:
        sources.append(rs)
    if info.reads_rt:
        sources.append(rt)
    return tuple(sources)
