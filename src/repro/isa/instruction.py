"""The :class:`Instruction` value type and 32-bit binary encode/decode."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.opcodes import (
    Format,
    InstrClass,
    OpInfo,
    OPCODES,
    decode_fields,
)
from repro.isa.registers import register_name

MASK32 = 0xFFFFFFFF


def sign_extend16(value: int) -> int:
    """Sign-extend a 16-bit field to a Python int in [-32768, 32767]."""
    value &= 0xFFFF
    return value - 0x10000 if value & 0x8000 else value


@dataclass(frozen=True)
class Instruction:
    """One decoded MIPS instruction.

    ``imm`` stores the immediate as a *signed* Python int for sign-extended
    forms and an unsigned one otherwise; ``target`` stores the full 28-bit
    byte target of J-format instructions (already shifted left by 2).
    """

    mnemonic: str
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0

    @property
    def info(self) -> OpInfo:
        return OPCODES[self.mnemonic]

    @property
    def klass(self) -> InstrClass:
        # The canonical nop is the all-zero word, which decodes as sll.
        if (self.mnemonic == "sll" and self.rd == 0 and self.rt == 0
                and self.shamt == 0):
            return InstrClass.NOP
        return self.info.klass

    # ------------------------------------------------------------------
    # Dataflow views used by the simulator and DIM.
    # ------------------------------------------------------------------
    def sources(self) -> Tuple[int, ...]:
        """Register numbers this instruction reads (may include $zero)."""
        info = self.info
        out = []
        if info.reads_rs:
            out.append(self.rs)
        if info.reads_rt:
            out.append(self.rt)
        return tuple(out)

    def destination(self) -> Optional[int]:
        """The GPR written, or None (stores, branches, mult/div, $zero)."""
        info = self.info
        if info.writes_rd:
            dest = self.rd
        elif info.writes_rt:
            dest = self.rt
        elif self.mnemonic in ("jal", "jalr"):
            dest = 31 if self.mnemonic == "jal" else self.rd
        else:
            return None
        return dest if dest != 0 else None

    def branch_target(self, pc: int) -> int:
        """Target address of a taken branch/jump located at ``pc``."""
        info = self.info
        if info.fmt is Format.J:
            return ((pc + 4) & 0xF0000000) | self.target
        if info.klass is InstrClass.BRANCH:
            return (pc + 4 + (self.imm << 2)) & MASK32
        raise ValueError(f"{self.mnemonic} has no branch target")

    # ------------------------------------------------------------------
    # Pretty printing (assembly-compatible).
    # ------------------------------------------------------------------
    def __str__(self) -> str:  # noqa: C901 - straightforward case split
        m = self.mnemonic
        info = self.info
        r = register_name
        if self.klass is InstrClass.NOP:
            return "nop"
        if info.fmt is Format.J:
            return f"{m} 0x{self.target:x}"
        if m in ("sll", "srl", "sra"):
            return f"{m} ${r(self.rd)}, ${r(self.rt)}, {self.shamt}"
        if m in ("sllv", "srlv", "srav"):
            return f"{m} ${r(self.rd)}, ${r(self.rt)}, ${r(self.rs)}"
        if m in ("mult", "multu", "div", "divu"):
            return f"{m} ${r(self.rs)}, ${r(self.rt)}"
        if m in ("mfhi", "mflo"):
            return f"{m} ${r(self.rd)}"
        if m in ("mthi", "mtlo"):
            return f"{m} ${r(self.rs)}"
        if m == "jr":
            return f"{m} ${r(self.rs)}"
        if m == "jalr":
            return f"{m} ${r(self.rd)}, ${r(self.rs)}"
        if m in ("syscall", "break"):
            return m
        if info.fmt is Format.R:
            return f"{m} ${r(self.rd)}, ${r(self.rs)}, ${r(self.rt)}"
        if info.klass in (InstrClass.LOAD, InstrClass.STORE):
            return f"{m} ${r(self.rt)}, {self.imm}(${r(self.rs)})"
        if m == "lui":
            return f"{m} ${r(self.rt)}, 0x{self.imm & 0xFFFF:x}"
        if m in ("beq", "bne"):
            return f"{m} ${r(self.rs)}, ${r(self.rt)}, {self.imm}"
        if info.klass is InstrClass.BRANCH:
            return f"{m} ${r(self.rs)}, {self.imm}"
        return f"{m} ${r(self.rt)}, ${r(self.rs)}, {self.imm}"


NOP = Instruction("sll", rs=0, rt=0, rd=0, shamt=0)


def encode(instr: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit word."""
    info = instr.info
    if info.fmt is Format.R:
        return ((info.opcode << 26) | (instr.rs << 21) | (instr.rt << 16)
                | (instr.rd << 11) | (instr.shamt << 6) | info.funct)
    if info.fmt is Format.J:
        return (info.opcode << 26) | ((instr.target >> 2) & 0x3FFFFFF)
    # I-format; REGIMM branches carry the selector in rt.
    rt = info.funct if info.regimm else instr.rt
    return ((info.opcode << 26) | (instr.rs << 21) | (rt << 16)
            | (instr.imm & 0xFFFF))


def decode(word: int) -> Optional[Instruction]:
    """Decode a 32-bit word; returns None for unimplemented encodings."""
    word &= MASK32
    opcode = word >> 26
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    rd = (word >> 11) & 0x1F
    shamt = (word >> 6) & 0x1F
    funct = word & 0x3F
    info = decode_fields(opcode, rt, funct)
    if info is None:
        return None
    if info.fmt is Format.J:
        return Instruction(info.mnemonic, target=(word & 0x3FFFFFF) << 2)
    if info.fmt is Format.R:
        return Instruction(info.mnemonic, rs=rs, rt=rt, rd=rd, shamt=shamt)
    imm = word & 0xFFFF
    if info.signed_imm:
        imm = sign_extend16(imm)
    if info.regimm:
        rt = 0
    return Instruction(info.mnemonic, rs=rs, rt=rt, imm=imm)
