"""MIPS I instruction-set definitions shared by the whole system.

This subpackage is the single source of truth for:

- register names/numbers (:mod:`repro.isa.registers`),
- opcode/funct encodings and per-instruction metadata
  (:mod:`repro.isa.opcodes`),
- the :class:`repro.isa.instruction.Instruction` value type with binary
  encode/decode,
- pure functional semantics (:mod:`repro.isa.semantics`) reused by both
  the MIPS pipeline model and the reconfigurable-array executor, which is
  what guarantees that accelerated execution is bit-identical to native
  execution.
"""

from repro.isa.registers import (
    REGISTER_NAMES,
    register_name,
    register_number,
)
from repro.isa.opcodes import InstrClass, OpInfo, OPCODES, lookup
from repro.isa.instruction import Instruction, decode, encode

__all__ = [
    "REGISTER_NAMES",
    "register_name",
    "register_number",
    "InstrClass",
    "OpInfo",
    "OPCODES",
    "lookup",
    "Instruction",
    "decode",
    "encode",
]
