"""Plain-text table formatting shared by the benchmark harnesses."""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned ASCII table (the benches print these)."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_fmt(value) for value in row])
    widths = [max(len(row[col]) for row in cells)
              for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for index, row in enumerate(cells):
        lines.append(" | ".join(cell.ljust(width)
                                for cell, width in zip(row, widths)))
        if index == 0:
            lines.append(sep)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
