"""Figure 3a: how many basic blocks cover a given execution fraction.

The paper counts, per benchmark, the number of distinct basic blocks one
must implement in reconfigurable logic to cover 20/40/60/80/100% of the
execution — its argument for why kernel-centric reconfigurable systems
fail on heterogeneous code (JPEG needs ~20 blocks for 50%, CRC only 3
for ~100%).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.blocks import BlockProfile, block_profile
from repro.sim.trace import Trace


def coverage_curve(profile: BlockProfile) -> List[float]:
    """Cumulative execution fraction after adding blocks hottest-first.

    ``curve[k]`` is the fraction of dynamic instructions covered by the
    ``k+1`` hottest blocks.
    """
    ranked = sorted(profile.instructions.values(), reverse=True)
    total = profile.total_instructions or 1
    curve: List[float] = []
    acc = 0
    for weight in ranked:
        acc += weight
        curve.append(acc / total)
    return curve


def blocks_for_coverage(trace_or_profile, fractions: Sequence[float] = (
        0.2, 0.4, 0.6, 0.8, 1.0)) -> Dict[float, int]:
    """Figure 3a: #blocks needed for each execution-time fraction."""
    if isinstance(trace_or_profile, Trace):
        profile = block_profile(trace_or_profile)
    else:
        profile = trace_or_profile
    curve = coverage_curve(profile)
    out: Dict[float, int] = {}
    for fraction in fractions:
        needed = len(curve)
        for index, covered in enumerate(curve):
            if covered >= fraction - 1e-12:
                needed = index + 1
                break
        out[fraction] = needed
    return out
