"""Workload characterisation and report formatting (Figure 3)."""

from repro.analysis.blocks import (
    block_profile,
    instructions_per_branch,
    BlockProfile,
)
from repro.analysis.coverage import blocks_for_coverage, coverage_curve
from repro.analysis.report import format_table
from repro.analysis.shape_search import (
    ShapeCandidate,
    default_grid,
    pareto_front,
    search_shapes,
)

__all__ = [
    "ShapeCandidate",
    "default_grid",
    "pareto_front",
    "search_shapes",
    "block_profile",
    "instructions_per_branch",
    "BlockProfile",
    "blocks_for_coverage",
    "coverage_curve",
    "format_table",
]
