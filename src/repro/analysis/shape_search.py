"""Array shape-space search — the paper's future work #1.

"Currently, we are working on finding the ideal shape for the
reconfigurable array."  Historically this module did that search with a
private exhaustive grid loop; it is now a thin back-compat wrapper over
the design-space exploration subsystem (:mod:`repro.dse`), which adds
budget-bounded strategies (random, successive halving, hill climbing),
multi-objective Pareto frontiers with energy as a first-class axis, and
execution through the trace-once / replay-many engine or a running
``repro serve`` instance.

.. deprecated::
    Prefer :func:`repro.dse.explore` (or the ``repro explore`` CLI) for
    new code.  :func:`search_shapes` remains supported and returns
    bit-identical results to its historical implementation — the
    differential test in ``tests/test_dse.py`` holds it to that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cgra.shape import ArrayShape, default_immediate_slots
from repro.dim.params import DimParams
from repro.sim.stats import TimingModel
from repro.sim.trace import Trace
from repro.system.area import AreaParams


@dataclass(frozen=True)
class ShapeCandidate:
    """One evaluated point of the design space."""

    shape: ArrayShape
    gates: int
    geomean_speedup: float
    #: speedup per million gates — the cost-efficiency metric.
    efficiency: float

    def describe(self) -> str:
        s = self.shape
        return (f"{s.rows}x({s.alus_per_row}a+{s.mults_per_row}m+"
                f"{s.ldsts_per_row}ls): {self.geomean_speedup:.2f}x, "
                f"{self.gates:,} gates, {self.efficiency:.2f}x/Mgate")


def default_grid() -> List[ArrayShape]:
    """A coarse but representative grid around Table 1's designs."""
    shapes = []
    for rows in (16, 24, 48, 96, 150):
        for alus in (4, 8, 12):
            for ldsts in (2, 6):
                shapes.append(ArrayShape(
                    rows=rows, alus_per_row=alus, mults_per_row=2,
                    ldsts_per_row=ldsts,
                    immediate_slots=default_immediate_slots(rows)))
    return shapes


def search_shapes(traces: Dict[str, Trace],
                  shapes: Optional[Iterable[ArrayShape]] = None,
                  dim: Optional[DimParams] = None,
                  timing: Optional[TimingModel] = None,
                  area_budget_gates: Optional[int] = None,
                  area_params: AreaParams = AreaParams(),
                  rank_by: str = "speedup") -> List[ShapeCandidate]:
    """Evaluate a shape grid against workload traces and rank it.

    ``rank_by`` is 'speedup' or 'efficiency' (speedup per million
    gates).  Shapes above ``area_budget_gates`` are skipped before any
    simulation happens, so a tight budget makes the search cheap.

    .. deprecated::
        This is a compatibility wrapper over :mod:`repro.dse` — an
        explicit :class:`~repro.dse.space.ParameterSpace` over the
        shape list, scored by a :class:`~repro.dse.runner.TraceRunner`
        that reproduces the historical float arithmetic exactly.  New
        code should call :func:`repro.dse.explore`, which also offers
        cheaper-than-exhaustive strategies and true Pareto frontiers.
    """
    from repro.dse.objectives import resolve_objectives
    from repro.dse.runner import TraceRunner
    from repro.dse.space import ParameterSpace
    from repro.dse.strategies import GridSearch

    if rank_by not in ("speedup", "efficiency"):
        raise ValueError(f"unknown ranking {rank_by!r}")
    space = ParameterSpace.for_shapes(
        list(shapes) if shapes is not None else default_grid(),
        area_budget_gates=area_budget_gates, area_params=area_params)
    runner = TraceRunner(space, traces, dim=dim, timing=timing)
    evaluations = GridSearch().explore(
        space, resolve_objectives(("speedup",)), runner, None,
        random.Random(0))
    candidates = [ShapeCandidate(
        shape=space.shape_of(evaluation.candidate),
        gates=evaluation.gates,
        geomean_speedup=evaluation.geomean_speedup,
        efficiency=evaluation.geomean_speedup
        / (evaluation.gates / 1e6))
        for evaluation in evaluations]
    key = (lambda c: c.geomean_speedup) if rank_by == "speedup" \
        else (lambda c: c.efficiency)
    return sorted(candidates, key=key, reverse=True)


def pareto_front(candidates: Sequence[ShapeCandidate]
                 ) -> List[ShapeCandidate]:
    """Area/speedup Pareto-optimal candidates, cheapest first.

    A candidate survives if no other one is both cheaper (or equal) and
    faster.
    """
    by_area = sorted(candidates, key=lambda c: (c.gates,
                                                -c.geomean_speedup))
    front: List[ShapeCandidate] = []
    best = 0.0
    for candidate in by_area:
        if candidate.geomean_speedup > best:
            front.append(candidate)
            best = candidate.geomean_speedup
    return front
