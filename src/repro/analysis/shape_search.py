"""Array shape-space search — the paper's future work #1.

"Currently, we are working on finding the ideal shape for the
reconfigurable array."  This module does that search: it sweeps a grid
of array geometries, evaluates each against a set of workload traces
with the cycle-exact trace evaluator, prices each with the Table 3 area
model, and ranks candidates by speedup, by area, or by speedup per gate
under an optional area budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cgra.shape import ArrayShape
from repro.dim.memo import TranslationMemo
from repro.dim.params import DimParams
from repro.sim.stats import TimingModel
from repro.sim.trace import Trace
from repro.system.area import AreaParams, area_report
from repro.system.config import SystemConfig
from repro.system.traceeval import baseline_metrics, evaluate_trace


@dataclass(frozen=True)
class ShapeCandidate:
    """One evaluated point of the design space."""

    shape: ArrayShape
    gates: int
    geomean_speedup: float
    #: speedup per million gates — the cost-efficiency metric.
    efficiency: float

    def describe(self) -> str:
        s = self.shape
        return (f"{s.rows}x({s.alus_per_row}a+{s.mults_per_row}m+"
                f"{s.ldsts_per_row}ls): {self.geomean_speedup:.2f}x, "
                f"{self.gates:,} gates, {self.efficiency:.2f}x/Mgate")


def default_grid() -> List[ArrayShape]:
    """A coarse but representative grid around Table 1's designs."""
    shapes = []
    for rows in (16, 24, 48, 96, 150):
        for alus in (4, 8, 12):
            for ldsts in (2, 6):
                shapes.append(ArrayShape(
                    rows=rows, alus_per_row=alus, mults_per_row=2,
                    ldsts_per_row=ldsts, immediate_slots=2 * rows))
    return shapes


def search_shapes(traces: Dict[str, Trace],
                  shapes: Optional[Iterable[ArrayShape]] = None,
                  dim: Optional[DimParams] = None,
                  timing: Optional[TimingModel] = None,
                  area_budget_gates: Optional[int] = None,
                  area_params: AreaParams = AreaParams(),
                  rank_by: str = "speedup") -> List[ShapeCandidate]:
    """Evaluate a shape grid against workload traces and rank it.

    ``rank_by`` is 'speedup' or 'efficiency' (speedup per million
    gates).  Shapes above ``area_budget_gates`` are skipped before any
    simulation happens, so a tight budget makes the search cheap.
    """
    if rank_by not in ("speedup", "efficiency"):
        raise ValueError(f"unknown ranking {rank_by!r}")
    dim = dim or DimParams(cache_slots=64, speculation=True)
    timing = timing or TimingModel()
    baselines = {name: baseline_metrics(trace, timing)
                 for name, trace in traces.items()}
    # One translation memo per workload, shared across the whole shape
    # grid: memo keys include the array shape, so results stay identical
    # while retranslation retries within each evaluation are elided.
    memos = {name: TranslationMemo() for name in traces}
    candidates: List[ShapeCandidate] = []
    for shape in (shapes if shapes is not None else default_grid()):
        gates = area_report(shape, area_params).total_gates
        if area_budget_gates is not None and gates > area_budget_gates:
            continue
        config = SystemConfig(shape, dim, timing,
                              name=f"{shape.rows}r{shape.alus_per_row}a")
        product = 1.0
        for name, trace in traces.items():
            metrics = evaluate_trace(trace, config, memo=memos[name])
            product *= baselines[name].cycles / metrics.cycles
        geomean = product ** (1.0 / len(traces))
        candidates.append(ShapeCandidate(
            shape=shape, gates=gates, geomean_speedup=geomean,
            efficiency=geomean / (gates / 1e6)))
    key = (lambda c: c.geomean_speedup) if rank_by == "speedup" \
        else (lambda c: c.efficiency)
    return sorted(candidates, key=key, reverse=True)


def pareto_front(candidates: Sequence[ShapeCandidate]
                 ) -> List[ShapeCandidate]:
    """Area/speedup Pareto-optimal candidates, cheapest first.

    A candidate survives if no other one is both cheaper (or equal) and
    faster.
    """
    by_area = sorted(candidates, key=lambda c: (c.gates,
                                                -c.geomean_speedup))
    front: List[ShapeCandidate] = []
    best = 0.0
    for candidate in by_area:
        if candidate.geomean_speedup > best:
            front.append(candidate)
            best = candidate.geomean_speedup
    return front
