"""Basic-block execution profiles (Figure 3b's metric)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.trace import Trace


@dataclass(frozen=True)
class BlockProfile:
    """Execution profile of one traced run."""

    #: block id -> times executed.
    counts: Dict[int, int]
    #: block id -> dynamic instructions attributed to it.
    instructions: Dict[int, int]
    total_instructions: int
    total_branches: int

    @property
    def instructions_per_branch(self) -> float:
        """Figure 3b: average dynamic basic-block length."""
        if not self.total_branches:
            return float("inf")
        return self.total_instructions / self.total_branches

    def hottest(self, n: int = 10) -> List[Tuple[int, int]]:
        """The n most-executed blocks as (block_id, instructions)."""
        ranked = sorted(self.instructions.items(), key=lambda kv: -kv[1])
        return ranked[:n]


def block_profile(trace: Trace) -> BlockProfile:
    """Profile a trace: per-block execution and instruction counts."""
    counts: Dict[int, int] = {}
    instructions: Dict[int, int] = {}
    total_instructions = 0
    total_branches = 0
    table = trace.table
    for event in trace.events:
        block = table.get(event.block_id)
        size = len(block)
        counts[event.block_id] = counts.get(event.block_id, 0) + 1
        instructions[event.block_id] = \
            instructions.get(event.block_id, 0) + size
        total_instructions += size
        if block.terminator is not None:
            total_branches += 1
    return BlockProfile(counts, instructions, total_instructions,
                        total_branches)


def instructions_per_branch(trace: Trace) -> float:
    """Convenience wrapper for Figure 3b."""
    return block_profile(trace).instructions_per_branch
