"""Array geometry and timing parameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ArrayShape:
    """Geometry and timing of one reconfigurable-array configuration.

    The first four fields mirror Table 1 of the paper (lines, and per-line
    ALU / multiplier / load-store unit counts; the paper's "#Columns" is
    their sum).  The remaining fields are the timing assumptions Section
    4.1 describes qualitatively:

    - ``alu_chain``: how many *dependent* ALU lines fit in one processor
      cycle ("more than one operation can be executed within one processor
      equivalent cycle" for simple arithmetic); multiplies and memory
      operations take a full cycle.
    - ``rf_read_ports`` / ``rf_write_ports``: register-bank bandwidth for
      fetching the input context during reconfiguration and writing the
      output context back.  Reconfiguration overlaps the three pipeline
      stages before execute; only the excess stalls the core.
    - ``immediate_slots``: how many immediate values one stored
      configuration can carry (the paper's Immediate Table).
    """

    rows: int
    alus_per_row: int
    mults_per_row: int
    ldsts_per_row: int
    #: two dependent mux->ALU->mux traversals per processor cycle; the
    #: paper says "more than one" simple operation fits in a cycle, and
    #: the ablation bench sweeps 1..4 (1 reproduces the paper's average
    #: speedups almost exactly, 2 is our default — see EXPERIMENTS.md).
    alu_chain: int = 2
    rf_read_ports: int = 6
    rf_write_ports: int = 4
    immediate_slots: int = 64

    @property
    def columns(self) -> int:
        """Table 1's "#Columns": functional units per line."""
        return self.alus_per_row + self.mults_per_row + self.ldsts_per_row

    def line_delay(self, has_mem: bool, has_mult: bool) -> float:
        """Delay contribution of one occupied line, in processor cycles."""
        if has_mem or has_mult:
            return 1.0
        return 1.0 / self.alu_chain

    def reconfiguration_cycles(self, num_inputs: int) -> int:
        """Cycles to load a configuration and fetch its input context.

        One cycle reads the configuration bits from the reconfiguration
        cache; the input operands then stream through the register-bank
        read ports.
        """
        fetch = -(-num_inputs // self.rf_read_ports) if num_inputs else 0
        return 1 + fetch


def default_immediate_slots(rows: int) -> int:
    """Immediate-table capacity for an array of ``rows`` lines.

    Two slots per line, so lines — not immediates — are the binding
    resource (the paper never reports immediate-table saturation).
    This is the single home of that convention: the shape-search grid
    (:mod:`repro.analysis.shape_search`) and the DSE parameter space
    (:mod:`repro.dse.space`) both derive unpinned immediate tables
    through it.
    """
    return 2 * rows


#: An effectively unbounded array, used for the paper's "Ideal" columns.
INFINITE_SHAPE = ArrayShape(rows=1_000_000, alus_per_row=512,
                            mults_per_row=512, ldsts_per_row=512,
                            immediate_slots=1_000_000)
