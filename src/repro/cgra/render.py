"""ASCII rendering of array configurations — Figure 2 as a diagnostic.

Shows which functional unit of which line executes each translated
instruction, the input/output context and the timing summary — the view
the paper sketches in Figure 2c for a sequence of eight instructions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cgra.configuration import Configuration
from repro.cgra.dataflow import HI, LO, dim_fu_class
from repro.isa.registers import register_name


def _slot_name(slot: int) -> str:
    if slot == HI:
        return "hi"
    if slot == LO:
        return "lo"
    return f"${register_name(slot)}"


def render_configuration(config: Configuration,
                         max_ops_per_line: int = 6) -> str:
    """Render a configuration as a line-by-line ASCII grid."""
    result = config.result
    by_line: Dict[int, List[str]] = {}
    for instr, line in result.placements:
        kind = dim_fu_class(instr)
        tag = {"alu": "A", "mult": "M", "mem": "L"}[kind]
        by_line.setdefault(line, []).append(
            f"[{tag}] {str(instr)}")
    out: List[str] = [config.describe(), ""]
    shape = config.shape
    for line in sorted(by_line):
        ops = by_line[line]
        has_mem = any(op.startswith("[L]") for op in ops)
        has_mult = any(op.startswith("[M]") for op in ops)
        delay = shape.line_delay(has_mem, has_mult)
        shown = ops[:max_ops_per_line]
        more = len(ops) - len(shown)
        suffix = f"  (+{more} more)" if more > 0 else ""
        out.append(f"line {line:3d} ({delay:4.2f} cyc): "
                   + "  ".join(shown) + suffix)
    inputs = ", ".join(_slot_name(s) for s in sorted(result.inputs))
    outputs = ", ".join(_slot_name(s) for s in sorted(result.outputs))
    out.append("")
    out.append(f"input context : {inputs or '(none)'}")
    out.append(f"output context: {outputs or '(none)'}")
    out.append(f"execution     : {config.exec_cycles} cycles on "
               f"{result.lines_used} lines, "
               f"{config.reconfiguration_cycles} reconfiguration cycles")
    return "\n".join(out)
