"""Finished, cacheable array configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cgra.allocation import AllocationResult
from repro.cgra.shape import ArrayShape
from repro.sim.trace import BasicBlock


@dataclass
class ConfigBlock:
    """One basic block's contribution to a configuration.

    ``covered`` counts instructions from the block start that execute on
    the array.  When the block's terminating branch is merged into the
    configuration (speculation), ``expected_taken`` records the direction
    the configuration was built for; otherwise the terminator executes on
    the processor after the array finishes.
    """

    block: BasicBlock
    covered: int
    includes_terminator: bool
    expected_taken: Optional[bool] = None

    @property
    def body_len(self) -> int:
        """Instructions in the block excluding the terminator."""
        if self.block.terminator is None:
            return len(self.block)
        return len(self.block) - 1


@dataclass
class Configuration:
    """A translated instruction tree, as stored in the reconfiguration cache.

    The runtime-mutable fields track the speculation health of this entry:
    ``misspec_count`` counts wrong-direction executions since the last
    (re)build and triggers a flush at the engine's threshold.
    """

    start_pc: int
    blocks: List[ConfigBlock]
    result: AllocationResult
    shape: ArrayShape
    #: False once the translator decided no further blocks can be merged.
    extendable: bool = True
    #: runtime state
    misspec_count: int = 0
    hits: int = 0
    builds: int = 1

    @property
    def exec_cycles(self) -> int:
        """Array busy time per execution.

        Line delays plus the post-resolution drain of speculative
        live-outs through the register-file write ports (non-speculative
        results write back overlapped with execution, Section 4.2).
        """
        spec_wb = -(-self.result.speculative_outputs
                    // self.shape.rf_write_ports)
        return self.result.exec_cycles + spec_wb

    @property
    def reconfiguration_cycles(self) -> int:
        return self.shape.reconfiguration_cycles(len(self.result.inputs))

    @property
    def covered_instructions(self) -> int:
        """Total instructions executed by the array on a fully-correct run."""
        total = 0
        for cfg_block in self.blocks:
            total += cfg_block.covered
            if cfg_block.includes_terminator:
                total += 1
        return total

    @property
    def speculative_depth(self) -> int:
        """Number of speculated block boundaries."""
        return sum(1 for b in self.blocks if b.includes_terminator
                   and b.block.is_conditional)

    @property
    def is_speculative(self) -> bool:
        return len(self.blocks) > 1

    def describe(self) -> str:
        parts = [f"config@0x{self.start_pc:08x}:"]
        for cfg_block in self.blocks:
            term = ""
            if cfg_block.includes_terminator:
                term = " +T" if cfg_block.expected_taken else " +NT"
            parts.append(
                f"  block 0x{cfg_block.block.start_pc:08x} "
                f"covers {cfg_block.covered}/{cfg_block.body_len}{term}")
        res = self.result
        parts.append(
            f"  {res.num_instructions} ops on {res.lines_used} lines, "
            f"{res.exec_cycles} cycles, {len(res.inputs)} in / "
            f"{len(res.outputs)} out")
        return "\n".join(parts)
