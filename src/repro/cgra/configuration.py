"""Finished, cacheable array configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cgra.allocation import AllocationResult
from repro.cgra.shape import ArrayShape
from repro.sim.trace import BasicBlock


@dataclass
class ConfigBlock:
    """One basic block's contribution to a configuration.

    ``covered`` counts instructions from the block start that execute on
    the array.  When the block's terminating branch is merged into the
    configuration (speculation), ``expected_taken`` records the direction
    the configuration was built for; otherwise the terminator executes on
    the processor after the array finishes.
    """

    block: BasicBlock
    covered: int
    includes_terminator: bool
    expected_taken: Optional[bool] = None

    @property
    def body_len(self) -> int:
        """Instructions in the block excluding the terminator."""
        if self.block.terminator is None:
            return len(self.block)
        return len(self.block) - 1


@dataclass
class Configuration:
    """A translated instruction tree, as stored in the reconfiguration cache.

    The runtime-mutable fields track the speculation health of this entry:
    ``misspec_count`` counts wrong-direction executions since the last
    (re)build and triggers a flush at the engine's threshold.

    ``kind`` selects the execution semantics:

    - ``"linear"`` — the paper's translator: one pass over ``blocks``,
      exiting at the first mis-speculated merged branch.
    - ``"loop"`` — every block includes its terminator and the final
      terminator is a back-edge to ``start_pc``; the array iterates the
      whole chain, paying ``loop_check_cycles`` per trip to resolve the
      back-edge, until the back-edge resolves against ``expected_taken``
      (a clean exit) or an interior merged branch mis-speculates.
    - ``"dual"`` — the final block's conditional terminator is
      *predicated* (its ``expected_taken`` is None): both successors'
      covered prefixes (``dual_taken`` / ``dual_fallthrough``) are
      placed, write-backs gated on the resolved direction at a cost of
      ``gate_cycles`` per execution; the losing path is squashed without
      any mis-speculation penalty.
    """

    start_pc: int
    blocks: List[ConfigBlock]
    result: AllocationResult
    shape: ArrayShape
    #: False once the translator decided no further blocks can be merged.
    extendable: bool = True
    #: 'linear', 'loop' or 'dual' (see class docstring).
    kind: str = "linear"
    #: dual-path merge: the covered prefix of each successor (the
    #: terminators of these blocks are never included).
    dual_taken: Optional[ConfigBlock] = None
    dual_fallthrough: Optional[ConfigBlock] = None
    #: per-execution predication-gating cost of a dual configuration.
    gate_cycles: int = 0
    #: per-trip back-edge resolution cost of a loop configuration.
    loop_check_cycles: int = 0
    #: runtime state
    misspec_count: int = 0
    hits: int = 0
    builds: int = 1

    @property
    def exec_cycles(self) -> int:
        """Array busy time per execution (first trip for loops).

        Line delays plus the post-resolution drain of speculative
        live-outs through the register-file write ports (non-speculative
        results write back overlapped with execution, Section 4.2).
        Dual-path configurations additionally pay the write-back gate.
        """
        spec_wb = -(-self.result.speculative_outputs
                    // self.shape.rf_write_ports)
        return self.result.exec_cycles + spec_wb + self.gate_cycles

    @property
    def trip_cycles(self) -> int:
        """Marginal array time of one additional loop trip.

        Carried operands stay routed inside the array (the rotating
        map), so a trip pays the dataflow depth but neither the
        reconfiguration fetch nor the speculative write-back drain —
        those are paid once per execution.  The per-trip exit check is
        charged separately (``loop_check_cycles``).
        """
        return self.result.exec_cycles

    @property
    def reconfiguration_cycles(self) -> int:
        return self.shape.reconfiguration_cycles(len(self.result.inputs))

    @property
    def covered_instructions(self) -> int:
        """Total instructions executed by the array on a fully-correct run.

        For a dual-path configuration only the guaranteed side counts:
        ``min`` of the two path prefixes, since exactly one commits per
        execution and which one is unknown at build time.
        """
        total = 0
        for cfg_block in self.blocks:
            total += cfg_block.covered
            if cfg_block.includes_terminator:
                total += 1
        if self.kind == "dual":
            total += min(self.dual_taken.covered,
                         self.dual_fallthrough.covered)
        return total

    @property
    def speculative_depth(self) -> int:
        """Number of speculated block boundaries."""
        return sum(1 for b in self.blocks if b.includes_terminator
                   and b.block.is_conditional)

    @property
    def is_speculative(self) -> bool:
        return len(self.blocks) > 1

    def describe(self) -> str:
        head = "" if self.kind == "linear" else f" [{self.kind}]"
        parts = [f"config@0x{self.start_pc:08x}:{head}"]
        for cfg_block in self.blocks:
            term = ""
            if cfg_block.includes_terminator:
                if cfg_block.expected_taken is None:
                    term = " +PRED"
                else:
                    term = " +T" if cfg_block.expected_taken else " +NT"
            parts.append(
                f"  block 0x{cfg_block.block.start_pc:08x} "
                f"covers {cfg_block.covered}/{cfg_block.body_len}{term}")
        for label, side in (("taken", self.dual_taken),
                            ("fallthrough", self.dual_fallthrough)):
            if side is not None:
                parts.append(
                    f"  {label} path 0x{side.block.start_pc:08x} "
                    f"covers {side.covered}/{side.body_len}")
        res = self.result
        parts.append(
            f"  {res.num_instructions} ops on {res.lines_used} lines, "
            f"{res.exec_cycles} cycles, {len(res.inputs)} in / "
            f"{len(res.outputs)} out")
        return "\n".join(parts)
