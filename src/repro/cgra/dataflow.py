"""DIM's dataflow view of MIPS instructions.

The translation hardware tracks dependences through the 32 general
registers plus the HI/LO multiply results, which it treats as two extra
context slots (indices 32 and 33).  That is what lets ``mult``/``mflo``
pairs — ubiquitous in compiled code — live inside one configuration
instead of terminating translation.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass

#: context indices for the multiply result registers.
HI = 32
LO = 33


def dim_supported(instr: Instruction) -> bool:
    """Whether DIM can place this instruction inside a configuration.

    ALU ops, shifts, multiplies, HI/LO moves and loads/stores are
    supported; divides (no divider in the array), jumps and syscalls are
    not.  Conditional branches are *terminators*: they may enter a
    configuration only as the comparison guarding a speculated block, so
    they are reported unsupported here and handled by the translator.
    """
    klass = instr.klass
    if klass in (InstrClass.ALU, InstrClass.SHIFT, InstrClass.MULT,
                 InstrClass.LOAD, InstrClass.STORE, InstrClass.NOP):
        return True
    if klass is InstrClass.HILO:
        return True
    return False


def dim_fu_class(instr: Instruction) -> str:
    """Functional-unit class consumed: 'alu', 'mult' or 'mem'.

    HI/LO moves and branch comparisons occupy ALU slots; nops occupy
    nothing but are mapped to 'alu' for uniformity (the translator skips
    them).
    """
    klass = instr.klass
    if klass is InstrClass.MULT:
        return "mult"
    if klass in (InstrClass.LOAD, InstrClass.STORE):
        return "mem"
    return "alu"


def dim_sources(instr: Instruction) -> Tuple[int, ...]:
    """Context slots read (register numbers, plus HI/LO), $zero excluded."""
    klass = instr.klass
    if klass is InstrClass.HILO:
        if instr.mnemonic == "mfhi":
            return (HI,)
        if instr.mnemonic == "mflo":
            return (LO,)
        # mthi / mtlo read a GPR
        return tuple(r for r in (instr.rs,) if r != 0)
    return tuple(r for r in instr.sources() if r != 0)


def dim_destinations(instr: Instruction) -> Tuple[int, ...]:
    """Context slots written (register numbers, plus HI/LO)."""
    klass = instr.klass
    if klass is InstrClass.MULT:
        return (HI, LO)
    if klass is InstrClass.HILO:
        if instr.mnemonic == "mthi":
            return (HI,)
        if instr.mnemonic == "mtlo":
            return (LO,)
        dest = instr.destination()
        return (dest,) if dest is not None else ()
    dest = instr.destination()
    return (dest,) if dest is not None else ()


def has_immediate(instr: Instruction) -> bool:
    """Whether the configuration must store an immediate for this op."""
    info = instr.info
    if info.fmt.value == "I" and instr.klass is not InstrClass.BRANCH:
        return instr.imm != 0
    if instr.mnemonic in ("sll", "srl", "sra"):
        return instr.shamt != 0
    return False


def memory_kind(instr: Instruction) -> Optional[str]:
    """'load', 'store' or None."""
    klass = instr.klass
    if klass is InstrClass.LOAD:
        return "load"
    if klass is InstrClass.STORE:
        return "store"
    return None
