"""Table-driven instruction placement — the heart of the DIM hardware.

This module implements Section 4.2's algorithm.  The translator feeds
instructions one at a time; each one is checked for RAW dependences
against the per-line write bitmap (the *dependence table*), placed at the
first line that satisfies its dependences with a free functional unit of
the right type (the *resource table*), and wired to the context buses
(the *reads/writes tables*).  Memory operations keep program order
conservatively: loads never pass stores, stores never pass any memory
operation.  HI/LO are tracked as context slots 32/33 so multiply chains
translate (see :mod:`repro.cgra.dataflow`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cgra.dataflow import (
    dim_destinations,
    dim_fu_class,
    dim_sources,
    has_immediate,
    memory_kind,
)
from repro.cgra.shape import ArrayShape
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass

#: per-line state indices
_ALU, _MULT, _MEM = 0, 1, 2


@dataclass(frozen=True)
class AllocationResult:
    """Summary of a finished allocation (what a stored config must know)."""

    num_instructions: int
    lines_used: int
    exec_cycles: int
    inputs: FrozenSet[int]
    outputs: FrozenSet[int]
    immediates: int
    alu_ops: int
    mult_ops: int
    mem_ops: int
    loads: int
    stores: int
    #: live-outs produced by *speculated* blocks.  Per Section 4.2 these
    #: carry a depth flag and are written back only when their branch
    #: resolves, so they drain serially through the register-file write
    #: ports after execution instead of overlapping with it.
    speculative_outputs: int = 0
    #: (instruction, line) placements, in translation order — used by
    #: the renderer and by diagnostics; empty for synthetic results.
    placements: Tuple[Tuple[Instruction, int], ...] = ()


class Allocator:
    """Incremental placement of one configuration onto an array shape."""

    def __init__(self, shape: ArrayShape):
        self.shape = shape
        # line index -> [alu_used, mult_used, mem_used]
        self._lines: Dict[int, List[int]] = {}
        self._writer_line: Dict[int, int] = {}
        self._written: set = set()
        self._inputs: set = set()
        self._last_store_line = -1
        self._last_mem_line = -1
        self._immediates = 0
        self._count = 0
        self._class_counts = {"alu": 0, "mult": 0, "mem": 0}
        self._loads = 0
        self._stores = 0
        self._nonspec_written: Optional[set] = None
        #: slots whose most recent writer is speculative (last write
        #: wins, so these are exactly the gated write-backs).
        self._spec_written: set = set()
        self._placements: List[Tuple[Instruction, int]] = []

    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple:
        """Cheap state capture for speculative rollback."""
        return (
            {k: list(v) for k, v in self._lines.items()},
            dict(self._writer_line),
            set(self._written),
            set(self._inputs),
            self._last_store_line,
            self._last_mem_line,
            self._immediates,
            self._count,
            dict(self._class_counts),
            self._loads,
            self._stores,
            None if self._nonspec_written is None
            else set(self._nonspec_written),
            set(self._spec_written),
            list(self._placements),
        )

    def restore(self, state: Tuple) -> None:
        (self._lines, self._writer_line, self._written, self._inputs,
         self._last_store_line, self._last_mem_line, self._immediates,
         self._count, self._class_counts, self._loads,
         self._stores, self._nonspec_written, self._spec_written,
         self._placements) = state

    # ------------------------------------------------------------------
    def place(self, instr: Instruction) -> bool:
        """Place one instruction; False when it does not fit.

        A failed placement leaves the allocator unchanged, so the caller
        can finish the configuration with everything placed so far.
        """
        if instr.klass is InstrClass.NOP:
            self._count += 1  # covered, but consumes nothing
            return True
        needs_imm = has_immediate(instr)
        if needs_imm and self._immediates >= self.shape.immediate_slots:
            return False
        fu = dim_fu_class(instr)
        min_line = 0
        sources = dim_sources(instr)
        for slot in sources:
            writer = self._writer_line.get(slot)
            if writer is not None:
                min_line = max(min_line, writer + 1)
        # Memory operations issue to the LD/ST group in program order:
        # they may share a line (the group has `ldsts_per_row` parallel
        # ports) but never appear in an earlier line than a preceding
        # memory operation.  Store-to-load forwarding within a line is
        # assumed, matching the paper's in-order LD/ST group.
        kind = memory_kind(instr)
        if kind == "load":
            min_line = max(min_line, self._last_store_line)
        elif kind == "store":
            min_line = max(min_line, self._last_mem_line)
        line = self._find_line(min_line, fu)
        if line is None:
            return False
        # --- commit ----------------------------------------------------
        for slot in sources:
            if slot not in self._written:
                self._inputs.add(slot)
        usage = self._lines.setdefault(line, [0, 0, 0])
        usage[{"alu": _ALU, "mult": _MULT, "mem": _MEM}[fu]] += 1
        for slot in dim_destinations(instr):
            self._writer_line[slot] = line
            self._written.add(slot)
            if self._nonspec_written is not None:
                self._spec_written.add(slot)
        if kind == "load":
            self._last_mem_line = max(self._last_mem_line, line)
            self._loads += 1
        elif kind == "store":
            self._last_mem_line = max(self._last_mem_line, line)
            self._last_store_line = max(self._last_store_line, line)
            self._stores += 1
        if needs_imm:
            self._immediates += 1
        self._class_counts[fu] += 1
        self._count += 1
        self._placements.append((instr, line))
        return True

    def _find_line(self, min_line: int, fu: str) -> Optional[int]:
        shape = self.shape
        capacity = {"alu": shape.alus_per_row, "mult": shape.mults_per_row,
                    "mem": shape.ldsts_per_row}[fu]
        if capacity <= 0:
            return None
        index = {"alu": _ALU, "mult": _MULT, "mem": _MEM}[fu]
        line = min_line
        while line < shape.rows:
            usage = self._lines.get(line)
            if usage is None or usage[index] < capacity:
                return line
            line += 1
        return None

    # ------------------------------------------------------------------
    # Dual-path placement support.  The two sides of a predicated merge
    # execute under mutually exclusive predicates, so neither observes
    # the other's register writes or memory operations — but they share
    # the array's lines, functional units and immediate slots.  The
    # translator brackets each side with ``fork_dataflow`` /
    # ``join_dataflow``: resource state keeps accumulating across the
    # fork while the dependence/IO view is rewound to the fork point.
    # ------------------------------------------------------------------
    def fork_dataflow(self) -> Tuple:
        """Capture the dependence/IO view at the predicated branch."""
        return (
            dict(self._writer_line),
            set(self._written),
            set(self._inputs),
            self._last_store_line,
            self._last_mem_line,
            set(self._spec_written),
        )

    def rewind_dataflow(self, mark: Tuple) -> Tuple:
        """Reset the dependence/IO view to ``mark``; returns the view
        being replaced (the first path's, for ``join_dataflow``)."""
        current = self.fork_dataflow()
        (writer_line, written, inputs, last_store, last_mem,
         spec_written) = mark
        self._writer_line = dict(writer_line)
        self._written = set(written)
        self._inputs = set(inputs)
        self._last_store_line = last_store
        self._last_mem_line = last_mem
        self._spec_written = set(spec_written)
        return current

    def join_dataflow(self, view: Tuple) -> None:
        """Union a rewound path's IO effects back into the allocator.

        Inputs of both paths are fetched at reconfiguration; written
        slots of both paths are potential (gated) write-backs, so the
        speculative-output drain prices the union.
        """
        writer_line, written, inputs, _store, _mem, spec_written = view
        self._inputs |= inputs
        self._written |= written
        self._spec_written |= spec_written
        for slot, line in writer_line.items():
            mine = self._writer_line.get(slot)
            if mine is None or line > mine:
                self._writer_line[slot] = line

    @property
    def input_count(self) -> int:
        """Distinct register-file operands the configuration fetches."""
        return len(self._inputs)

    # ------------------------------------------------------------------
    def mark_nonspec_boundary(self) -> None:
        """Record that everything placed so far commits unconditionally.

        The translator calls this after the first (non-speculative) block;
        live-outs written only by later blocks are speculative and their
        write-back serialises after branch resolution.
        """
        if self._nonspec_written is None:
            self._nonspec_written = set(self._written)

    @property
    def count(self) -> int:
        return self._count

    def exec_cycles(self) -> int:
        """Execution time of the current allocation, in processor cycles."""
        total = 0.0
        for usage in self._lines.values():
            total += self.shape.line_delay(usage[_MEM] > 0, usage[_MULT] > 0)
        return max(1, math.ceil(total)) if self._lines else 0

    def finish(self) -> AllocationResult:
        return AllocationResult(
            speculative_outputs=len(self._spec_written),
            placements=tuple(self._placements),
            num_instructions=self._count,
            lines_used=len(self._lines),
            exec_cycles=self.exec_cycles(),
            inputs=frozenset(self._inputs),
            outputs=frozenset(self._written),
            immediates=self._immediates,
            alu_ops=self._class_counts["alu"],
            mult_ops=self._class_counts["mult"],
            mem_ops=self._class_counts["mem"],
            loads=self._loads,
            stores=self._stores,
        )
