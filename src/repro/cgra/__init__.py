"""The coarse-grained reconfigurable array model.

The array is the two-dimensional structure of Section 4.1 of the paper:
``rows`` lines, each line holding a fixed mix of ALUs, multipliers and
load/store units, plus input/output multiplexers on a set of bus lines.
:mod:`repro.cgra.allocation` implements the table-driven placement that
DIM's hardware performs (dependence bitmap per line, resource table,
input/output context); :mod:`repro.cgra.configuration` is the finished,
cacheable configuration with its timing.
"""

from repro.cgra.shape import ArrayShape, INFINITE_SHAPE
from repro.cgra.dataflow import (
    HI,
    LO,
    dim_sources,
    dim_destinations,
    dim_fu_class,
    dim_supported,
)
from repro.cgra.allocation import Allocator, AllocationResult
from repro.cgra.configuration import ConfigBlock, Configuration

__all__ = [
    "ArrayShape",
    "INFINITE_SHAPE",
    "HI",
    "LO",
    "dim_sources",
    "dim_destinations",
    "dim_fu_class",
    "dim_supported",
    "Allocator",
    "AllocationResult",
    "ConfigBlock",
    "Configuration",
]
