"""mini-C: a small C-subset compiler targeting the MIPS I subset.

The language supports 32-bit ``int`` / ``unsigned`` scalars, ``char`` /
``int`` / ``unsigned`` arrays (global and local), functions with up to four
parameters (arrays pass by reference), the full C expression grammar over
those types (including short-circuit ``&&``/``||``, compound assignment and
``++``/``--`` statements), and ``if`` / ``while`` / ``for`` / ``do`` /
``break`` / ``continue`` / ``return`` control flow.  Built-ins
``print_int``, ``print_char``, ``print_str`` and ``exit`` map to syscalls.

The compiler is a classic four-stage pipeline: lexer → recursive-descent
parser → semantic analysis → single-pass code generator emitting assembly
for :mod:`repro.asm`.  All 18 workloads in :mod:`repro.workloads` are
written in this language.
"""

from repro.minic.lexer import tokenize, Token, LexerError
from repro.minic.parser import parse, ParseError
from repro.minic.sema import analyze, SemaError
from repro.minic.driver import (
    compile_source,
    compile_to_program,
    CompileError,
)

__all__ = [
    "tokenize",
    "Token",
    "LexerError",
    "parse",
    "ParseError",
    "analyze",
    "SemaError",
    "compile_source",
    "compile_to_program",
    "CompileError",
]
