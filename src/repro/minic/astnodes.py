"""mini-C abstract syntax tree.

Types are deliberately tiny: every scalar is a 32-bit ``int`` or
``unsigned``; ``char`` exists only as an array element type (a ``char``
scalar is promoted to ``int``).  Array names decay to addresses, so the
only value type flowing through expressions is a 32-bit word plus a
signedness flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union


@dataclass(frozen=True)
class Type:
    """A mini-C type: ``base`` in {'int', 'unsigned', 'char', 'void'},
    with an optional array dimension (None = scalar, 0 = unsized param)."""

    base: str
    array: Optional[int] = None

    @property
    def is_array(self) -> bool:
        return self.array is not None

    @property
    def element_size(self) -> int:
        return 1 if self.base == "char" else 4

    @property
    def is_unsigned(self) -> bool:
        # char data is unsigned bytes, matching lbu/sb access.
        return self.base in ("unsigned", "char")


INT = Type("int")
UNSIGNED = Type("unsigned")
VOID = Type("void")


# --- expressions ---------------------------------------------------------

@dataclass
class Expr:
    line: int = 0
    #: filled by sema: True when the value is unsigned.
    unsigned: bool = field(default=False, compare=False)


@dataclass
class NumExpr(Expr):
    value: int = 0


@dataclass
class StrExpr(Expr):
    """A string literal (only valid as a print_str argument)."""
    text: str = ""


@dataclass
class VarExpr(Expr):
    name: str = ""
    #: filled by sema: the resolved symbol.
    symbol: object = field(default=None, compare=False)


@dataclass
class IndexExpr(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None
    #: filled by sema: element size in bytes and load signedness.
    elem_size: int = field(default=4, compare=False)


@dataclass
class UnaryExpr(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


# --- statements ----------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    type: Type = INT
    name: str = ""
    init: Optional[Expr] = None
    symbol: object = field(default=None, compare=False)


@dataclass
class AssignStmt(Stmt):
    """``target op= value`` where target is VarExpr or IndexExpr and op is
    '' for plain assignment."""

    target: Optional[Expr] = None
    op: str = ""
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class WhileStmt(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    #: True for do { } while(cond);
    is_do: bool = False


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


# --- top level -------------------------------------------------------------

#: initializer for a global: scalar constant, int list, or string.
GlobalInit = Union[None, int, List[int], str]


@dataclass
class GlobalDecl:
    type: Type
    name: str
    init: GlobalInit = None
    line: int = 0


@dataclass
class Param:
    type: Type
    name: str


@dataclass
class FuncDef:
    return_type: Type
    name: str
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Unit:
    """One translation unit."""

    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)

    def function(self, name: str) -> Optional[FuncDef]:
        for func in self.functions:
            if func.name == name:
                return func
        return None
