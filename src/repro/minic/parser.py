"""mini-C recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.minic.astnodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDef,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    Param,
    ReturnStmt,
    Stmt,
    StrExpr,
    Type,
    Unit,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from repro.minic.lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


#: binary operators by increasing precedence level.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._cur
        self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._cur
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self._cur.text!r}",
                self._cur.line)
        return self._advance()

    # -- top level ---------------------------------------------------------
    def parse_unit(self) -> Unit:
        unit = Unit()
        while not self._check("eof"):
            base = self._parse_base_type()
            name = self._expect("ident").text
            if self._check("op", "("):
                unit.functions.append(self._parse_function(base, name))
            else:
                unit.globals.append(self._parse_global(base, name))
        return unit

    def _parse_base_type(self) -> str:
        token = self._cur
        if token.kind == "kw" and token.text in ("int", "unsigned", "char",
                                                 "void"):
            self._advance()
            # allow "unsigned int" / "unsigned char"
            if token.text == "unsigned" and self._check("kw", "int"):
                self._advance()
                return "unsigned"
            if token.text == "unsigned" and self._check("kw", "char"):
                self._advance()
                return "char"
            return token.text
        raise ParseError(f"expected type, found {token.text!r}", token.line)

    def _parse_global(self, base: str, name: str) -> GlobalDecl:
        line = self._cur.line
        array: Optional[int] = None
        if self._accept("op", "["):
            if self._check("num"):
                array = self._advance().value
            else:
                array = 0  # sized by the initializer
            self._expect("op", "]")
        init = None
        if self._accept("op", "="):
            init = self._parse_global_init()
        self._expect("op", ";")
        if array is not None:
            if isinstance(init, list) and array == 0:
                array = len(init)
            elif isinstance(init, str) and array == 0:
                array = len(init) + 1
            if array == 0:
                raise ParseError(f"array {name!r} needs a size", line)
        if array is None and isinstance(init, (list, str)):
            raise ParseError(f"scalar {name!r} with aggregate init", line)
        return GlobalDecl(Type(base, array), name, init, line)

    def _parse_global_init(self):
        if self._check("str"):
            return self._advance().text
        if self._accept("op", "{"):
            values = []
            while not self._check("op", "}"):
                values.append(self._const_expr())
                if not self._accept("op", ","):
                    break
            self._expect("op", "}")
            return values
        return self._const_expr()

    def _const_expr(self) -> int:
        """Fold a constant expression (numbers, unary ops, arithmetic)."""
        expr = self.parse_expr()
        return _fold(expr)

    # -- functions -----------------------------------------------------------
    def _parse_function(self, base: str, name: str) -> FuncDef:
        line = self._cur.line
        self._expect("op", "(")
        params: List[Param] = []
        if not self._check("op", ")"):
            if self._check("kw", "void") and \
                    self._tokens[self._pos + 1].text == ")":
                self._advance()
            else:
                while True:
                    pbase = self._parse_base_type()
                    pname = self._expect("ident").text
                    ptype = Type(pbase)
                    if self._accept("op", "["):
                        self._expect("op", "]")
                        ptype = Type(pbase, 0)
                    params.append(Param(ptype, pname))
                    if not self._accept("op", ","):
                        break
        self._expect("op", ")")
        body = self._parse_block()
        return FuncDef(Type(base), name, params, body, line)

    # -- statements ------------------------------------------------------------
    def _parse_block(self) -> List[Stmt]:
        self._expect("op", "{")
        stmts: List[Stmt] = []
        while not self._check("op", "}"):
            stmts.extend(self._parse_stmt())
        self._expect("op", "}")
        return stmts

    def _parse_stmt(self) -> List[Stmt]:  # noqa: C901 - case split
        token = self._cur
        if self._check("op", "{"):
            return self._parse_block()
        if self._accept("op", ";"):
            return []
        if token.kind == "kw":
            if token.text in ("int", "unsigned", "char"):
                return [self._parse_decl()]
            if token.text == "if":
                return [self._parse_if()]
            if token.text == "while":
                return [self._parse_while()]
            if token.text == "do":
                return [self._parse_do()]
            if token.text == "for":
                return [self._parse_for()]
            if token.text == "break":
                self._advance()
                self._expect("op", ";")
                return [BreakStmt(token.line)]
            if token.text == "continue":
                self._advance()
                self._expect("op", ";")
                return [ContinueStmt(token.line)]
            if token.text == "return":
                self._advance()
                value = None
                if not self._check("op", ";"):
                    value = self.parse_expr()
                self._expect("op", ";")
                return [ReturnStmt(token.line, value)]
            raise ParseError(f"unexpected keyword {token.text!r}",
                             token.line)
        stmt = self._parse_simple_stmt()
        self._expect("op", ";")
        return [stmt]

    def _parse_decl(self) -> DeclStmt:
        line = self._cur.line
        base = self._parse_base_type()
        name = self._expect("ident").text
        decl_type = Type(base)
        init = None
        if self._accept("op", "["):
            size = self._expect("num").value
            self._expect("op", "]")
            decl_type = Type(base, size)
        elif self._accept("op", "="):
            init = self.parse_expr()
        self._expect("op", ";")
        return DeclStmt(line, decl_type, name, init)

    def _parse_simple_stmt(self) -> Stmt:
        """Assignment, ++/--, or expression statement (no semicolon)."""
        line = self._cur.line
        expr = self.parse_expr()
        token = self._cur
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self._advance()
            if not isinstance(expr, (VarExpr, IndexExpr)):
                raise ParseError("assignment target is not an lvalue", line)
            value = self.parse_expr()
            op = "" if token.text == "=" else token.text[:-1]
            return AssignStmt(line, expr, op, value)
        if token.kind == "op" and token.text in ("++", "--"):
            self._advance()
            if not isinstance(expr, (VarExpr, IndexExpr)):
                raise ParseError("++/-- target is not an lvalue", line)
            op = "+" if token.text == "++" else "-"
            return AssignStmt(line, expr, op, NumExpr(line, value=1))
        return ExprStmt(line, expr)

    def _parse_if(self) -> IfStmt:
        line = self._advance().line
        self._expect("op", "(")
        cond = self.parse_expr()
        self._expect("op", ")")
        then_body = self._parse_stmt()
        else_body: List[Stmt] = []
        if self._accept("kw", "else"):
            else_body = self._parse_stmt()
        return IfStmt(line, cond, then_body, else_body)

    def _parse_while(self) -> WhileStmt:
        line = self._advance().line
        self._expect("op", "(")
        cond = self.parse_expr()
        self._expect("op", ")")
        return WhileStmt(line, cond, self._parse_stmt())

    def _parse_do(self) -> WhileStmt:
        line = self._advance().line
        body = self._parse_stmt()
        self._expect("kw", "while")
        self._expect("op", "(")
        cond = self.parse_expr()
        self._expect("op", ")")
        self._expect("op", ";")
        return WhileStmt(line, cond, body, is_do=True)

    def _parse_for(self) -> ForStmt:
        line = self._advance().line
        self._expect("op", "(")
        init: Optional[Stmt] = None
        if not self._check("op", ";"):
            init = self._parse_simple_stmt()
        self._expect("op", ";")
        cond: Optional[Expr] = None
        if not self._check("op", ";"):
            cond = self.parse_expr()
        self._expect("op", ";")
        step: Optional[Stmt] = None
        if not self._check("op", ")"):
            step = self._parse_simple_stmt()
        self._expect("op", ")")
        return ForStmt(line, init, cond, step, self._parse_stmt())

    # -- expressions -------------------------------------------------------------
    def parse_expr(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        expr = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self._cur.kind == "op" and self._cur.text in ops:
            op = self._advance()
            right = self._parse_binary(level + 1)
            expr = BinaryExpr(op.line, op=op.text, left=expr, right=right)
        return expr

    def _parse_unary(self) -> Expr:
        token = self._cur
        if token.kind == "op" and token.text in ("-", "~", "!", "+"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return UnaryExpr(token.line, op=token.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while True:
            if self._check("op", "["):
                line = self._advance().line
                index = self.parse_expr()
                self._expect("op", "]")
                expr = IndexExpr(line, base=expr, index=index)
            else:
                return expr

    def _parse_primary(self) -> Expr:
        token = self._cur
        if token.kind == "num":
            self._advance()
            return NumExpr(token.line, value=token.value)
        if token.kind == "str":
            self._advance()
            return StrExpr(token.line, text=token.text)
        if token.kind == "ident":
            self._advance()
            if self._check("op", "("):
                self._advance()
                args: List[Expr] = []
                if not self._check("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self._accept("op", ","):
                            break
                self._expect("op", ")")
                return CallExpr(token.line, name=token.text, args=args)
            return VarExpr(token.line, name=token.text)
        if self._accept("op", "("):
            expr = self.parse_expr()
            self._expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def _fold(expr: Expr) -> int:
    """Constant-fold an expression used in a global initializer."""
    if isinstance(expr, NumExpr):
        return expr.value
    if isinstance(expr, UnaryExpr):
        value = _fold(expr.operand)
        if expr.op == "-":
            return -value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(not value)
    if isinstance(expr, BinaryExpr):
        a, b = _fold(expr.left), _fold(expr.right)
        table = {
            "+": a + b, "-": a - b, "*": a * b,
            "|": a | b, "&": a & b, "^": a ^ b,
            "<<": a << (b & 31), ">>": (a & 0xFFFFFFFF) >> (b & 31),
        }
        if expr.op in table:
            return table[expr.op]
        if expr.op in ("/", "%") and b != 0:
            return a // b if expr.op == "/" else a % b
    raise ParseError("initializer is not a constant expression", expr.line)


def parse(source: str) -> Unit:
    """Parse mini-C source into a :class:`~repro.minic.astnodes.Unit`."""
    return Parser(tokenize(source)).parse_unit()
