"""mini-C code generator: AST → MIPS assembly text.

Strategy
--------
Expressions evaluate into a stack of temporary registers ``$t0..$t7``
(``$t8`` is an address scratch, ``$at`` belongs to the assembler).  Locals
and parameter home slots live in a fixed stack frame addressed off ``$sp``;
parameters are stored to their home slots in the prologue so recursion
works uniformly.  Conditions compile to direct conditional branches with
short-circuit evaluation, and small constants fold into immediate
instruction forms — both keep the emitted code close to what a simple C
compiler would produce, which is what DIM sees in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.minic.astnodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDef,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    ReturnStmt,
    Stmt,
    StrExpr,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)
from repro.minic.sema import BUILTINS, FuncInfo, SemaInfo, Symbol

_TEMPS = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7"]
_SCRATCH = "$t8"
_ARGS = ["$a0", "$a1", "$a2", "$a3"]

#: extra frame bytes reserved for saving live temporaries across calls.
_TEMP_SAVE_BYTES = 4 * len(_TEMPS)

_SYSCALL_CODES = {"print_int": 1, "print_str": 4, "print_char": 11,
                  "exit": 17}


class CodegenError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, text: str) -> None:
        self.lines.append("        " + text)

    def label(self, name: str) -> None:
        self.lines.append(f"{name}:")

    def comment(self, text: str) -> None:
        self.lines.append(f"        # {text}")


class CodeGenerator:
    """Generates one assembly module from an analyzed unit."""

    def __init__(self, sema: SemaInfo):
        self.sema = sema
        self.out = _Emitter()
        self._label_counter = 0
        self._strings: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def generate(self) -> str:
        self.out.lines.append(".text")
        self.out.label("__start")
        self.out.emit("jal f_main")
        self.out.emit("move $a0, $v0")
        self.out.emit("li $v0, 17")
        self.out.emit("syscall")
        for func in self.sema.unit.functions:
            _FunctionCodegen(self, self.sema.functions[func.name]).run()
        self._emit_data()
        return "\n".join(self.out.lines) + "\n"

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f"L{stem}_{self._label_counter}"

    def string_label(self, text: str) -> str:
        label = self._strings.get(text)
        if label is None:
            label = f"str_{len(self._strings)}"
            self._strings[text] = label
        return label

    def _emit_data(self) -> None:
        out = self.out
        out.lines.append(".data")
        for decl in self.sema.unit.globals:
            symbol = self.sema.globals[decl.name]
            out.lines.append(".align 2")
            out.label(symbol.label)
            self._emit_global_payload(decl)
        for text, label in self._strings.items():
            out.label(label)
            escaped = (text.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t"))
            out.emit(f'.asciiz "{escaped}"')

    def _emit_global_payload(self, decl: GlobalDecl) -> None:
        out = self.out
        dtype = decl.type
        if not dtype.is_array:
            value = decl.init if isinstance(decl.init, int) else 0
            out.emit(f".word {value & 0xFFFFFFFF}")
            return
        count = dtype.array or 0
        directive = ".byte" if dtype.element_size == 1 else ".word"
        if isinstance(decl.init, str):
            payload = [ord(c) & 0xFF for c in decl.init] + [0]
        elif isinstance(decl.init, list):
            payload = [v & (0xFF if dtype.element_size == 1 else 0xFFFFFFFF)
                       for v in decl.init]
        else:
            out.emit(f".space {count * dtype.element_size}")
            return
        tail = count - len(payload)
        # emit in bounded chunks to keep assembly lines readable
        for start in range(0, len(payload), 16):
            chunk = payload[start:start + 16]
            out.emit(f"{directive} " + ", ".join(str(v) for v in chunk))
        if tail > 0:
            out.emit(f".space {tail * dtype.element_size}")


class _FunctionCodegen:
    def __init__(self, module: CodeGenerator, info: FuncInfo):
        self.module = module
        self.out = module.out
        self.info = info
        self.func = info.func
        self.depth = 0  # live temporaries
        self.frame = info.frame_size + _TEMP_SAVE_BYTES
        self.return_label = f"Lret_{self.func.name}"
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []

    # -- temp register stack ----------------------------------------------
    def push(self, line: int = 0) -> str:
        if self.depth >= len(_TEMPS):
            raise CodegenError("expression too complex (temporaries "
                               "exhausted)", line)
        reg = _TEMPS[self.depth]
        self.depth += 1
        return reg

    def pop(self) -> str:
        self.depth -= 1
        return _TEMPS[self.depth]

    # -- function shell -----------------------------------------------------
    def run(self) -> None:
        out = self.out
        out.lines.append("")
        out.comment(f"function {self.func.name}")
        out.label(f"f_{self.func.name}")
        out.emit(f"addiu $sp, $sp, -{self.frame}")
        out.emit("sw $ra, 0($sp)")
        for i, param in enumerate(self.func.params):
            symbol = self.info.symbols[param.name]
            out.emit(f"sw {_ARGS[i]}, {symbol.offset}($sp)")
        for stmt in self.func.body:
            self.stmt(stmt)
        out.label(self.return_label)
        out.emit("lw $ra, 0($sp)")
        out.emit(f"addiu $sp, $sp, {self.frame}")
        out.emit("jr $ra")

    # -- statements -----------------------------------------------------------
    def stmt(self, stmt: Stmt) -> None:  # noqa: C901 - case split
        out = self.out
        if isinstance(stmt, DeclStmt):
            if stmt.init is not None:
                reg = self.eval(stmt.init)
                out.emit(f"sw {reg}, {stmt.symbol.offset}($sp)")
                self.pop()
        elif isinstance(stmt, AssignStmt):
            self._assign(stmt)
        elif isinstance(stmt, ExprStmt):
            self.eval(stmt.expr)
            self.pop()
        elif isinstance(stmt, IfStmt):
            else_label = self.module.new_label("else")
            end_label = self.module.new_label("endif")
            self.branch_false(stmt.cond, else_label)
            for inner in stmt.then_body:
                self.stmt(inner)
            if stmt.else_body:
                out.emit(f"j {end_label}")
            out.label(else_label)
            for inner in stmt.else_body:
                self.stmt(inner)
            if stmt.else_body:
                out.label(end_label)
        elif isinstance(stmt, WhileStmt):
            self._while(stmt)
        elif isinstance(stmt, ForStmt):
            self._for(stmt)
        elif isinstance(stmt, BreakStmt):
            out.emit(f"j {self._break_labels[-1]}")
        elif isinstance(stmt, ContinueStmt):
            out.emit(f"j {self._continue_labels[-1]}")
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                reg = self.eval(stmt.value)
                out.emit(f"move $v0, {reg}")
                self.pop()
            out.emit(f"j {self.return_label}")
        else:  # pragma: no cover
            raise CodegenError(f"unknown statement {type(stmt).__name__}")

    def _while(self, stmt: WhileStmt) -> None:
        """Loops emit in rotated (bottom-tested) form, like an optimising
        compiler: a guard branch skips the loop, then each iteration is a
        single fall-through block ending in the backward branch."""
        out = self.out
        top = self.module.new_label("loop")
        cont = self.module.new_label("loopcont")
        end = self.module.new_label("endloop")
        self._break_labels.append(end)
        self._continue_labels.append(cont)
        if not stmt.is_do:
            self.branch_false(stmt.cond, end)
        out.label(top)
        for inner in stmt.body:
            self.stmt(inner)
        out.label(cont)
        self.branch_true(stmt.cond, top)
        out.label(end)
        self._break_labels.pop()
        self._continue_labels.pop()

    def _for(self, stmt: ForStmt) -> None:
        """Rotated form: guard, body, step, bottom test."""
        out = self.out
        top = self.module.new_label("for")
        step_label = self.module.new_label("forstep")
        end = self.module.new_label("endfor")
        if stmt.init is not None:
            self.stmt(stmt.init)
        self._break_labels.append(end)
        self._continue_labels.append(step_label)
        if stmt.cond is not None:
            self.branch_false(stmt.cond, end)
        out.label(top)
        for inner in stmt.body:
            self.stmt(inner)
        out.label(step_label)
        if stmt.step is not None:
            self.stmt(stmt.step)
        if stmt.cond is not None:
            self.branch_true(stmt.cond, top)
        else:
            out.emit(f"j {top}")
        out.label(end)
        self._break_labels.pop()
        self._continue_labels.pop()

    # -- assignment -------------------------------------------------------------
    def _assign(self, stmt: AssignStmt) -> None:
        out = self.out
        target = stmt.target
        if isinstance(target, VarExpr):
            symbol: Symbol = target.symbol
            if stmt.op:
                current = self._load_var(target)
                value = self.eval(stmt.value)
                self._binary_op(stmt.op, current, value,
                                stmt.value, target.unsigned
                                or stmt.value.unsigned, stmt.line)
                self.pop()  # value consumed
                result = current
            else:
                result = self.eval(stmt.value)
            if symbol.kind == "global":
                out.emit(f"la {_SCRATCH}, {symbol.label}")
                out.emit(f"sw {result}, 0({_SCRATCH})")
            else:
                out.emit(f"sw {result}, {symbol.offset}($sp)")
            self.pop()
            return
        assert isinstance(target, IndexExpr)
        addr = self._index_address(target)
        load_op, store_op = ("lbu", "sb") if target.elem_size == 1 \
            else ("lw", "sw")
        if stmt.op:
            current = self.push(stmt.line)
            out.emit(f"{load_op} {current}, 0({addr})")
            value = self.eval(stmt.value)
            self._binary_op(stmt.op, current, value, stmt.value,
                            target.unsigned or stmt.value.unsigned,
                            stmt.line)
            self.pop()
            result = current
        else:
            result = self.eval(stmt.value)
        out.emit(f"{store_op} {result}, 0({addr})")
        self.pop()  # result
        self.pop()  # addr

    def _load_var(self, expr: VarExpr) -> str:
        """Load a scalar variable into a fresh temp."""
        out = self.out
        symbol: Symbol = expr.symbol
        reg = self.push(expr.line)
        if symbol.kind == "global":
            out.emit(f"la {_SCRATCH}, {symbol.label}")
            out.emit(f"lw {reg}, 0({_SCRATCH})")
        else:
            out.emit(f"lw {reg}, {symbol.offset}($sp)")
        return reg

    def _index_address(self, expr: IndexExpr) -> str:
        """Push a temp holding the byte address of ``base[index]``."""
        out = self.out
        base: VarExpr = expr.base
        symbol: Symbol = base.symbol
        # Evaluate the index, scale it, then add the base address.
        if isinstance(expr.index, NumExpr):
            reg = self.push(expr.line)
            offset = expr.index.value * expr.elem_size
            self._emit_base_address(symbol, reg)
            if offset:
                out.emit(f"addiu {reg}, {reg}, {offset}"
                         if -32768 <= offset <= 32767 else
                         f"addu {reg}, {reg}, {self._li_scratch(offset)}")
            return reg
        reg = self.eval(expr.index)
        if expr.elem_size == 4:
            out.emit(f"sll {reg}, {reg}, 2")
        self._emit_base_address(symbol, _SCRATCH)
        out.emit(f"addu {reg}, {reg}, {_SCRATCH}")
        return reg

    def _li_scratch(self, value: int) -> str:
        self.out.emit(f"li {_SCRATCH}, {value}")
        return _SCRATCH

    def _emit_base_address(self, symbol: Symbol, reg: str) -> None:
        out = self.out
        if symbol.kind == "global":
            out.emit(f"la {reg}, {symbol.label}")
        elif symbol.type.is_array and symbol.kind == "local":
            out.emit(f"addiu {reg}, $sp, {symbol.offset}")
        else:  # array parameter: the address lives in the home slot
            out.emit(f"lw {reg}, {symbol.offset}($sp)")

    # -- conditions ----------------------------------------------------------
    def branch_false(self, cond: Expr, label: str) -> None:
        """Branch to ``label`` when ``cond`` evaluates to zero."""
        self._branch(cond, label, when_true=False)

    def branch_true(self, cond: Expr, label: str) -> None:
        self._branch(cond, label, when_true=True)

    def _branch(self, cond: Expr, label: str,
                when_true: bool) -> None:  # noqa: C901
        out = self.out
        if isinstance(cond, UnaryExpr) and cond.op == "!":
            self._branch(cond.operand, label, not when_true)
            return
        if isinstance(cond, BinaryExpr) and cond.op in ("&&", "||"):
            is_and = cond.op == "&&"
            if when_true == is_and:
                # all/none-style: short-circuit through a skip label
                skip = self.module.new_label("sc")
                self._branch(cond.left, skip, not when_true)
                self._branch(cond.right, label, when_true)
                out.label(skip)
            else:
                self._branch(cond.left, label, when_true)
                self._branch(cond.right, label, when_true)
            return
        if isinstance(cond, BinaryExpr) and cond.op in ("==", "!="):
            left = self.eval(cond.left)
            right = self.eval(cond.right)
            wants_equal = (cond.op == "==") == when_true
            op = "beq" if wants_equal else "bne"
            out.emit(f"{op} {left}, {right}, {label}")
            self.pop()
            self.pop()
            return
        if isinstance(cond, BinaryExpr) and cond.op in ("<", "<=", ">",
                                                        ">="):
            self._branch_relational(cond, label, when_true)
            return
        reg = self.eval(cond)
        op = "bne" if when_true else "beq"
        out.emit(f"{op} {reg}, $zero, {label}")
        self.pop()

    def _branch_relational(self, cond: BinaryExpr, label: str,
                           when_true: bool) -> None:
        out = self.out
        op = cond.op
        # Normalise > and >= by swapping operands.
        left_expr, right_expr = cond.left, cond.right
        if op == ">":
            op, left_expr, right_expr = "<", right_expr, left_expr
        elif op == ">=":
            op, left_expr, right_expr = "<=", right_expr, left_expr
        unsigned = cond.unsigned
        # a <= b  <=>  !(b < a)
        if op == "<=":
            left_expr, right_expr = right_expr, left_expr
            when_true = not when_true
        left = self.eval(left_expr)
        right = self.eval(right_expr)
        slt = "sltu" if unsigned else "slt"
        out.emit(f"{slt} {_SCRATCH}, {left}, {right}")
        branch = "bne" if when_true else "beq"
        out.emit(f"{branch} {_SCRATCH}, $zero, {label}")
        self.pop()
        self.pop()

    # -- expressions -------------------------------------------------------------
    def eval(self, expr: Expr) -> str:  # noqa: C901 - case split
        """Evaluate ``expr`` into a freshly pushed temp; returns the reg."""
        out = self.out
        if isinstance(expr, NumExpr):
            reg = self.push(expr.line)
            out.emit(f"li {reg}, {expr.value}")
            return reg
        if isinstance(expr, VarExpr):
            symbol: Symbol = expr.symbol
            if symbol.is_array:
                reg = self.push(expr.line)
                self._emit_base_address(symbol, reg)
                return reg
            return self._load_var(expr)
        if isinstance(expr, IndexExpr):
            addr = self._index_address(expr)
            load_op = "lbu" if expr.elem_size == 1 else "lw"
            out.emit(f"{load_op} {addr}, 0({addr})")
            return addr
        if isinstance(expr, UnaryExpr):
            reg = self.eval(expr.operand)
            if expr.op == "-":
                out.emit(f"subu {reg}, $zero, {reg}")
            elif expr.op == "~":
                out.emit(f"nor {reg}, {reg}, $zero")
            else:  # '!'
                out.emit(f"sltiu {reg}, {reg}, 1")
            return reg
        if isinstance(expr, BinaryExpr):
            return self._binary(expr)
        if isinstance(expr, CallExpr):
            return self._call(expr)
        raise CodegenError(f"cannot evaluate {type(expr).__name__}",
                           expr.line)

    def _binary(self, expr: BinaryExpr) -> str:
        out = self.out
        op = expr.op
        if op in ("&&", "||"):
            reg = self.push(expr.line)
            false_label = self.module.new_label("bfalse")
            end_label = self.module.new_label("bend")
            self.branch_false(expr, false_label)
            out.emit(f"li {reg}, 1")
            out.emit(f"j {end_label}")
            out.label(false_label)
            out.emit(f"li {reg}, 0")
            out.label(end_label)
            return reg
        left = self.eval(expr.left)
        # Immediate forms when the right operand is a small constant.
        if isinstance(expr.right, NumExpr) and \
                self._emit_immediate(op, left, expr.right.value,
                                     expr.unsigned):
            return left
        right = self.eval(expr.right)
        self._binary_op(op, left, right, expr.right, expr.unsigned,
                        expr.line)
        self.pop()
        return left

    def _emit_immediate(self, op: str, reg: str, value: int,
                        unsigned: bool) -> bool:
        """Try to emit ``reg = reg op value`` in immediate form."""
        out = self.out
        if op in ("<<", ">>") and 0 <= value <= 31:
            if op == "<<":
                out.emit(f"sll {reg}, {reg}, {value}")
            else:
                shift = "srl" if unsigned else "sra"
                out.emit(f"{shift} {reg}, {reg}, {value}")
            return True
        if op == "+" and -32768 <= value <= 32767:
            out.emit(f"addiu {reg}, {reg}, {value}")
            return True
        if op == "-" and -32767 <= value <= 32768:
            out.emit(f"addiu {reg}, {reg}, {-value}")
            return True
        if op in ("&", "|", "^") and 0 <= value <= 0xFFFF:
            mnemonic = {"&": "andi", "|": "ori", "^": "xori"}[op]
            out.emit(f"{mnemonic} {reg}, {reg}, {value}")
            return True
        if op == "<" and -32768 <= value <= 32767:
            slti = "sltiu" if unsigned else "slti"
            out.emit(f"{slti} {reg}, {reg}, {value}")
            return True
        return False

    def _binary_op(self, op: str, left: str, right: str,
                   right_expr: Optional[Expr], unsigned: bool,
                   line: int) -> None:
        """Emit ``left = left op right`` (both operands in registers)."""
        out = self.out
        simple = {"+": "addu", "-": "subu", "&": "and", "|": "or",
                  "^": "xor"}
        if op in simple:
            out.emit(f"{simple[op]} {left}, {left}, {right}")
        elif op == "*":
            out.emit(f"mult {left}, {right}")
            out.emit(f"mflo {left}")
        elif op in ("/", "%"):
            div = "divu" if unsigned else "div"
            out.emit(f"{div} {left}, {right}")
            out.emit(f"mflo {left}" if op == "/" else f"mfhi {left}")
        elif op == "<<":
            out.emit(f"sllv {left}, {left}, {right}")
        elif op == ">>":
            shift = "srlv" if unsigned else "srav"
            out.emit(f"{shift} {left}, {left}, {right}")
        elif op in ("<", ">", "<=", ">="):
            slt = "sltu" if unsigned else "slt"
            a, b = (left, right) if op in ("<", ">=") else (right, left)
            out.emit(f"{slt} {left}, {a}, {b}")
            if op in ("<=", ">="):
                out.emit(f"xori {left}, {left}, 1")
        elif op == "==":
            out.emit(f"xor {left}, {left}, {right}")
            out.emit(f"sltiu {left}, {left}, 1")
        elif op == "!=":
            out.emit(f"xor {left}, {left}, {right}")
            out.emit(f"sltu {left}, $zero, {left}")
        else:  # pragma: no cover
            raise CodegenError(f"unknown operator {op!r}", line)

    # -- calls -------------------------------------------------------------------
    def _call(self, expr: CallExpr) -> str:
        out = self.out
        if expr.name in BUILTINS:
            return self._builtin(expr)
        base_depth = self.depth
        for arg in expr.args:
            self.eval(arg)
        # Save temporaries that were live before the arguments.
        save_base = self.info.frame_size
        for i in range(base_depth):
            out.emit(f"sw {_TEMPS[i]}, {save_base + 4 * i}($sp)")
        for i in range(len(expr.args)):
            out.emit(f"move {_ARGS[i]}, {_TEMPS[base_depth + i]}")
        out.emit(f"jal f_{expr.name}")
        for i in range(base_depth):
            out.emit(f"lw {_TEMPS[i]}, {save_base + 4 * i}($sp)")
        self.depth = base_depth
        reg = self.push(expr.line)
        out.emit(f"move {reg}, $v0")
        return reg

    def _builtin(self, expr: CallExpr) -> str:
        out = self.out
        arg = expr.args[0]
        base_depth = self.depth
        if isinstance(arg, StrExpr):
            label = self.module.string_label(arg.text)
            out.emit(f"la $a0, {label}")
        else:
            reg = self.eval(arg)
            out.emit(f"move $a0, {reg}")
            self.pop()
        out.emit(f"li $v0, {_SYSCALL_CODES[expr.name]}")
        out.emit("syscall")
        assert self.depth == base_depth
        reg = self.push(expr.line)
        out.emit(f"move {reg}, $v0")
        return reg


def generate(sema: SemaInfo) -> str:
    """Generate a complete assembly module from analyzed mini-C."""
    return CodeGenerator(sema).generate()
