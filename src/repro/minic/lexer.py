"""mini-C lexer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "int", "unsigned", "char", "void", "if", "else", "while", "for", "do",
    "break", "continue", "return",
}

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


class LexerError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    """kind is one of: 'num', 'ident', 'kw', 'op', 'str', 'eof'."""

    kind: str
    text: str
    value: int  # numeric value for 'num', 0 otherwise
    line: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> List[Token]:
    """Tokenize mini-C source; raises :class:`LexerError` on bad input."""
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("num", source[i:j], value, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, 0, line))
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise LexerError("bad escape in char literal", line)
                value = _ESCAPES[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise LexerError("unterminated char literal", line)
            if j >= n or source[j] != "'":
                raise LexerError("unterminated char literal", line)
            tokens.append(Token("num", source[i:j + 1], value, line))
            i = j + 1
            continue
        if ch == '"':
            j = i + 1
            chars: List[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n or source[j + 1] not in _ESCAPES:
                        raise LexerError("bad escape in string", line)
                    chars.append(chr(_ESCAPES[source[j + 1]]))
                    j += 2
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                raise LexerError("unterminated string", line)
            tokens.append(Token("str", "".join(chars), 0, line))
            i = j + 1
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, 0, line))
                i += len(op)
                break
        else:
            raise LexerError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", 0, line))
    return tokens
