"""mini-C semantic analysis: scopes, types, frame layout.

The pass resolves every identifier to a :class:`Symbol`, annotates every
expression with its signedness (which selects ``slt`` vs ``sltu``,
``sra`` vs ``srl`` and ``div`` vs ``divu`` in codegen), checks calls
against function signatures, and computes each function's stack-frame
layout (saved ``$ra``, parameter home slots, locals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.minic.astnodes import (
    AssignStmt,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    ContinueStmt,
    DeclStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDef,
    GlobalDecl,
    IfStmt,
    IndexExpr,
    NumExpr,
    ReturnStmt,
    Stmt,
    StrExpr,
    Type,
    Unit,
    UnaryExpr,
    VarExpr,
    WhileStmt,
)

MAX_REG_ARGS = 4

#: built-in functions: name -> (arg count, returns value)
BUILTINS = {
    "print_int": (1, False),
    "print_char": (1, False),
    "print_str": (1, False),
    "exit": (1, False),
}


class SemaError(Exception):
    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass
class Symbol:
    """A named entity: global variable, parameter, or local."""

    name: str
    type: Type
    kind: str  # 'global' | 'param' | 'local'
    #: assembly label for globals.
    label: str = ""
    #: frame offset from $sp (post-prologue) for params/locals.
    offset: int = 0

    @property
    def is_array(self) -> bool:
        return self.type.is_array


@dataclass
class FuncInfo:
    """Sema results for one function."""

    func: FuncDef
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    frame_size: int = 0
    returns_value: bool = False


@dataclass
class SemaInfo:
    """Sema results for a translation unit."""

    unit: Unit
    globals: Dict[str, Symbol] = field(default_factory=dict)
    functions: Dict[str, FuncInfo] = field(default_factory=dict)


def analyze(unit: Unit) -> SemaInfo:
    """Run semantic analysis; raises :class:`SemaError` on any violation."""
    info = SemaInfo(unit)
    for decl in unit.globals:
        if decl.name in info.globals:
            raise SemaError(f"duplicate global {decl.name!r}", decl.line)
        _check_global(decl)
        info.globals[decl.name] = Symbol(decl.name, decl.type, "global",
                                         label=f"g_{decl.name}")
    signatures: Dict[str, FuncDef] = {}
    for func in unit.functions:
        if func.name in signatures or func.name in BUILTINS:
            raise SemaError(f"duplicate function {func.name!r}", func.line)
        if func.name in info.globals:
            raise SemaError(
                f"function {func.name!r} collides with a global", func.line)
        signatures[func.name] = func
    if "main" not in signatures:
        raise SemaError("no main function")
    for func in unit.functions:
        info.functions[func.name] = _analyze_function(func, info, signatures)
    return info


def _check_global(decl: GlobalDecl) -> None:
    if decl.type.base == "void":
        raise SemaError(f"global {decl.name!r} cannot be void", decl.line)
    if decl.type.is_array and isinstance(decl.init, list):
        if len(decl.init) > decl.type.array:
            raise SemaError(
                f"too many initializers for {decl.name!r}", decl.line)
    if decl.type.base == "char" and not decl.type.is_array:
        # promote scalar char globals to int
        decl.type = Type("int")


class _FunctionAnalyzer:
    def __init__(self, func: FuncDef, info: SemaInfo,
                 signatures: Dict[str, FuncDef]):
        self.func = func
        self.info = info
        self.signatures = signatures
        self.symbols: Dict[str, Symbol] = {}
        self.loop_depth = 0
        self._next_offset = 4  # slot 0 holds the saved $ra

    def run(self) -> FuncInfo:
        func = self.func
        if len(func.params) > MAX_REG_ARGS:
            raise SemaError(
                f"{func.name!r} has more than {MAX_REG_ARGS} parameters",
                func.line)
        for param in func.params:
            if param.type.is_array and param.type.array != 0:
                raise SemaError("sized array parameters are not supported",
                                func.line)
            symbol = Symbol(param.name, param.type, "param",
                            offset=self._alloc(4))
            self._declare(symbol, func.line)
        for stmt in func.body:
            self._stmt(stmt)
        frame = (self._next_offset + 7) & ~7
        out = FuncInfo(func, self.symbols, frame,
                       func.return_type.base != "void")
        return out

    def _alloc(self, size: int) -> int:
        offset = self._next_offset
        self._next_offset += (size + 3) & ~3
        return offset

    def _declare(self, symbol: Symbol, line: int) -> None:
        if symbol.name in self.symbols:
            raise SemaError(f"duplicate declaration {symbol.name!r}", line)
        self.symbols[symbol.name] = symbol

    def _resolve(self, name: str, line: int) -> Symbol:
        symbol = self.symbols.get(name) or self.info.globals.get(name)
        if symbol is None:
            raise SemaError(f"undeclared identifier {name!r}", line)
        return symbol

    # -- statements ------------------------------------------------------
    def _stmt(self, stmt: Stmt) -> None:  # noqa: C901 - case split
        if isinstance(stmt, DeclStmt):
            if stmt.type.base == "void":
                raise SemaError("void local", stmt.line)
            decl_type = stmt.type
            if decl_type.base == "char" and not decl_type.is_array:
                decl_type = Type("int")
                stmt.type = decl_type
            size = (decl_type.array or 1) * decl_type.element_size \
                if decl_type.is_array else 4
            symbol = Symbol(stmt.name, decl_type, "local",
                            offset=self._alloc(size))
            self._declare(symbol, stmt.line)
            stmt.symbol = symbol
            if stmt.init is not None:
                if decl_type.is_array:
                    raise SemaError("local arrays cannot have initializers",
                                    stmt.line)
                self._expr(stmt.init)
        elif isinstance(stmt, AssignStmt):
            self._lvalue(stmt.target)
            self._expr(stmt.value)
        elif isinstance(stmt, ExprStmt):
            self._expr(stmt.expr)
        elif isinstance(stmt, IfStmt):
            self._expr(stmt.cond)
            for inner in stmt.then_body:
                self._stmt(inner)
            for inner in stmt.else_body:
                self._stmt(inner)
        elif isinstance(stmt, WhileStmt):
            self._expr(stmt.cond)
            self.loop_depth += 1
            for inner in stmt.body:
                self._stmt(inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ForStmt):
            if stmt.init is not None:
                self._stmt(stmt.init)
            if stmt.cond is not None:
                self._expr(stmt.cond)
            if stmt.step is not None:
                self._stmt(stmt.step)
            self.loop_depth += 1
            for inner in stmt.body:
                self._stmt(inner)
            self.loop_depth -= 1
        elif isinstance(stmt, (BreakStmt, ContinueStmt)):
            if self.loop_depth == 0:
                raise SemaError("break/continue outside loop", stmt.line)
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is not None:
                if self.func.return_type.base == "void":
                    raise SemaError("void function returns a value",
                                    stmt.line)
                self._expr(stmt.value)
            elif self.func.return_type.base != "void":
                raise SemaError("non-void function returns nothing",
                                stmt.line)
        else:  # pragma: no cover
            raise SemaError(f"unknown statement {type(stmt).__name__}")

    def _lvalue(self, expr: Expr) -> None:
        if isinstance(expr, VarExpr):
            symbol = self._resolve(expr.name, expr.line)
            if symbol.is_array:
                raise SemaError(f"cannot assign to array {expr.name!r}",
                                expr.line)
            expr.symbol = symbol
            expr.unsigned = symbol.type.is_unsigned
        elif isinstance(expr, IndexExpr):
            self._index(expr)
        else:
            raise SemaError("not an lvalue", expr.line)

    # -- expressions -----------------------------------------------------
    def _expr(self, expr: Expr) -> None:  # noqa: C901 - case split
        if isinstance(expr, NumExpr):
            expr.unsigned = expr.value > 0x7FFFFFFF
        elif isinstance(expr, StrExpr):
            raise SemaError("string literal outside print_str", expr.line)
        elif isinstance(expr, VarExpr):
            symbol = self._resolve(expr.name, expr.line)
            expr.symbol = symbol
            # array names decay to (unsigned) addresses
            expr.unsigned = symbol.is_array or symbol.type.is_unsigned
        elif isinstance(expr, IndexExpr):
            self._index(expr)
        elif isinstance(expr, UnaryExpr):
            self._expr(expr.operand)
            expr.unsigned = expr.operand.unsigned and expr.op != "!"
        elif isinstance(expr, BinaryExpr):
            self._expr(expr.left)
            self._expr(expr.right)
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                # unsigned flag records the *comparison* signedness; the
                # 0/1 result itself is a signed int either way.
                expr.unsigned = expr.left.unsigned or expr.right.unsigned
            elif expr.op in ("<<", ">>"):
                expr.unsigned = expr.left.unsigned
            elif expr.op in ("&&", "||"):
                expr.unsigned = False
            else:
                expr.unsigned = expr.left.unsigned or expr.right.unsigned
        elif isinstance(expr, CallExpr):
            self._call(expr)
        else:  # pragma: no cover
            raise SemaError(f"unknown expression {type(expr).__name__}")

    def _index(self, expr: IndexExpr) -> None:
        base = expr.base
        if not isinstance(base, VarExpr):
            raise SemaError("only direct array indexing is supported",
                            expr.line)
        symbol = self._resolve(base.name, base.line)
        if not symbol.is_array:
            raise SemaError(f"{base.name!r} is not an array", base.line)
        base.symbol = symbol
        self._expr(expr.index)
        expr.elem_size = symbol.type.element_size
        expr.unsigned = symbol.type.is_unsigned

    def _call(self, expr: CallExpr) -> None:
        if expr.name in BUILTINS:
            arity, returns = BUILTINS[expr.name]
            if len(expr.args) != arity:
                raise SemaError(
                    f"{expr.name} expects {arity} argument(s)", expr.line)
            for arg in expr.args:
                if isinstance(arg, StrExpr):
                    if expr.name != "print_str":
                        raise SemaError("string literal outside print_str",
                                        arg.line)
                else:
                    self._expr(arg)
            expr.unsigned = False
            return
        func = self.signatures.get(expr.name)
        if func is None:
            raise SemaError(f"call to undeclared function {expr.name!r}",
                            expr.line)
        if len(expr.args) != len(func.params):
            raise SemaError(
                f"{expr.name} expects {len(func.params)} argument(s), "
                f"got {len(expr.args)}", expr.line)
        for arg, param in zip(expr.args, func.params):
            self._expr(arg)
            if param.type.is_array:
                array_ok = (isinstance(arg, VarExpr)
                            and arg.symbol is not None
                            and arg.symbol.is_array)
                if not array_ok:
                    raise SemaError(
                        f"argument for array parameter {param.name!r} "
                        "must be an array name", arg.line)
        expr.unsigned = func.return_type.is_unsigned


def _analyze_function(func: FuncDef, info: SemaInfo,
                      signatures: Dict[str, FuncDef]) -> FuncInfo:
    return _FunctionAnalyzer(func, info, signatures).run()
